//! # hdp — Model Reuse through Hardware Design Patterns
//!
//! A full reproduction of *"Model Reuse through Hardware Design
//! Patterns"* (F. Rincón, F. Moya, J. Barba, J. C. López — DATE
//! 2005): the hardware **Iterator** pattern, the STL-inspired basic
//! component library built on it, the metaprogramming VHDL generator,
//! and the complete evaluation of the paper — reproduced over a
//! cycle-accurate simulator and a Spartan-IIE synthesis cost model
//! instead of the original XSB-300E board.
//!
//! This facade crate re-exports the workspace:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`hdl`] | `hdp-hdl` | logic values, entities, netlists, VHDL emission |
//! | [`sim`] | `hdp-sim` | delta-cycle simulator and board device models |
//! | [`pattern`] | `hdp-core` | the iterator pattern, containers, algorithms, system model |
//! | [`metagen`] | `hdp-metagen` | the metaprogramming code generator |
//! | [`synth`] | `hdp-synth` | technology mapping, timing, power, characterisation |
//! | [`conform`] | `hdp-conform` | differential conformance fuzzing across simulator oracles and an executable VHDL model |
//! | [`service`] | `hdp-service` | simulation-as-a-service job server with a content-addressed compiled-plan cache |
//!
//! For day-to-day use, [`prelude`] re-exports the simulation and
//! service surface in one import:
//!
//! ```
//! use hdp::prelude::*;
//!
//! # fn main() -> Result<(), SimError> {
//! let mut sim = SimBuilder::with_mode(SchedMode::FullSweep).build()?;
//! sim.set_telemetry(TelemetryLevel::Counters);
//! assert_eq!(sim.stats().steps, 0);
//! # Ok(())
//! # }
//! ```
//!
//! ## Quickstart
//!
//! Build the paper's Figure 3 model, run a frame through it, retarget
//! the containers from FIFOs to external SRAM without touching the
//! model, and run the same frame again:
//!
//! ```
//! use hdp::pattern::golden::PixelOp;
//! use hdp::pattern::model::{Algorithm, VideoPipelineModel};
//! use hdp::pattern::pixel::{Frame, PixelFormat};
//! use hdp::pattern::spec::PhysicalTarget;
//!
//! # fn main() -> Result<(), hdp::pattern::CoreError> {
//! let frame = Frame::gradient(8, 6, PixelFormat::Gray8);
//! let model = VideoPipelineModel::new(
//!     "saa2vga",
//!     PixelFormat::Gray8,
//!     8,
//!     6,
//!     Algorithm::Transform(PixelOp::Identity),
//! )?;
//! // Over FIFO cores (the saa2vga 1 configuration).
//! let out = model.process_frame(&frame)?;
//! assert_eq!(out, frame);
//! // Same model, containers over external SRAM (saa2vga 2): "this
//! // change does not really affect the model".
//! let retargeted = model
//!     .retarget_input(PhysicalTarget::ExternalSram { latency: 2 })
//!     .retarget_output(PhysicalTarget::ExternalSram { latency: 2 })
//!     .with_source_gap(15);
//! let out = retargeted.process_frame(&frame)?;
//! assert_eq!(out, frame);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use hdp_conform as conform;
pub use hdp_hdl as hdl;
pub use hdp_metagen as metagen;
pub use hdp_service as service;
pub use hdp_sim as sim;
pub use hdp_synth as synth;

/// The paper's primary contribution: the iterator pattern and the
/// basic component library (`hdp-core`).
pub use hdp_core as pattern;

/// The one-import surface for simulating and serving designs.
///
/// Brings in the simulator construction and scheduling types, the
/// probing helpers, the `hdp-conform-repro-v1` wire format, and the
/// service client — everything the `examples/` directory needs
/// without deep crate paths.
pub mod prelude {
    pub use hdp_conform::wire::{design_hash, job_to_json, parse_case, repro_to_json};
    pub use hdp_conform::{
        check_lanes, Case, Divergence, Json, Stimulus as WireStimulus, WireError,
    };
    pub use hdp_service::{
        serve, submit, validate_snapshot, CacheStats, CachedDesign, JobOptions, JobOutcome,
        JobSpan, MetricsRegistry, MetricsSnapshot, ObsMode, PlanCache, ServerHandle, Service,
        ServiceError, Stage, METRICS_SCHEMA,
    };
    pub use hdp_sim::probe::{Monitor, Stimulus};
    pub use hdp_sim::vcd::VcdRecorder;
    pub use hdp_sim::{
        CompiledPlan, FallbackCause, LaneBatch, SchedMode, SimBuilder, SimError, SimStats,
        Simulator, TelemetryLevel, LANES,
    };
}
