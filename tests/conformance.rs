//! Fixed-seed differential conformance sweep.
//!
//! Samples 200 designs from the metagen design space — including the
//! multi-clock `async_fifo` family — and demands that all seven
//! oracles — five simulator scheduling modes, the levelized netlist
//! path and the VHDL-text interpreter — agree bit-for-bit on every
//! output, every cycle. This is the committed, deterministic slice of
//! what the `conform` fuzz binary explores with arbitrary seeds.

use hdp::conform::{check, shrink, Case, Stimulus};
use hdp::metagen::sampler::{sample_spec, DesignSpec, RATIOS};
use hdp::metagen::OpSet;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeSet;

const SEED: u64 = 0xC0F0;
const COUNT: usize = 200;
const CYCLES: usize = 10;

#[test]
fn two_hundred_sampled_designs_conform_across_all_oracles() {
    let mut rng = StdRng::seed_from_u64(SEED);
    let mut kinds = BTreeSet::new();
    let mut targets = BTreeSet::new();
    let mut failures = Vec::new();
    for index in 0..COUNT {
        let spec = sample_spec(&mut rng);
        kinds.insert(spec.kind().to_owned());
        targets.insert(spec.target().to_owned());
        let label = spec.label();
        let netlist = spec
            .instantiate()
            .unwrap_or_else(|e| panic!("design #{index} ({label}) failed to generate: {e}"));
        let stimulus = Stimulus::sample(&netlist, CYCLES, &mut rng);
        if let Some(divergence) = check(&netlist, &stimulus) {
            // Shrink before reporting so the assertion message is a
            // ready-made minimal reproducer.
            let (minimal, d) = shrink(&Case { spec, stimulus });
            let d = d.expect("diverging case still diverges after shrinking");
            failures.push(format!(
                "design #{index} ({label}), shrunk to {} over {} cycle(s): {d} (original: {divergence})",
                minimal.spec.label(),
                minimal.stimulus.cycles.len(),
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "{} of {COUNT} designs diverged:\n{}",
        failures.len(),
        failures.join("\n")
    );
    // The fixed seed must exercise the whole design space: every
    // container kind and every physical target goes through every
    // oracle, including the VHDL interpreter.
    let expect = |label: &str, set: &BTreeSet<String>, want: &[&str]| {
        for item in want {
            assert!(
                set.contains(*item),
                "{label} `{item}` never sampled: {set:?}"
            );
        }
    };
    expect(
        "kind",
        &kinds,
        &[
            "read_buffer",
            "write_buffer",
            "stack",
            "queue",
            "vector",
            "assoc_array",
            "iterator",
        ],
    );
    expect(
        "target",
        &targets,
        &[
            "fifo_core",
            "lifo_core",
            "sram",
            "block_ram",
            "registers",
            "async_fifo",
        ],
    );
}

/// Every `wr:rd` period ratio the sampler draws, at two depths, must
/// conform across the full seven-oracle stack: the deterministic
/// multi-domain interleaving has to come out bit-identical whether
/// the ticks are dispatched by the full sweep, the event queue, the
/// parallel islands, the compiled walk, the lowered op streams (which
/// fall back to interpreted ticks on partial firings), the levelized
/// path or the VHDL-text interpreter's per-rail clock stepping.
#[test]
fn async_fifo_conforms_across_all_period_ratios() {
    let mut rng = StdRng::seed_from_u64(0xCDC);
    let mut failures = Vec::new();
    for &(wr_period, rd_period) in &RATIOS {
        for depth in [2usize, 4] {
            let spec = DesignSpec {
                family: 11,
                data_width: 4,
                depth,
                addr_width: 8,
                key_width: 8,
                wide: 0,
                write_side: false,
                ops: OpSet::new(),
                wr_period,
                rd_period,
            };
            let label = spec.label();
            let netlist = spec
                .instantiate()
                .unwrap_or_else(|e| panic!("{label} failed to generate: {e}"));
            // 18 base steps cover three full lcm(2,3)=6 interleaving
            // periods of the largest ratio in the table.
            let stimulus = Stimulus::sample(&netlist, 18, &mut rng);
            if let Some(d) = check(&netlist, &stimulus) {
                failures.push(format!("{label}: {d}"));
            }
        }
    }
    assert!(
        failures.is_empty(),
        "{} async_fifo points diverged:\n{}",
        failures.len(),
        failures.join("\n")
    );
}

#[test]
fn committed_reproducers_replay_and_still_parse() {
    // Divergences found by the fuzzer are committed under
    // tests/repros/ and must keep parsing; a reproducer that no
    // longer diverges marks a fixed bug and should be deleted.
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/repros");
    if !dir.is_dir() {
        return; // No outstanding divergences.
    }
    for entry in std::fs::read_dir(&dir).expect("readable repros dir") {
        let path = entry.expect("readable entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("json") {
            continue;
        }
        let text = std::fs::read_to_string(&path).expect("readable reproducer");
        let divergence = hdp::conform::wire::replay(&text)
            .unwrap_or_else(|e| panic!("{}: malformed reproducer: {e}", path.display()));
        assert!(
            divergence.is_some(),
            "{}: no longer diverges — the bug it pinned is fixed; delete it",
            path.display()
        );
    }
}
