//! Shared testbench builders for the integration-test suite.
//!
//! Each integration-test binary that declares `mod common;` gets its
//! own copy, so helpers unused by a particular binary are expected —
//! hence the blanket `dead_code` allow.

#![allow(dead_code)]

use hdp::metagen::design::{generate, DesignKind, DesignParams, Style};
use hdp::pattern::algo::TransformStreaming;
use hdp::pattern::golden::PixelOp;
use hdp::pattern::hw::{ReadBufferFifo, WriteBufferFifo};
use hdp::pattern::iface::{IterIface, StreamIface};
use hdp::pattern::pixel::PixelFormat;
use hdp::sim::devices::{Sram, VideoIn, VideoOut};
use hdp::sim::{ComponentId, NetlistComponent, SignalId, Simulator};
use proptest::prelude::*;

/// Runs the simulator in 256-cycle chunks (up to `budget` cycles)
/// until the `VideoOut` sink has captured a complete frame, and
/// returns that frame, or `None` if the budget ran out first.
pub fn collect_first_frame(
    sim: &mut Simulator,
    sink: ComponentId,
    budget: u64,
) -> Option<Vec<u64>> {
    let mut remaining = budget;
    while remaining > 0 {
        let chunk = remaining.min(256);
        sim.run(chunk).expect("simulation error");
        remaining -= chunk;
        if !sim.component::<VideoOut>(sink).unwrap().frames().is_empty() {
            break;
        }
    }
    sim.component::<VideoOut>(sink)
        .unwrap()
        .frames()
        .first()
        .cloned()
}

/// Simulates a generated stream design on one frame and returns the
/// collected output pixels.
pub fn run_design(
    kind: DesignKind,
    style: Style,
    params: DesignParams,
    pixels: Vec<u64>,
    gap: u32,
    out_len: usize,
) -> Vec<u64> {
    let design = generate(kind, style, params).expect("design generates");
    let mut sim = Simulator::new();
    let vid_valid = sim.add_signal("vid_valid", 1).unwrap();
    let vid_data = sim.add_signal("vid_data", params.data_width).unwrap();
    let vga_valid = sim.add_signal("vga_valid", 1).unwrap();
    let vga_data = sim.add_signal("vga_data", params.data_width).unwrap();
    let mut map: Vec<(String, SignalId)> = vec![
        ("vid_valid".into(), vid_valid),
        ("vid_data".into(), vid_data),
        ("vga_valid".into(), vga_valid),
        ("vga_data".into(), vga_data),
    ];
    if kind == DesignKind::Saa2vga2 {
        for prefix in ["im", "om"] {
            let req = sim.add_signal(format!("{prefix}_req"), 1).unwrap();
            let we = sim.add_signal(format!("{prefix}_we"), 1).unwrap();
            let addr = sim
                .add_signal(format!("{prefix}_addr"), params.addr_width)
                .unwrap();
            let wdata = sim
                .add_signal(format!("{prefix}_wdata"), params.data_width)
                .unwrap();
            let ack = sim.add_signal(format!("{prefix}_ack"), 1).unwrap();
            let rdata = sim
                .add_signal(format!("{prefix}_rdata"), params.data_width)
                .unwrap();
            sim.add_component(Sram::new(
                format!("sram_{prefix}"),
                params.addr_width,
                params.data_width,
                2,
                req,
                we,
                addr,
                wdata,
                ack,
                rdata,
            ));
            for (p, s) in [
                (format!("{prefix}_req"), req),
                (format!("{prefix}_we"), we),
                (format!("{prefix}_addr"), addr),
                (format!("{prefix}_wdata"), wdata),
                (format!("{prefix}_ack"), ack),
                (format!("{prefix}_rdata"), rdata),
            ] {
                map.push((p, s));
            }
        }
    }
    let map_refs: Vec<(&str, SignalId)> = map.iter().map(|(n, s)| (n.as_str(), *s)).collect();
    let n_pixels = pixels.len() as u64;
    let dut = NetlistComponent::new("dut", design.netlist, sim.bus(), &map_refs)
        .expect("design wires up");
    sim.add_component(dut);
    sim.add_component(VideoIn::new(
        "video_decoder",
        pixels,
        params.data_width,
        gap,
        false,
        vid_valid,
        vid_data,
    ));
    let sink = sim.add_component(VideoOut::new(
        "vga_coder",
        out_len,
        None,
        vga_valid,
        vga_data,
    ));
    sim.reset().unwrap();
    let budget = n_pixels * u64::from(gap + 1) * 4 + 2000;
    collect_first_frame(&mut sim, sink, budget).unwrap_or_else(|| {
        panic!(
            "no complete frame after {budget} cycles (partial: {} px)",
            sim.component::<VideoOut>(sink).unwrap().partial().len()
        )
    })
}

/// Operations a container testbench can perform.
#[derive(Debug, Clone, Copy)]
pub enum QueueOp {
    /// Push a value.
    Push(u8),
    /// Pop the front/top element.
    Pop,
}

/// Proptest strategy over [`QueueOp`].
pub fn queue_op() -> impl Strategy<Value = QueueOp> {
    prop_oneof![any::<u8>().prop_map(QueueOp::Push), Just(QueueOp::Pop)]
}

/// The interfaces and sink of one source → read-buffer → transform →
/// write-buffer → sink pipeline built by [`build_transform_pipeline`].
pub struct TransformPipeline {
    /// Source stream (decoder side).
    pub vin: StreamIface,
    /// Iterator interface into the input buffer.
    pub it_in: IterIface,
    /// Iterator interface out of the engine.
    pub it_out: IterIface,
    /// Output stream (coder side).
    pub vout: StreamIface,
    /// The `VideoOut` sink component.
    pub sink: ComponentId,
}

/// Builds the canonical streaming pipeline over 8-bit pixels with
/// FIFO-backed buffers of depth 16. `tag` disambiguates signal and
/// component names when several pipelines share one simulator.
pub fn build_transform_pipeline(
    sim: &mut Simulator,
    tag: &str,
    pixels: Vec<u64>,
    gap: u32,
    op: PixelOp,
) -> TransformPipeline {
    let n = pixels.len();
    let vin = StreamIface::alloc(sim, &format!("vin{tag}"), 8).unwrap();
    let it_in = IterIface::alloc(sim, &format!("iti{tag}"), 8).unwrap();
    let it_out = IterIface::alloc(sim, &format!("ito{tag}"), 8).unwrap();
    let vout = StreamIface::alloc(sim, &format!("vout{tag}"), 8).unwrap();
    sim.add_component(VideoIn::new(
        format!("src{tag}"),
        pixels,
        8,
        gap,
        false,
        vin.valid,
        vin.data,
    ));
    sim.add_component(ReadBufferFifo::new(format!("rb{tag}"), 16, 8, vin, it_in));
    sim.add_component(TransformStreaming::new(
        format!("eng{tag}"),
        op,
        PixelFormat::Gray8,
        it_in,
        it_out,
        Some(n as u64),
    ));
    sim.add_component(WriteBufferFifo::new(format!("wb{tag}"), 16, it_out, vout));
    let sink = sim.add_component(VideoOut::new(
        format!("sink{tag}"),
        n,
        None,
        vout.valid,
        vout.data,
    ));
    TransformPipeline {
        vin,
        it_in,
        it_out,
        vout,
        sink,
    }
}
