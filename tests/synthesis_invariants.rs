//! Cross-crate synthesis invariants: the Table 3 claims as tests.

use hdp::metagen::design::{generate, DesignKind, DesignParams, Style};
use hdp::synth::{dissolve_wrappers, map_resources, synthesize, XC2S300E};

#[test]
fn every_design_fits_the_xc2s300e() {
    for kind in DesignKind::ALL {
        for style in [Style::Pattern, Style::Custom] {
            let d = generate(kind, style, DesignParams::paper_default()).unwrap();
            let r = map_resources(&dissolve_wrappers(&d.netlist).unwrap());
            assert!(
                XC2S300E.fits(r),
                "{} {:?} does not fit: {:?}",
                kind.label(),
                style,
                r
            );
        }
    }
}

#[test]
fn pattern_overhead_is_negligible() {
    // The paper's headline claim, per design: pattern-based and
    // custom implementations cost essentially the same after the
    // iterator wrappers dissolve.
    for kind in DesignKind::ALL {
        let p = synthesize(
            &generate(kind, Style::Pattern, DesignParams::paper_default())
                .unwrap()
                .netlist,
        )
        .unwrap();
        let c = synthesize(
            &generate(kind, Style::Custom, DesignParams::paper_default())
                .unwrap()
                .netlist,
        )
        .unwrap();
        assert_eq!(p.brams, c.brams, "{}", kind.label());
        let ff_delta = p.ffs.abs_diff(c.ffs);
        let lut_delta = p.luts.abs_diff(c.luts);
        // Within ~15% (the FIFO and blur rows are exactly equal; the
        // SRAM row differs by the fused-FSM encoding).
        assert!(
            ff_delta * 100 <= c.ffs.max(20) * 15,
            "{}: FF {} vs {}",
            kind.label(),
            p.ffs,
            c.ffs
        );
        assert!(
            lut_delta * 100 <= c.luts.max(20) * 15,
            "{}: LUT {} vs {}",
            kind.label(),
            p.luts,
            c.luts
        );
    }
}

#[test]
fn wrappers_fully_dissolve_in_the_fifo_design() {
    // saa2vga 1: pattern == custom exactly, because the only
    // difference is wrapper buffers.
    let p = synthesize(
        &generate(
            DesignKind::Saa2vga1,
            Style::Pattern,
            DesignParams::paper_default(),
        )
        .unwrap()
        .netlist,
    )
    .unwrap();
    let c = synthesize(
        &generate(
            DesignKind::Saa2vga1,
            Style::Custom,
            DesignParams::paper_default(),
        )
        .unwrap()
        .netlist,
    )
    .unwrap();
    assert_eq!(p.ffs, c.ffs);
    assert_eq!(p.luts, c.luts);
    assert_eq!(p.brams, c.brams);
    assert!((p.clk_mhz - c.clk_mhz).abs() < 1e-9);
}

#[test]
fn table3_row_relations() {
    let report = |kind| {
        synthesize(
            &generate(kind, Style::Pattern, DesignParams::paper_default())
                .unwrap()
                .netlist,
        )
        .unwrap()
    };
    let s1 = report(DesignKind::Saa2vga1);
    let s2 = report(DesignKind::Saa2vga2);
    let blur = report(DesignKind::Blur);
    // Block RAM column: 2 / 0 / 2, as in the paper.
    assert_eq!(s1.brams, 2);
    assert_eq!(s2.brams, 0);
    assert_eq!(blur.brams, 2);
    // "The first one (the FIFO implementation) provides maximum
    // performance at the highest cost. The SRAM implementation is
    // much smaller."
    assert!(s2.ffs < s1.ffs);
    // Blur is the largest design.
    assert!(blur.ffs > s1.ffs);
    assert!(blur.luts > s1.luts);
    // All designs land in the working-clock class of the board.
    for (name, r) in [("saa2vga1", s1), ("saa2vga2", s2), ("blur", blur)] {
        assert!(
            (40.0..=200.0).contains(&r.clk_mhz),
            "{name}: {} MHz",
            r.clk_mhz
        );
    }
}

#[test]
fn dissolution_only_removes_wrappers() {
    use hdp::hdl::prim::Prim;
    for kind in DesignKind::ALL {
        let d = generate(kind, Style::Pattern, DesignParams::paper_default()).unwrap();
        let before = d.netlist.cells().len();
        let bufs = d
            .netlist
            .cells()
            .iter()
            .filter(|c| matches!(c.prim(), Prim::Buf { .. }))
            .count();
        let after = dissolve_wrappers(&d.netlist).unwrap().cells().len();
        assert_eq!(after, before - bufs, "{}", kind.label());
    }
}

#[test]
fn synthesis_is_deterministic() {
    let a = synthesize(
        &generate(
            DesignKind::Blur,
            Style::Pattern,
            DesignParams::paper_default(),
        )
        .unwrap()
        .netlist,
    )
    .unwrap();
    let b = synthesize(
        &generate(
            DesignKind::Blur,
            Style::Pattern,
            DesignParams::paper_default(),
        )
        .unwrap()
        .netlist,
    )
    .unwrap();
    assert_eq!(a, b);
}
