//! Property tests on the FSM lowering: a randomly generated Moore
//! machine lowered to a netlist behaves identically to its direct
//! Rust interpretation, cycle for cycle.

use hdp::hdl::{Entity, Netlist, PortDir};
use hdp::metagen::fsm::{lower_fsm, state_bits, Rtl};
use hdp::sim::{NetlistComponent, Simulator};
use proptest::prelude::*;

/// A random FSM: `table[state][input] = (next_state, output)`.
#[derive(Debug, Clone)]
struct RandomFsm {
    n_states: usize,
    table: Vec<Vec<(u64, u64)>>, // [state][input combo]
}

fn random_fsm(max_states: usize) -> impl Strategy<Value = RandomFsm> {
    (2..=max_states).prop_flat_map(move |n_states| {
        let combos = 4usize; // two 1-bit inputs
        prop::collection::vec(
            prop::collection::vec((0..n_states as u64, 0..8u64), combos),
            n_states,
        )
        .prop_map(move |table| RandomFsm { n_states, table })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn lowered_fsm_equals_direct_interpretation(
        fsm in random_fsm(5),
        stimulus in prop::collection::vec(0u64..4, 1..40),
    ) {
        // Build the netlist.
        let entity = Entity::builder("dut")
            .port("a", PortDir::In, 1).unwrap()
            .port("b", PortDir::In, 1).unwrap()
            .port("y", PortDir::Out, 3).unwrap()
            .build().unwrap();
        let mut nl = Netlist::new(entity);
        let a = nl.add_net("a", 1).unwrap();
        let b = nl.add_net("b", 1).unwrap();
        let mut rtl = Rtl::new(&mut nl);
        let table = fsm.table.clone();
        let (_, out) = lower_fsm(&mut rtl, fsm.n_states, 0, &[a, b], 3, |s, ins| {
            let combo = (ins[0] << 1 | ins[1]) as usize;
            table[s as usize][combo]
        }).unwrap();
        nl.bind_port("a", a).unwrap();
        nl.bind_port("b", b).unwrap();
        nl.bind_port("y", out).unwrap();

        let mut sim = Simulator::new();
        let a_s = sim.add_signal("a", 1).unwrap();
        let b_s = sim.add_signal("b", 1).unwrap();
        let y_s = sim.add_signal("y", 3).unwrap();
        let dut = NetlistComponent::new(
            "dut", nl, sim.bus(), &[("a", a_s), ("b", b_s), ("y", y_s)],
        ).unwrap();
        sim.add_component(dut);
        sim.poke(a_s, 0).unwrap();
        sim.poke(b_s, 0).unwrap();
        sim.reset().unwrap();

        // Direct interpretation.
        let mut state: u64 = 0;
        for combo in stimulus {
            sim.poke(a_s, combo >> 1 & 1).unwrap();
            sim.poke(b_s, combo & 1).unwrap();
            sim.settle().unwrap();
            let (next, expected_out) = fsm.table[state as usize][combo as usize];
            prop_assert_eq!(
                sim.peek(y_s).unwrap().to_u64(),
                Some(expected_out),
                "output in state {} on input {}", state, combo
            );
            sim.step().unwrap();
            state = next;
        }
        // state bits sanity.
        prop_assert!(state < fsm.n_states as u64);
        prop_assert!(state_bits(fsm.n_states) <= 3);
    }
}
