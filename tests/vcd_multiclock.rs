//! VCD round-trips for two-clock-domain dumps.
//!
//! The async FIFO runs its write and read halves on different clock
//! rails, so a VCD dump of its flags and read data interleaves changes
//! that originate in both domains on the shared base-step timeline.
//! These tests prove the dump survives a render → parse → waveform
//! round-trip bit-for-bit, including the power-up X bits that sit at
//! the synchronizer outputs until the first reset.

use hdp::hdl::LogicVector;
use hdp::metagen::cdc_gen::{async_fifo, AsyncFifoParams};
use hdp::sim::probe::Monitor;
use hdp::sim::vcd::{VcdDocument, VcdRecorder};
use hdp::sim::{ComponentId, NetlistComponent, SignalId, Simulator};

struct Dut {
    sim: Simulator,
    push: SignalId,
    wdata: SignalId,
    pop: SignalId,
    rec: ComponentId,
    mon_empty: ComponentId,
    mon_rdata: ComponentId,
}

/// Instantiates an 8-bit, depth-4 async FIFO with the read domain at
/// half the write rate, wires its flags and read data to a
/// [`VcdRecorder`] and parallel [`Monitor`]s, and optionally resets
/// (skipping reset leaves every flop at its power-up X state).
fn bring_up(reset: bool) -> Dut {
    let nl = async_fifo(&AsyncFifoParams {
        data_width: 8,
        addr_width: 2,
        wr_period: 1,
        rd_period: 2,
    })
    .unwrap();
    let mut sim = Simulator::new();
    let push = sim.add_signal("push", 1).unwrap();
    let wdata = sim.add_signal("wdata", 8).unwrap();
    let pop = sim.add_signal("pop", 1).unwrap();
    let full = sim.add_signal("full", 1).unwrap();
    let empty = sim.add_signal("empty", 1).unwrap();
    let rdata = sim.add_signal("rdata", 8).unwrap();
    let dut = NetlistComponent::new(
        "fifo",
        nl,
        sim.bus(),
        &[
            ("push", push),
            ("wdata", wdata),
            ("pop", pop),
            ("full", full),
            ("empty", empty),
            ("rdata", rdata),
        ],
    )
    .unwrap();
    sim.add_component(dut);
    let rec = sim.add_component(VcdRecorder::new("vcd", vec![full, empty, rdata]));
    let mon_empty = sim.add_component(Monitor::new("mon_empty", empty));
    let mon_rdata = sim.add_component(Monitor::new("mon_rdata", rdata));
    if reset {
        sim.reset().unwrap();
    }
    Dut {
        sim,
        push,
        wdata,
        pop,
        rec,
        mon_empty,
        mon_rdata,
    }
}

#[test]
fn two_domain_fifo_dump_round_trips() {
    let mut dut = bring_up(true);
    // Push three words back-to-back at the write rate with the pop
    // request held high; the half-rate read domain drains them every
    // other base step once the synchronized write pointer lands.
    dut.sim.poke(dut.push, 1).unwrap();
    dut.sim.poke(dut.pop, 1).unwrap();
    let cycles = 12u64;
    for step in 0..cycles {
        let word = [0xA1u64, 0xB2, 0xC3].get(step as usize).copied();
        match word {
            Some(w) => dut.sim.poke(dut.wdata, w).unwrap(),
            None => dut.sim.poke(dut.push, 0).unwrap(),
        }
        dut.sim.step().unwrap();
    }
    let text = dut
        .sim
        .component::<VcdRecorder>(dut.rec)
        .unwrap()
        .render(dut.sim.bus());
    let doc = VcdDocument::parse(&text).unwrap();
    assert_eq!(
        doc.vars,
        vec![
            ("!".into(), "full".into(), 1),
            ("\"".into(), "empty".into(), 1),
            ("#".into(), "rdata".into(), 8),
        ]
    );
    // Holding each change until the next one reconstructs exactly the
    // per-base-step traces the independent monitors recorded, even
    // though empty toggles on read-domain steps and full on
    // write-domain steps.
    for (ident, mon) in [("\"", dut.mon_empty), ("#", dut.mon_rdata)] {
        let wave = doc.waveform(ident, cycles);
        let trace = dut.sim.component::<Monitor>(mon).unwrap().trace();
        assert_eq!(wave.len(), trace.len());
        for (cycle, (got, want)) in wave.iter().zip(trace).enumerate() {
            assert_eq!(got.as_ref(), Some(want), "var {ident} cycle {cycle}");
        }
    }
    // The three words cross the domain boundary in order.
    let mut seen = Vec::new();
    for value in doc.waveform("#", cycles).into_iter().flatten() {
        let v = value.to_u64().unwrap();
        if ![0, 0xA1, 0xB2, 0xC3].contains(&v) {
            panic!("unexpected rdata value {v:#x}");
        }
        if v != 0 && seen.last() != Some(&v) {
            seen.push(v);
        }
    }
    assert_eq!(seen, vec![0xA1, 0xB2, 0xC3]);
}

#[test]
fn two_domain_dump_preserves_power_up_x_at_synchronizer_outputs() {
    // Before the first reset every flop — the Gray pointers AND the
    // 2-flop synchronizers — holds its power-up X. The empty flag
    // compares the read pointer against the synchronized write pointer
    // (wq2, a synchronizer output), so it is undefined too, and the
    // dump must say so rather than inventing a value.
    let mut dut = bring_up(false);
    dut.sim.poke(dut.push, 0).unwrap();
    dut.sim.poke(dut.wdata, 0).unwrap();
    dut.sim.poke(dut.pop, 0).unwrap();
    let cycles = 6u64;
    dut.sim.run(cycles).unwrap();
    let text = dut
        .sim
        .component::<VcdRecorder>(dut.rec)
        .unwrap()
        .render(dut.sim.bus());
    // The scalar flag renders as `x`, the 8-bit read data as a vector
    // of x bits.
    assert!(
        text.contains("X\""),
        "no scalar X change for empty:\n{text}"
    );
    assert!(
        text.contains("bXXXXXXXX #"),
        "no vector X change for rdata:\n{text}"
    );
    let doc = VcdDocument::parse(&text).unwrap();
    for (ident, label) in [("!", "full"), ("\"", "empty"), ("#", "rdata")] {
        let wave = doc.waveform(ident, cycles);
        for (cycle, value) in wave.iter().enumerate() {
            let value = value
                .as_ref()
                .unwrap_or_else(|| panic!("{label} has no recorded value at cycle {cycle}"));
            assert_eq!(
                value.to_u64(),
                None,
                "{label} decoded to a defined value at cycle {cycle}: {value:?}"
            );
        }
    }
    // Round trip is lossless: the parsed X flag keeps its width, it
    // is not collapsed into a parse error or a zero.
    let empty0 = &doc.waveform("\"", 1)[0];
    assert_eq!(
        empty0.as_ref().map(LogicVector::width),
        Some(1),
        "width survives the round trip"
    );
}
