//! End-to-end tests of the service observability plane.
//!
//! Everything here goes through the public surface (`hdp::prelude`):
//! the metrics snapshot of a fixed workload reconciles exactly
//! (cache hits + misses == jobs, histogram bucket sums == jobs,
//! p99 >= p50), the counters-only mode records no timings, the
//! `stats` wire verb serves a schema-valid live snapshot over TCP,
//! per-job spans render as Perfetto-loadable Chrome traces, and the
//! disabled mode's job path is observably identical.

use hdp::metagen::sampler::sample_spec;
use hdp::prelude::*;
use hdp::service::metrics::Counter;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn sample_case(seed: u64, cycles: usize) -> Case {
    let mut rng = StdRng::seed_from_u64(seed);
    let spec = sample_spec(&mut rng);
    let netlist = spec.instantiate().expect("sampled design instantiates");
    let stimulus = WireStimulus::sample(&netlist, cycles, &mut rng);
    Case { spec, stimulus }
}

/// Distinct designs found by scanning seeds (metagen may sample the
/// same design for nearby seeds).
fn distinct_cases(count: usize, cycles: usize) -> Vec<Case> {
    let mut seen = std::collections::HashSet::new();
    let mut cases = Vec::new();
    let mut seed = 0u64;
    while cases.len() < count {
        let case = sample_case(seed, cycles);
        if seen.insert(design_hash(&case.spec)) {
            cases.push(case);
        }
        seed += 1;
    }
    cases
}

#[test]
fn sampled_snapshot_reconciles_on_a_fixed_workload() {
    let service = Service::with_obs(16, ObsMode::Sampled);
    let cases = distinct_cases(6, 5);
    let opts = JobOptions::default();
    for case in &cases {
        service.run_case(case, &opts).unwrap(); // cold: 6 misses
    }
    for case in &cases {
        service.run_case(case, &opts).unwrap(); // warm: 6 hits
    }

    let snap = service.metrics_snapshot();
    let jobs = snap.counter(Counter::JobsTotal);
    assert_eq!(jobs, 12);
    assert_eq!(snap.counter(Counter::JobsOk), 12);
    assert_eq!(snap.counter(Counter::ModeLowered), 12);
    let cache = snap.cache.as_ref().expect("snapshot carries the cache");
    assert_eq!(cache.hits + cache.misses, jobs);
    assert_eq!((cache.hits, cache.misses), (6, 6));
    assert!(cache.bytes_resident > 0);
    assert_eq!(
        cache.bytes_inserted,
        cache.bytes_evicted + cache.bytes_resident
    );

    // Histogram invariants: every job lands in exactly one bucket of
    // the total-stage histogram, and quantiles are monotonic.
    let total = snap.stage(Stage::Total).expect("total histogram present");
    assert_eq!(total.count(), jobs, "one total-stage sample per job");
    assert_eq!(total.buckets.iter().sum::<u64>(), jobs);
    assert!(total.quantile_ns(0.99) >= total.quantile_ns(0.50));
    let execute = snap.stage(Stage::Execute).unwrap();
    assert_eq!(execute.count(), jobs, "every job times its execute stage");

    // Sampled mode absorbs simulator telemetry on every job.
    assert!(snap.counter(Counter::SimSettles) > 0);
    assert!(
        snap.counter(Counter::SimLoweredSettles) > 0,
        "default lowered mode settles on op streams"
    );
    assert!(snap.counter(Counter::SimOpsExecuted) > 0);

    // The full snapshot document passes its own validator.
    let doc = Json::parse(&snap.to_json()).expect("snapshot renders valid JSON");
    assert_eq!(validate_snapshot(&doc), Vec::<String>::new());
}

#[test]
fn counters_mode_records_no_timings_and_few_atomics() {
    // The default (Counters) service: counters move, histograms do
    // not — the job fast path never reads a clock.
    let service = Service::new(8);
    let case = sample_case(3, 5);
    let opts = JobOptions::default();

    let before: Vec<u64> = Counter::ALL
        .iter()
        .map(|&c| service.metrics().get(c))
        .collect();
    service.run_case(&case, &opts).unwrap();
    let after: Vec<u64> = Counter::ALL
        .iter()
        .map(|&c| service.metrics().get(c))
        .collect();

    // Counter-of-counters: the whole observability cost of one job in
    // counters mode is a handful of relaxed atomic increments.
    let increments: u64 = after.iter().zip(&before).map(|(a, b)| a - b).sum();
    assert!(
        (1..=6).contains(&increments),
        "one counters-mode job should cost a few atomic increments, measured {increments}"
    );

    let snap = service.metrics_snapshot();
    assert_eq!(snap.counter(Counter::JobsTotal), 1);
    for (stage, hist) in &snap.stages {
        assert_eq!(
            hist.count(),
            0,
            "counters mode must not time stage {}",
            stage.label()
        );
    }
    assert!(
        snap.counter(Counter::SimSettles) == 0,
        "counters mode does not force simulator telemetry"
    );

    // Disabled mode records nothing at all.
    let silent = Service::with_obs(8, ObsMode::Disabled);
    silent.run_case(&case, &opts).unwrap();
    let snap = silent.metrics_snapshot();
    assert!(Counter::ALL.iter().all(|&c| snap.counter(c) == 0));
}

#[test]
fn requested_span_rides_the_outcome_and_renders_chrome_trace() {
    let service = Service::new(8); // counters mode: span is per-job opt-in
    let case = sample_case(9, 6);
    let opts = JobOptions {
        span: true,
        ..JobOptions::default()
    };
    let out = service.run_case(&case, &opts).unwrap();
    let span = out.span.expect("span requested");
    for stage in [
        Stage::CacheLookup,
        Stage::Build,
        Stage::Execute,
        Stage::Publish,
        Stage::Total,
    ] {
        assert!(
            span.stage_ns(stage).is_some(),
            "span must record {}",
            stage.label()
        );
    }
    assert!(span.total_ns() >= span.stage_ns(Stage::Execute).unwrap());
    let trace = span.chrome_trace();
    assert!(trace.starts_with("{\"traceEvents\":["));
    assert!(trace.contains("\"ph\":\"X\""));
    assert!(trace.contains("\"name\":\"execute\""));
    assert!(trace.contains("\"displayTimeUnit\""));

    // Without the option the outcome stays span-free.
    let out = service.run_case(&case, &JobOptions::default()).unwrap();
    assert!(out.span.is_none());
}

#[test]
fn stats_verb_serves_a_valid_snapshot_over_tcp() {
    let service = Arc::new(Service::with_obs(8, ObsMode::Sampled));
    let handle = serve("127.0.0.1:0", Arc::clone(&service), 2).unwrap();
    let addr = handle.addr();

    let case = sample_case(21, 5);
    let job = hdp::conform::wire::job_to_json(&case);
    let lines = vec![job.clone(), job, "{\"verb\":\"stats\"}".to_owned()];
    let responses = submit(addr, &lines).unwrap();
    assert_eq!(responses.len(), 3);

    let warm = Json::parse(&responses[1]).unwrap();
    assert_eq!(warm.get("cache").and_then(Json::as_str), Some("hit"));

    let doc = Json::parse(&responses[2]).expect("stats verb answers JSON");
    assert_eq!(
        doc.get("schema").and_then(Json::as_str),
        Some(METRICS_SCHEMA)
    );
    assert_eq!(validate_snapshot(&doc), Vec::<String>::new());
    let snap = MetricsSnapshot::from_json(&doc).unwrap();
    assert_eq!(snap.counter(Counter::JobsTotal), 2);
    assert_eq!(snap.counter(Counter::StatsRequests), 1);
    assert!(snap.counter(Counter::ConnectionsTotal) >= 1);
    let cache = snap.cache.unwrap();
    assert_eq!((cache.hits, cache.misses), (1, 1));

    // The snapshot renders Prometheus-style text client-side.
    let text = snap.render_text();
    assert!(text.contains("hdp_service_jobs_total 2"));
    assert!(text.contains("hdp_service_cache_hits 1"));
    assert!(text.contains("hdp_service_stage_latency_ns_count{stage=\"total\"} 2"));

    handle.shutdown();
}

#[test]
fn unknown_verbs_become_wire_errors() {
    let service = Arc::new(Service::new(8));
    let handle = serve("127.0.0.1:0", Arc::clone(&service), 1).unwrap();
    let responses = submit(handle.addr(), &["{\"verb\":\"selfdestruct\"}".to_owned()]).unwrap();
    let doc = Json::parse(&responses[0]).unwrap();
    assert_eq!(
        doc.get("error")
            .and_then(|e| e.get("stage"))
            .and_then(Json::as_str),
        Some("wire")
    );
    assert_eq!(service.metrics().get(Counter::ErrorsWire), 1);
    handle.shutdown();
}

#[test]
fn fallback_causes_are_typed_in_telemetry_documents() {
    // A parallel-mode job with telemetry: its per-settle fallbacks are
    // attributed to a typed cause, not just a prose note.
    let service = Service::new(8);
    let case = sample_case(5, 6);
    let opts = JobOptions {
        mode: SchedMode::Parallel { threads: 2 },
        telemetry: true,
        ..JobOptions::default()
    };
    let out = service.run_case(&case, &opts).unwrap();
    let stats = out.stats.expect("telemetry requested");
    let settle_shaped: u64 = stats
        .fallback_cause_counts()
        .filter(|(c, _)| *c != FallbackCause::LoweredComponent)
        .map(|(_, n)| n)
        .sum();
    assert_eq!(
        settle_shaped, stats.fallback_settles,
        "settle-shaped causes must account for every fallback settle"
    );
}
