//! Property-based tests over the DESIGN.md invariants.
//!
//! Hardware components are driven with arbitrary operation
//! interleavings and compared against the behavioural golden models;
//! structural transformations (wrapper dissolution, width adaptation)
//! are checked for behaviour preservation.

mod common;

use common::{build_transform_pipeline, queue_op, QueueOp};
use hdp::hdl::LogicVector;
use hdp::pattern::golden;
use hdp::pattern::hw::{ReadBufferFifo, StackLifo, VectorBram};
use hdp::pattern::iface::{IfaceBundle, IterIface, RandomIterIface, StreamIface};
use hdp::pattern::pixel::{join_pixel, split_pixel, PixelFormat};
use hdp::sim::devices::{FifoCore, LifoCore, VideoOut};
use hdp::sim::vcd::VcdRecorder;
use hdp::sim::{SchedMode, SignalId, Simulator};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The FIFO device implements exact queue semantics under
    /// arbitrary interleavings (overflow/underflow attempts are
    /// filtered by the testbench, as the generated guards would).
    #[test]
    fn fifo_core_matches_golden_queue(ops in prop::collection::vec(queue_op(), 1..120)) {
        let depth = 8;
        let mut sim = Simulator::new();
        let push = sim.add_signal("push", 1).unwrap();
        let pop = sim.add_signal("pop", 1).unwrap();
        let wdata = sim.add_signal("wdata", 8).unwrap();
        let rdata = sim.add_signal("rdata", 8).unwrap();
        let empty = sim.add_signal("empty", 1).unwrap();
        let full = sim.add_signal("full", 1).unwrap();
        sim.add_component(FifoCore::new("dut", depth, 8, push, pop, wdata, rdata, empty, full));
        for s in [push, pop, wdata] { sim.poke(s, 0).unwrap(); }
        sim.reset().unwrap();
        let mut model = golden::Queue::new(depth);
        for op in ops {
            match op {
                QueueOp::Push(v) => {
                    if model.is_full() { continue; }
                    model.push(u64::from(v)).unwrap();
                    sim.poke(push, 1).unwrap();
                    sim.poke(wdata, u64::from(v)).unwrap();
                    sim.step().unwrap();
                    sim.poke(push, 0).unwrap();
                }
                QueueOp::Pop => {
                    if model.is_empty() { continue; }
                    sim.settle().unwrap();
                    let head = sim.peek(rdata).unwrap().to_u64();
                    prop_assert_eq!(head, model.front());
                    let _ = model.pop();
                    sim.poke(pop, 1).unwrap();
                    sim.step().unwrap();
                    sim.poke(pop, 0).unwrap();
                }
            }
            sim.settle().unwrap();
            prop_assert_eq!(
                sim.peek(empty).unwrap().to_u64(),
                Some(u64::from(model.is_empty()))
            );
            prop_assert_eq!(
                sim.peek(full).unwrap().to_u64(),
                Some(u64::from(model.is_full()))
            );
        }
    }

    /// The LIFO device implements exact stack semantics.
    #[test]
    fn lifo_core_matches_golden_stack(ops in prop::collection::vec(queue_op(), 1..120)) {
        let depth = 8;
        let mut sim = Simulator::new();
        let push = sim.add_signal("push", 1).unwrap();
        let pop = sim.add_signal("pop", 1).unwrap();
        let wdata = sim.add_signal("wdata", 8).unwrap();
        let rdata = sim.add_signal("rdata", 8).unwrap();
        let empty = sim.add_signal("empty", 1).unwrap();
        let full = sim.add_signal("full", 1).unwrap();
        sim.add_component(LifoCore::new("dut", depth, 8, push, pop, wdata, rdata, empty, full));
        for s in [push, pop, wdata] { sim.poke(s, 0).unwrap(); }
        sim.reset().unwrap();
        let mut model = golden::Stack::new(depth);
        for op in ops {
            match op {
                QueueOp::Push(v) => {
                    if model.is_full() { continue; }
                    model.push(u64::from(v)).unwrap();
                    sim.poke(push, 1).unwrap();
                    sim.poke(wdata, u64::from(v)).unwrap();
                    sim.step().unwrap();
                    sim.poke(push, 0).unwrap();
                }
                QueueOp::Pop => {
                    if model.is_empty() { continue; }
                    sim.settle().unwrap();
                    prop_assert_eq!(sim.peek(rdata).unwrap().to_u64(), model.top());
                    let _ = model.pop();
                    sim.poke(pop, 1).unwrap();
                    sim.step().unwrap();
                    sim.poke(pop, 0).unwrap();
                }
            }
        }
    }

    /// Pixel split/join round-trips for every legal bus ratio.
    #[test]
    fn split_join_round_trip(pixel in 0u64..0x1_000_000, bus in prop::sample::select(vec![1usize, 2, 3, 4, 6, 8, 12, 24])) {
        let factor = 24 / bus;
        let words = split_pixel(pixel, bus, factor);
        prop_assert_eq!(words.len(), factor);
        prop_assert!(words.iter().all(|w| *w < (1 << bus)));
        prop_assert_eq!(join_pixel(&words, bus), pixel);
    }

    /// The FIFO-backed read-buffer container agrees with the golden
    /// queue when driven through the iterator interface with random
    /// interleavings of stream pushes and iterator reads.
    #[test]
    fn read_buffer_matches_golden(ops in prop::collection::vec(queue_op(), 1..100)) {
        let depth = 8;
        let mut sim = Simulator::new();
        let up = StreamIface::alloc(&mut sim, "up", 8).unwrap();
        let it = IterIface::alloc(&mut sim, "it", 8).unwrap();
        sim.add_component(ReadBufferFifo::new("dut", depth, 8, up, it));
        for s in [up.valid, up.data, it.read, it.inc, it.write, it.wdata] {
            sim.poke(s, 0).unwrap();
        }
        sim.reset().unwrap();
        let mut model = golden::Queue::new(depth);
        for op in ops {
            match op {
                QueueOp::Push(v) => {
                    if model.is_full() { continue; }
                    model.push(u64::from(v)).unwrap();
                    sim.poke(up.valid, 1).unwrap();
                    sim.poke(up.data, u64::from(v)).unwrap();
                    sim.step().unwrap();
                    sim.poke(up.valid, 0).unwrap();
                }
                QueueOp::Pop => {
                    if model.is_empty() { continue; }
                    sim.poke(it.read, 1).unwrap();
                    sim.poke(it.inc, 1).unwrap();
                    sim.settle().unwrap();
                    prop_assert_eq!(sim.peek(it.done).unwrap().to_u64(), Some(1));
                    prop_assert_eq!(sim.peek(it.rdata).unwrap().to_u64(), model.front());
                    let _ = model.pop();
                    sim.step().unwrap();
                    sim.poke(it.read, 0).unwrap();
                    sim.poke(it.inc, 0).unwrap();
                }
            }
            sim.settle().unwrap();
            prop_assert_eq!(
                sim.peek(it.can_read).unwrap().to_u64(),
                Some(u64::from(!model.is_empty()))
            );
        }
    }

    /// The LIFO-backed stack container agrees with the golden stack
    /// through the push/pop iterator roles.
    #[test]
    fn stack_hw_matches_golden(ops in prop::collection::vec(queue_op(), 1..80)) {
        let depth = 8;
        let mut sim = Simulator::new();
        let it = IterIface::alloc(&mut sim, "it", 8).unwrap();
        let dec = sim.add_signal("it_dec", 1).unwrap();
        sim.add_component(StackLifo::new("dut", depth, 8, it, dec));
        for s in [it.read, it.inc, it.write, it.wdata, dec] {
            sim.poke(s, 0).unwrap();
        }
        sim.reset().unwrap();
        let mut model = golden::Stack::new(depth);
        for op in ops {
            match op {
                QueueOp::Push(v) => {
                    if model.is_full() { continue; }
                    model.push(u64::from(v)).unwrap();
                    sim.poke(it.write, 1).unwrap();
                    sim.poke(it.inc, 1).unwrap();
                    sim.poke(it.wdata, u64::from(v)).unwrap();
                    sim.step().unwrap();
                    sim.poke(it.write, 0).unwrap();
                    sim.poke(it.inc, 0).unwrap();
                }
                QueueOp::Pop => {
                    if model.is_empty() { continue; }
                    sim.poke(it.read, 1).unwrap();
                    sim.poke(dec, 1).unwrap();
                    sim.settle().unwrap();
                    prop_assert_eq!(sim.peek(it.rdata).unwrap().to_u64(), model.top());
                    let _ = model.pop();
                    sim.step().unwrap();
                    sim.poke(it.read, 0).unwrap();
                    sim.poke(dec, 0).unwrap();
                }
            }
        }
    }

    /// The BRAM-backed vector agrees with the golden vector cursor
    /// semantics under random index/read/write/inc/dec sequences.
    #[test]
    fn vector_hw_matches_golden(ops in prop::collection::vec(0u8..5, 1..60), values in prop::collection::vec(any::<u8>(), 60), positions in prop::collection::vec(0usize..8, 60)) {
        let capacity = 8;
        let mut sim = Simulator::new();
        let it = RandomIterIface::alloc(&mut sim, "it", 8, 8).unwrap();
        sim.add_component(VectorBram::new("dut", capacity, 8, it));
        for s in [it.seq.read, it.seq.inc, it.seq.write, it.seq.wdata, it.dec, it.index, it.pos] {
            sim.poke(s, 0).unwrap();
        }
        sim.reset().unwrap();
        let mut model = golden::Vector::new(capacity);
        let mut written = vec![false; capacity];
        let run_op = |sim: &mut Simulator, strobes: &[SignalId]| {
            for &s in strobes { sim.poke(s, 1).unwrap(); }
            for _ in 0..10 {
                sim.step().unwrap();
                if sim.peek(it.seq.done).unwrap().to_u64() == Some(1) {
                    let v = sim.peek(it.seq.rdata).unwrap().to_u64();
                    for &s in strobes { sim.poke(s, 0).unwrap(); }
                    sim.step().unwrap();
                    return v;
                }
            }
            panic!("op did not complete");
        };
        for (i, op) in ops.into_iter().enumerate() {
            let v = u64::from(values[i]);
            let p = positions[i];
            match op {
                0 => {
                    // index
                    sim.poke(it.pos, p as u64).unwrap();
                    run_op(&mut sim, &[it.index]);
                    model.index(p).unwrap();
                }
                1 => {
                    // write
                    sim.poke(it.seq.wdata, v).unwrap();
                    run_op(&mut sim, &[it.seq.write]);
                    written[model.cursor()] = true;
                    model.write(v);
                }
                2 => {
                    // read (only at initialised positions)
                    if !written[model.cursor()] { continue; }
                    let got = run_op(&mut sim, &[it.seq.read]);
                    prop_assert_eq!(got, model.read());
                }
                3 => {
                    // inc: bare movement, no done pulse — just step.
                    sim.poke(it.seq.inc, 1).unwrap();
                    sim.step().unwrap();
                    sim.poke(it.seq.inc, 0).unwrap();
                    model.inc();
                }
                _ => {
                    // dec
                    sim.poke(it.dec, 1).unwrap();
                    sim.step().unwrap();
                    sim.poke(it.dec, 0).unwrap();
                    model.dec();
                }
            }
        }
    }

    /// Wrapper dissolution never changes simulated behaviour: a
    /// random arithmetic pipeline wrapped in buffers computes the
    /// same outputs before and after optimization.
    #[test]
    fn dissolution_preserves_behaviour(inputs in prop::collection::vec(0u64..256, 1..10)) {
        use hdp::hdl::prim::Prim;
        use hdp::hdl::{Entity, Netlist, PortDir};
        use hdp::sim::NetlistComponent;
        let entity = Entity::builder("p")
            .port("a", PortDir::In, 8).unwrap()
            .port("y", PortDir::Out, 8).unwrap()
            .build().unwrap();
        let mut nl = Netlist::new(entity);
        let a = nl.add_net("a", 8).unwrap();
        let b1 = nl.add_net("b1", 8).unwrap();
        let m = nl.add_net("m", 8).unwrap();
        let b2 = nl.add_net("b2", 8).unwrap();
        let n2 = nl.add_net("n2", 8).unwrap();
        let y = nl.add_net("y", 8).unwrap();
        nl.add_cell("w1", Prim::Buf { width: 8 }, vec![a], vec![b1]).unwrap();
        nl.add_cell("u1", Prim::Inc { width: 8 }, vec![b1], vec![m]).unwrap();
        nl.add_cell("w2", Prim::Buf { width: 8 }, vec![m], vec![b2]).unwrap();
        nl.add_cell("u2", Prim::Not { width: 8 }, vec![b2], vec![n2]).unwrap();
        nl.add_cell("w3", Prim::Buf { width: 8 }, vec![n2], vec![y]).unwrap();
        nl.bind_port("a", a).unwrap();
        nl.bind_port("y", y).unwrap();
        let optimized = hdp::synth::dissolve_wrappers(&nl).unwrap();
        for netlist in [nl, optimized] {
            let mut sim = Simulator::new();
            let a_s = sim.add_signal("a", 8).unwrap();
            let y_s = sim.add_signal("y", 8).unwrap();
            let dut = NetlistComponent::new("dut", netlist, sim.bus(), &[("a", a_s), ("y", y_s)]).unwrap();
            sim.add_component(dut);
            for &v in &inputs {
                sim.poke(a_s, v).unwrap();
                sim.settle().unwrap();
                prop_assert_eq!(
                    sim.peek(y_s).unwrap().to_u64(),
                    Some(!(v.wrapping_add(1)) & 0xFF)
                );
            }
        }
    }

    /// IEEE 1164 bus resolution is commutative and associative over
    /// whole vectors, with `Z` as the identity — the algebra the
    /// tri-state buses rely on.
    #[test]
    fn bus_resolution_algebra(a in "[01XZ]{8}", b in "[01XZ]{8}", c in "[01XZ]{8}") {
        use hdp::hdl::LogicVector;
        let va = LogicVector::parse(&a).unwrap();
        let vb = LogicVector::parse(&b).unwrap();
        let vc = LogicVector::parse(&c).unwrap();
        let z = LogicVector::high_z(8).unwrap();
        // Identity.
        prop_assert_eq!(va.resolve(&z).unwrap(), va);
        prop_assert_eq!(z.resolve(&va).unwrap(), va);
        // Commutativity.
        prop_assert_eq!(va.resolve(&vb).unwrap(), vb.resolve(&va).unwrap());
        // Associativity.
        let left = va.resolve(&vb).unwrap().resolve(&vc).unwrap();
        let right = va.resolve(&vb.resolve(&vc).unwrap()).unwrap();
        prop_assert_eq!(left, right);
        // Idempotence.
        prop_assert_eq!(va.resolve(&va).unwrap(), va);
    }

    /// Slicing then concatenating reconstructs the vector for every
    /// split point.
    #[test]
    fn slice_concat_round_trip(value in any::<u64>(), split in 1usize..16, text in "[01XZ]{16}") {
        use hdp::hdl::LogicVector;
        let v = LogicVector::from_u64(value & 0xFFFF, 16).unwrap();
        let lo = v.slice(0, split).unwrap();
        let hi = v.slice(split, 16 - split).unwrap();
        prop_assert_eq!(hi.concat(&lo).unwrap(), v);
        // Also with undefined bits.
        let vx = LogicVector::parse(&text).unwrap();
        let lo = vx.slice(0, split).unwrap();
        let hi = vx.slice(split, 16 - split).unwrap();
        prop_assert_eq!(hi.concat(&lo).unwrap(), vx);
    }

    /// The event-driven scheduler is bit-identical to the retained
    /// full-sweep reference on a complete randomized pipeline: same
    /// per-signal waveforms (VCD), same delivered frames.
    #[test]
    fn event_scheduler_matches_sweep_on_pipeline(
        pixels in prop::collection::vec(0u64..256, 1..32),
        gap in 0u32..3,
        op in prop::sample::select(vec![
            golden::PixelOp::Identity,
            golden::PixelOp::Invert,
            golden::PixelOp::Threshold(128),
        ]),
    ) {
        let run = |mode: SchedMode| -> (String, Vec<Vec<u64>>) {
            let n = pixels.len();
            let mut sim = Simulator::new();
            sim.set_mode(mode);
            let p = build_transform_pipeline(&mut sim, "", pixels.clone(), gap, op);
            let mut watched = p.vin.signal_ids();
            watched.extend(p.it_in.signal_ids());
            watched.extend(p.it_out.signal_ids());
            watched.extend(p.vout.signal_ids());
            let rec = sim.add_component(VcdRecorder::new("vcd", watched));
            sim.reset().unwrap();
            sim.run((gap as u64 + 4) * n as u64 + 30).unwrap();
            let vcd = sim.component::<VcdRecorder>(rec).unwrap().render(sim.bus());
            let frames = sim.component::<VideoOut>(p.sink).unwrap().frames().to_vec();
            (vcd, frames)
        };
        let (event_vcd, event_frames) = run(SchedMode::EventDriven);
        let (sweep_vcd, sweep_frames) = run(SchedMode::FullSweep);
        prop_assert_eq!(&event_frames, &sweep_frames);
        prop_assert_eq!(&event_vcd, &sweep_vcd);
        // The parallel scheduler must reproduce the same waveforms and
        // frames bit for bit at every thread count.
        for threads in [1usize, 2, 8] {
            let (par_vcd, par_frames) = run(SchedMode::Parallel { threads });
            prop_assert_eq!(&par_frames, &event_frames, "threads={}", threads);
            prop_assert_eq!(&par_vcd, &event_vcd, "threads={}", threads);
        }
    }

    /// The two scheduler modes also agree cycle by cycle on a random
    /// container driven through its iterator: every observable signal
    /// settles to the same value after every step.
    #[test]
    fn event_scheduler_matches_sweep_on_container_ops(
        ops in prop::collection::vec(queue_op(), 1..60),
        use_stack in any::<bool>(),
    ) {
        let depth = 4;
        let run = |mode: SchedMode| -> Vec<Vec<LogicVector>> {
            let mut sim = Simulator::new();
            sim.set_mode(mode);
            let it = IterIface::alloc(&mut sim, "it", 8).unwrap();
            let dec = sim.add_signal("it_dec", 1).unwrap();
            let up = StreamIface::alloc(&mut sim, "up", 8).unwrap();
            if use_stack {
                sim.add_component(StackLifo::new("dut", depth, 8, it, dec));
            } else {
                sim.add_component(ReadBufferFifo::new("dut", depth, 8, up, it));
            }
            for s in [it.read, it.inc, it.write, it.wdata, dec, up.valid, up.data] {
                sim.poke(s, 0).unwrap();
            }
            sim.reset().unwrap();
            let mut watched = it.signal_ids();
            watched.push(dec);
            watched.extend(up.signal_ids());
            let mut trace = Vec::new();
            let mut filled = 0usize;
            for &op in &ops {
                match op {
                    QueueOp::Push(v) => {
                        if filled == depth { continue; }
                        filled += 1;
                        if use_stack {
                            sim.poke(it.write, 1).unwrap();
                            sim.poke(it.inc, 1).unwrap();
                            sim.poke(it.wdata, u64::from(v)).unwrap();
                            sim.step().unwrap();
                            sim.poke(it.write, 0).unwrap();
                            sim.poke(it.inc, 0).unwrap();
                        } else {
                            sim.poke(up.valid, 1).unwrap();
                            sim.poke(up.data, u64::from(v)).unwrap();
                            sim.step().unwrap();
                            sim.poke(up.valid, 0).unwrap();
                        }
                    }
                    QueueOp::Pop => {
                        if filled == 0 { continue; }
                        filled -= 1;
                        sim.poke(it.read, 1).unwrap();
                        if use_stack {
                            sim.poke(dec, 1).unwrap();
                        } else {
                            sim.poke(it.inc, 1).unwrap();
                        }
                        sim.step().unwrap();
                        sim.poke(it.read, 0).unwrap();
                        sim.poke(dec, 0).unwrap();
                        sim.poke(it.inc, 0).unwrap();
                    }
                }
                sim.settle().unwrap();
                trace.push(
                    watched.iter().map(|&s| sim.peek(s).unwrap()).collect::<Vec<_>>(),
                );
            }
            trace
        };
        let reference = run(SchedMode::EventDriven);
        prop_assert_eq!(&run(SchedMode::FullSweep), &reference);
        for threads in [1usize, 2, 8] {
            prop_assert_eq!(
                &run(SchedMode::Parallel { threads }),
                &reference,
                "threads={}",
                threads
            );
        }
    }

    /// Several independent randomized pipelines in ONE simulator: the
    /// design family with genuinely disjoint connectivity islands,
    /// where parallel waves actually fan out across workers. Frames
    /// and waveforms must match the sequential schedulers bit for bit
    /// at every thread count.
    #[test]
    fn parallel_scheduler_matches_on_multi_pipeline(
        pixels in prop::collection::vec(0u64..256, 1..16),
        gap in 0u32..2,
        copies in 2usize..4,
        ops in prop::collection::vec(prop::sample::select(vec![
            golden::PixelOp::Identity,
            golden::PixelOp::Invert,
            golden::PixelOp::Threshold(128),
        ]), 3),
    ) {
        let run = |mode: SchedMode| -> (String, Vec<Vec<Vec<u64>>>) {
            let n = pixels.len();
            let mut sim = Simulator::new();
            sim.set_mode(mode);
            let mut sinks = Vec::new();
            let mut watched = Vec::new();
            for k in 0..copies {
                let p = build_transform_pipeline(
                    &mut sim, &k.to_string(), pixels.clone(), gap, ops[k % ops.len()],
                );
                sinks.push(p.sink);
                watched.extend(p.vin.signal_ids());
                watched.extend(p.it_out.signal_ids());
                watched.extend(p.vout.signal_ids());
            }
            let rec = sim.add_component(VcdRecorder::new("vcd", watched));
            sim.reset().unwrap();
            sim.run((gap as u64 + 4) * n as u64 + 30).unwrap();
            let vcd = sim.component::<VcdRecorder>(rec).unwrap().render(sim.bus());
            let frames = sinks
                .iter()
                .map(|&s| sim.component::<VideoOut>(s).unwrap().frames().to_vec())
                .collect();
            (vcd, frames)
        };
        let (event_vcd, event_frames) = run(SchedMode::EventDriven);
        let (sweep_vcd, sweep_frames) = run(SchedMode::FullSweep);
        prop_assert_eq!(&event_frames, &sweep_frames);
        prop_assert_eq!(&event_vcd, &sweep_vcd);
        for threads in [1usize, 2, 8] {
            let (par_vcd, par_frames) = run(SchedMode::Parallel { threads });
            prop_assert_eq!(&par_frames, &event_frames, "threads={}", threads);
            prop_assert_eq!(&par_vcd, &event_vcd, "threads={}", threads);
        }
    }

    /// Telemetry invariants on the multi-pipeline family: per-component
    /// eval counts are identical between the event-driven scheduler and
    /// the parallel scheduler at 1/2/8 threads (parallel waves *are*
    /// the event wake sets), settled per-signal toggle counts are
    /// identical across all modes including the full sweep (every mode
    /// produces bit-identical waveforms), the sweep's eval counts upper-
    /// bound the event scheduler's, and `TelemetryLevel::Off` leaves
    /// stats completely empty.
    #[test]
    fn telemetry_invariants_on_multi_pipeline(
        pixels in prop::collection::vec(0u64..256, 1..8),
        gap in 0u32..2,
        copies in 2usize..4,
    ) {
        use hdp::sim::{SimStats, TelemetryLevel};
        let run = |mode: SchedMode, level: TelemetryLevel| -> SimStats {
            let n = pixels.len();
            let mut sim = Simulator::new();
            sim.set_mode(mode);
            sim.set_telemetry(level);
            for k in 0..copies {
                build_transform_pipeline(
                    &mut sim, &k.to_string(), pixels.clone(), gap, golden::PixelOp::Invert,
                );
            }
            sim.reset().unwrap();
            sim.run((gap as u64 + 4) * n as u64 + 10).unwrap();
            sim.stats()
        };
        let reference = run(SchedMode::EventDriven, TelemetryLevel::Counters);
        prop_assert!(reference.total_evals() > 0);
        for threads in [1usize, 2, 8] {
            let stats = run(SchedMode::Parallel { threads }, TelemetryLevel::Counters);
            prop_assert_eq!(
                stats.total_evals(), reference.total_evals(), "threads={}", threads
            );
            for (c, rc) in stats.components.iter().zip(&reference.components) {
                prop_assert_eq!(&c.name, &rc.name);
                prop_assert_eq!(c.evals, rc.evals, "component {} threads={}", c.name, threads);
            }
            for (s, rs) in stats.signals.iter().zip(&reference.signals) {
                prop_assert_eq!(s.toggles, rs.toggles, "signal {} threads={}", s.name, threads);
                prop_assert_eq!(s.drives, rs.drives, "signal {} threads={}", s.name, threads);
            }
        }
        let sweep = run(SchedMode::FullSweep, TelemetryLevel::Counters);
        prop_assert_eq!(sweep.total_toggles(), reference.total_toggles());
        for (s, rs) in sweep.signals.iter().zip(&reference.signals) {
            prop_assert_eq!(s.toggles, rs.toggles, "signal {} (sweep)", s.name);
        }
        prop_assert!(sweep.total_evals() >= reference.total_evals());
        let off = run(SchedMode::EventDriven, TelemetryLevel::Off);
        prop_assert!(off.is_empty());
        prop_assert_eq!(off, SimStats::default());
    }

    /// Pixel operations stay in range for every format.
    #[test]
    fn pixel_ops_stay_in_range(p in 0u64..0x1_000_000, t in 0u64..256, mul in 1u64..8, shift in 0u32..4) {
        for format in [PixelFormat::Gray8, PixelFormat::Rgb24] {
            let p = p & format.max_value();
            for op in [
                golden::PixelOp::Identity,
                golden::PixelOp::Invert,
                golden::PixelOp::Threshold(t),
                golden::PixelOp::Gain { mul, shift },
            ] {
                let out = op.apply(p, format);
                prop_assert!(out <= format.max_value(), "{op:?} {format} {p:#x} -> {out:#x}");
            }
        }
    }
}
