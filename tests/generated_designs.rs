//! End-to-end simulation of the generated Table 3 designs.
//!
//! Every design netlist produced by `hdp-metagen` — pattern-based and
//! custom — is interpreted cycle-accurately against the board device
//! models and checked for bit-exact agreement with the behavioural
//! golden models. This is the functional half of the Table 3
//! experiment: the resource half (`hdp-synth`) is only meaningful if
//! both styles actually work.

use hdp::metagen::design::{generate, DesignKind, DesignParams, Style};
use hdp::pattern::golden::{blur3x3, BlurBorder};
use hdp::pattern::pixel::{Frame, PixelFormat};
use hdp::sim::devices::{Sram, VideoIn, VideoOut};
use hdp::sim::{NetlistComponent, SignalId, Simulator};

/// Simulates a generated stream design on one frame and returns the
/// collected output pixels.
fn run_design(
    kind: DesignKind,
    style: Style,
    params: DesignParams,
    pixels: Vec<u64>,
    gap: u32,
    out_len: usize,
) -> Vec<u64> {
    let design = generate(kind, style, params).expect("design generates");
    let mut sim = Simulator::new();
    let vid_valid = sim.add_signal("vid_valid", 1).unwrap();
    let vid_data = sim.add_signal("vid_data", params.data_width).unwrap();
    let vga_valid = sim.add_signal("vga_valid", 1).unwrap();
    let vga_data = sim.add_signal("vga_data", params.data_width).unwrap();
    let mut map: Vec<(String, SignalId)> = vec![
        ("vid_valid".into(), vid_valid),
        ("vid_data".into(), vid_data),
        ("vga_valid".into(), vga_valid),
        ("vga_data".into(), vga_data),
    ];
    if kind == DesignKind::Saa2vga2 {
        for prefix in ["im", "om"] {
            let req = sim.add_signal(format!("{prefix}_req"), 1).unwrap();
            let we = sim.add_signal(format!("{prefix}_we"), 1).unwrap();
            let addr = sim
                .add_signal(format!("{prefix}_addr"), params.addr_width)
                .unwrap();
            let wdata = sim
                .add_signal(format!("{prefix}_wdata"), params.data_width)
                .unwrap();
            let ack = sim.add_signal(format!("{prefix}_ack"), 1).unwrap();
            let rdata = sim
                .add_signal(format!("{prefix}_rdata"), params.data_width)
                .unwrap();
            sim.add_component(Sram::new(
                format!("sram_{prefix}"),
                params.addr_width,
                params.data_width,
                2,
                req,
                we,
                addr,
                wdata,
                ack,
                rdata,
            ));
            for (p, s) in [
                (format!("{prefix}_req"), req),
                (format!("{prefix}_we"), we),
                (format!("{prefix}_addr"), addr),
                (format!("{prefix}_wdata"), wdata),
                (format!("{prefix}_ack"), ack),
                (format!("{prefix}_rdata"), rdata),
            ] {
                map.push((p, s));
            }
        }
    }
    let map_refs: Vec<(&str, SignalId)> = map.iter().map(|(n, s)| (n.as_str(), *s)).collect();
    let n_pixels = pixels.len() as u64;
    let dut = NetlistComponent::new("dut", design.netlist, sim.bus(), &map_refs)
        .expect("design wires up");
    sim.add_component(dut);
    sim.add_component(VideoIn::new(
        "video_decoder",
        pixels,
        params.data_width,
        gap,
        false,
        vid_valid,
        vid_data,
    ));
    let sink = sim.add_component(VideoOut::new(
        "vga_coder",
        out_len,
        None,
        vga_valid,
        vga_data,
    ));
    sim.reset().unwrap();
    let budget = n_pixels * u64::from(gap + 1) * 4 + 2000;
    let mut remaining = budget;
    while remaining > 0 {
        let chunk = remaining.min(256);
        sim.run(chunk).expect("simulation error");
        remaining -= chunk;
        if !sim.component::<VideoOut>(sink).unwrap().frames().is_empty() {
            break;
        }
    }
    sim.component::<VideoOut>(sink)
        .unwrap()
        .frames()
        .first()
        .cloned()
        .unwrap_or_else(|| {
            panic!(
                "no complete frame after {budget} cycles (partial: {} px)",
                sim.component::<VideoOut>(sink).unwrap().partial().len()
            )
        })
}

#[test]
fn saa2vga1_pattern_copies_the_stream() {
    let frame = Frame::noise(16, 8, PixelFormat::Gray8, 1);
    let out = run_design(
        DesignKind::Saa2vga1,
        Style::Pattern,
        DesignParams::small(16),
        frame.pixels().to_vec(),
        0,
        frame.pixels().len(),
    );
    assert_eq!(out, frame.pixels());
}

#[test]
fn saa2vga1_custom_copies_the_stream() {
    let frame = Frame::noise(16, 8, PixelFormat::Gray8, 2);
    let out = run_design(
        DesignKind::Saa2vga1,
        Style::Custom,
        DesignParams::small(16),
        frame.pixels().to_vec(),
        0,
        frame.pixels().len(),
    );
    assert_eq!(out, frame.pixels());
}

#[test]
fn saa2vga1_pattern_and_custom_agree() {
    let frame = Frame::noise(8, 8, PixelFormat::Gray8, 3);
    let p = run_design(
        DesignKind::Saa2vga1,
        Style::Pattern,
        DesignParams::small(8),
        frame.pixels().to_vec(),
        1,
        frame.pixels().len(),
    );
    let c = run_design(
        DesignKind::Saa2vga1,
        Style::Custom,
        DesignParams::small(8),
        frame.pixels().to_vec(),
        1,
        frame.pixels().len(),
    );
    assert_eq!(p, c);
}

#[test]
fn saa2vga2_pattern_copies_the_stream() {
    let frame = Frame::noise(8, 4, PixelFormat::Gray8, 4);
    let out = run_design(
        DesignKind::Saa2vga2,
        Style::Pattern,
        DesignParams::small(8),
        frame.pixels().to_vec(),
        39,
        frame.pixels().len(),
    );
    assert_eq!(out, frame.pixels());
}

#[test]
fn saa2vga2_custom_copies_the_stream() {
    let frame = Frame::noise(8, 4, PixelFormat::Gray8, 5);
    let out = run_design(
        DesignKind::Saa2vga2,
        Style::Custom,
        DesignParams::small(8),
        frame.pixels().to_vec(),
        39,
        frame.pixels().len(),
    );
    assert_eq!(out, frame.pixels());
}

#[test]
fn blur_pattern_matches_golden_model() {
    let frame = Frame::noise(8, 6, PixelFormat::Gray8, 6);
    let golden = blur3x3(&frame, BlurBorder::Crop).unwrap();
    let out = run_design(
        DesignKind::Blur,
        Style::Pattern,
        DesignParams::small(8),
        frame.pixels().to_vec(),
        1,
        golden.pixels().len(),
    );
    assert_eq!(out, golden.pixels());
}

#[test]
fn blur_custom_matches_golden_model() {
    let frame = Frame::noise(8, 6, PixelFormat::Gray8, 7);
    let golden = blur3x3(&frame, BlurBorder::Crop).unwrap();
    let out = run_design(
        DesignKind::Blur,
        Style::Custom,
        DesignParams::small(8),
        frame.pixels().to_vec(),
        1,
        golden.pixels().len(),
    );
    assert_eq!(out, golden.pixels());
}

#[test]
fn blur_gradient_regression() {
    let frame = Frame::gradient(10, 5, PixelFormat::Gray8);
    let golden = blur3x3(&frame, BlurBorder::Crop).unwrap();
    let out = run_design(
        DesignKind::Blur,
        Style::Pattern,
        DesignParams::small(10),
        frame.pixels().to_vec(),
        1,
        golden.pixels().len(),
    );
    assert_eq!(out, golden.pixels());
}
