//! End-to-end simulation of the generated Table 3 designs.
//!
//! Every design netlist produced by `hdp-metagen` — pattern-based and
//! custom — is interpreted cycle-accurately against the board device
//! models and checked for bit-exact agreement with the behavioural
//! golden models. This is the functional half of the Table 3
//! experiment: the resource half (`hdp-synth`) is only meaningful if
//! both styles actually work.

mod common;

use common::run_design;
use hdp::metagen::design::{DesignKind, DesignParams, Style};
use hdp::pattern::golden::{blur3x3, BlurBorder};
use hdp::pattern::pixel::{Frame, PixelFormat};

#[test]
fn saa2vga1_pattern_copies_the_stream() {
    let frame = Frame::noise(16, 8, PixelFormat::Gray8, 1);
    let out = run_design(
        DesignKind::Saa2vga1,
        Style::Pattern,
        DesignParams::small(16),
        frame.pixels().to_vec(),
        0,
        frame.pixels().len(),
    );
    assert_eq!(out, frame.pixels());
}

#[test]
fn saa2vga1_custom_copies_the_stream() {
    let frame = Frame::noise(16, 8, PixelFormat::Gray8, 2);
    let out = run_design(
        DesignKind::Saa2vga1,
        Style::Custom,
        DesignParams::small(16),
        frame.pixels().to_vec(),
        0,
        frame.pixels().len(),
    );
    assert_eq!(out, frame.pixels());
}

#[test]
fn saa2vga1_pattern_and_custom_agree() {
    let frame = Frame::noise(8, 8, PixelFormat::Gray8, 3);
    let p = run_design(
        DesignKind::Saa2vga1,
        Style::Pattern,
        DesignParams::small(8),
        frame.pixels().to_vec(),
        1,
        frame.pixels().len(),
    );
    let c = run_design(
        DesignKind::Saa2vga1,
        Style::Custom,
        DesignParams::small(8),
        frame.pixels().to_vec(),
        1,
        frame.pixels().len(),
    );
    assert_eq!(p, c);
}

#[test]
fn saa2vga2_pattern_copies_the_stream() {
    let frame = Frame::noise(8, 4, PixelFormat::Gray8, 4);
    let out = run_design(
        DesignKind::Saa2vga2,
        Style::Pattern,
        DesignParams::small(8),
        frame.pixels().to_vec(),
        39,
        frame.pixels().len(),
    );
    assert_eq!(out, frame.pixels());
}

#[test]
fn saa2vga2_custom_copies_the_stream() {
    let frame = Frame::noise(8, 4, PixelFormat::Gray8, 5);
    let out = run_design(
        DesignKind::Saa2vga2,
        Style::Custom,
        DesignParams::small(8),
        frame.pixels().to_vec(),
        39,
        frame.pixels().len(),
    );
    assert_eq!(out, frame.pixels());
}

#[test]
fn blur_pattern_matches_golden_model() {
    let frame = Frame::noise(8, 6, PixelFormat::Gray8, 6);
    let golden = blur3x3(&frame, BlurBorder::Crop).unwrap();
    let out = run_design(
        DesignKind::Blur,
        Style::Pattern,
        DesignParams::small(8),
        frame.pixels().to_vec(),
        1,
        golden.pixels().len(),
    );
    assert_eq!(out, golden.pixels());
}

#[test]
fn blur_custom_matches_golden_model() {
    let frame = Frame::noise(8, 6, PixelFormat::Gray8, 7);
    let golden = blur3x3(&frame, BlurBorder::Crop).unwrap();
    let out = run_design(
        DesignKind::Blur,
        Style::Custom,
        DesignParams::small(8),
        frame.pixels().to_vec(),
        1,
        golden.pixels().len(),
    );
    assert_eq!(out, golden.pixels());
}

#[test]
fn blur_gradient_regression() {
    let frame = Frame::gradient(10, 5, PixelFormat::Gray8);
    let golden = blur3x3(&frame, BlurBorder::Crop).unwrap();
    let out = run_design(
        DesignKind::Blur,
        Style::Pattern,
        DesignParams::small(10),
        frame.pixels().to_vec(),
        1,
        golden.pixels().len(),
    );
    assert_eq!(out, golden.pixels());
}
