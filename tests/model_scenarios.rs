//! The §3.3 "embracing change" scenarios, exercised through the
//! system model: retargeting containers, changing pixel formats, and
//! sharing one physical memory between containers through generated
//! arbitration.

mod common;

use common::collect_first_frame;
use hdp::pattern::algo::TransformSequenced;
use hdp::pattern::golden::{self, PixelOp};
use hdp::pattern::hw::{ArbiterPolicy, ReadBufferSram, SramArbiter, WriteBufferSram};
use hdp::pattern::iface::{IterIface, SramPort, StreamIface};
use hdp::pattern::model::{Algorithm, EngineHandle, VideoPipelineModel};
use hdp::pattern::pixel::{Frame, PixelFormat};
use hdp::pattern::spec::PhysicalTarget;
use hdp::sim::devices::{VideoIn, VideoOut};
use hdp::sim::Simulator;

/// §2's opening scenario: the same model runs over FIFOs, then over
/// RAMs, with zero model edits other than the target binding.
#[test]
fn retargeting_does_not_change_results() {
    let frame = Frame::noise(8, 6, PixelFormat::Gray8, 77);
    let base = VideoPipelineModel::new(
        "saa2vga",
        PixelFormat::Gray8,
        8,
        6,
        Algorithm::Transform(PixelOp::Identity),
    )
    .unwrap();
    let over_fifo = base.clone().process_frame(&frame).unwrap();
    let over_sram = base
        .retarget_input(PhysicalTarget::ExternalSram { latency: 3 })
        .retarget_output(PhysicalTarget::ExternalSram { latency: 3 })
        .with_source_gap(23)
        .process_frame(&frame)
        .unwrap();
    assert_eq!(over_fifo, frame);
    assert_eq!(over_sram, frame);
}

/// Every pixel-wise transform matches its golden model over both
/// target families.
#[test]
fn transforms_match_golden_over_all_targets() {
    let frame = Frame::noise(6, 5, PixelFormat::Gray8, 13);
    for op in [
        PixelOp::Identity,
        PixelOp::Invert,
        PixelOp::Threshold(100),
        PixelOp::Gain { mul: 3, shift: 2 },
    ] {
        let golden = golden::pixel_map(&frame, op);
        let fifo_model =
            VideoPipelineModel::new("m", PixelFormat::Gray8, 6, 5, Algorithm::Transform(op))
                .unwrap();
        assert_eq!(
            fifo_model.process_frame(&frame).unwrap(),
            golden,
            "{op:?} over fifo"
        );
        let sram_model = fifo_model
            .retarget_input(PhysicalTarget::ExternalSram { latency: 2 })
            .retarget_output(PhysicalTarget::ExternalSram { latency: 2 })
            .with_source_gap(19);
        assert_eq!(
            sram_model.process_frame(&frame).unwrap(),
            golden,
            "{op:?} over sram"
        );
    }
}

/// The §3.3 pixel-format scenario, alternative 1: 24-bit pixels on a
/// 24-bit bus — "we should only regenerate the implementations of the
/// elements using the 24-bit data pixel as the base type".
#[test]
fn rgb_on_wide_bus() {
    let frame = Frame::noise(5, 4, PixelFormat::Rgb24, 21);
    let model = VideoPipelineModel::new(
        "rgb",
        PixelFormat::Rgb24,
        5,
        4,
        Algorithm::Transform(PixelOp::Invert),
    )
    .unwrap();
    assert!(!model.needs_adaptation());
    assert_eq!(
        model.process_frame(&frame).unwrap(),
        golden::pixel_map(&frame, PixelOp::Invert)
    );
}

/// The §3.3 pixel-format scenario, alternative 2: 24-bit pixels over
/// an 8-bit bus — "we should also modify the iterator code to perform
/// three consecutive container reads/writes". The model only changes
/// the bus-width parameter; the adapters appear during elaboration.
#[test]
fn rgb_over_narrow_bus_with_adapters() {
    let frame = Frame::noise(4, 4, PixelFormat::Rgb24, 22);
    let model = VideoPipelineModel::new(
        "rgb_narrow",
        PixelFormat::Rgb24,
        4,
        4,
        Algorithm::Transform(PixelOp::Identity),
    )
    .unwrap()
    .with_bus_width(8)
    .with_source_gap(8);
    assert!(model.needs_adaptation());
    let elaborated = model.elaborate(&frame).unwrap();
    // Adaptation forces the sequenced engine.
    assert!(matches!(elaborated.engine(), EngineHandle::Sequenced(_)));
    assert_eq!(model.process_frame(&frame).unwrap(), frame);
}

/// Two containers sharing one external SRAM through the arbitration
/// logic the metaprogramming layer inserts for shared resources
/// (§3.4). A copy pipeline runs with both its buffers in the *same*
/// memory, partitioned by base address.
#[test]
fn shared_sram_through_arbiter() {
    for policy in [ArbiterPolicy::FixedPriority, ArbiterPolicy::RoundRobin] {
        let pixels: Vec<u64> = Frame::noise(6, 4, PixelFormat::Gray8, 31).pixels().to_vec();
        let n = pixels.len();
        let mut sim = Simulator::new();
        let vin = StreamIface::alloc(&mut sim, "vin", 8).unwrap();
        let it_in = IterIface::alloc(&mut sim, "it_in", 8).unwrap();
        let it_out = IterIface::alloc(&mut sim, "it_out", 8).unwrap();
        let vout = StreamIface::alloc(&mut sim, "vout", 8).unwrap();
        // One physical SRAM, two master ports, one arbiter.
        let m0 = SramPort::alloc(&mut sim, "m0", 16, 8).unwrap();
        let m1 = SramPort::alloc(&mut sim, "m1", 16, 8).unwrap();
        let down = SramPort::alloc(&mut sim, "down", 16, 8).unwrap();
        sim.add_component(down.device("u_sram", 16, 8, 1));
        sim.add_component(SramArbiter::new("u_arb", policy, vec![m0, m1], down));
        // Input buffer at base 0, output buffer at base 4096.
        sim.add_component(VideoIn::new(
            "src",
            pixels.clone(),
            8,
            63,
            false,
            vin.valid,
            vin.data,
        ));
        sim.add_component(ReadBufferSram::new("rbuffer", 64, 0, 8, vin, it_in, m0));
        sim.add_component(TransformSequenced::new(
            "copy",
            PixelOp::Identity,
            PixelFormat::Gray8,
            it_in,
            it_out,
            Some(n as u64),
        ));
        sim.add_component(WriteBufferSram::new("wbuffer", 64, 4096, it_out, vout, m1));
        let sink = sim.add_component(VideoOut::new("sink", n, None, vout.valid, vout.data));
        sim.reset().unwrap();
        let frame = collect_first_frame(&mut sim, sink, 40_000);
        assert_eq!(frame, Some(pixels), "{policy:?}");
    }
}

/// The blur model produces the golden result over RGB as well — the
/// "specific application domains ... demand specific libraries" and
/// "specialized iterators" of §5.
#[test]
fn blur_model_rgb() {
    let frame = Frame::noise(7, 5, PixelFormat::Rgb24, 41);
    let model = VideoPipelineModel::new("blur_rgb", PixelFormat::Rgb24, 7, 5, Algorithm::Blur)
        .unwrap()
        .with_source_gap(1);
    let golden = golden::blur3x3(&frame, golden::BlurBorder::Crop).unwrap();
    assert_eq!(model.process_frame(&frame).unwrap(), golden);
}

/// Labelling golden model sanity over generated frames (the domain
/// algorithm the paper names for the library).
#[test]
fn labelling_counts_checkerboard_components() {
    let f = Frame::checkerboard(8, 8, PixelFormat::Gray8, 2);
    let (labels, count) = golden::label(&f);
    // 2x2 cells: 8 foreground cells, none 4-connected to each other.
    assert_eq!(count, 8);
    assert_eq!(labels.iter().filter(|&&l| l != 0).count(), 8 * 4);
}

/// A full-scale frame (64x64, the size class the paper's functional
/// checks would use) through the streaming pipeline: validates the
/// library at realistic workload sizes, not just toy frames.
#[test]
fn full_scale_frame_through_the_pipeline() {
    let frame = Frame::noise(64, 64, PixelFormat::Gray8, 2026);
    let model = VideoPipelineModel::new(
        "saa2vga_fullscale",
        PixelFormat::Gray8,
        64,
        64,
        Algorithm::Transform(PixelOp::Identity),
    )
    .unwrap();
    let out = model.process_frame(&frame).unwrap();
    assert_eq!(out, frame);
}

/// Full-scale blur: 48x32 against the golden kernel.
#[test]
fn full_scale_blur_matches_golden() {
    let frame = Frame::noise(48, 32, PixelFormat::Gray8, 2027);
    let model = VideoPipelineModel::new(
        "blur_fullscale",
        PixelFormat::Gray8,
        48,
        32,
        Algorithm::Blur,
    )
    .unwrap()
    .with_source_gap(1);
    let out = model.process_frame(&frame).unwrap();
    let golden = golden::blur3x3(&frame, golden::BlurBorder::Crop).unwrap();
    assert_eq!(out, golden);
}
