//! Iterator interface protocol conformance across containers.
//!
//! The whole point of the pattern is that *any* algorithm can drive
//! *any* container through the same interface discipline. These tests
//! pin the discipline itself: `done` pulses exactly once per
//! operation, flow-control flags agree with the golden occupancy, and
//! the interface survives pathological strobe patterns.

use hdp::pattern::hw::{ReadBufferFifo, ReadBufferSram, WriteBufferFifo};
use hdp::pattern::iface::{IterIface, SramPort, StreamIface};
use hdp::sim::{SignalId, Simulator};

struct Rig {
    sim: Simulator,
    up: StreamIface,
    it: IterIface,
}

fn fifo_rig() -> Rig {
    let mut sim = Simulator::new();
    let up = StreamIface::alloc(&mut sim, "up", 8).unwrap();
    let it = IterIface::alloc(&mut sim, "it", 8).unwrap();
    sim.add_component(ReadBufferFifo::new("dut", 8, 8, up, it));
    for s in [up.valid, up.data, it.read, it.inc, it.write, it.wdata] {
        sim.poke(s, 0).unwrap();
    }
    sim.reset().unwrap();
    Rig { sim, up, it }
}

fn sram_rig(latency: u32) -> Rig {
    let mut sim = Simulator::new();
    let up = StreamIface::alloc(&mut sim, "up", 8).unwrap();
    let it = IterIface::alloc(&mut sim, "it", 8).unwrap();
    let mem = SramPort::alloc(&mut sim, "mem", 16, 8).unwrap();
    sim.add_component(mem.device("u_sram", 16, 8, latency));
    sim.add_component(ReadBufferSram::new("dut", 32, 0, 8, up, it, mem));
    for s in [up.valid, up.data, it.read, it.inc, it.write, it.wdata] {
        sim.poke(s, 0).unwrap();
    }
    sim.reset().unwrap();
    Rig { sim, up, it }
}

fn push(r: &mut Rig, v: u64, settle_cycles: u64) {
    r.sim.poke(r.up.valid, 1).unwrap();
    r.sim.poke(r.up.data, v).unwrap();
    r.sim.step().unwrap();
    r.sim.poke(r.up.valid, 0).unwrap();
    r.sim.run(settle_cycles).unwrap();
}

/// Counts `done` pulses over a window while strobes are held.
fn count_dones(r: &mut Rig, cycles: u64) -> u64 {
    let mut dones = 0;
    for _ in 0..cycles {
        r.sim.settle().unwrap();
        if r.sim.peek(r.it.done).unwrap().to_u64() == Some(1) {
            dones += 1;
        }
        r.sim.step().unwrap();
    }
    dones
}

/// Over a FIFO container, holding read+inc with N elements buffered
/// yields exactly N done pulses — one per element, no over-read.
#[test]
fn fifo_done_pulses_once_per_element() {
    let mut r = fifo_rig();
    for v in [1u64, 2, 3, 4, 5] {
        push(&mut r, v, 0);
    }
    r.sim.poke(r.it.read, 1).unwrap();
    r.sim.poke(r.it.inc, 1).unwrap();
    let dones = count_dones(&mut r, 20);
    assert_eq!(dones, 5);
}

/// The same property over the SRAM container, where each operation is
/// a multi-cycle transaction.
#[test]
fn sram_done_pulses_once_per_element() {
    let mut r = sram_rig(2);
    for v in [9u64, 8, 7] {
        push(&mut r, v, 8); // let the write transaction commit
    }
    r.sim.poke(r.it.read, 1).unwrap();
    r.sim.poke(r.it.inc, 1).unwrap();
    let dones = count_dones(&mut r, 80);
    assert_eq!(dones, 3);
}

/// Strobing an operation on an empty container is not an error at the
/// iterator interface — it simply waits (this is what lets algorithms
/// run unmodified over any container).
#[test]
fn ops_on_empty_container_wait_without_error() {
    for mut r in [fifo_rig(), sram_rig(1)] {
        r.sim.poke(r.it.read, 1).unwrap();
        r.sim.poke(r.it.inc, 1).unwrap();
        let dones = count_dones(&mut r, 12);
        assert_eq!(dones, 0);
        // A late push is then served (strobes released during the
        // push so the completion is observable).
        r.sim.poke(r.it.read, 0).unwrap();
        r.sim.poke(r.it.inc, 0).unwrap();
        push(&mut r, 0x5C, 8);
        r.sim.poke(r.it.read, 1).unwrap();
        r.sim.poke(r.it.inc, 1).unwrap();
        // Observe the single completion and capture rdata at the done
        // cycle (on the FIFO container rdata is combinational and goes
        // undefined once the buffer empties again).
        let mut served = Vec::new();
        for _ in 0..20 {
            r.sim.settle().unwrap();
            if r.sim.peek(r.it.done).unwrap().to_u64() == Some(1) {
                served.push(r.sim.peek(r.it.rdata).unwrap().to_u64().unwrap());
            }
            r.sim.step().unwrap();
        }
        assert_eq!(served, vec![0x5C]);
    }
}

/// Glitching strobes (assert/deassert every cycle) never corrupts the
/// stream order on the FIFO container.
#[test]
fn glitchy_strobes_preserve_order() {
    let mut r = fifo_rig();
    for v in [10u64, 20, 30] {
        push(&mut r, v, 0);
    }
    let mut seen = Vec::new();
    let mut strobe = true;
    for _ in 0..30 {
        r.sim
            .poke(r.it.read, u64::from(strobe))
            .and_then(|()| r.sim.poke(r.it.inc, u64::from(strobe)))
            .unwrap();
        r.sim.settle().unwrap();
        if r.sim.peek(r.it.done).unwrap().to_u64() == Some(1) {
            seen.push(r.sim.peek(r.it.rdata).unwrap().to_u64().unwrap());
        }
        r.sim.step().unwrap();
        strobe = !strobe;
        if seen.len() == 3 {
            break;
        }
    }
    assert_eq!(seen, vec![10, 20, 30]);
}

/// can_read tracks occupancy exactly on the write-buffer side too:
/// can_write deasserts at capacity and recovers as the buffer drains.
#[test]
fn wbuffer_flow_control_tracks_capacity() {
    let mut sim = Simulator::new();
    let it = IterIface::alloc(&mut sim, "it", 8).unwrap();
    let down = StreamIface::alloc(&mut sim, "down", 8).unwrap();
    sim.add_component(WriteBufferFifo::new("dut", 2, it, down));
    for s in [it.read, it.inc, it.write, it.wdata] {
        sim.poke(s, 0).unwrap();
    }
    sim.reset().unwrap();
    // The wbuffer drains one element per cycle, so pushing every
    // cycle keeps occupancy at <= 1: can_write stays high.
    sim.poke(it.write, 1).unwrap();
    sim.poke(it.inc, 1).unwrap();
    sim.poke(it.wdata, 1).unwrap();
    for _ in 0..6 {
        sim.settle().unwrap();
        assert_eq!(sim.peek(it.can_write).unwrap().to_u64(), Some(1));
        sim.step().unwrap();
    }
}

fn peek_defined(sim: &Simulator, s: SignalId) -> u64 {
    sim.peek(s).unwrap().to_u64().expect("defined")
}

/// Flow-control flags are always defined after reset — never `X` —
/// so algorithm FSMs can branch on them from cycle zero.
#[test]
fn flow_control_defined_from_reset() {
    let r = fifo_rig();
    assert_eq!(peek_defined(&r.sim, r.it.can_read), 0);
    assert_eq!(peek_defined(&r.sim, r.it.can_write), 0);
    assert_eq!(peek_defined(&r.sim, r.it.done), 0);
    let r = sram_rig(3);
    assert_eq!(peek_defined(&r.sim, r.it.can_read), 0);
    assert_eq!(peek_defined(&r.sim, r.it.done), 0);
}
