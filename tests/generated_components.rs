//! Generated containers, iterators and adapters simulated against the
//! board device models and the behavioural golden models.

use hdp::metagen::container_gen::{rbuffer_fifo, wbuffer_fifo, ContainerParams};
use hdp::metagen::iterator_gen::{forward_iterator, read_width_adapter, write_width_adapter};
use hdp::metagen::ops::{MethodOp, OpSet};
use hdp::pattern::pixel::{join_pixel, split_pixel};
use hdp::sim::devices::FifoCore;
use hdp::sim::{NetlistComponent, SignalId, Simulator};

/// Wires the generated `rbuffer_fifo` component to a FIFO core device
/// and returns the rig.
struct RbRig {
    sim: Simulator,
    push: SignalId,
    wdata: SignalId,
    m_pop: SignalId,
    data: SignalId,
    done: SignalId,
}

fn rbuffer_rig() -> RbRig {
    let params = ContainerParams {
        data_width: 8,
        depth: 16,
        addr_width: 16,
    };
    let nl = rbuffer_fifo(params, OpSet::figure4()).unwrap();
    let mut sim = Simulator::new();
    // Device side.
    let push = sim.add_signal("dev_push", 1).unwrap();
    let wdata = sim.add_signal("dev_wdata", 8).unwrap();
    let p_read = sim.add_signal("p_read", 1).unwrap();
    let p_data = sim.add_signal("p_data", 8).unwrap();
    let p_empty = sim.add_signal("p_empty", 1).unwrap();
    let full = sim.add_signal("dev_full", 1).unwrap();
    sim.add_component(FifoCore::new(
        "u_fifo", 16, 8, push, p_read, wdata, p_data, p_empty, full,
    ));
    // Method side.
    let m_empty = sim.add_signal("m_empty", 1).unwrap();
    let m_size = sim.add_signal("m_size", 1).unwrap();
    let m_pop = sim.add_signal("m_pop", 1).unwrap();
    let data = sim.add_signal("data", 8).unwrap();
    let done = sim.add_signal("done", 1).unwrap();
    let dut = NetlistComponent::new(
        "rbuffer",
        nl,
        sim.bus(),
        &[
            ("m_empty", m_empty),
            ("m_size", m_size),
            ("m_pop", m_pop),
            ("data", data),
            ("done", done),
            ("p_empty", p_empty),
            ("p_read", p_read),
            ("p_data", p_data),
        ],
    )
    .unwrap();
    sim.add_component(dut);
    for s in [push, wdata, m_empty, m_size, m_pop] {
        sim.poke(s, 0).unwrap();
    }
    sim.reset().unwrap();
    RbRig {
        sim,
        push,
        wdata,
        m_pop,
        data,
        done,
    }
}

#[test]
fn generated_rbuffer_fifo_pops_in_order() {
    let mut r = rbuffer_rig();
    for v in [3u64, 1, 4, 1, 5] {
        r.sim.poke(r.push, 1).unwrap();
        r.sim.poke(r.wdata, v).unwrap();
        r.sim.step().unwrap();
    }
    r.sim.poke(r.push, 0).unwrap();
    r.sim.poke(r.m_pop, 1).unwrap();
    let mut seen = Vec::new();
    for _ in 0..5 {
        r.sim.settle().unwrap();
        assert_eq!(r.sim.peek(r.done).unwrap().to_u64(), Some(1));
        seen.push(r.sim.peek(r.data).unwrap().to_u64().unwrap());
        r.sim.step().unwrap();
    }
    assert_eq!(seen, vec![3, 1, 4, 1, 5]);
    // Empty now: done (pop) deasserts.
    r.sim.settle().unwrap();
    assert_eq!(r.sim.peek(r.done).unwrap().to_u64(), Some(0));
}

#[test]
fn generated_rbuffer_guards_pop_on_empty() {
    let mut r = rbuffer_rig();
    // Popping an empty container must not reach the device (the
    // device would raise a protocol error).
    r.sim.poke(r.m_pop, 1).unwrap();
    r.sim.run(5).unwrap(); // no panic: p_read is gated by p_empty
    assert_eq!(r.sim.peek(r.done).unwrap().to_u64(), Some(0));
}

#[test]
fn generated_wbuffer_pushes_through() {
    let params = ContainerParams {
        data_width: 8,
        depth: 8,
        addr_width: 16,
    };
    let nl = wbuffer_fifo(params, OpSet::of(&[MethodOp::Push, MethodOp::Full])).unwrap();
    let mut sim = Simulator::new();
    let p_write = sim.add_signal("p_write", 1).unwrap();
    let p_data = sim.add_signal("p_data", 8).unwrap();
    let p_full = sim.add_signal("p_full", 1).unwrap();
    let pop = sim.add_signal("dev_pop", 1).unwrap();
    let rdata = sim.add_signal("dev_rdata", 8).unwrap();
    let empty = sim.add_signal("dev_empty", 1).unwrap();
    let fifo = sim.add_component(FifoCore::new(
        "u_fifo", 8, 8, p_write, pop, p_data, rdata, empty, p_full,
    ));
    let m_push = sim.add_signal("m_push", 1).unwrap();
    let m_full = sim.add_signal("m_full", 1).unwrap();
    let wdata = sim.add_signal("wdata", 8).unwrap();
    let done = sim.add_signal("done", 1).unwrap();
    let dut = NetlistComponent::new(
        "wbuffer",
        nl,
        sim.bus(),
        &[
            ("m_push", m_push),
            ("m_full", m_full),
            ("wdata", wdata),
            ("done", done),
            ("p_full", p_full),
            ("p_write", p_write),
            ("p_data", p_data),
        ],
    )
    .unwrap();
    sim.add_component(dut);
    for s in [m_push, m_full, wdata, pop] {
        sim.poke(s, 0).unwrap();
    }
    sim.reset().unwrap();
    sim.poke(m_push, 1).unwrap();
    sim.poke(wdata, 0x5A).unwrap();
    sim.step().unwrap();
    sim.poke(m_push, 0).unwrap();
    sim.settle().unwrap();
    let f = sim.component::<FifoCore>(fifo).unwrap();
    assert_eq!(f.len(), 1);
    assert_eq!(sim.peek(rdata).unwrap().to_u64(), Some(0x5A));
}

#[test]
fn generated_forward_iterator_renames_signals() {
    let nl = forward_iterator("rbuffer_it", 8).unwrap();
    let mut sim = Simulator::new();
    let it_inc = sim.add_signal("it_inc", 1).unwrap();
    let it_read = sim.add_signal("it_read", 1).unwrap();
    let it_data = sim.add_signal("it_data", 8).unwrap();
    let it_done = sim.add_signal("it_done", 1).unwrap();
    let m_pop = sim.add_signal("m_pop", 1).unwrap();
    let c_data = sim.add_signal("c_data", 8).unwrap();
    let c_done = sim.add_signal("c_done", 1).unwrap();
    let dut = NetlistComponent::new(
        "it",
        nl,
        sim.bus(),
        &[
            ("it_inc", it_inc),
            ("it_read", it_read),
            ("it_data", it_data),
            ("it_done", it_done),
            ("m_pop", m_pop),
            ("c_data", c_data),
            ("c_done", c_done),
        ],
    )
    .unwrap();
    sim.add_component(dut);
    sim.poke(it_inc, 1).unwrap();
    sim.poke(it_read, 0).unwrap();
    sim.poke(c_data, 0x42).unwrap();
    sim.poke(c_done, 1).unwrap();
    sim.reset().unwrap();
    assert_eq!(sim.peek(m_pop).unwrap().to_u64(), Some(1));
    assert_eq!(sim.peek(it_data).unwrap().to_u64(), Some(0x42));
    assert_eq!(sim.peek(it_done).unwrap().to_u64(), Some(1));
}

/// Full generated chain: FIFO device <- generated rbuffer <- generated
/// width-adapting read iterator, delivering 24-bit pixels from 8-bit
/// words.
#[test]
fn generated_read_adapter_assembles_pixels() {
    let params = ContainerParams {
        data_width: 8,
        depth: 16,
        addr_width: 16,
    };
    let container = rbuffer_fifo(params, OpSet::figure4()).unwrap();
    let adapter = read_width_adapter("rbuffer_it24", 24, 8).unwrap();
    let mut sim = Simulator::new();
    // Device.
    let push = sim.add_signal("dev_push", 1).unwrap();
    let dev_wdata = sim.add_signal("dev_wdata", 8).unwrap();
    let p_read = sim.add_signal("p_read", 1).unwrap();
    let p_data = sim.add_signal("p_data", 8).unwrap();
    let p_empty = sim.add_signal("p_empty", 1).unwrap();
    let full = sim.add_signal("dev_full", 1).unwrap();
    sim.add_component(FifoCore::new(
        "u_fifo", 16, 8, push, p_read, dev_wdata, p_data, p_empty, full,
    ));
    // Container.
    let m_empty = sim.add_signal("m_empty", 1).unwrap();
    let m_size = sim.add_signal("m_size", 1).unwrap();
    let m_pop = sim.add_signal("m_pop", 1).unwrap();
    let c_data = sim.add_signal("c_data", 8).unwrap();
    let c_done = sim.add_signal("c_done", 1).unwrap();
    let cont = NetlistComponent::new(
        "rbuffer",
        container,
        sim.bus(),
        &[
            ("m_empty", m_empty),
            ("m_size", m_size),
            ("m_pop", m_pop),
            ("data", c_data),
            ("done", c_done),
            ("p_empty", p_empty),
            ("p_read", p_read),
            ("p_data", p_data),
        ],
    )
    .unwrap();
    sim.add_component(cont);
    // Adapter.
    let it_read = sim.add_signal("it_read", 1).unwrap();
    let it_data = sim.add_signal("it_data", 24).unwrap();
    let it_done = sim.add_signal("it_done", 1).unwrap();
    let ad = NetlistComponent::new(
        "adapter",
        adapter,
        sim.bus(),
        &[
            ("it_read", it_read),
            ("it_data", it_data),
            ("it_done", it_done),
            ("m_pop", m_pop),
            ("c_data", c_data),
            ("c_done", c_done),
        ],
    )
    .unwrap();
    sim.add_component(ad);
    for s in [push, dev_wdata, m_empty, m_size, it_read] {
        sim.poke(s, 0).unwrap();
    }
    sim.reset().unwrap();
    // Push two pixels, split MSB-first (the §3.3 24-bit-over-8-bit
    // scenario).
    for pixel in [0xA1B2C3u64, 0x112233] {
        for b in split_pixel(pixel, 8, 3) {
            sim.poke(push, 1).unwrap();
            sim.poke(dev_wdata, b).unwrap();
            sim.step().unwrap();
        }
    }
    sim.poke(push, 0).unwrap();
    // Read two wide pixels.
    let mut seen = Vec::new();
    sim.poke(it_read, 1).unwrap();
    for _ in 0..40 {
        sim.step().unwrap();
        if sim.peek(it_done).unwrap().to_u64() == Some(1) {
            seen.push(sim.peek(it_data).unwrap().to_u64().unwrap());
            // Drop and re-raise the strobe between pixels, per the
            // adapter protocol.
            sim.poke(it_read, 0).unwrap();
            sim.step().unwrap();
            sim.poke(it_read, 1).unwrap();
            if seen.len() == 2 {
                break;
            }
        }
    }
    assert_eq!(seen, vec![0xA1B2C3, 0x112233]);
}

/// Generated write adapter splitting 24-bit pixels into a generated
/// write buffer over a FIFO device.
#[test]
fn generated_write_adapter_splits_pixels() {
    let params = ContainerParams {
        data_width: 8,
        depth: 16,
        addr_width: 16,
    };
    let container = wbuffer_fifo(params, OpSet::of(&[MethodOp::Push, MethodOp::Full])).unwrap();
    let adapter = write_width_adapter("wbuffer_it24", 24, 8).unwrap();
    let mut sim = Simulator::new();
    let p_write = sim.add_signal("p_write", 1).unwrap();
    let p_data = sim.add_signal("p_data", 8).unwrap();
    let p_full = sim.add_signal("p_full", 1).unwrap();
    let pop = sim.add_signal("dev_pop", 1).unwrap();
    let rdata = sim.add_signal("dev_rdata", 8).unwrap();
    let empty = sim.add_signal("dev_empty", 1).unwrap();
    let fifo = sim.add_component(FifoCore::new(
        "u_fifo", 16, 8, p_write, pop, p_data, rdata, empty, p_full,
    ));
    let m_push = sim.add_signal("m_push", 1).unwrap();
    let m_full = sim.add_signal("m_full", 1).unwrap();
    let c_wdata = sim.add_signal("c_wdata", 8).unwrap();
    let c_done = sim.add_signal("c_done", 1).unwrap();
    let cont = NetlistComponent::new(
        "wbuffer",
        container,
        sim.bus(),
        &[
            ("m_push", m_push),
            ("m_full", m_full),
            ("wdata", c_wdata),
            ("done", c_done),
            ("p_full", p_full),
            ("p_write", p_write),
            ("p_data", p_data),
        ],
    )
    .unwrap();
    sim.add_component(cont);
    let it_write = sim.add_signal("it_write", 1).unwrap();
    let it_wdata = sim.add_signal("it_wdata", 24).unwrap();
    let it_done = sim.add_signal("it_done", 1).unwrap();
    let ad = NetlistComponent::new(
        "adapter",
        adapter,
        sim.bus(),
        &[
            ("it_write", it_write),
            ("it_wdata", it_wdata),
            ("it_done", it_done),
            ("m_push", m_push),
            ("c_wdata", c_wdata),
            ("c_done", c_done),
        ],
    )
    .unwrap();
    sim.add_component(ad);
    for s in [m_full, pop, it_write] {
        sim.poke(s, 0).unwrap();
    }
    sim.poke(it_wdata, 0).unwrap();
    sim.reset().unwrap();
    sim.poke(it_write, 1).unwrap();
    sim.poke(it_wdata, 0xCAFE42).unwrap();
    for _ in 0..20 {
        sim.step().unwrap();
        if sim.peek(it_done).unwrap().to_u64() == Some(1) {
            sim.poke(it_write, 0).unwrap();
            sim.step().unwrap();
            break;
        }
    }
    // Drain the device FIFO and reassemble.
    let mut words = Vec::new();
    for _ in 0..3 {
        sim.settle().unwrap();
        words.push(sim.peek(rdata).unwrap().to_u64().unwrap());
        sim.poke(pop, 1).unwrap();
        sim.step().unwrap();
        sim.poke(pop, 0).unwrap();
    }
    assert_eq!(join_pixel(&words, 8), 0xCAFE42);
    let f = sim.component::<FifoCore>(fifo).unwrap();
    assert!(f.is_empty());
}
