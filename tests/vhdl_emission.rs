//! VHDL emission coverage: every generated component and full design
//! renders as a complete, structurally sane VHDL design unit.

use hdp::hdl::vhdl;
use hdp::metagen::arbiter_gen::{arbiter, Policy};
use hdp::metagen::assoc_gen::assoc_bram;
use hdp::metagen::container_gen::{rbuffer_fifo, rbuffer_sram, wbuffer_fifo, ContainerParams};
use hdp::metagen::design::{generate, DesignKind, DesignParams, Style};
use hdp::metagen::iterator_gen::{
    forward_iterator, read_width_adapter, stack_iterators, write_width_adapter,
};
use hdp::metagen::ops::{MethodOp, OpSet};
use hdp::metagen::stack_gen::{stack_lifo, vector_bram};

fn check_unit(text: &str, entity: &str) {
    assert!(
        text.starts_with("library ieee;"),
        "{entity}: library clause"
    );
    assert!(
        text.contains(&format!("entity {entity} is")),
        "{entity}: entity declaration"
    );
    assert!(
        text.contains(&format!("end {entity};")),
        "{entity}: entity end"
    );
    assert!(
        text.contains(&format!("architecture generated of {entity} is")),
        "{entity}: architecture"
    );
    assert!(
        text.ends_with("end generated;\n"),
        "{entity}: architecture end"
    );
    // Balanced process blocks.
    let opens = text.matches("process").count();
    let closes = text.matches("end process;").count();
    assert_eq!(opens, closes * 2, "{entity}: process blocks balanced");
}

#[test]
fn every_generated_component_emits_complete_vhdl() {
    let params = ContainerParams::paper_default();
    let all_stack = OpSet::of(&[
        MethodOp::Push,
        MethodOp::Pop,
        MethodOp::Empty,
        MethodOp::Full,
    ]);
    let all_vec = OpSet::of(&[
        MethodOp::Read,
        MethodOp::Write,
        MethodOp::Inc,
        MethodOp::Dec,
        MethodOp::Index,
    ]);
    let rw = OpSet::of(&[MethodOp::Read, MethodOp::Write]);
    let units = vec![
        rbuffer_fifo(params, OpSet::figure4()).unwrap(),
        rbuffer_sram(params, OpSet::figure4()).unwrap(),
        wbuffer_fifo(params, OpSet::of(&[MethodOp::Push, MethodOp::Full])).unwrap(),
        stack_lifo(params, all_stack).unwrap(),
        vector_bram(params, all_vec).unwrap(),
        assoc_bram(params, 12, rw).unwrap(),
        forward_iterator("rbuffer_it", 8).unwrap(),
        stack_iterators("stack_it", 8).unwrap(),
        read_width_adapter("rb_it24", 24, 8).unwrap(),
        write_width_adapter("wb_it24", 24, 8).unwrap(),
        arbiter("sram_arbiter", 2, 16, 8, Policy::RoundRobin).unwrap(),
    ];
    for nl in units {
        let name = nl.entity().name().to_owned();
        let text = vhdl::emit_component(&nl, "generated").unwrap_or_else(|e| panic!("{name}: {e}"));
        check_unit(&text, &name);
    }
}

#[test]
fn full_designs_emit_vhdl() {
    for kind in DesignKind::ALL {
        for style in [Style::Pattern, Style::Custom] {
            let d = generate(kind, style, DesignParams::paper_default()).unwrap();
            let name = d.netlist.entity().name().to_owned();
            let text = vhdl::emit_component(&d.netlist, "generated").unwrap();
            check_unit(&text, &name);
            // Designs with FIFO macros must declare the component.
            if kind != DesignKind::Saa2vga2 {
                assert!(text.contains("component fifo_core"), "{name}");
            }
        }
    }
}

#[test]
fn dissolved_netlists_still_emit_connected_ports() {
    // Wrapper dissolution remaps port bindings onto internal nets;
    // the emitter must then connect ports explicitly instead of
    // leaving them dangling.
    let d = generate(
        DesignKind::Saa2vga1,
        Style::Pattern,
        DesignParams::paper_default(),
    )
    .unwrap();
    let optimized = hdp::synth::dissolve_wrappers(&d.netlist).unwrap();
    let text = vhdl::emit_component(&optimized, "generated").unwrap();
    // Every output port is assigned somewhere.
    for port in ["vga_valid", "vga_data"] {
        assert!(
            text.contains(&format!("{port} <= ")),
            "output port {port} must be driven:\n{text}"
        );
    }
}

#[test]
fn emitted_vhdl_is_deterministic() {
    let params = ContainerParams::paper_default();
    let a = vhdl::emit_component(
        &rbuffer_sram(params, OpSet::figure4()).unwrap(),
        "generated",
    )
    .unwrap();
    let b = vhdl::emit_component(
        &rbuffer_sram(params, OpSet::figure4()).unwrap(),
        "generated",
    )
    .unwrap();
    assert_eq!(a, b);
}
