//! End-to-end tests of the simulation service and its plan cache.
//!
//! Everything here goes through the public surface (`hdp::prelude` /
//! `hdp::service`): cache hit/miss/eviction as observed by a client,
//! content-hash stability across processes, bit-identity between
//! cached and cold execution under every scheduling mode, and
//! concurrent submissions of the same design racing to publish a
//! plan.

use hdp::metagen::sampler::sample_spec;
use hdp::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn sample_case(seed: u64, cycles: usize) -> Case {
    let mut rng = StdRng::seed_from_u64(seed);
    let spec = sample_spec(&mut rng);
    let netlist = spec.instantiate().expect("sampled design instantiates");
    let stimulus = WireStimulus::sample(&netlist, cycles, &mut rng);
    Case { spec, stimulus }
}

/// Distinct designs found by scanning seeds (metagen may sample the
/// same design for nearby seeds).
fn distinct_cases(count: usize, cycles: usize) -> Vec<Case> {
    let mut seen = std::collections::HashSet::new();
    let mut cases = Vec::new();
    let mut seed = 0u64;
    while cases.len() < count {
        let case = sample_case(seed, cycles);
        if seen.insert(design_hash(&case.spec)) {
            cases.push(case);
        }
        seed += 1;
    }
    cases
}

#[test]
fn cache_counts_hits_and_misses_through_the_service() {
    let service = Service::new(8);
    let case = sample_case(11, 6);
    let opts = JobOptions::default();
    let cold = service.run_case(&case, &opts).unwrap();
    let warm = service.run_case(&case, &opts).unwrap();
    assert!(!cold.cache_hit);
    assert!(warm.cache_hit);
    let stats = service.cache_stats();
    assert_eq!((stats.hits, stats.misses, stats.insertions), (1, 1, 1));
    assert!((stats.hit_ratio() - 0.5).abs() < 1e-9);
}

#[test]
fn lru_eviction_is_visible_to_clients() {
    let service = Service::new(2);
    let cases = distinct_cases(3, 4);
    let opts = JobOptions::default();
    // Fill the two slots, then touch the first design to refresh it.
    service.run_case(&cases[0], &opts).unwrap();
    service.run_case(&cases[1], &opts).unwrap();
    assert!(service.run_case(&cases[0], &opts).unwrap().cache_hit);
    // A third design evicts the LRU entry — design 1, not design 0.
    service.run_case(&cases[2], &opts).unwrap();
    assert_eq!(service.cache_stats().evictions, 1);
    assert!(service.run_case(&cases[0], &opts).unwrap().cache_hit);
    assert!(
        !service.run_case(&cases[1], &opts).unwrap().cache_hit,
        "design 1 was the LRU victim"
    );
    assert_eq!(service.cache_len(), 2);
}

#[test]
fn design_hash_is_stable_and_content_addressed() {
    let case = sample_case(42, 4);
    // Stable across repeated hashing and independent of the stimulus.
    assert_eq!(design_hash(&case.spec), design_hash(&case.spec));
    let service = Service::new(4);
    let out = service.run_case(&case, &JobOptions::default()).unwrap();
    assert_eq!(out.design_hash, design_hash(&case.spec));
    // A different design gets a different address.
    let other = distinct_cases(2, 4).pop().unwrap();
    if design_hash(&other.spec) != design_hash(&case.spec) {
        let out2 = service.run_case(&other, &JobOptions::default()).unwrap();
        assert_ne!(out2.design_hash, out.design_hash);
    }
}

#[test]
fn cached_execution_is_bit_identical_across_all_sched_modes() {
    let cases = distinct_cases(4, 8);
    for mode in [
        SchedMode::EventDriven,
        SchedMode::FullSweep,
        SchedMode::Parallel { threads: 2 },
        SchedMode::Compiled,
    ] {
        let opts = JobOptions {
            mode,
            ..JobOptions::default()
        };
        let service = Service::new(16);
        for case in &cases {
            let cold = service.run_case(case, &opts).unwrap();
            let warm = service.run_case(case, &opts).unwrap();
            assert!(!cold.cache_hit);
            assert!(warm.cache_hit, "{mode:?}: second submission must hit");
            assert_eq!(
                cold.trace,
                warm.trace,
                "{mode:?}: cached trace diverged on {}",
                case.spec.label()
            );
            assert_eq!(cold.ports, warm.ports);
        }
    }
}

#[test]
fn cached_compiled_execution_matches_the_reference_oracle() {
    let service = Service::new(8);
    let case = sample_case(77, 10);
    let opts = JobOptions {
        verify: true,
        ..JobOptions::default()
    };
    service.run_case(&case, &opts).unwrap();
    let warm = service.run_case(&case, &opts).unwrap();
    assert!(warm.cache_hit);
    assert_eq!(
        warm.verified,
        Some(true),
        "cached plan execution must match a cache-free full-sweep run"
    );
}

#[test]
fn concurrent_same_design_submissions_agree() {
    let service = Arc::new(Service::new(8));
    let case = sample_case(123, 8);
    let outcomes: Vec<JobOutcome> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let service = Arc::clone(&service);
                let case = case.clone();
                s.spawn(move || service.run_case(&case, &JobOptions::default()).unwrap())
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    // Whoever lost the publish race still simulated correctly; every
    // trace must be identical and the cache holds exactly one entry.
    for o in &outcomes {
        assert_eq!(o.trace, outcomes[0].trace);
        assert_eq!(o.design_hash, outcomes[0].design_hash);
    }
    assert_eq!(service.cache_len(), 1);
    let stats = service.cache_stats();
    assert_eq!(stats.hits + stats.misses, 8);
    assert!(stats.misses >= 1);
}

#[test]
fn server_round_trip_shares_the_cache_between_clients() {
    let handle = serve("127.0.0.1:0", Arc::new(Service::new(8)), 2).unwrap();
    let job = job_to_json(&sample_case(7, 6));
    let first = submit(handle.addr(), std::slice::from_ref(&job)).unwrap();
    let second = submit(handle.addr(), std::slice::from_ref(&job)).unwrap();
    let cold = Json::parse(&first[0]).unwrap();
    let warm = Json::parse(&second[0]).unwrap();
    assert_eq!(cold.get("cache").and_then(Json::as_str), Some("miss"));
    assert_eq!(warm.get("cache").and_then(Json::as_str), Some("hit"));
    assert_eq!(cold.get("trace"), warm.get("trace"));
    handle.shutdown();
}
