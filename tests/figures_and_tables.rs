//! Reproduction of the paper's figures and qualitative tables.
//!
//! * **Figure 2** — the iterator pattern structure (type-level).
//! * **Figure 3** — the pattern-based model of the example.
//! * **Figure 4** — the `rbuffer_fifo` entity, golden-text compare.
//! * **Figure 5** — the `rbuffer_sram` implementation interface.
//! * **Table 1** — container classification conformance.
//! * **Table 2** — iterator operation conformance.

use hdp::hdl::vhdl;
use hdp::metagen::container_gen::{rbuffer_fifo, rbuffer_sram, ContainerParams};
use hdp::metagen::ops::OpSet;
use hdp::pattern::classify::{ContainerKind, IterKind, IterOp, Traversal};
use hdp::pattern::golden::PixelOp;
use hdp::pattern::model::{Algorithm, VideoPipelineModel};
use hdp::pattern::pixel::PixelFormat;
use hdp::pattern::spec::PhysicalTarget;

#[test]
fn figure4_rbuffer_fifo_vhdl_golden() {
    let nl = rbuffer_fifo(ContainerParams::paper_default(), OpSet::figure4()).unwrap();
    let text = vhdl::emit_entity(nl.entity());
    // The paper's Figure 4, port for port.
    let expected = "\
entity rbuffer_fifo is
  port (
    -- methods
    m_empty : in std_logic;
    m_size : in std_logic;
    m_pop : in std_logic;
    -- params
    data : out std_logic_vector(7 downto 0);
    done : out std_logic;
    -- implementation interface
    p_empty : in std_logic;
    p_read : out std_logic;
    p_data : in std_logic_vector(7 downto 0)
  );
end rbuffer_fifo;
";
    assert_eq!(text, expected);
}

#[test]
fn figure5_rbuffer_sram_implementation_interface() {
    let nl = rbuffer_sram(ContainerParams::paper_default(), OpSet::figure4()).unwrap();
    let text = vhdl::emit_entity(nl.entity());
    // Figure 5 shows "only the differences (the implementation
    // interface)": p_addr[15:0], p_data[7:0], req, ack.
    assert!(text.contains("p_addr : out std_logic_vector(15 downto 0)"));
    assert!(text.contains("p_data : in std_logic_vector(7 downto 0)"));
    assert!(text.contains("req : out std_logic"));
    assert!(text.contains("ack : in std_logic"));
    assert!(text.contains("end rbuffer_sram;"));
    // The functional interface is unchanged from Figure 4.
    assert!(text.contains("m_pop : in std_logic"));
    assert!(text.contains("data : out std_logic_vector(7 downto 0)"));
}

#[test]
fn figure5_architecture_is_a_little_fsm_with_pointers() {
    // "the architecture encloses a little finite state machine that
    // controls memory access, as well as a few registers to store the
    // begin and end pointers of the queue".
    let nl = rbuffer_sram(ContainerParams::paper_default(), OpSet::figure4()).unwrap();
    let arch = vhdl::emit_architecture(&nl, "generated").unwrap();
    assert!(arch.contains("process")); // the FSM case process
    assert!(arch.contains("rising_edge(clk)")); // pointer registers
}

#[test]
fn figure2_iterator_pattern_structure() {
    // The pattern's participants exist with the documented operation
    // split: every iterator kind exposes a subset of the Table 2
    // operation set, and concrete iterators exist per container (the
    // supported_iterators relation).
    for kind in IterKind::ALL {
        let ops = kind.operations();
        assert!(!ops.is_empty());
        assert!(
            ops.iter().all(|op| kind.supports(*op)),
            "{kind} operations consistent"
        );
    }
    for container in ContainerKind::ALL {
        for kind in container.supported_iterators() {
            // A concrete iterator for this (container, kind) pair is
            // constructible: the movement ops it offers are a subset
            // of what the container's traversal classification allows.
            let c = container.classification();
            let trav = c.sequential_input.union(c.sequential_output);
            if kind.supports(IterOp::Inc) && kind != IterKind::Random {
                assert!(trav.allows_forward(), "{container}/{kind}");
            }
            if kind.supports(IterOp::Dec) && kind != IterKind::Random {
                assert!(trav.allows_backward(), "{container}/{kind}");
            }
        }
    }
}

#[test]
fn figure3_model_builds_and_validates() {
    // rbuffer + rbuffer_it + copy + wbuffer_it + wbuffer over FIFO
    // implementations, as drawn.
    let model = VideoPipelineModel::new(
        "figure3",
        PixelFormat::Gray8,
        16,
        8,
        Algorithm::Transform(PixelOp::Identity),
    )
    .unwrap();
    model.validate().unwrap();
    assert_eq!(model.input_target(), PhysicalTarget::FifoCore);
    assert_eq!(model.output_target(), PhysicalTarget::FifoCore);
}

#[test]
fn table1_container_classification() {
    use Traversal::{Backward, Both, Forward, None as NoTrav};
    // The six rows of Table 1, verbatim.
    let expected = [
        (ContainerKind::Stack, false, false, Forward, Backward),
        (ContainerKind::Queue, false, false, Forward, Forward),
        (ContainerKind::ReadBuffer, false, false, Forward, NoTrav),
        (ContainerKind::WriteBuffer, false, false, NoTrav, Forward),
        (ContainerKind::Vector, true, true, Both, Both),
        (ContainerKind::AssocArray, true, true, NoTrav, NoTrav),
    ];
    for (kind, ri, ro, si, so) in expected {
        let c = kind.classification();
        assert_eq!(c.random_input, ri, "{kind} random input");
        assert_eq!(c.random_output, ro, "{kind} random output");
        assert_eq!(c.sequential_input, si, "{kind} sequential input");
        assert_eq!(c.sequential_output, so, "{kind} sequential output");
    }
}

#[test]
fn table2_iterator_operations() {
    // Table 2 rows: operation, meaning, applicability.
    assert_eq!(IterOp::Inc.meaning(), "move forward");
    assert_eq!(IterOp::Dec.meaning(), "move backwards");
    assert_eq!(IterOp::Read.meaning(), "get the element");
    assert_eq!(IterOp::Write.meaning(), "put the element");
    assert_eq!(IterOp::Index.meaning(), "set the current position");
    // inc: F / F,B (and random); dec: B / F,B (and random).
    assert!(IterKind::Forward.supports(IterOp::Inc));
    assert!(IterKind::Bidirectional.supports(IterOp::Inc));
    assert!(!IterKind::Backward.supports(IterOp::Inc));
    assert!(IterKind::Backward.supports(IterOp::Dec));
    assert!(IterKind::Bidirectional.supports(IterOp::Dec));
    assert!(!IterKind::Forward.supports(IterOp::Dec));
    // index: random only.
    for kind in IterKind::ALL {
        assert_eq!(kind.supports(IterOp::Index), kind == IterKind::Random);
    }
}

#[test]
fn pruned_variants_shrink_the_interface() {
    // §3.4: the generator includes "only those resources that are
    // really used by the selected operations".
    use hdp::metagen::ops::MethodOp;
    let full = rbuffer_fifo(ContainerParams::paper_default(), OpSet::figure4()).unwrap();
    let pruned = rbuffer_fifo(
        ContainerParams::paper_default(),
        OpSet::of(&[MethodOp::Pop]),
    )
    .unwrap();
    assert!(pruned.entity().ports().len() < full.entity().ports().len());
    let full_cost = hdp::synth::map_resources(&hdp::synth::dissolve_wrappers(&full).unwrap());
    let pruned_cost = hdp::synth::map_resources(&hdp::synth::dissolve_wrappers(&pruned).unwrap());
    assert!(pruned_cost.luts <= full_cost.luts);
}
