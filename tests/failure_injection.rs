//! Failure-injection tests: every protocol discipline the substrate
//! enforces must actually fire when violated, and the violation must
//! name the offending component.

use hdp::metagen::design::{generate, DesignKind, DesignParams, Style};
use hdp::pattern::golden::PixelOp;
use hdp::pattern::hw::{ArbiterPolicy, SramArbiter};
use hdp::pattern::iface::SramPort;
use hdp::pattern::model::{Algorithm, VideoPipelineModel};
use hdp::pattern::pixel::{Frame, PixelFormat};
use hdp::sim::devices::{FifoCore, VideoIn, VideoOut};
use hdp::sim::{NetlistComponent, SignalId, SimError, Simulator};

/// An overwhelmed SRAM-backed pipeline overruns its skid buffer: the
/// §3.3 retargeting is only free when the memory keeps up with the
/// decoder, and the simulator catches the case where it does not.
#[test]
fn sram_pipeline_with_fast_source_overruns() {
    let frame = Frame::gradient(8, 4, PixelFormat::Gray8);
    let model = VideoPipelineModel::new(
        "m",
        PixelFormat::Gray8,
        8,
        4,
        Algorithm::Transform(PixelOp::Identity),
    )
    .unwrap()
    .retarget_input(hdp::pattern::spec::PhysicalTarget::ExternalSram { latency: 8 })
    .retarget_output(hdp::pattern::spec::PhysicalTarget::ExternalSram { latency: 8 })
    // No blanking: the decoder outruns the memory.
    .with_source_gap(0);
    let mut elaborated = model.elaborate(&frame).unwrap();
    let err = elaborated.run_to_completion().unwrap_err();
    let text = err.to_string();
    assert!(
        text.contains("overrun"),
        "expected an input overrun, got: {text}"
    );
}

/// A VGA sink with a strict continuity requirement underruns when the
/// producer cannot sustain the pixel clock.
#[test]
fn strict_vga_underruns_on_slow_producer() {
    let mut sim = Simulator::new();
    let valid = sim.add_signal("valid", 1).unwrap();
    let data = sim.add_signal("data", 8).unwrap();
    // A gappy source against a zero-gap sink.
    sim.add_component(VideoIn::new(
        "src",
        vec![1, 2, 3, 4],
        8,
        3,
        false,
        valid,
        data,
    ));
    sim.add_component(VideoOut::new("vga", 4, Some(1), valid, data));
    sim.reset().unwrap();
    let err = sim.run(30).unwrap_err();
    assert!(matches!(
        err,
        SimError::Protocol { ref component, .. } if component == "vga"
    ));
    assert!(err.to_string().contains("underrun"));
}

/// The FIFO core rejects pops on empty even through several layers of
/// plumbing, and the error names the core.
#[test]
fn fifo_pop_on_empty_names_the_core() {
    let mut sim = Simulator::new();
    let push = sim.add_signal("push", 1).unwrap();
    let pop = sim.add_signal("pop", 1).unwrap();
    let wdata = sim.add_signal("wdata", 8).unwrap();
    let rdata = sim.add_signal("rdata", 8).unwrap();
    let empty = sim.add_signal("empty", 1).unwrap();
    let full = sim.add_signal("full", 1).unwrap();
    sim.add_component(FifoCore::new(
        "u_pixels", 8, 8, push, pop, wdata, rdata, empty, full,
    ));
    sim.poke(push, 0).unwrap();
    sim.poke(wdata, 0).unwrap();
    sim.poke(pop, 1).unwrap();
    sim.reset().unwrap();
    let err = sim.step().unwrap_err();
    assert!(matches!(
        err,
        SimError::Protocol { ref component, .. } if component == "u_pixels"
    ));
}

/// Dropping a request mid-transaction through the arbiter is caught
/// by the SRAM controller on the far side.
#[test]
fn arbiter_forwards_protocol_violations() {
    let mut sim = Simulator::new();
    let m0 = SramPort::alloc(&mut sim, "m0", 16, 8).unwrap();
    let m1 = SramPort::alloc(&mut sim, "m1", 16, 8).unwrap();
    let down = SramPort::alloc(&mut sim, "down", 16, 8).unwrap();
    sim.add_component(down.device("u_sram", 16, 8, 6));
    sim.add_component(SramArbiter::new(
        "u_arb",
        ArbiterPolicy::FixedPriority,
        vec![m0, m1],
        down,
    ));
    for p in [m0, m1] {
        for s in [p.req, p.we, p.addr, p.wdata] {
            sim.poke(s, 0).unwrap();
        }
    }
    sim.reset().unwrap();
    // Master 0 starts a long read, then illegally drops the request.
    sim.poke(m0.req, 1).unwrap();
    sim.poke(m0.addr, 3).unwrap();
    sim.run(3).unwrap(); // grant + transaction start
    sim.poke(m0.req, 0).unwrap();
    let err = sim.run(3).unwrap_err();
    assert!(matches!(
        err,
        SimError::Protocol { ref component, .. } if component == "u_sram"
    ));
}

/// An undefined control input into a generated design is flagged
/// rather than silently treated as deasserted where it matters: the
/// design still behaves, but feeding undefined *data* into a commit
/// path errors.
#[test]
fn undefined_stream_data_is_caught_by_generated_design() {
    let design = generate(DesignKind::Saa2vga1, Style::Pattern, DesignParams::small(8)).unwrap();
    let mut sim = Simulator::new();
    let vid_valid = sim.add_signal("vid_valid", 1).unwrap();
    let vid_data = sim.add_signal("vid_data", 8).unwrap();
    let vga_valid = sim.add_signal("vga_valid", 1).unwrap();
    let vga_data = sim.add_signal("vga_data", 8).unwrap();
    let map: Vec<(&str, SignalId)> = vec![
        ("vid_valid", vid_valid),
        ("vid_data", vid_data),
        ("vga_valid", vga_valid),
        ("vga_data", vga_data),
    ];
    let dut = NetlistComponent::new("dut", design.netlist, sim.bus(), &map).unwrap();
    sim.add_component(dut);
    // valid asserted but data left undefined (never poked).
    sim.poke(vid_valid, 1).unwrap();
    let result = sim.run(20);
    // The FIFO macro must refuse to commit undefined data.
    let err = result.unwrap_err();
    assert!(matches!(err, SimError::Protocol { .. }), "{err}");
    assert!(err.to_string().contains("undefined"));
}

/// Asking for results before the pipeline has produced them is an
/// error, not a garbage frame.
#[test]
fn premature_output_frame_is_an_error() {
    let frame = Frame::gradient(6, 4, PixelFormat::Gray8);
    let model = VideoPipelineModel::new(
        "m",
        PixelFormat::Gray8,
        6,
        4,
        Algorithm::Transform(PixelOp::Identity),
    )
    .unwrap();
    let mut elaborated = model.elaborate(&frame).unwrap();
    // No cycles run yet: nothing collected.
    let err = elaborated.output_frame().unwrap_err();
    assert!(err.to_string().contains("no complete frame"));
    // After running, the same call succeeds.
    elaborated.run_to_completion().unwrap();
    assert_eq!(elaborated.output_frame().unwrap(), frame);
}
