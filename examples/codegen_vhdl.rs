//! The metaprogramming generator's output: the `rbuffer_fifo`
//! component of the paper's Figure 4 and the `rbuffer_sram` component
//! of Figure 5, printed as complete VHDL design units — plus a pruned
//! variant showing the §3.4 "only those resources that are really
//! used" behaviour.
//!
//! ```text
//! cargo run --example codegen_vhdl
//! ```

use hdp::hdl::vhdl;
use hdp::metagen::container_gen::{rbuffer_fifo, rbuffer_sram, ContainerParams};
use hdp::metagen::ops::{MethodOp, OpSet};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = ContainerParams::paper_default();

    println!("--- Figure 4: read buffer over a FIFO device ---------------");
    let fig4 = rbuffer_fifo(params, OpSet::figure4())?;
    println!("{}", vhdl::emit_component(&fig4, "generated")?);

    println!("--- Figure 5: read buffer over an SRAM device --------------");
    let fig5 = rbuffer_sram(params, OpSet::figure4())?;
    // The paper's Figure 5 shows only the entity differences; print
    // the whole entity here and the architecture head.
    println!("{}", vhdl::emit_entity(fig5.entity()));
    let arch = vhdl::emit_architecture(&fig5, "generated")?;
    let head: String = arch.lines().take(18).collect::<Vec<_>>().join("\n");
    println!("{head}\n  ... ({} more lines)\n", arch.lines().count() - 18);

    println!("--- Operation pruning: pop-only read buffer ----------------");
    let pruned = rbuffer_fifo(params, OpSet::of(&[MethodOp::Pop]))?;
    println!("{}", vhdl::emit_entity(pruned.entity()));
    println!(
        "full interface: {} cells; pruned: {} cells",
        fig4.cells().len(),
        pruned.cells().len()
    );
    Ok(())
}
