//! The §3.4 design-space characterisation: generate every
//! container×target×parameter implementation, tabulate area, access
//! time and power, and delimit regions of interest under constraints.
//!
//! ```text
//! cargo run --example design_space
//! ```

use hdp::synth::characterize::{region_of_interest, sweep, Constraints, SweepGrid};
use hdp::synth::Xsb300e;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let board = Xsb300e::new();
    let grid = SweepGrid::default();
    let points = sweep(&board, &grid)?;

    println!(
        "characterised {} implementations on the {}:",
        points.len(),
        board.device.name
    );
    println!();
    for p in &points {
        println!("  {p}");
    }

    println!();
    println!("region of interest: no block RAM (cost-driven)");
    for p in region_of_interest(
        &points,
        Constraints {
            max_brams: Some(0),
            ..Constraints::default()
        },
    ) {
        println!("  {p}");
    }

    println!();
    println!("region of interest: one access per cycle (performance-driven)");
    for p in region_of_interest(
        &points,
        Constraints {
            max_access_cycles: Some(1),
            ..Constraints::default()
        },
    ) {
        println!("  {p}");
    }
    Ok(())
}
