//! Binary image labelling — the domain algorithm the paper's §5 asks
//! the library to grow ("convolution filters, image labelling ...").
//! A noisy frame is thresholded and every 4-connected component gets
//! a label, streamed through the two-pass hardware engine and checked
//! against the behavioural golden model.
//!
//! ```text
//! cargo run --example labelling
//! ```

use hdp::pattern::algo::LabelEngine;
use hdp::pattern::golden::{self, PixelOp};
use hdp::pattern::iface::StreamIface;
use hdp::pattern::pixel::{Frame, PixelFormat};
use hdp::sim::devices::{VideoIn, VideoOut};
use hdp::sim::Simulator;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (w, h) = (24, 10);
    let noise = Frame::noise(w, h, PixelFormat::Gray8, 12);
    let binary = golden::pixel_map(&noise, PixelOp::Threshold(150));

    let mut sim = Simulator::new();
    let up = StreamIface::alloc(&mut sim, "pixels", 8)?;
    let down = StreamIface::alloc(&mut sim, "labels", 16)?;
    sim.add_component(VideoIn::new(
        "camera",
        binary.pixels().to_vec(),
        8,
        0,
        false,
        up.valid,
        up.data,
    ));
    let engine = sim.add_component(LabelEngine::new("labeller", w, h, 256, up, down));
    let sink = sim.add_component(VideoOut::new("sink", w * h, None, down.valid, down.data));
    sim.reset()?;
    sim.run((4 * w * h + 600) as u64)?;

    let labels = sim
        .component::<VideoOut>(sink)
        .expect("sink present")
        .frames()[0]
        .clone();
    let count = sim
        .component::<LabelEngine>(engine)
        .expect("engine present")
        .component_count();

    const GLYPHS: &[u8] = b".123456789abcdefghijklmnopqrstuvwxyz";
    println!("binary input ({w}x{h}) and hardware labels:");
    for y in 0..h {
        let mut left = String::new();
        let mut right = String::new();
        for x in 0..w {
            left.push(if binary.pixel(x, y) != 0 { '#' } else { '.' });
            let l = labels[y * w + x] as usize;
            right.push(GLYPHS[l.min(GLYPHS.len() - 1)] as char);
        }
        println!("{left}   {right}");
    }
    println!();
    println!("components found by the hardware engine: {count}");

    let (golden_labels, golden_count) = golden::label(&binary);
    assert_eq!(labels, golden_labels);
    assert_eq!(count, golden_count);
    println!("matches the golden two-pass labelling: OK");
    Ok(())
}
