//! Simulation-as-a-service round trip: start the job server, submit
//! the same design twice over TCP, and watch the second submission
//! hit the content-addressed plan cache while producing a
//! bit-identical trace.
//!
//! ```text
//! cargo run --example service_client
//! ```

use hdp::metagen::sampler::sample_spec;
use hdp::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Sample a design + stimulus and serialise it as one
    // `hdp-conform-repro-v1` job document.
    let mut rng = StdRng::seed_from_u64(2005);
    let spec = sample_spec(&mut rng);
    let netlist = spec.instantiate()?;
    let stimulus = WireStimulus::sample(&netlist, 8, &mut rng);
    let case = Case { spec, stimulus };
    println!("design:       {}", case.spec.label());
    println!("content hash: {}", design_hash(&case.spec));
    let job = job_to_json(&case);

    // Serve on an ephemeral port and submit the job twice.
    let handle = serve("127.0.0.1:0", Arc::new(Service::new(64)), 2)?;
    let first = submit(handle.addr(), std::slice::from_ref(&job))?;
    let second = submit(handle.addr(), std::slice::from_ref(&job))?;

    let cold = Json::parse(&first[0]).map_err(std::io::Error::other)?;
    let warm = Json::parse(&second[0]).map_err(std::io::Error::other)?;
    println!(
        "first pass:   cache {}, plan installed: {}",
        cold.get("cache").and_then(Json::as_str).unwrap_or("?"),
        cold.get("plan_installed").and_then(Json::as_bool) == Some(true),
    );
    println!(
        "second pass:  cache {}, plan installed: {}",
        warm.get("cache").and_then(Json::as_str).unwrap_or("?"),
        warm.get("plan_installed").and_then(Json::as_bool) == Some(true),
    );
    assert_eq!(
        cold.get("trace"),
        warm.get("trace"),
        "cached execution must be bit-identical"
    );
    println!("traces match: bit-identical across cold and cached runs");

    let stats = handle.service().cache_stats();
    println!(
        "cache:        {} hit(s), {} miss(es), ratio {:.2}",
        stats.hits,
        stats.misses,
        stats.hit_ratio()
    );
    handle.shutdown();
    Ok(())
}
