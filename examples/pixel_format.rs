//! The §3.3 pixel-format change: 8-bit grayscale → 24-bit RGB, on a
//! wide bus and on an 8-bit bus. On the narrow bus the generated
//! iterators "perform three consecutive container reads/writes to
//! get/set the whole pixel" — the width adapters appear during
//! elaboration, the model itself is untouched.
//!
//! ```text
//! cargo run --example pixel_format
//! ```

use hdp::pattern::golden::{pixel_map, PixelOp};
use hdp::pattern::model::{Algorithm, VideoPipelineModel};
use hdp::pattern::pixel::{Frame, PixelFormat};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (w, h) = (8, 6);
    let op = PixelOp::Invert;

    // Original system: 8-bit grayscale.
    let gray = Frame::noise(w, h, PixelFormat::Gray8, 1);
    let gray_model =
        VideoPipelineModel::new("gray", PixelFormat::Gray8, w, h, Algorithm::Transform(op))?;
    let out = gray_model.process_frame(&gray)?;
    assert_eq!(out, pixel_map(&gray, op));
    println!(
        "gray8  on  8-bit bus: adapters={} OK",
        gray_model.needs_adaptation()
    );

    // Alternative 1: 24-bit RGB on a 24-bit data bus — "we should
    // only regenerate the implementations of the elements using the
    // 24-bit data pixel as the base type".
    let rgb = Frame::noise(w, h, PixelFormat::Rgb24, 2);
    let wide_model = VideoPipelineModel::new(
        "rgb_wide",
        PixelFormat::Rgb24,
        w,
        h,
        Algorithm::Transform(op),
    )?;
    let out = wide_model.process_frame(&rgb)?;
    assert_eq!(out, pixel_map(&rgb, op));
    println!(
        "rgb24  on 24-bit bus: adapters={} OK",
        wide_model.needs_adaptation()
    );

    // Alternative 2: 24-bit RGB over an 8-bit bus — three consecutive
    // container accesses per pixel, generated automatically.
    let narrow_model = VideoPipelineModel::new(
        "rgb_narrow",
        PixelFormat::Rgb24,
        w,
        h,
        Algorithm::Transform(op),
    )?
    .with_bus_width(8)
    .with_source_gap(8);
    let out = narrow_model.process_frame(&rgb)?;
    assert_eq!(out, pixel_map(&rgb, op));
    println!(
        "rgb24  on  8-bit bus: adapters={} (3 accesses per pixel) OK",
        narrow_model.needs_adaptation()
    );

    println!("all three scenarios required no designer intervention in the model");
    Ok(())
}
