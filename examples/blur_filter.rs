//! The blur design of the paper's evaluation (§4): the `rbuffer`
//! container mapped onto the special 3-line buffer that "provides 3
//! pixels in a column for each access", feeding the 3×3 convolution
//! engine. The hardware result is compared pixel for pixel against
//! the behavioural golden model.
//!
//! ```text
//! cargo run --example blur_filter
//! ```

use hdp::pattern::golden::{blur3x3, BlurBorder};
use hdp::pattern::model::{Algorithm, VideoPipelineModel};
use hdp::pattern::pixel::{Frame, PixelFormat};

fn render(frame: &Frame) -> String {
    const SHADES: &[u8] = b" .:-=+*#%@";
    let mut out = String::new();
    for y in 0..frame.height() {
        for x in 0..frame.width() {
            let p = frame.pixel(x, y);
            let i = (p as usize * (SHADES.len() - 1)) / 255;
            out.push(SHADES[i] as char);
        }
        out.push('\n');
    }
    out
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (w, h) = (24, 12);
    // A noisy frame with a bright block in the middle.
    let mut pixels = Frame::noise(w, h, PixelFormat::Gray8, 7).into_pixels();
    for y in 4..8 {
        for x in 9..15 {
            pixels[y * w + x] = 255;
        }
    }
    let frame = Frame::from_pixels(w, h, PixelFormat::Gray8, pixels)?;

    let model = VideoPipelineModel::new("blur", PixelFormat::Gray8, w, h, Algorithm::Blur)?
        .with_source_gap(1);
    model.validate()?;
    let hw = model.process_frame(&frame)?;
    let golden = blur3x3(&frame, BlurBorder::Crop)?;

    println!("input ({w}x{h}):");
    println!("{}", render(&frame));
    println!(
        "blurred by the hardware pipeline ({}x{}):",
        hw.width(),
        hw.height()
    );
    println!("{}", render(&hw));
    assert_eq!(hw, golden);
    println!("hardware output matches the golden 3x3 binomial kernel: OK");
    Ok(())
}
