//! Waveform capture: run the copy pipeline with a VCD recorder
//! attached and write an IEEE 1364 VCD file you can open in GTKWave —
//! the debugging extension on top of the paper's flow.
//!
//! ```text
//! cargo run --example waveforms
//! ```

use hdp::pattern::algo::TransformStreaming;
use hdp::pattern::golden::PixelOp;
use hdp::pattern::hw::{ReadBufferFifo, WriteBufferFifo};
use hdp::pattern::iface::{IterIface, StreamIface};
use hdp::pattern::pixel::PixelFormat;
use hdp::prelude::*;
use hdp::sim::devices::{VideoIn, VideoOut};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let data: Vec<u64> = (0..16).map(|i| (i * 17) & 0xFF).collect();
    let n = data.len();
    let mut sim = Simulator::new();
    let vin = StreamIface::alloc(&mut sim, "vin", 8)?;
    let it_in = IterIface::alloc(&mut sim, "rbuffer_it", 8)?;
    let it_out = IterIface::alloc(&mut sim, "wbuffer_it", 8)?;
    let vout = StreamIface::alloc(&mut sim, "vout", 8)?;
    sim.add_component(VideoIn::new("src", data, 8, 1, false, vin.valid, vin.data));
    sim.add_component(ReadBufferFifo::new("rbuffer", 16, 8, vin, it_in));
    sim.add_component(TransformStreaming::new(
        "copy",
        PixelOp::Identity,
        PixelFormat::Gray8,
        it_in,
        it_out,
        Some(n as u64),
    ));
    sim.add_component(WriteBufferFifo::new("wbuffer", 16, it_out, vout));
    sim.add_component(VideoOut::new("sink", n, None, vout.valid, vout.data));
    // Record the interesting signals: the input stream, the iterator
    // handshake and the output stream.
    let watched = vec![
        vin.valid,
        vin.data,
        it_in.can_read,
        it_in.inc,
        it_in.rdata,
        it_out.write,
        it_out.wdata,
        vout.valid,
        vout.data,
    ];
    let rec = sim.add_component(VcdRecorder::new("vcd", watched));
    sim.reset()?;
    sim.run(3 * n as u64 + 16)?;
    let recorder = sim.component::<VcdRecorder>(rec).expect("recorder present");
    let text = recorder.render(sim.bus());
    let path = std::env::temp_dir().join("hdp_copy_pipeline.vcd");
    std::fs::write(&path, &text)?;
    println!(
        "captured {} value changes over {} cycles",
        recorder.change_count(),
        sim.cycle()
    );
    println!("wrote {}", path.display());
    println!("open it with: gtkwave {}", path.display());
    Ok(())
}
