//! Quickstart: a queue container over a FIFO core, traversed through
//! the hardware iterator interface by the copy algorithm.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use hdp::pattern::algo::TransformStreaming;
use hdp::pattern::golden::PixelOp;
use hdp::pattern::hw::{ReadBufferFifo, WriteBufferFifo};
use hdp::pattern::iface::{IterIface, StreamIface};
use hdp::pattern::pixel::PixelFormat;
use hdp::prelude::*;
use hdp::sim::devices::{VideoIn, VideoOut};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The data to move: a short burst of bytes.
    let data: Vec<u64> = vec![0x48, 0x44, 0x50, 0x21, 0x2A, 0x2A];
    let n = data.len();

    // Build the hardware: source -> rbuffer -> [iterator] -> copy ->
    // [iterator] -> wbuffer -> sink. The copy engine only ever touches
    // the iterator interfaces; it has no idea FIFOs are underneath.
    let mut sim = Simulator::new();
    let vin = StreamIface::alloc(&mut sim, "vin", 8)?;
    let rbuffer_it = IterIface::alloc(&mut sim, "rbuffer_it", 8)?;
    let wbuffer_it = IterIface::alloc(&mut sim, "wbuffer_it", 8)?;
    let vout = StreamIface::alloc(&mut sim, "vout", 8)?;

    sim.add_component(VideoIn::new(
        "source",
        data.clone(),
        8,
        0,
        false,
        vin.valid,
        vin.data,
    ));
    sim.add_component(ReadBufferFifo::new("rbuffer", 16, 8, vin, rbuffer_it));
    let copy = sim.add_component(TransformStreaming::new(
        "copy",
        PixelOp::Identity,
        PixelFormat::Gray8,
        rbuffer_it,
        wbuffer_it,
        Some(n as u64),
    ));
    sim.add_component(WriteBufferFifo::new("wbuffer", 16, wbuffer_it, vout));
    let sink = sim.add_component(VideoOut::new("sink", n, None, vout.valid, vout.data));

    // Run.
    sim.reset()?;
    sim.run(4 * n as u64 + 16)?;

    let engine = sim
        .component::<TransformStreaming>(copy)
        .expect("engine present");
    let frames = sim
        .component::<VideoOut>(sink)
        .expect("sink present")
        .frames();
    println!(
        "transferred {} elements in {} cycles",
        engine.transferred(),
        sim.cycle()
    );
    println!("input : {data:02X?}");
    println!("output: {:02X?}", frames[0]);
    assert_eq!(frames[0], data);
    println!("copy through the iterator pattern: OK");
    Ok(())
}
