//! The paper's motivating design (Figures 1 and 3): camera → video
//! decoder → image processing → VGA coder → monitor, modelled with
//! the iterator pattern — then retargeted from on-chip FIFOs to
//! external SRAM *without touching the model*, the §3.3 "embracing
//! change" scenario.
//!
//! ```text
//! cargo run --example saa2vga
//! ```

use hdp::pattern::golden::PixelOp;
use hdp::pattern::model::{Algorithm, EngineHandle, VideoPipelineModel};
use hdp::pattern::pixel::{Frame, PixelFormat};
use hdp::pattern::spec::PhysicalTarget;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (w, h) = (16, 12);
    let frame = Frame::gradient(w, h, PixelFormat::Gray8);

    // Figure 3: rbuffer --rbuffer_it--> copy --wbuffer_it--> wbuffer.
    let model = VideoPipelineModel::new(
        "saa2vga",
        PixelFormat::Gray8,
        w,
        h,
        Algorithm::Transform(PixelOp::Identity),
    )?;
    model.validate()?;

    // Configuration 1: both containers over on-chip FIFO cores
    // ("maximum performance at the highest cost").
    let elaborated = model.elaborate(&frame)?;
    let engine = elaborated.engine();
    let mut elaborated = elaborated;
    elaborated.run_to_completion()?;
    let out1 = elaborated.output_frame()?;
    println!(
        "saa2vga over FIFO cores : engine={} cycles={} frame intact={}",
        match engine {
            EngineHandle::Streaming(_) => "streaming (1 px/cycle)",
            EngineHandle::Sequenced(_) => "sequenced",
            EngineHandle::Blur(_) => "blur",
        },
        elaborated.sim.cycle(),
        out1 == frame
    );

    // "Let's suppose that the system must be modified for a new
    // configuration, where both input and output streams are fed into
    // two separate static RAMs. This change does not really affect
    // the model." — only the target bindings change:
    let retargeted = model
        .retarget_input(PhysicalTarget::ExternalSram { latency: 2 })
        .retarget_output(PhysicalTarget::ExternalSram { latency: 2 })
        .with_source_gap(23); // external memory is slower than the pixel clock
    retargeted.validate()?;
    let elaborated = retargeted.elaborate(&frame)?;
    let engine = elaborated.engine();
    let mut elaborated = elaborated;
    elaborated.run_to_completion()?;
    let out2 = elaborated.output_frame()?;
    println!(
        "saa2vga over ext. SRAM  : engine={} cycles={} frame intact={}",
        match engine {
            EngineHandle::Streaming(_) => "streaming",
            EngineHandle::Sequenced(_) => "sequenced (memory-bound)",
            EngineHandle::Blur(_) => "blur",
        },
        elaborated.sim.cycle(),
        out2 == frame
    );

    assert_eq!(out1, frame);
    assert_eq!(out2, frame);
    println!("model unchanged, implementation regenerated: OK");
    Ok(())
}
