//! An executable model of the emitted VHDL subset.
//!
//! [`crate::vhdl`] prints netlists as synthesizable VHDL'93, but until
//! now that text was only ever string-matched, never *run*. This
//! module closes the loop: [`VhdlInterp::parse`] elaborates the exact
//! constructs the emitter produces — entity/port declarations, signal
//! declarations, concurrent signal assignments, selected-signal
//! assignments, case and clocked processes, and `block_ram` /
//! `fifo_core` / `lifo_core` component instantiations — into a
//! cycle-accurate four-state interpreter.
//!
//! The interpreter is an *independent oracle*: it evaluates the
//! printed expressions with VHDL semantics (IEEE 1164 resolution on
//! multiply-driven signals, pessimistic `X` propagation, ternary
//! case-statement evaluation) rather than re-using
//! [`crate::prim::Prim::eval_comb`]. The differential conformance
//! engine in `hdp-conform` compares it bit-for-bit against the
//! netlist interpreter of `hdp-sim`.
//!
//! ## Scope
//!
//! Exactly the emission subset, nothing more. Entities never declare
//! `clk`/`rst` even when their architectures reference them (the
//! emitter leaves the clock tree implicit, as the paper's figures
//! do); the interpreter materialises them as implicit 1-bit inputs
//! initialised to `'0'`.
//!
//! ## Semantics notes
//!
//! * Bare `std_logic_vector` comparisons (only emitted for the
//!   reduction operators) are evaluated *metalogically*: a definite
//!   per-bit difference decides the comparison, fully-defined
//!   operands compare exactly, anything else yields `'X'` — matching
//!   the pessimistic ternary semantics of the netlist simulator
//!   rather than the literal-equality of `std_logic_vector`'s
//!   built-in `=`.
//! * `unsigned(...)` comparisons and arithmetic poison to all-`X`
//!   when any operand bit is undefined.
//! * A when-else condition on an undefined bit (`en = '1'` with `en`
//!   at `'X'`) poisons the tri-state result to all-`X`.
//! * Case processes use the same ternary enumeration of undefined
//!   input bits as the truth-table primitive, including its 10-bit
//!   enumeration cap.

use crate::{Bit, HdlError, LogicVector, PortDir};
use std::collections::HashMap;
use std::collections::VecDeque;
use std::fmt;

/// Maximum undefined input bits a case process enumerates before
/// giving up and returning all-`X` (mirrors the truth-table
/// primitive).
const MAX_X_ENUM: usize = 10;

/// Errors raised while parsing or executing emitted VHDL.
#[derive(Debug)]
pub enum InterpError {
    /// The text deviates from the emitted subset.
    Parse {
        /// 1-based source line of the offending construct.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// A poke/peek referenced a signal that does not exist.
    UnknownSignal {
        /// The requested signal name.
        name: String,
    },
    /// A poked value has the wrong width for its signal.
    Width {
        /// The signal name.
        signal: String,
        /// The declared width.
        expected: usize,
        /// The poked width.
        found: usize,
    },
    /// The combinational network failed to reach a fixpoint.
    NoConvergence {
        /// Passes executed before giving up.
        passes: usize,
    },
    /// A component instance was driven outside its protocol (e.g. pop
    /// on an empty `fifo_core`), matching the conditions the netlist
    /// simulator reports as protocol errors.
    Protocol {
        /// Description of the violation.
        message: String,
    },
    /// Re-emission of the netlist failed structural validation.
    Hdl(HdlError),
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterpError::Parse { line, message } => {
                write!(f, "VHDL parse error at line {line}: {message}")
            }
            InterpError::UnknownSignal { name } => write!(f, "unknown signal `{name}`"),
            InterpError::Width {
                signal,
                expected,
                found,
            } => write!(f, "signal `{signal}` is {expected} bits wide, got {found}"),
            InterpError::NoConvergence { passes } => {
                write!(f, "no combinational fixpoint after {passes} passes")
            }
            InterpError::Protocol { message } => write!(f, "protocol violation: {message}"),
            InterpError::Hdl(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for InterpError {}

impl From<HdlError> for InterpError {
    fn from(e: HdlError) -> Self {
        InterpError::Hdl(e)
    }
}

/// How a signal entered the design.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SigKind {
    /// Declared in the entity port clause.
    Port(PortDir),
    /// Declared in the architecture declarative part.
    Internal,
    /// `clk`/`rst` referenced without declaration.
    Implicit,
}

#[derive(Debug)]
struct Signal {
    name: String,
    width: usize,
    kind: SigKind,
    value: LogicVector,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ArithOp {
    Add,
    Sub,
    Inc,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GateKind {
    And,
    Or,
    Xor,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum UnsCmpOp {
    Eq,
    Ne,
    Lt,
    Ge,
}

/// Right-hand side of a concurrent signal assignment.
#[derive(Debug)]
enum Expr {
    Copy(usize),
    Const(LogicVector),
    Not(usize),
    Gate {
        op: GateKind,
        a: usize,
        b: usize,
    },
    /// `'1' when a = "lit" else '0'` (metalogical slv comparison).
    SlvCmp {
        eq: bool,
        a: usize,
        lit: LogicVector,
    },
    /// `'1' when unsigned(a) OP unsigned(b) else '0'`.
    UnsCmp {
        op: UnsCmpOp,
        a: usize,
        b: usize,
    },
    Arith {
        op: ArithOp,
        a: usize,
        b: Option<usize>,
        width: usize,
    },
    Slice {
        a: usize,
        low: usize,
        len: usize,
    },
    Concat(Vec<usize>),
    /// `d when en = '1' else 'Z'`.
    TriBuf {
        en: usize,
        d: usize,
        width: usize,
    },
}

/// A combinational concurrent statement (driver).
#[derive(Debug)]
enum CombStmt {
    Assign {
        target: usize,
        expr: Expr,
    },
    /// `with sel select`.
    Select {
        target: usize,
        sel: usize,
        arms: Vec<(u64, usize)>,
        others: usize,
    },
    /// Case process over concatenated inputs (truth-table logic).
    Case {
        target: usize,
        inputs: Vec<usize>,
        out_width: usize,
        table: Vec<Option<u64>>,
    },
}

impl CombStmt {
    fn target(&self) -> usize {
        match self {
            CombStmt::Assign { target, .. }
            | CombStmt::Select { target, .. }
            | CombStmt::Case { target, .. } => *target,
        }
    }
}

/// A clocked register process.
#[derive(Debug)]
struct RegProc {
    target: usize,
    reset_value: LogicVector,
    enable: Option<usize>,
    d: usize,
    /// The clock rail this process is sensitive to (`clk` for the
    /// default domain, the domain name otherwise).
    clock: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum InstKind {
    BlockRam,
    Fifo,
    Lifo,
}

#[derive(Debug)]
enum InstState {
    Bram {
        mem: Vec<Option<u64>>,
        out: Option<u64>,
    },
    Queue {
        depth: usize,
        data: VecDeque<u64>,
    },
    Stack {
        depth: usize,
        data: Vec<u64>,
    },
}

#[derive(Debug)]
struct Instance {
    name: String,
    kind: InstKind,
    /// Formal name -> signal index, from the port map.
    conns: HashMap<String, usize>,
    state: InstState,
}

/// A cycle-accurate interpreter for the emitted VHDL subset.
///
/// ```
/// use hdp_hdl::interp::VhdlInterp;
/// use hdp_hdl::prim::Prim;
/// use hdp_hdl::{Entity, LogicVector, Netlist, PortDir};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let entity = Entity::builder("incr")
///     .port("a", PortDir::In, 8)?
///     .port("y", PortDir::Out, 8)?
///     .build()?;
/// let mut nl = Netlist::new(entity);
/// let a = nl.add_net("a", 8)?;
/// let y = nl.add_net("y", 8)?;
/// nl.add_cell("u_inc", Prim::Inc { width: 8 }, vec![a], vec![y])?;
/// nl.bind_port("a", a)?;
/// nl.bind_port("y", y)?;
/// let mut vm = VhdlInterp::from_netlist(&nl, "rtl")?;
/// vm.poke("a", LogicVector::from_u64(41, 8)?)?;
/// vm.settle()?;
/// assert_eq!(vm.peek("y")?.to_u64(), Some(42));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct VhdlInterp {
    entity_name: String,
    signals: Vec<Signal>,
    by_name: HashMap<String, usize>,
    comb: Vec<CombStmt>,
    /// Signal index -> indices into `comb` driving it (len > 1 only
    /// for shared tri-state signals).
    drivers: Vec<Vec<usize>>,
    /// Targets in first-driver order (the settle sweep order).
    comb_targets: Vec<usize>,
    regs: Vec<RegProc>,
    insts: Vec<Instance>,
    /// The global reset rail, if any process or instance uses it.
    rst: Option<usize>,
    /// Clock rail names in first-seen order (`clk` first when present).
    clocks: Vec<String>,
}

impl VhdlInterp {
    /// Emits the netlist as VHDL and parses it back into an
    /// interpreter — the round trip the conformance engine exercises.
    ///
    /// # Errors
    ///
    /// Propagates emission (structural validation) and parse errors.
    pub fn from_netlist(netlist: &crate::Netlist, arch: &str) -> Result<Self, InterpError> {
        let text = crate::vhdl::emit_component(netlist, arch)?;
        Self::parse(&text)
    }

    /// Parses one emitted design unit (library clause + entity +
    /// architecture).
    ///
    /// # Errors
    ///
    /// Returns [`InterpError::Parse`] for any construct outside the
    /// emitted subset.
    pub fn parse(text: &str) -> Result<Self, InterpError> {
        Parser::new(text).run()
    }

    /// The parsed entity's name.
    #[must_use]
    pub fn entity_name(&self) -> &str {
        &self.entity_name
    }

    /// The entity ports as `(name, dir, width)`, in declaration
    /// order. Implicit `clk`/`rst` rails are not listed.
    #[must_use]
    pub fn ports(&self) -> Vec<(String, PortDir, usize)> {
        self.signals
            .iter()
            .filter_map(|s| match s.kind {
                SigKind::Port(dir) => Some((s.name.clone(), dir, s.width)),
                _ => None,
            })
            .collect()
    }

    fn sig(&self, name: &str) -> Result<usize, InterpError> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| InterpError::UnknownSignal { name: name.into() })
    }

    /// Drives an input signal (or the implicit `clk`/`rst` rail).
    ///
    /// # Errors
    ///
    /// Unknown signal or width mismatch.
    pub fn poke(&mut self, name: &str, value: LogicVector) -> Result<(), InterpError> {
        let idx = self.sig(name)?;
        let s = &mut self.signals[idx];
        if value.width() != s.width {
            return Err(InterpError::Width {
                signal: name.into(),
                expected: s.width,
                found: value.width(),
            });
        }
        s.value = value;
        Ok(())
    }

    /// Reads the current value of any signal.
    ///
    /// # Errors
    ///
    /// Unknown signal.
    pub fn peek(&self, name: &str) -> Result<LogicVector, InterpError> {
        Ok(self.signals[self.sig(name)?].value)
    }

    fn lv_x(width: usize) -> LogicVector {
        LogicVector::unknown(width).expect("declared widths validated")
    }

    fn eval_expr(&self, expr: &Expr) -> LogicVector {
        let v = |i: usize| self.signals[i].value;
        match expr {
            Expr::Copy(a) => v(*a),
            Expr::Const(value) => *value,
            Expr::Not(a) => {
                let a = v(*a);
                match a.to_u64() {
                    Some(x) => LogicVector::from_u64(!x & mask(a.width()), a.width())
                        .expect("masked value fits"),
                    None => Self::lv_x(a.width()),
                }
            }
            Expr::Gate { op, a, b } => {
                let (a, b) = (v(*a), v(*b));
                let width = a.width();
                match (a.to_u64(), b.to_u64()) {
                    (Some(x), Some(y)) => {
                        let r = match op {
                            GateKind::And => x & y,
                            GateKind::Or => x | y,
                            GateKind::Xor => x ^ y,
                        };
                        LogicVector::from_u64(r, width).expect("masked value fits")
                    }
                    // Per-bit with dominance: 0 and X = 0, 1 or X = 1.
                    _ => {
                        let mut out = Self::lv_x(width);
                        for i in 0..width {
                            let x = a.bit(i).expect("within width");
                            let y = b.bit(i).expect("within width");
                            let bit = match op {
                                GateKind::And => x & y,
                                GateKind::Or => x | y,
                                GateKind::Xor => x ^ y,
                            };
                            out.set(i, bit).expect("within width");
                        }
                        out
                    }
                }
            }
            Expr::SlvCmp { eq, a, lit } => {
                let a = v(*a);
                // Metalogical comparison: decided by a definite bit
                // difference, exact when fully defined, X otherwise.
                let mut definite_diff = false;
                let mut all_defined = true;
                for i in 0..a.width() {
                    let x = a.bit(i).expect("within width");
                    let y = lit.bit(i).expect("literal width checked");
                    match x {
                        Bit::Zero | Bit::One => {
                            if x != y {
                                definite_diff = true;
                            }
                        }
                        Bit::X | Bit::Z => all_defined = false,
                    }
                }
                if definite_diff {
                    bit_lv(!*eq)
                } else if all_defined {
                    bit_lv(*eq)
                } else {
                    Self::lv_x(1)
                }
            }
            Expr::UnsCmp { op, a, b } => match (v(*a).to_u64(), v(*b).to_u64()) {
                (Some(x), Some(y)) => bit_lv(match op {
                    UnsCmpOp::Eq => x == y,
                    UnsCmpOp::Ne => x != y,
                    UnsCmpOp::Lt => x < y,
                    UnsCmpOp::Ge => x >= y,
                }),
                _ => Self::lv_x(1),
            },
            Expr::Arith { op, a, b, width } => {
                let a = v(*a).to_u64();
                let b = match (op, b) {
                    (ArithOp::Inc, _) => Some(1),
                    (_, Some(i)) => v(*i).to_u64(),
                    (_, None) => Some(0),
                };
                match (a, b) {
                    (Some(x), Some(y)) => {
                        let r = match op {
                            ArithOp::Add | ArithOp::Inc => x.wrapping_add(y),
                            ArithOp::Sub => x.wrapping_sub(y),
                        };
                        LogicVector::from_u64(r & mask(*width), *width).expect("masked value fits")
                    }
                    _ => Self::lv_x(*width),
                }
            }
            Expr::Slice { a, low, len } => v(*a).slice(*low, *len).expect("parsed bounds checked"),
            Expr::Concat(parts) => {
                let mut acc = v(parts[0]);
                for p in &parts[1..] {
                    acc = acc.concat(&v(*p)).expect("total width checked");
                }
                acc
            }
            Expr::TriBuf { en, d, width } => match v(*en).to_u64() {
                Some(1) => v(*d),
                Some(_) => LogicVector::high_z(*width).expect("declared width"),
                None => Self::lv_x(*width),
            },
        }
    }

    fn eval_case(&self, inputs: &[usize], out_width: usize, table: &[Option<u64>]) -> LogicVector {
        // Ternary evaluation, mirroring the truth-table primitive:
        // enumerate the undefined input bits; an output bit is defined
        // only when constant across the enumeration.
        let mut known: u64 = 0;
        let mut x_positions: Vec<u32> = Vec::new();
        let mut bit_pos = 0u32;
        for &input in inputs.iter().rev() {
            let value = self.signals[input].value;
            for i in 0..value.width() {
                match value.bit(i).expect("within width") {
                    Bit::One => known |= 1 << bit_pos,
                    Bit::Zero => {}
                    Bit::X | Bit::Z => x_positions.push(bit_pos),
                }
                bit_pos += 1;
            }
        }
        if x_positions.len() > MAX_X_ENUM {
            return Self::lv_x(out_width);
        }
        let full = mask(out_width);
        let mut ones = full;
        let mut zeros = full;
        for combo in 0..(1u64 << x_positions.len()) {
            let mut index = known;
            for (i, &pos) in x_positions.iter().enumerate() {
                if combo >> i & 1 == 1 {
                    index |= 1 << pos;
                }
            }
            let Some(Some(word)) = table.get(index as usize).copied() else {
                return Self::lv_x(out_width);
            };
            ones &= word;
            zeros &= !word;
        }
        let mut out = Self::lv_x(out_width);
        for i in 0..out_width {
            if ones >> i & 1 == 1 {
                out.set(i, Bit::One).expect("within width");
            } else if zeros >> i & 1 == 1 {
                out.set(i, Bit::Zero).expect("within width");
            }
        }
        out
    }

    fn eval_stmt(&self, stmt: &CombStmt) -> LogicVector {
        match stmt {
            CombStmt::Assign { expr, .. } => self.eval_expr(expr),
            CombStmt::Select {
                sel, arms, others, ..
            } => match self.signals[*sel].value.to_u64() {
                None => Self::lv_x(self.signals[stmt.target()].width),
                Some(s) => {
                    let pick = arms
                        .iter()
                        .find(|(lit, _)| *lit == s)
                        .map_or(*others, |&(_, src)| src);
                    self.signals[pick].value
                }
            },
            CombStmt::Case {
                inputs,
                out_width,
                table,
                ..
            } => self.eval_case(inputs, *out_width, table),
        }
    }

    /// Presents instance outputs (FIFO/LIFO first-word fall-through
    /// flags, registered block-RAM read data) from their state.
    fn present_instances(&mut self) {
        for ii in 0..self.insts.len() {
            let mut writes: Vec<(usize, LogicVector)> = Vec::new();
            {
                let inst = &self.insts[ii];
                let out = |formal: &str| inst.conns.get(formal).copied();
                match &inst.state {
                    InstState::Bram { out: word, .. } => {
                        if let Some(sig) = out("rdata") {
                            let w = self.signals[sig].width;
                            let v = match word {
                                Some(d) => LogicVector::from_u64(*d, w).expect("stored word fits"),
                                None => Self::lv_x(w),
                            };
                            writes.push((sig, v));
                        }
                    }
                    InstState::Queue { depth, data } => {
                        if let Some(sig) = out("rdata") {
                            let w = self.signals[sig].width;
                            let v = match data.front() {
                                Some(&d) => LogicVector::from_u64(d, w).expect("stored word"),
                                None => Self::lv_x(w),
                            };
                            writes.push((sig, v));
                        }
                        if let Some(sig) = out("empty") {
                            writes.push((sig, bit_lv(data.is_empty())));
                        }
                        if let Some(sig) = out("full") {
                            writes.push((sig, bit_lv(data.len() >= *depth)));
                        }
                    }
                    InstState::Stack { depth, data } => {
                        if let Some(sig) = out("rdata") {
                            let w = self.signals[sig].width;
                            let v = match data.last() {
                                Some(&d) => LogicVector::from_u64(d, w).expect("stored word"),
                                None => Self::lv_x(w),
                            };
                            writes.push((sig, v));
                        }
                        if let Some(sig) = out("empty") {
                            writes.push((sig, bit_lv(data.is_empty())));
                        }
                        if let Some(sig) = out("full") {
                            writes.push((sig, bit_lv(data.len() >= *depth)));
                        }
                    }
                }
            }
            for (sig, v) in writes {
                self.signals[sig].value = v;
            }
        }
    }

    /// Settles the combinational network to a fixpoint.
    ///
    /// Each pass sweeps every driven signal in declaration order,
    /// folding multi-driver (tri-state) contributions with IEEE 1164
    /// resolution; the loop exits when a pass changes nothing.
    ///
    /// # Errors
    ///
    /// [`InterpError::NoConvergence`] if the network oscillates.
    pub fn settle(&mut self) -> Result<(), InterpError> {
        self.present_instances();
        let max_passes = self.comb.len() + 8;
        for _pass in 0..max_passes {
            let mut changed = false;
            for ti in 0..self.comb_targets.len() {
                let target = self.comb_targets[ti];
                let width = self.signals[target].width;
                let driver_ids = &self.drivers[target];
                let new = if driver_ids.len() == 1 {
                    self.eval_stmt(&self.comb[driver_ids[0]])
                } else {
                    // Shared tri-state signal: resolve all drivers
                    // against a released ('Z') bus.
                    let mut acc = LogicVector::high_z(width).expect("declared width");
                    for &di in driver_ids {
                        let contribution = self.eval_stmt(&self.comb[di]);
                        acc = acc.resolve(&contribution)?;
                    }
                    acc
                };
                if new != self.signals[target].value {
                    self.signals[target].value = new;
                    changed = true;
                }
            }
            if !changed {
                return Ok(());
            }
        }
        Err(InterpError::NoConvergence { passes: max_passes })
    }

    fn strobe(&self, sig: Option<usize>) -> bool {
        sig.is_some_and(|s| self.signals[s].value.to_u64() == Some(1))
    }

    fn word(&self, inst: &str, sig: Option<usize>, what: &str) -> Result<u64, InterpError> {
        sig.and_then(|s| self.signals[s].value.to_u64())
            .ok_or_else(|| InterpError::Protocol {
                message: format!("undefined {what} for `{inst}`"),
            })
    }

    /// Applies one rising clock edge: clocked processes sample their
    /// settled inputs and commit simultaneously; component instances
    /// update their internal state.
    ///
    /// A defined-high `rst` takes the processes' synchronous-reset
    /// branch and clears FIFO/LIFO cores, exactly as the emitted
    /// `if rst = '1'` arms read.
    ///
    /// # Errors
    ///
    /// [`InterpError::Protocol`] on FIFO/LIFO underflow/overflow or an
    /// undefined strobed write, matching the netlist simulator's
    /// protocol conditions.
    pub fn tick(&mut self) -> Result<(), InterpError> {
        self.tick_filtered(None)
    }

    /// Applies a rising edge on a subset of the clock rails: only
    /// register processes clocked by a rail named in `firing` sample,
    /// and component instances (hard-wired to `clk`) update only when
    /// `clk` fires. `tick` is the all-rails special case.
    ///
    /// Coincident edges behave exactly like a single-clock tick: every
    /// firing register samples pre-edge values, then all commit.
    fn tick_filtered(&mut self, firing: Option<&[&str]>) -> Result<(), InterpError> {
        let rst_high = self
            .rst
            .is_some_and(|r| self.signals[r].value.to_u64() == Some(1));
        let fires: Vec<bool> = self
            .regs
            .iter()
            .map(|reg| match firing {
                None => true,
                Some(f) => f.contains(&self.signals[reg.clock].name.as_str()),
            })
            .collect();
        let default_fires = firing.is_none_or(|f| f.contains(&"clk"));
        // Sample every process input before committing anything: all
        // registers see the same pre-edge values.
        let mut reg_nexts: Vec<Option<LogicVector>> = Vec::with_capacity(self.regs.len());
        for (reg, &fire) in self.regs.iter().zip(&fires) {
            let next = if !fire {
                None
            } else if rst_high {
                Some(reg.reset_value)
            } else {
                let load = match reg.enable {
                    Some(en) => self.signals[en].value.to_u64() == Some(1),
                    None => true,
                };
                load.then(|| self.signals[reg.d].value)
            };
            reg_nexts.push(next);
        }
        // Instance updates (also sampled pre-edge; instance state is
        // not visible to the combinational network until the next
        // settle, so ordering against the register commits is moot).
        let n_insts = if default_fires { self.insts.len() } else { 0 };
        for ii in 0..n_insts {
            let conn = |formal: &str| self.insts[ii].conns.get(formal).copied();
            let name = self.insts[ii].name.clone();
            match self.insts[ii].kind {
                InstKind::BlockRam => {
                    let we = self.strobe(conn("we"));
                    let (waddr, wdata) = if we {
                        (
                            Some(self.word(&name, conn("waddr"), "write address")?),
                            Some(self.word(&name, conn("wdata"), "write data")?),
                        )
                    } else {
                        (None, None)
                    };
                    let raddr = conn("raddr").and_then(|s| self.signals[s].value.to_u64());
                    if let InstState::Bram { mem, out } = &mut self.insts[ii].state {
                        if let (Some(a), Some(d)) = (waddr, wdata) {
                            mem[a as usize] = Some(d);
                        }
                        *out = raddr.and_then(|a| mem[a as usize]);
                    }
                }
                InstKind::Fifo | InstKind::Lifo => {
                    if rst_high {
                        match &mut self.insts[ii].state {
                            InstState::Queue { data, .. } => data.clear(),
                            InstState::Stack { data, .. } => data.clear(),
                            InstState::Bram { .. } => {}
                        }
                        continue;
                    }
                    let push = self.strobe(conn("push"));
                    let pop = self.strobe(conn("pop"));
                    let wdata = if push {
                        Some(self.word(&name, conn("wdata"), "write data")?)
                    } else {
                        None
                    };
                    match &mut self.insts[ii].state {
                        InstState::Queue { depth, data } => {
                            if pop && data.pop_front().is_none() {
                                return Err(InterpError::Protocol {
                                    message: format!("pop on empty fifo `{name}`"),
                                });
                            }
                            if let Some(d) = wdata {
                                if data.len() >= *depth {
                                    return Err(InterpError::Protocol {
                                        message: format!("push on full fifo `{name}`"),
                                    });
                                }
                                data.push_back(d);
                            }
                        }
                        InstState::Stack { depth, data } => {
                            if pop && data.pop().is_none() {
                                return Err(InterpError::Protocol {
                                    message: format!("pop on empty lifo `{name}`"),
                                });
                            }
                            if let Some(d) = wdata {
                                if data.len() >= *depth {
                                    return Err(InterpError::Protocol {
                                        message: format!("push on full lifo `{name}`"),
                                    });
                                }
                                data.push(d);
                            }
                        }
                        InstState::Bram { .. } => {}
                    }
                }
            }
        }
        for (reg, next) in self.regs.iter().zip(reg_nexts) {
            if let Some(v) = next {
                self.signals[reg.target].value = v;
            }
        }
        Ok(())
    }

    /// One full clock cycle: settle, rising edge, settle.
    ///
    /// # Errors
    ///
    /// Propagates [`VhdlInterp::settle`] and [`VhdlInterp::tick`]
    /// failures.
    pub fn step(&mut self) -> Result<(), InterpError> {
        self.settle()?;
        self.tick()?;
        self.settle()
    }

    /// One base step of a multi-clock design: settle, a rising edge on
    /// exactly the clock rails named in `firing`, settle.
    ///
    /// Rails not named keep their registers' state; unknown names are
    /// ignored. `step_clocks(&["clk", "rd_clk", ...])` with every rail
    /// listed is identical to [`VhdlInterp::step`].
    ///
    /// # Errors
    ///
    /// Propagates [`VhdlInterp::settle`] and the same protocol errors
    /// as [`VhdlInterp::tick`].
    pub fn step_clocks(&mut self, firing: &[&str]) -> Result<(), InterpError> {
        self.settle()?;
        self.tick_filtered(Some(firing))?;
        self.settle()
    }

    /// The clock rail names referenced by the design, in first-seen
    /// order (`clk` for the default domain).
    #[must_use]
    pub fn clocks(&self) -> &[String] {
        &self.clocks
    }

    /// Out-of-band state reset, mirroring the netlist simulator's
    /// component reset: registers load their reset values, FIFO/LIFO
    /// cores clear, block-RAM read registers go undefined (memory
    /// contents are retained). Call [`VhdlInterp::settle`] afterwards.
    pub fn reset(&mut self) {
        for ri in 0..self.regs.len() {
            let (target, value) = (self.regs[ri].target, self.regs[ri].reset_value);
            self.signals[target].value = value;
        }
        for inst in &mut self.insts {
            match &mut inst.state {
                InstState::Bram { out, .. } => *out = None,
                InstState::Queue { data, .. } => data.clear(),
                InstState::Stack { data, .. } => data.clear(),
            }
        }
    }
}

fn mask(width: usize) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

fn bit_lv(value: bool) -> LogicVector {
    LogicVector::from_u64(u64::from(value), 1).expect("1-bit value")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    lines: Vec<&'a str>,
    pos: usize,
    entity_name: String,
    signals: Vec<Signal>,
    by_name: HashMap<String, usize>,
    comb: Vec<CombStmt>,
    regs: Vec<RegProc>,
    insts: Vec<Instance>,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            lines: text.lines().collect(),
            pos: 0,
            entity_name: String::new(),
            signals: Vec::new(),
            by_name: HashMap::new(),
            comb: Vec::new(),
            regs: Vec::new(),
            insts: Vec::new(),
        }
    }

    fn err(&self, message: impl Into<String>) -> InterpError {
        InterpError::Parse {
            line: self.pos.min(self.lines.len()),
            message: message.into(),
        }
    }

    /// The current line, trimmed, with any `--` comment stripped
    /// (emitted literals never contain `-`).
    fn peek_line(&self) -> Option<&'a str> {
        self.lines.get(self.pos).map(|l| {
            let l = match l.find("--") {
                Some(i) => &l[..i],
                None => l,
            };
            l.trim()
        })
    }

    fn next_line(&mut self) -> Option<&'a str> {
        let l = self.peek_line();
        if l.is_some() {
            self.pos += 1;
        }
        l
    }

    fn expect_line(&mut self, what: &str) -> Result<&'a str, InterpError> {
        self.next_line()
            .ok_or_else(|| self.err(format!("unexpected end of input, expected {what}")))
    }

    fn add_signal(
        &mut self,
        name: &str,
        width: usize,
        kind: SigKind,
    ) -> Result<usize, InterpError> {
        if self.by_name.contains_key(name) {
            return Err(self.err(format!("duplicate signal `{name}`")));
        }
        let init = match kind {
            // The clock tree and reset rail are testbench-driven: they
            // start deasserted rather than undefined.
            SigKind::Implicit => LogicVector::zeros(width).expect("validated width"),
            _ => LogicVector::unknown(width).expect("validated width"),
        };
        let idx = self.signals.len();
        self.signals.push(Signal {
            name: name.to_owned(),
            width,
            kind,
            value: init,
        });
        self.by_name.insert(name.to_owned(), idx);
        Ok(idx)
    }

    /// Resolves a referenced name, materialising implicit `clk`/`rst`.
    fn lookup(&mut self, name: &str) -> Result<usize, InterpError> {
        if let Some(&idx) = self.by_name.get(name) {
            return Ok(idx);
        }
        if name == "clk" || name == "rst" {
            return self.add_signal(name, 1, SigKind::Implicit);
        }
        Err(self.err(format!("reference to undeclared signal `{name}`")))
    }

    /// Resolves a clock rail referenced by `rising_edge(..)`,
    /// materialising it as an implicit testbench-driven signal. Any
    /// identifier is accepted: each non-default clock domain contributes
    /// its own rail, declared nowhere (like `clk` itself).
    fn implicit_rail(&mut self, name: &str) -> Result<usize, InterpError> {
        if let Some(&idx) = self.by_name.get(name) {
            return Ok(idx);
        }
        if !crate::is_valid_identifier(name) {
            return Err(self.err(format!("invalid clock rail `{name}`")));
        }
        self.add_signal(name, 1, SigKind::Implicit)
    }

    fn parse_type(&self, ty: &str) -> Result<usize, InterpError> {
        if ty == "std_logic" {
            return Ok(1);
        }
        if let Some(rest) = ty.strip_prefix("std_logic_vector(") {
            if let Some(body) = rest.strip_suffix(")") {
                if let Some(high) = body.strip_suffix(" downto 0") {
                    if let Ok(h) = high.parse::<usize>() {
                        return Ok(h + 1);
                    }
                }
            }
        }
        Err(self.err(format!("unsupported type `{ty}`")))
    }

    fn run(mut self) -> Result<VhdlInterp, InterpError> {
        // Preamble: library/use clauses and blank lines.
        while let Some(l) = self.peek_line() {
            if l.is_empty() || l.starts_with("library ") || l.starts_with("use ") {
                self.pos += 1;
            } else {
                break;
            }
        }
        self.parse_entity()?;
        while let Some(l) = self.peek_line() {
            if l.is_empty() {
                self.pos += 1;
            } else {
                break;
            }
        }
        self.parse_architecture()?;
        self.finish()
    }

    fn parse_entity(&mut self) -> Result<(), InterpError> {
        let l = self.expect_line("entity declaration")?;
        let name = l
            .strip_prefix("entity ")
            .and_then(|r| r.strip_suffix(" is"))
            .ok_or_else(|| self.err(format!("expected `entity <name> is`, got `{l}`")))?;
        self.entity_name = name.to_owned();
        loop {
            let l = self.expect_line("entity body")?;
            if l == format!("end {};", self.entity_name) {
                return Ok(());
            }
            if l == "generic (" {
                // Generic defaults are inlined at emission; skip.
                while self.expect_line("generic clause")? != ");" {}
                continue;
            }
            if l == "port (" {
                loop {
                    let p = self.expect_line("port declaration")?;
                    if p == ");" {
                        break;
                    }
                    if p.is_empty() {
                        continue; // stripped group comment
                    }
                    let p = p.strip_suffix(';').unwrap_or(p);
                    let (name, rest) = p
                        .split_once(" : ")
                        .ok_or_else(|| self.err(format!("malformed port `{p}`")))?;
                    let (dir, ty) = rest
                        .split_once(' ')
                        .ok_or_else(|| self.err(format!("malformed port `{p}`")))?;
                    let dir = match dir {
                        "in" => PortDir::In,
                        "out" => PortDir::Out,
                        "inout" => PortDir::InOut,
                        other => return Err(self.err(format!("bad port direction `{other}`"))),
                    };
                    let width = self.parse_type(ty)?;
                    self.add_signal(name, width, SigKind::Port(dir))?;
                }
                continue;
            }
            if l.is_empty() {
                continue;
            }
            return Err(self.err(format!("unexpected entity item `{l}`")));
        }
    }

    fn parse_architecture(&mut self) -> Result<(), InterpError> {
        let l = self.expect_line("architecture")?;
        let rest = l
            .strip_prefix("architecture ")
            .and_then(|r| r.strip_suffix(" is"))
            .ok_or_else(|| self.err(format!("expected architecture header, got `{l}`")))?;
        let arch_name = rest
            .split_once(" of ")
            .map(|(a, _)| a.to_owned())
            .ok_or_else(|| self.err("architecture header without entity name"))?;
        // Declarative part.
        loop {
            let l = self.expect_line("architecture declarations")?;
            if l == "begin" {
                break;
            }
            if l.is_empty() {
                continue;
            }
            if let Some(rest) = l.strip_prefix("signal ") {
                let rest = rest.strip_suffix(';').unwrap_or(rest);
                let (name, ty) = rest
                    .split_once(" : ")
                    .ok_or_else(|| self.err(format!("malformed signal `{l}`")))?;
                let width = self.parse_type(ty)?;
                self.add_signal(name, width, SigKind::Internal)?;
                continue;
            }
            if l.starts_with("component ") {
                while self.expect_line("component declaration")? != "end component;" {}
                continue;
            }
            return Err(self.err(format!("unexpected declaration `{l}`")));
        }
        // Statement part.
        let end_marker = format!("end {arch_name};");
        loop {
            let Some(l) = self.peek_line() else {
                return Err(self.err("missing architecture end"));
            };
            if l == end_marker {
                self.pos += 1;
                return Ok(());
            }
            if l.is_empty() {
                self.pos += 1;
                continue;
            }
            if l.starts_with("process (") {
                self.parse_process()?;
            } else if l.starts_with("with ") {
                self.parse_select()?;
            } else if l.contains(" generic map (") {
                self.parse_instance()?;
            } else {
                self.parse_assignment()?;
            }
        }
    }

    fn split_assign<'b>(&self, l: &'b str) -> Result<(&'b str, &'b str), InterpError> {
        let l = l.strip_suffix(';').unwrap_or(l).trim();
        l.split_once(" <= ")
            .map(|(t, r)| (t.trim(), r.trim()))
            .ok_or_else(|| self.err(format!("expected assignment, got `{l}`")))
    }

    fn parse_assignment(&mut self) -> Result<(), InterpError> {
        let l = self.expect_line("assignment")?;
        let (target, rhs) = self.split_assign(l)?;
        let target = self.lookup(target)?;
        let width = self.signals[target].width;
        let expr = self.parse_expr(rhs, width)?;
        self.comb.push(CombStmt::Assign { target, expr });
        Ok(())
    }

    fn parse_literal(&self, tok: &str) -> Option<LogicVector> {
        let inner = tok
            .strip_prefix('"')
            .and_then(|t| t.strip_suffix('"'))
            .or_else(|| tok.strip_prefix('\'').and_then(|t| t.strip_suffix('\'')))?;
        LogicVector::parse(inner).ok()
    }

    fn parse_unsigned_pair<'b>(&self, text: &'b str) -> Option<(&'b str, &'b str, &'b str)> {
        // `unsigned(a) <op> <rest>` -> (a, op, rest)
        let rest = text.strip_prefix("unsigned(")?;
        let close = rest.find(')')?;
        let a = &rest[..close];
        let tail = rest[close + 1..].trim_start();
        let (op, operand) = tail.split_once(' ')?;
        Some((a, op, operand.trim()))
    }

    fn parse_arith(&mut self, inner: &str, width: usize) -> Result<Expr, InterpError> {
        let (a, op, operand) = self
            .parse_unsigned_pair(inner)
            .ok_or_else(|| self.err(format!("unsupported arithmetic `{inner}`")))?;
        let a = self.lookup(a)?;
        match (op, operand) {
            ("+", "1") => Ok(Expr::Arith {
                op: ArithOp::Inc,
                a,
                b: None,
                width,
            }),
            ("+" | "-", _) => {
                let b = operand
                    .strip_prefix("unsigned(")
                    .and_then(|r| r.strip_suffix(')'))
                    .ok_or_else(|| self.err(format!("unsupported operand `{operand}`")))?;
                let b = self.lookup(b)?;
                Ok(Expr::Arith {
                    op: if op == "+" {
                        ArithOp::Add
                    } else {
                        ArithOp::Sub
                    },
                    a,
                    b: Some(b),
                    width,
                })
            }
            _ => Err(self.err(format!("unsupported arithmetic operator `{op}`"))),
        }
    }

    fn parse_condition(&mut self, cond: &str) -> Result<Expr, InterpError> {
        if cond.starts_with("unsigned(") {
            let (a, op, b) = self
                .parse_unsigned_pair(cond)
                .ok_or_else(|| self.err(format!("unsupported condition `{cond}`")))?;
            let op = match op {
                "=" => UnsCmpOp::Eq,
                "/=" => UnsCmpOp::Ne,
                "<" => UnsCmpOp::Lt,
                ">=" => UnsCmpOp::Ge,
                other => return Err(self.err(format!("unsupported comparison `{other}`"))),
            };
            let a = self.lookup(a)?;
            let b = b
                .strip_prefix("unsigned(")
                .and_then(|r| r.strip_suffix(')'))
                .ok_or_else(|| self.err(format!("unsupported comparison operand `{b}`")))?;
            let b = self.lookup(b)?;
            return Ok(Expr::UnsCmp { op, a, b });
        }
        // `name /= "lit"` or `name = "lit"` — the reduction operators.
        let (name, rest) = cond
            .split_once(' ')
            .ok_or_else(|| self.err(format!("unsupported condition `{cond}`")))?;
        let (op, lit) = rest
            .split_once(' ')
            .ok_or_else(|| self.err(format!("unsupported condition `{cond}`")))?;
        let eq = match op {
            "=" => true,
            "/=" => false,
            other => return Err(self.err(format!("unsupported slv comparison `{other}`"))),
        };
        let a = self.lookup(name)?;
        let lit = self
            .parse_literal(lit)
            .ok_or_else(|| self.err(format!("bad literal in condition `{cond}`")))?;
        if lit.width() != self.signals[a].width {
            return Err(self.err(format!("literal width mismatch in `{cond}`")));
        }
        Ok(Expr::SlvCmp { eq, a, lit })
    }

    fn parse_expr(&mut self, rhs: &str, width: usize) -> Result<Expr, InterpError> {
        // Literal constant.
        if let Some(value) = self.parse_literal(rhs) {
            if value.width() != width {
                return Err(self.err(format!("constant width mismatch in `{rhs}`")));
            }
            return Ok(Expr::Const(value));
        }
        // Arithmetic, slv-wrapped or (width 1) bare.
        if let Some(inner) = rhs
            .strip_prefix("std_logic_vector(")
            .and_then(|r| r.strip_suffix(')'))
        {
            return self.parse_arith(inner, width);
        }
        // Conditional forms.
        if let Some((data, rest)) = rhs.split_once(" when ") {
            let (cond, alt) = rest
                .split_once(" else ")
                .ok_or_else(|| self.err(format!("when-expression without else: `{rhs}`")))?;
            if data == "'1'" && alt == "'0'" {
                return self.parse_condition(cond);
            }
            // Tri-state buffer: `d when en = '1' else 'Z'`.
            if alt == "'Z'" || alt == "(others => 'Z')" {
                let en = cond
                    .strip_suffix(" = '1'")
                    .ok_or_else(|| self.err(format!("unsupported enable `{cond}`")))?;
                let en = self.lookup(en)?;
                let d = self.lookup(data)?;
                return Ok(Expr::TriBuf { en, d, width });
            }
            return Err(self.err(format!("unsupported when-expression `{rhs}`")));
        }
        if let Some(a) = rhs.strip_prefix("not ") {
            return Ok(Expr::Not(self.lookup(a)?));
        }
        for (tok, op) in [
            (" and ", GateKind::And),
            (" or ", GateKind::Or),
            (" xor ", GateKind::Xor),
        ] {
            if let Some((a, b)) = rhs.split_once(tok) {
                let a = self.lookup(a)?;
                let b = self.lookup(b)?;
                return Ok(Expr::Gate { op, a, b });
            }
        }
        if rhs.contains(" & ") {
            let mut parts = Vec::new();
            for p in rhs.split(" & ") {
                parts.push(self.lookup(p.trim())?);
            }
            return Ok(Expr::Concat(parts));
        }
        if rhs.starts_with("unsigned(") {
            // Width-1 arithmetic is emitted without the slv cast.
            return self.parse_arith(rhs, width);
        }
        // Slice: `name(hi downto lo)` or `name(idx)`.
        if let Some(open) = rhs.find('(') {
            if rhs.ends_with(')') {
                let name = &rhs[..open];
                let idx = &rhs[open + 1..rhs.len() - 1];
                let a = self.lookup(name)?;
                let (low, len) = if let Some((hi, lo)) = idx.split_once(" downto ") {
                    let hi: usize = hi
                        .parse()
                        .map_err(|_| self.err(format!("bad slice bound `{hi}`")))?;
                    let lo: usize = lo
                        .parse()
                        .map_err(|_| self.err(format!("bad slice bound `{lo}`")))?;
                    (lo, hi + 1 - lo)
                } else {
                    let i: usize = idx
                        .parse()
                        .map_err(|_| self.err(format!("bad index `{idx}`")))?;
                    (i, 1)
                };
                if low + len > self.signals[a].width {
                    return Err(self.err(format!("slice out of range in `{rhs}`")));
                }
                return Ok(Expr::Slice { a, low, len });
            }
        }
        // Plain copy.
        Ok(Expr::Copy(self.lookup(rhs)?))
    }

    fn parse_select(&mut self) -> Result<(), InterpError> {
        let l = self.expect_line("with-select header")?;
        let sel = l
            .strip_prefix("with ")
            .and_then(|r| r.strip_suffix(" select"))
            .ok_or_else(|| self.err(format!("malformed with-select `{l}`")))?;
        let sel = self.lookup(sel)?;
        let mut target = None;
        let mut arms: Vec<(u64, usize)> = Vec::new();
        let mut others = None;
        loop {
            let l = self.expect_line("with-select arm")?;
            let done = l.ends_with(';');
            let l = l.trim_end_matches([';', ',']);
            let (t, rest) = l
                .split_once(" <= ")
                .ok_or_else(|| self.err(format!("malformed select arm `{l}`")))?;
            let t = self.lookup(t)?;
            match target {
                None => target = Some(t),
                Some(prev) if prev == t => {}
                Some(_) => return Err(self.err("select arms disagree on target")),
            }
            let (src, choice) = rest
                .split_once(" when ")
                .ok_or_else(|| self.err(format!("malformed select arm `{l}`")))?;
            let src = self.lookup(src)?;
            if choice == "others" {
                others = Some(src);
            } else {
                let lit = self
                    .parse_literal(choice)
                    .and_then(|v| v.to_u64())
                    .ok_or_else(|| self.err(format!("bad select choice `{choice}`")))?;
                arms.push((lit, src));
            }
            if done {
                break;
            }
        }
        let target = target.ok_or_else(|| self.err("empty with-select"))?;
        let others = others.ok_or_else(|| self.err("with-select without others arm"))?;
        self.comb.push(CombStmt::Select {
            target,
            sel,
            arms,
            others,
        });
        Ok(())
    }

    fn parse_process(&mut self) -> Result<(), InterpError> {
        let header = self.expect_line("process header")?.to_owned();
        let body_start = self.pos;
        // Find the end of this process to decide its shape.
        let mut clocked = false;
        let mut end = None;
        for (i, l) in self.lines[self.pos..].iter().enumerate() {
            let t = l.trim();
            if t.contains("rising_edge") {
                clocked = true;
            }
            if t == "end process;" {
                end = Some(self.pos + i);
                break;
            }
        }
        let Some(end) = end else {
            return Err(self.err("process without `end process;`"));
        };
        self.pos = body_start;
        if clocked {
            self.parse_reg_process()?;
        } else {
            self.parse_case_process(&header)?;
        }
        self.pos = end + 1;
        Ok(())
    }

    fn parse_reg_process(&mut self) -> Result<(), InterpError> {
        // begin / if rising_edge(<clock>) then / if rst = '1' then
        let l = self.expect_line("begin")?;
        if l != "begin" {
            return Err(self.err(format!("expected `begin`, got `{l}`")));
        }
        let l = self.expect_line("clock edge")?;
        let clock_name = l
            .strip_prefix("if rising_edge(")
            .and_then(|r| r.strip_suffix(") then"))
            .ok_or_else(|| self.err(format!("expected `if rising_edge(..) then`, got `{l}`")))?
            .to_owned();
        let l = self.expect_line("reset branch")?;
        if l != "if rst = '1' then" {
            return Err(self.err(format!("expected `if rst = '1' then`, got `{l}`")));
        }
        // Make sure the implicit rails exist.
        let clock = self.implicit_rail(&clock_name)?;
        self.lookup("rst")?;
        let l = self.expect_line("reset assignment")?;
        let (target, reset_rhs) = self.split_assign(l)?;
        let target = self.lookup(target)?;
        let reset_value = self
            .parse_literal(reset_rhs)
            .ok_or_else(|| self.err(format!("bad reset literal `{reset_rhs}`")))?;
        if reset_value.width() != self.signals[target].width {
            return Err(self.err("reset literal width mismatch"));
        }
        let l = self.expect_line("enable branch")?;
        let enable = if l == "else" {
            None
        } else if let Some(en) = l
            .strip_prefix("elsif ")
            .and_then(|r| r.strip_suffix(" = '1' then"))
        {
            Some(self.lookup(en)?)
        } else {
            return Err(self.err(format!(
                "expected `else`/`elsif <en> = '1' then`, got `{l}`"
            )));
        };
        let l = self.expect_line("load assignment")?;
        let (load_target, d) = self.split_assign(l)?;
        if self.lookup(load_target)? != target {
            return Err(self.err("register process assigns two different targets"));
        }
        let d = self.lookup(d)?;
        self.regs.push(RegProc {
            target,
            reset_value,
            enable,
            d,
            clock,
        });
        Ok(())
    }

    fn parse_case_process(&mut self, _header: &str) -> Result<(), InterpError> {
        let l = self.expect_line("process begin")?;
        if l != "begin" {
            return Err(self.err(format!("expected `begin`, got `{l}`")));
        }
        let l = self.expect_line("case statement")?;
        let sel = l
            .strip_prefix("case ")
            .and_then(|r| r.strip_suffix(" is"))
            .ok_or_else(|| self.err(format!("expected case statement, got `{l}`")))?;
        let mut inputs = Vec::new();
        for part in sel.split(" & ") {
            inputs.push(self.lookup(part.trim())?);
        }
        let total: usize = inputs.iter().map(|&i| self.signals[i].width).sum();
        if total > 24 {
            return Err(self.err(format!("case selector too wide ({total} bits)")));
        }
        let mut table: Vec<Option<u64>> = vec![None; 1usize << total];
        let mut target = None;
        let mut out_width = 0;
        loop {
            let l = self.expect_line("case arm")?;
            if l == "end case;" {
                break;
            }
            let arm = l
                .strip_prefix("when ")
                .ok_or_else(|| self.err(format!("expected case arm, got `{l}`")))?;
            let (choice, rest) = arm
                .split_once(" => ")
                .ok_or_else(|| self.err(format!("malformed case arm `{l}`")))?;
            let (t, rhs) = self.split_assign(rest)?;
            let t = self.lookup(t)?;
            match target {
                None => {
                    target = Some(t);
                    out_width = self.signals[t].width;
                }
                Some(prev) if prev == t => {}
                Some(_) => return Err(self.err("case arms disagree on target")),
            }
            if choice == "others" {
                // Emitted as all-X: leave unset entries as None.
                continue;
            }
            let index = self
                .parse_literal(choice)
                .and_then(|v| v.to_u64())
                .ok_or_else(|| self.err(format!("bad case choice `{choice}`")))?;
            let word = self
                .parse_literal(rhs)
                .and_then(|v| v.to_u64())
                .ok_or_else(|| self.err(format!("bad case output `{rhs}`")))?;
            table[index as usize] = Some(word);
        }
        let target = target.ok_or_else(|| self.err("case statement without arms"))?;
        self.comb.push(CombStmt::Case {
            target,
            inputs,
            out_width,
            table,
        });
        Ok(())
    }

    fn parse_kv_list(&self, body: &str) -> Result<Vec<(String, String)>, InterpError> {
        let mut out = Vec::new();
        for part in body.split(", ") {
            let (k, v) = part
                .split_once(" => ")
                .ok_or_else(|| self.err(format!("malformed association `{part}`")))?;
            out.push((k.trim().to_owned(), v.trim().to_owned()));
        }
        Ok(out)
    }

    fn parse_instance(&mut self) -> Result<(), InterpError> {
        let l = self.expect_line("instance")?.to_owned();
        let (inst_name, rest) = l
            .split_once(" : ")
            .ok_or_else(|| self.err(format!("malformed instantiation `{l}`")))?;
        let (comp, generics) = rest
            .split_once(" generic map (")
            .ok_or_else(|| self.err(format!("instantiation without generic map `{l}`")))?;
        let generics = generics
            .strip_suffix(')')
            .ok_or_else(|| self.err(format!("unterminated generic map `{l}`")))?;
        let generics = self.parse_kv_list(generics)?;
        let generic = |name: &str| -> Result<usize, InterpError> {
            generics
                .iter()
                .find(|(k, _)| k == name)
                .and_then(|(_, v)| v.parse::<usize>().ok())
                .ok_or_else(|| self.err(format!("missing generic `{name}` on `{inst_name}`")))
        };
        let (kind, state) = match comp {
            "block_ram" => {
                let aw = generic("addr_width")?;
                if aw > 24 {
                    return Err(self.err(format!("block_ram addr_width {aw} too large")));
                }
                (
                    InstKind::BlockRam,
                    InstState::Bram {
                        mem: vec![None; 1usize << aw],
                        out: None,
                    },
                )
            }
            "fifo_core" => (
                InstKind::Fifo,
                InstState::Queue {
                    depth: generic("depth")?,
                    data: VecDeque::new(),
                },
            ),
            "lifo_core" => (
                InstKind::Lifo,
                InstState::Stack {
                    depth: generic("depth")?,
                    data: Vec::new(),
                },
            ),
            other => return Err(self.err(format!("unknown component `{other}`"))),
        };
        let l = self.expect_line("port map")?;
        let body = l
            .strip_prefix("port map (")
            .and_then(|r| r.strip_suffix(");"))
            .ok_or_else(|| self.err(format!("malformed port map `{l}`")))?;
        let mut conns = HashMap::new();
        for (formal, actual) in self.parse_kv_list(body)? {
            let sig = self.lookup(&actual)?;
            conns.insert(formal, sig);
        }
        self.insts.push(Instance {
            name: inst_name.to_owned(),
            kind,
            conns,
            state,
        });
        Ok(())
    }

    fn finish(self) -> Result<VhdlInterp, InterpError> {
        let mut drivers: Vec<Vec<usize>> = vec![Vec::new(); self.signals.len()];
        let mut comb_targets: Vec<usize> = Vec::new();
        for (si, stmt) in self.comb.iter().enumerate() {
            let t = stmt.target();
            if drivers[t].is_empty() {
                comb_targets.push(t);
            }
            drivers[t].push(si);
        }
        let rst = self.by_name.get("rst").copied();
        // Clock rails in deterministic order: the default `clk` first
        // when anything uses it, then the other domains as their
        // register processes appeared.
        let mut clocks: Vec<String> = Vec::new();
        if !self.insts.is_empty()
            || self
                .regs
                .iter()
                .any(|r| self.signals[r.clock].name == "clk")
        {
            clocks.push("clk".to_owned());
        }
        for reg in &self.regs {
            let name = &self.signals[reg.clock].name;
            if !clocks.iter().any(|c| c == name) {
                clocks.push(name.clone());
            }
        }
        Ok(VhdlInterp {
            entity_name: self.entity_name,
            signals: self.signals,
            by_name: self.by_name,
            comb: self.comb,
            drivers,
            comb_targets,
            regs: self.regs,
            insts: self.insts,
            rst,
            clocks,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prim::{CmpKind, GateOp, Prim};
    use crate::{Entity, Netlist};

    fn lv(v: u64, w: usize) -> LogicVector {
        LogicVector::from_u64(v, w).unwrap()
    }

    /// Counter netlist: q' = q + 1 via Reg + Inc (the netlist-sim
    /// reference example).
    fn counter_netlist() -> Netlist {
        let entity = Entity::builder("counter")
            .port("q", PortDir::Out, 8)
            .unwrap()
            .build()
            .unwrap();
        let mut nl = Netlist::new(entity);
        let q = nl.add_net("q", 8).unwrap();
        let d = nl.add_net("d", 8).unwrap();
        nl.add_cell(
            "u_reg",
            Prim::Reg {
                width: 8,
                has_enable: false,
                reset_value: 0,
            },
            vec![d],
            vec![q],
        )
        .unwrap();
        nl.add_cell("u_inc", Prim::Inc { width: 8 }, vec![q], vec![d])
            .unwrap();
        nl.bind_port("q", q).unwrap();
        nl
    }

    #[test]
    fn counter_counts_through_emitted_text() {
        let mut vm = VhdlInterp::from_netlist(&counter_netlist(), "rtl").unwrap();
        vm.reset();
        vm.settle().unwrap();
        assert_eq!(vm.peek("q").unwrap().to_u64(), Some(0));
        for i in 1..=7u64 {
            vm.step().unwrap();
            assert_eq!(vm.peek("q").unwrap().to_u64(), Some(i));
        }
    }

    #[test]
    fn synchronous_rst_signal_resets_registers() {
        let mut vm = VhdlInterp::from_netlist(&counter_netlist(), "rtl").unwrap();
        vm.reset();
        vm.settle().unwrap();
        vm.step().unwrap();
        vm.step().unwrap();
        assert_eq!(vm.peek("q").unwrap().to_u64(), Some(2));
        // Assert the rst rail: the emitted `if rst = '1'` branch runs.
        vm.poke("rst", lv(1, 1)).unwrap();
        vm.step().unwrap();
        assert_eq!(vm.peek("q").unwrap().to_u64(), Some(0));
        vm.poke("rst", lv(0, 1)).unwrap();
        vm.step().unwrap();
        assert_eq!(vm.peek("q").unwrap().to_u64(), Some(1));
    }

    #[test]
    fn gates_comparisons_and_mux_evaluate() {
        let entity = Entity::builder("comb")
            .port("a", PortDir::In, 4)
            .unwrap()
            .port("b", PortDir::In, 4)
            .unwrap()
            .port("sel", PortDir::In, 1)
            .unwrap()
            .port("y_and", PortDir::Out, 4)
            .unwrap()
            .port("y_eq", PortDir::Out, 1)
            .unwrap()
            .port("y_mux", PortDir::Out, 4)
            .unwrap()
            .build()
            .unwrap();
        let mut nl = Netlist::new(entity);
        let a = nl.add_net("a", 4).unwrap();
        let b = nl.add_net("b", 4).unwrap();
        let sel = nl.add_net("sel", 1).unwrap();
        let y_and = nl.add_net("y_and", 4).unwrap();
        let y_eq = nl.add_net("y_eq", 1).unwrap();
        let y_mux = nl.add_net("y_mux", 4).unwrap();
        nl.add_cell(
            "u_and",
            Prim::Gate {
                op: GateOp::And,
                width: 4,
            },
            vec![a, b],
            vec![y_and],
        )
        .unwrap();
        nl.add_cell(
            "u_eq",
            Prim::Cmp {
                kind: CmpKind::Eq,
                width: 4,
            },
            vec![a, b],
            vec![y_eq],
        )
        .unwrap();
        nl.add_cell(
            "u_mux",
            Prim::Mux { width: 4, ways: 2 },
            vec![sel, a, b],
            vec![y_mux],
        )
        .unwrap();
        for (p, n) in [
            ("a", a),
            ("b", b),
            ("sel", sel),
            ("y_and", y_and),
            ("y_eq", y_eq),
            ("y_mux", y_mux),
        ] {
            nl.bind_port(p, n).unwrap();
        }
        let mut vm = VhdlInterp::from_netlist(&nl, "rtl").unwrap();
        vm.poke("a", lv(0b1100, 4)).unwrap();
        vm.poke("b", lv(0b1010, 4)).unwrap();
        vm.poke("sel", lv(1, 1)).unwrap();
        vm.settle().unwrap();
        assert_eq!(vm.peek("y_and").unwrap().to_u64(), Some(0b1000));
        assert_eq!(vm.peek("y_eq").unwrap().to_u64(), Some(0));
        assert_eq!(vm.peek("y_mux").unwrap().to_u64(), Some(0b1010));
        // Undefined select poisons the mux output.
        vm.poke("sel", LogicVector::unknown(1).unwrap()).unwrap();
        vm.settle().unwrap();
        assert_eq!(vm.peek("y_mux").unwrap().to_u64(), None);
    }

    #[test]
    fn fifo_core_instance_runs_and_reports_protocol_errors() {
        let entity = Entity::builder("f")
            .port("push", PortDir::In, 1)
            .unwrap()
            .port("pop", PortDir::In, 1)
            .unwrap()
            .port("wdata", PortDir::In, 8)
            .unwrap()
            .port("rdata", PortDir::Out, 8)
            .unwrap()
            .port("empty", PortDir::Out, 1)
            .unwrap()
            .port("full", PortDir::Out, 1)
            .unwrap()
            .build()
            .unwrap();
        let mut nl = Netlist::new(entity);
        let push = nl.add_net("push", 1).unwrap();
        let pop = nl.add_net("pop", 1).unwrap();
        let wdata = nl.add_net("wdata", 8).unwrap();
        let rdata = nl.add_net("rdata", 8).unwrap();
        let empty = nl.add_net("empty", 1).unwrap();
        let full = nl.add_net("full", 1).unwrap();
        nl.add_cell(
            "u_fifo",
            Prim::FifoMacro { depth: 2, width: 8 },
            vec![push, pop, wdata],
            vec![rdata, empty, full],
        )
        .unwrap();
        for (p, n) in [
            ("push", push),
            ("pop", pop),
            ("wdata", wdata),
            ("rdata", rdata),
            ("empty", empty),
            ("full", full),
        ] {
            nl.bind_port(p, n).unwrap();
        }
        let mut vm = VhdlInterp::from_netlist(&nl, "rtl").unwrap();
        vm.poke("push", lv(0, 1)).unwrap();
        vm.poke("pop", lv(0, 1)).unwrap();
        vm.poke("wdata", lv(0, 8)).unwrap();
        vm.reset();
        vm.settle().unwrap();
        assert_eq!(vm.peek("empty").unwrap().to_u64(), Some(1));
        vm.poke("push", lv(1, 1)).unwrap();
        vm.poke("wdata", lv(0x33, 8)).unwrap();
        vm.step().unwrap();
        vm.poke("push", lv(0, 1)).unwrap();
        vm.settle().unwrap();
        // First-word fall-through.
        assert_eq!(vm.peek("rdata").unwrap().to_u64(), Some(0x33));
        assert_eq!(vm.peek("empty").unwrap().to_u64(), Some(0));
        // Drain, then pop on empty is a protocol error.
        vm.poke("pop", lv(1, 1)).unwrap();
        vm.step().unwrap();
        let err = vm.step().unwrap_err();
        assert!(matches!(err, InterpError::Protocol { .. }));
    }

    #[test]
    fn tristate_bus_resolves_between_drivers() {
        let entity = Entity::builder("bus3")
            .port("en_a", PortDir::In, 1)
            .unwrap()
            .port("en_b", PortDir::In, 1)
            .unwrap()
            .port("da", PortDir::In, 4)
            .unwrap()
            .port("db", PortDir::In, 4)
            .unwrap()
            .port("y", PortDir::Out, 4)
            .unwrap()
            .build()
            .unwrap();
        let mut nl = Netlist::new(entity);
        let en_a = nl.add_net("en_a", 1).unwrap();
        let en_b = nl.add_net("en_b", 1).unwrap();
        let da = nl.add_net("da", 4).unwrap();
        let db = nl.add_net("db", 4).unwrap();
        let y = nl.add_net("y", 4).unwrap();
        nl.add_cell("u_ta", Prim::TriBuf { width: 4 }, vec![en_a, da], vec![y])
            .unwrap();
        nl.add_cell("u_tb", Prim::TriBuf { width: 4 }, vec![en_b, db], vec![y])
            .unwrap();
        for (p, n) in [
            ("en_a", en_a),
            ("en_b", en_b),
            ("da", da),
            ("db", db),
            ("y", y),
        ] {
            nl.bind_port(p, n).unwrap();
        }
        let mut vm = VhdlInterp::from_netlist(&nl, "rtl").unwrap();
        vm.poke("da", lv(0xA, 4)).unwrap();
        vm.poke("db", lv(0x5, 4)).unwrap();
        vm.poke("en_a", lv(1, 1)).unwrap();
        vm.poke("en_b", lv(0, 1)).unwrap();
        vm.settle().unwrap();
        assert_eq!(vm.peek("y").unwrap().to_u64(), Some(0xA));
        vm.poke("en_a", lv(0, 1)).unwrap();
        vm.poke("en_b", lv(1, 1)).unwrap();
        vm.settle().unwrap();
        assert_eq!(vm.peek("y").unwrap().to_u64(), Some(0x5));
        // Both released: the bus floats.
        vm.poke("en_b", lv(0, 1)).unwrap();
        vm.settle().unwrap();
        assert_eq!(vm.peek("y").unwrap(), LogicVector::high_z(4).unwrap());
        // Contention: both drive, bits disagree -> X where they clash.
        vm.poke("en_a", lv(1, 1)).unwrap();
        vm.poke("en_b", lv(1, 1)).unwrap();
        vm.settle().unwrap();
        assert_eq!(vm.peek("y").unwrap().to_u64(), None);
    }

    #[test]
    fn truth_table_case_uses_ternary_semantics() {
        // y bit0 = b, bit1 = a; with b undefined only bit0 is X.
        let entity = Entity::builder("tt")
            .port("a", PortDir::In, 1)
            .unwrap()
            .port("b", PortDir::In, 1)
            .unwrap()
            .port("y", PortDir::Out, 2)
            .unwrap()
            .build()
            .unwrap();
        let mut nl = Netlist::new(entity);
        let a = nl.add_net("a", 1).unwrap();
        let b = nl.add_net("b", 1).unwrap();
        let y = nl.add_net("y", 2).unwrap();
        nl.add_cell(
            "u_tt",
            Prim::TruthTable {
                in_widths: vec![1, 1],
                out_width: 2,
                table: vec![0b00, 0b01, 0b10, 0b11],
            },
            vec![a, b],
            vec![y],
        )
        .unwrap();
        nl.bind_port("a", a).unwrap();
        nl.bind_port("b", b).unwrap();
        nl.bind_port("y", y).unwrap();
        let mut vm = VhdlInterp::from_netlist(&nl, "rtl").unwrap();
        vm.poke("a", lv(1, 1)).unwrap();
        vm.poke("b", LogicVector::unknown(1).unwrap()).unwrap();
        vm.settle().unwrap();
        let y = vm.peek("y").unwrap();
        assert_eq!(y.bit(1).unwrap(), Bit::One);
        assert_eq!(y.bit(0).unwrap(), Bit::X);
        vm.poke("b", lv(1, 1)).unwrap();
        vm.settle().unwrap();
        assert_eq!(vm.peek("y").unwrap().to_u64(), Some(0b11));
    }

    #[test]
    fn non_subset_text_is_rejected_with_line_info() {
        let text = "library ieee;\n\nentity x is\n  port (\n    a : in std_logic\n  );\nend x;\n\narchitecture rtl of x is\nbegin\n  a <= a sll 2;\nend rtl;\n";
        let err = VhdlInterp::parse(text).unwrap_err();
        match err {
            InterpError::Parse { line, .. } => assert_eq!(line, 11),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn ports_reports_entity_interface() {
        let vm = VhdlInterp::from_netlist(&counter_netlist(), "rtl").unwrap();
        assert_eq!(vm.entity_name(), "counter");
        assert_eq!(vm.ports(), vec![("q".to_owned(), PortDir::Out, 8)]);
    }

    #[test]
    fn step_clocks_ticks_only_firing_rails() {
        // Two free-running counters, one per domain.
        let entity = Entity::builder("two_cnt")
            .port("qa", PortDir::Out, 4)
            .unwrap()
            .port("qb", PortDir::Out, 4)
            .unwrap()
            .build()
            .unwrap();
        let mut nl = Netlist::new(entity);
        let rd = nl.add_domain("rd_clk", 2).unwrap();
        let qa = nl.add_net("qa", 4).unwrap();
        let da = nl.add_net("da", 4).unwrap();
        let qb = nl.add_net("qb", 4).unwrap();
        let db = nl.add_net("db", 4).unwrap();
        let reg = |reset_value| Prim::Reg {
            width: 4,
            has_enable: false,
            reset_value,
        };
        nl.add_cell("u_a", reg(0), vec![da], vec![qa]).unwrap();
        nl.add_cell("u_ia", Prim::Inc { width: 4 }, vec![qa], vec![da])
            .unwrap();
        nl.add_cell_in_domain("u_b", reg(0), vec![db], vec![qb], rd)
            .unwrap();
        nl.add_cell("u_ib", Prim::Inc { width: 4 }, vec![qb], vec![db])
            .unwrap();
        nl.bind_port("qa", qa).unwrap();
        nl.bind_port("qb", qb).unwrap();
        let mut vm = VhdlInterp::from_netlist(&nl, "rtl").unwrap();
        vm.reset();
        assert_eq!(vm.clocks(), ["clk".to_owned(), "rd_clk".to_owned()]);
        vm.step_clocks(&["clk", "rd_clk"]).unwrap(); // both edges coincide
        vm.step_clocks(&["clk"]).unwrap(); // rd_clk sits this one out
        assert_eq!(vm.peek("qa").unwrap().to_u64(), Some(2));
        assert_eq!(vm.peek("qb").unwrap().to_u64(), Some(1));
        // All rails firing is exactly the single-clock step.
        vm.step_clocks(&["clk", "rd_clk"]).unwrap();
        assert_eq!(vm.peek("qa").unwrap().to_u64(), Some(3));
        assert_eq!(vm.peek("qb").unwrap().to_u64(), Some(2));
    }
}
