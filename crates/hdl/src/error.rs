//! Error types for the HDL intermediate representation.

use std::error::Error;
use std::fmt;

/// Errors produced while constructing or validating HDL structures.
///
/// Every fallible public operation in [`crate`] returns this type, so a
/// single `?`-friendly error covers entity construction, netlist wiring
/// and validation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum HdlError {
    /// A name is not a legal VHDL basic identifier.
    InvalidIdentifier {
        /// The offending name.
        name: String,
    },
    /// Two ports, generics, nets or cells share the same name.
    DuplicateName {
        /// The duplicated name.
        name: String,
        /// What kind of object carries the name (`"port"`, `"net"`, ...).
        kind: &'static str,
    },
    /// A vector was declared or used with width zero or above the
    /// supported maximum of 64 bits.
    InvalidWidth {
        /// The requested width.
        width: usize,
    },
    /// Two connected objects disagree on width.
    WidthMismatch {
        /// Description of the connection site.
        context: String,
        /// Width expected at the site.
        expected: usize,
        /// Width actually found.
        found: usize,
    },
    /// A net is driven by more than one cell output or input port.
    MultipleDrivers {
        /// Name of the multiply-driven net.
        net: String,
    },
    /// A net has no driver at all.
    NoDriver {
        /// Name of the undriven net.
        net: String,
    },
    /// A cell pin or entity port was left unconnected.
    Unconnected {
        /// Description of the dangling pin.
        context: String,
    },
    /// A referenced net, cell or port does not exist.
    NotFound {
        /// What kind of object was looked up.
        kind: &'static str,
        /// The name or index that failed to resolve.
        name: String,
    },
    /// The combinational part of a netlist contains a cycle.
    CombinationalLoop {
        /// Name of a net on the cycle.
        net: String,
    },
    /// A value does not fit in the vector width it was assigned to.
    ValueOverflow {
        /// The value that overflowed.
        value: u64,
        /// The destination width in bits.
        width: usize,
    },
    /// An index into a vector or memory is out of range.
    IndexOutOfRange {
        /// The offending index.
        index: usize,
        /// The valid length.
        len: usize,
    },
    /// A clock-domain declaration or reference is invalid.
    InvalidDomain {
        /// Description of the problem.
        context: String,
    },
}

impl fmt::Display for HdlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HdlError::InvalidIdentifier { name } => {
                write!(f, "invalid VHDL identifier `{name}`")
            }
            HdlError::DuplicateName { name, kind } => {
                write!(f, "duplicate {kind} name `{name}`")
            }
            HdlError::InvalidWidth { width } => {
                write!(f, "invalid vector width {width} (must be 1..=64)")
            }
            HdlError::WidthMismatch {
                context,
                expected,
                found,
            } => write!(
                f,
                "width mismatch at {context}: expected {expected}, found {found}"
            ),
            HdlError::MultipleDrivers { net } => {
                write!(f, "net `{net}` has multiple drivers")
            }
            HdlError::NoDriver { net } => write!(f, "net `{net}` has no driver"),
            HdlError::Unconnected { context } => {
                write!(f, "unconnected pin at {context}")
            }
            HdlError::NotFound { kind, name } => write!(f, "{kind} `{name}` not found"),
            HdlError::CombinationalLoop { net } => {
                write!(f, "combinational loop through net `{net}`")
            }
            HdlError::ValueOverflow { value, width } => {
                write!(f, "value {value} does not fit in {width} bits")
            }
            HdlError::IndexOutOfRange { index, len } => {
                write!(f, "index {index} out of range for length {len}")
            }
            HdlError::InvalidDomain { context } => {
                write!(f, "invalid clock domain: {context}")
            }
        }
    }
}

impl Error for HdlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let err = HdlError::InvalidIdentifier {
            name: "9bad".into(),
        };
        let text = err.to_string();
        assert!(text.starts_with("invalid"));
        assert!(!text.ends_with('.'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<HdlError>();
    }

    #[test]
    fn width_mismatch_mentions_both_widths() {
        let err = HdlError::WidthMismatch {
            context: "port data".into(),
            expected: 8,
            found: 24,
        };
        let text = err.to_string();
        assert!(text.contains('8') && text.contains("24"));
    }
}
