//! Four-state logic values modelled after VHDL `std_logic`.

use std::fmt;
use std::ops::{BitAnd, BitOr, BitXor, Not};

/// A single four-state logic value.
///
/// The paper's generated components are plain VHDL using `std_logic`
/// ports (Figures 4 and 5). Of the nine `std_logic` states only four are
/// relevant to synthesis and cycle simulation: strong `'0'`/`'1'`, the
/// unknown `'X'` produced by uninitialised storage or bus conflicts, and
/// the high-impedance `'Z'` used on shared buses (the external SRAM data
/// bus on the XSB-300E board is such a bus).
///
/// Logical operators follow the IEEE 1164 resolution rules restricted to
/// these four states: `Z` behaves as an unknown input to gates.
///
/// # Example
///
/// ```
/// use hdp_hdl::Bit;
///
/// assert_eq!(Bit::One & Bit::Zero, Bit::Zero);
/// assert_eq!(Bit::One & Bit::X, Bit::X);
/// assert_eq!(Bit::Zero & Bit::X, Bit::Zero); // 0 dominates AND
/// assert_eq!(!Bit::Zero, Bit::One);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Bit {
    /// Strong logic low, `'0'`.
    #[default]
    Zero,
    /// Strong logic high, `'1'`.
    One,
    /// Unknown, `'X'`.
    X,
    /// High impedance, `'Z'`.
    Z,
}

impl Bit {
    /// Returns `true` if the value is a defined `0` or `1`.
    ///
    /// ```
    /// use hdp_hdl::Bit;
    /// assert!(Bit::One.is_defined());
    /// assert!(!Bit::Z.is_defined());
    /// ```
    #[must_use]
    pub fn is_defined(self) -> bool {
        matches!(self, Bit::Zero | Bit::One)
    }

    /// Converts to `bool`, treating `X` and `Z` as undefined.
    ///
    /// ```
    /// use hdp_hdl::Bit;
    /// assert_eq!(Bit::One.to_bool(), Some(true));
    /// assert_eq!(Bit::X.to_bool(), None);
    /// ```
    #[must_use]
    pub fn to_bool(self) -> Option<bool> {
        match self {
            Bit::Zero => Some(false),
            Bit::One => Some(true),
            Bit::X | Bit::Z => None,
        }
    }

    /// IEEE 1164 resolution of two drivers on the same net.
    ///
    /// `Z` yields to any driven value; conflicting strong drivers
    /// resolve to `X`.
    ///
    /// ```
    /// use hdp_hdl::Bit;
    /// assert_eq!(Bit::Z.resolve(Bit::One), Bit::One);
    /// assert_eq!(Bit::One.resolve(Bit::Zero), Bit::X);
    /// assert_eq!(Bit::Z.resolve(Bit::Z), Bit::Z);
    /// ```
    #[must_use]
    pub fn resolve(self, other: Bit) -> Bit {
        match (self, other) {
            (Bit::Z, b) => b,
            (a, Bit::Z) => a,
            (a, b) if a == b => a,
            _ => Bit::X,
        }
    }

    /// The VHDL character literal for this value (`'0'`, `'1'`, `'X'`, `'Z'`).
    #[must_use]
    pub fn to_char(self) -> char {
        match self {
            Bit::Zero => '0',
            Bit::One => '1',
            Bit::X => 'X',
            Bit::Z => 'Z',
        }
    }

    /// Parses a VHDL character literal.
    ///
    /// Accepts `0`, `1`, `X`/`x`, `Z`/`z`, plus the common aliases
    /// `U`/`u`, `W`/`w`, `-` (mapped to `X`) and `L`/`H` (mapped to the
    /// corresponding strong value), following `to_X01Z` semantics.
    ///
    /// ```
    /// use hdp_hdl::Bit;
    /// assert_eq!(Bit::from_char('H'), Some(Bit::One));
    /// assert_eq!(Bit::from_char('q'), None);
    /// ```
    #[must_use]
    pub fn from_char(c: char) -> Option<Bit> {
        match c {
            '0' | 'L' | 'l' => Some(Bit::Zero),
            '1' | 'H' | 'h' => Some(Bit::One),
            'X' | 'x' | 'U' | 'u' | 'W' | 'w' | '-' => Some(Bit::X),
            'Z' | 'z' => Some(Bit::Z),
            _ => None,
        }
    }
}

impl From<bool> for Bit {
    fn from(value: bool) -> Self {
        if value {
            Bit::One
        } else {
            Bit::Zero
        }
    }
}

impl Not for Bit {
    type Output = Bit;

    fn not(self) -> Bit {
        match self {
            Bit::Zero => Bit::One,
            Bit::One => Bit::Zero,
            Bit::X | Bit::Z => Bit::X,
        }
    }
}

impl BitAnd for Bit {
    type Output = Bit;

    fn bitand(self, rhs: Bit) -> Bit {
        match (self, rhs) {
            (Bit::Zero, _) | (_, Bit::Zero) => Bit::Zero,
            (Bit::One, Bit::One) => Bit::One,
            _ => Bit::X,
        }
    }
}

impl BitOr for Bit {
    type Output = Bit;

    fn bitor(self, rhs: Bit) -> Bit {
        match (self, rhs) {
            (Bit::One, _) | (_, Bit::One) => Bit::One,
            (Bit::Zero, Bit::Zero) => Bit::Zero,
            _ => Bit::X,
        }
    }
}

impl BitXor for Bit {
    type Output = Bit;

    fn bitxor(self, rhs: Bit) -> Bit {
        match (self.to_bool(), rhs.to_bool()) {
            (Some(a), Some(b)) => Bit::from(a ^ b),
            _ => Bit::X,
        }
    }
}

impl fmt::Display for Bit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "'{}'", self.to_char())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [Bit; 4] = [Bit::Zero, Bit::One, Bit::X, Bit::Z];

    #[test]
    fn and_truth_table() {
        assert_eq!(Bit::One & Bit::One, Bit::One);
        assert_eq!(Bit::One & Bit::Zero, Bit::Zero);
        assert_eq!(Bit::Zero & Bit::X, Bit::Zero);
        assert_eq!(Bit::One & Bit::X, Bit::X);
        assert_eq!(Bit::Z & Bit::One, Bit::X);
    }

    #[test]
    fn or_truth_table() {
        assert_eq!(Bit::Zero | Bit::Zero, Bit::Zero);
        assert_eq!(Bit::One | Bit::X, Bit::One);
        assert_eq!(Bit::Zero | Bit::X, Bit::X);
        assert_eq!(Bit::Z | Bit::Zero, Bit::X);
    }

    #[test]
    fn xor_is_defined_only_on_defined_inputs() {
        assert_eq!(Bit::One ^ Bit::Zero, Bit::One);
        assert_eq!(Bit::One ^ Bit::One, Bit::Zero);
        for b in ALL {
            assert_eq!(Bit::X ^ b, Bit::X);
            assert_eq!(b ^ Bit::Z, Bit::X);
        }
    }

    #[test]
    fn not_inverts_defined_values() {
        assert_eq!(!Bit::Zero, Bit::One);
        assert_eq!(!Bit::One, Bit::Zero);
        assert_eq!(!Bit::X, Bit::X);
        assert_eq!(!Bit::Z, Bit::X);
    }

    #[test]
    fn resolution_is_commutative() {
        for a in ALL {
            for b in ALL {
                assert_eq!(a.resolve(b), b.resolve(a), "{a} resolve {b}");
            }
        }
    }

    #[test]
    fn resolution_z_is_identity() {
        for a in ALL {
            assert_eq!(Bit::Z.resolve(a), a);
        }
    }

    #[test]
    fn char_round_trip() {
        for a in ALL {
            assert_eq!(Bit::from_char(a.to_char()), Some(a));
        }
    }

    #[test]
    fn from_bool() {
        assert_eq!(Bit::from(true), Bit::One);
        assert_eq!(Bit::from(false), Bit::Zero);
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(Bit::default(), Bit::Zero);
    }

    #[test]
    fn display_uses_vhdl_literal_syntax() {
        assert_eq!(Bit::One.to_string(), "'1'");
        assert_eq!(Bit::Z.to_string(), "'Z'");
    }
}
