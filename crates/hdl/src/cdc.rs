//! Static clock-domain-crossing lint.
//!
//! Multi-clock designs fail in ways no cycle-accurate single-trace
//! simulation can exhibit: a register sampling a signal launched from
//! another clock domain can go metastable on silicon whenever the two
//! edges land close together. The classic discipline — and the one the
//! generated `async_fifo` family follows — is that every crossing must
//! be either a single-bit (or Gray-coded vector) launched register
//! sampled by a clean two-flop synchronizer, with no combinational
//! logic on the crossing path.
//!
//! [`lint`] walks every driver→sampler edge of a validated [`Netlist`]
//! and reports each crossing that breaks the discipline:
//!
//! * [`CdcViolation::CombinationalCrossing`] — a foreign-domain launch
//!   reaches the sampler through combinational logic, so glitches on
//!   the path can be captured.
//! * [`CdcViolation::UnsynchronizedMultiBit`] — a multi-bit vector
//!   crosses directly but its launching register is not Gray-coded, so
//!   per-bit skew can deliver torn values.
//! * [`CdcViolation::MissingSynchronizer`] — the crossing is direct but
//!   the sampling register is not a clean synchronizer head (it has a
//!   clock enable, is a macro cell, or its output feeds anything other
//!   than register data pins in its own domain).
//!
//! Launches from entity input ports carry no domain and are never
//! flagged; single-domain netlists trivially pass.

use crate::netlist::Driver;
use crate::prim::{GateOp, Prim};
use crate::{CellId, NetId, Netlist};
use std::fmt;

/// One clock-domain-crossing violation found by [`lint`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CdcViolation {
    /// A foreign-domain launch reaches a sampler through combinational
    /// logic.
    CombinationalCrossing {
        /// The launching sequential cell.
        launch: String,
        /// The sampling sequential cell.
        sampler: String,
        /// The net at the sampler pin where the cone was entered.
        net: String,
    },
    /// A multi-bit vector crosses domains without Gray coding.
    UnsynchronizedMultiBit {
        /// The launching sequential cell.
        launch: String,
        /// The sampling sequential cell.
        sampler: String,
        /// The crossing net.
        net: String,
        /// The crossing width in bits.
        width: usize,
    },
    /// A direct crossing lands on a register that is not a clean
    /// two-flop synchronizer head.
    MissingSynchronizer {
        /// The launching sequential cell.
        launch: String,
        /// The sampling sequential cell.
        sampler: String,
        /// The crossing net.
        net: String,
    },
}

impl fmt::Display for CdcViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CdcViolation::CombinationalCrossing {
                launch,
                sampler,
                net,
            } => write!(
                f,
                "combinational logic on crossing from `{launch}` to `{sampler}` (net `{net}`)"
            ),
            CdcViolation::UnsynchronizedMultiBit {
                launch,
                sampler,
                net,
                width,
            } => write!(
                f,
                "{width}-bit crossing `{net}` from `{launch}` to `{sampler}` is not Gray-coded"
            ),
            CdcViolation::MissingSynchronizer {
                launch,
                sampler,
                net,
            } => write!(
                f,
                "`{sampler}` samples foreign-domain `{net}` from `{launch}` without a clean \
                 2-flop synchronizer"
            ),
        }
    }
}

/// Lints a netlist for unsafe clock-domain crossings.
///
/// Returns every violation found, in deterministic cell order; an empty
/// vector means the design is CDC-clean. Call on a validated netlist
/// (see [`crate::validate::check`]) — the walk assumes pin contracts
/// hold.
#[must_use]
pub fn lint(netlist: &Netlist) -> Vec<CdcViolation> {
    if !netlist.is_multi_domain() {
        return Vec::new();
    }
    let drivers = netlist.drivers();
    let mut violations = Vec::new();
    for (si, sampler) in netlist.cells().iter().enumerate() {
        if !sampler.prim().is_sequential() {
            continue;
        }
        let s_domain = netlist.cell_domain(CellId(si));
        let mut reported: Vec<CellId> = Vec::new();
        for &pin_net in sampler.inputs() {
            for (launch, through_comb) in cone_launches(netlist, &drivers, pin_net) {
                if netlist.cell_domain(launch) == s_domain || reported.contains(&launch) {
                    continue;
                }
                reported.push(launch);
                let launch_name = netlist.cell(launch).name().to_owned();
                let sampler_name = sampler.name().to_owned();
                let net_name = netlist.net(pin_net).name().to_owned();
                let width = netlist.net(pin_net).width();
                if through_comb {
                    violations.push(CdcViolation::CombinationalCrossing {
                        launch: launch_name,
                        sampler: sampler_name,
                        net: net_name,
                    });
                } else if width > 1 && !is_gray_launch(netlist, &drivers, launch) {
                    violations.push(CdcViolation::UnsynchronizedMultiBit {
                        launch: launch_name,
                        sampler: sampler_name,
                        net: net_name,
                        width,
                    });
                } else if !is_clean_sync_head(netlist, CellId(si), s_domain) {
                    violations.push(CdcViolation::MissingSynchronizer {
                        launch: launch_name,
                        sampler: sampler_name,
                        net: net_name,
                    });
                }
            }
        }
    }
    violations
}

/// All sequential launches reaching `net`, each flagged with whether
/// any combinational cell sits on the path. Input-port drivers carry no
/// domain and are skipped.
fn cone_launches(netlist: &Netlist, drivers: &[Vec<Driver>], net: NetId) -> Vec<(CellId, bool)> {
    let mut out: Vec<(CellId, bool)> = Vec::new();
    // (net, reached through >= 1 comb cell). A net can be revisited
    // with the stronger `true` flag, so visited tracks the flag too.
    let mut stack = vec![(net, false)];
    let mut visited: Vec<(NetId, bool)> = Vec::new();
    while let Some((n, through_comb)) = stack.pop() {
        if visited.contains(&(n, through_comb)) {
            continue;
        }
        visited.push((n, through_comb));
        for driver in &drivers[n.index()] {
            let Driver::CellOutput { cell, .. } = driver else {
                continue;
            };
            let c = netlist.cell(*cell);
            if c.prim().is_sequential() {
                match out.iter_mut().find(|(l, _)| l == cell) {
                    Some((_, flag)) => *flag |= through_comb,
                    None => out.push((*cell, through_comb)),
                }
            } else {
                for &input in c.inputs() {
                    stack.push((input, true));
                }
            }
        }
    }
    out
}

/// True if the launching register is structurally Gray-coded: its data
/// input is `x xor (x srl 1)`, with the shift built as the emitted
/// `concat('0', x(hi downto 1))` pattern.
fn is_gray_launch(netlist: &Netlist, drivers: &[Vec<Driver>], launch: CellId) -> bool {
    let cell = netlist.cell(launch);
    if !matches!(cell.prim(), Prim::Reg { .. }) {
        return false;
    }
    let d = cell.inputs()[0];
    let Some(xor) = sole_comb_driver(netlist, drivers, d) else {
        return false;
    };
    if !matches!(
        xor.prim(),
        Prim::Gate {
            op: GateOp::Xor,
            ..
        }
    ) {
        return false;
    }
    let (a, b) = (xor.inputs()[0], xor.inputs()[1]);
    is_shr1_of(netlist, drivers, b, a) || is_shr1_of(netlist, drivers, a, b)
}

/// True if `shifted` is `base srl 1`: a concat of a 1-bit constant zero
/// and `base(hi downto 1)`.
fn is_shr1_of(netlist: &Netlist, drivers: &[Vec<Driver>], shifted: NetId, base: NetId) -> bool {
    let Some(concat) = sole_comb_driver(netlist, drivers, shifted) else {
        return false;
    };
    let Prim::Concat { widths } = concat.prim() else {
        return false;
    };
    if widths.len() != 2 || widths[0] != 1 {
        return false;
    }
    let Some(zero) = sole_comb_driver(netlist, drivers, concat.inputs()[0]) else {
        return false;
    };
    let zero_ok = matches!(zero.prim(), Prim::Const { value } if value.to_u64() == Some(0));
    let Some(slice) = sole_comb_driver(netlist, drivers, concat.inputs()[1]) else {
        return false;
    };
    let slice_ok = matches!(slice.prim(), Prim::Slice { low: 1, .. });
    zero_ok && slice_ok && slice.inputs()[0] == base
}

fn sole_comb_driver<'a>(
    netlist: &'a Netlist,
    drivers: &[Vec<Driver>],
    net: NetId,
) -> Option<&'a crate::Cell> {
    match drivers[net.index()].as_slice() {
        [Driver::CellOutput { cell, .. }] => {
            let c = netlist.cell(*cell);
            (!c.prim().is_sequential()).then_some(c)
        }
        _ => None,
    }
}

/// True if the sampler is a clean synchronizer head: an enable-less
/// register whose output feeds nothing but register data pins in its
/// own domain (the second flop; entity output ports are outside lint
/// scope).
fn is_clean_sync_head(netlist: &Netlist, sampler: CellId, s_domain: usize) -> bool {
    let cell = netlist.cell(sampler);
    if !matches!(
        cell.prim(),
        Prim::Reg {
            has_enable: false,
            ..
        }
    ) {
        return false;
    }
    let q = cell.outputs()[0];
    for (ri, reader) in netlist.cells().iter().enumerate() {
        for (pin, &input) in reader.inputs().iter().enumerate() {
            if input != q {
                continue;
            }
            let is_second_flop = matches!(reader.prim(), Prim::Reg { .. })
                && pin == 0
                && netlist.cell_domain(CellId(ri)) == s_domain;
            if !is_second_flop {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Entity, PortDir};

    fn reg(width: usize) -> Prim {
        Prim::Reg {
            width,
            has_enable: false,
            reset_value: 0,
        }
    }

    /// A minimal clean crossing: wr-domain Gray-coded counter sampled
    /// by a 2-flop synchronizer in the rd domain.
    fn clean_crossing() -> Netlist {
        let entity = Entity::builder("xing")
            .port("q", PortDir::Out, 4)
            .unwrap()
            .build()
            .unwrap();
        let mut nl = Netlist::new(entity);
        let wr = nl.add_domain("wr_clk", 2).unwrap();
        let rd = nl.add_domain("rd_clk", 3).unwrap();
        let bin = nl.add_net("bin", 4).unwrap();
        let bin_next = nl.add_net("bin_next", 4).unwrap();
        let gray_next = nl.add_net("gray_next", 4).unwrap();
        let gray = nl.add_net("gray", 4).unwrap();
        let zero = nl.add_net("zero", 1).unwrap();
        let hi = nl.add_net("hi", 3).unwrap();
        let shifted = nl.add_net("shifted", 4).unwrap();
        let q1 = nl.add_net("q1", 4).unwrap();
        let q2 = nl.add_net("q2", 4).unwrap();
        nl.add_cell_in_domain("u_bin", reg(4), vec![bin_next], vec![bin], wr)
            .unwrap();
        nl.add_cell("u_inc", Prim::Inc { width: 4 }, vec![bin], vec![bin_next])
            .unwrap();
        nl.add_cell(
            "u_zero",
            Prim::Const {
                value: crate::LogicVector::from_u64(0, 1).unwrap(),
            },
            vec![],
            vec![zero],
        )
        .unwrap();
        nl.add_cell(
            "u_hi",
            Prim::Slice {
                in_width: 4,
                low: 1,
                len: 3,
            },
            vec![bin_next],
            vec![hi],
        )
        .unwrap();
        nl.add_cell(
            "u_cat",
            Prim::Concat { widths: vec![1, 3] },
            vec![zero, hi],
            vec![shifted],
        )
        .unwrap();
        nl.add_cell(
            "u_xor",
            Prim::Gate {
                op: GateOp::Xor,
                width: 4,
            },
            vec![bin_next, shifted],
            vec![gray_next],
        )
        .unwrap();
        nl.add_cell_in_domain("u_gray", reg(4), vec![gray_next], vec![gray], wr)
            .unwrap();
        nl.add_cell_in_domain("u_q1", reg(4), vec![gray], vec![q1], rd)
            .unwrap();
        nl.add_cell_in_domain("u_q2", reg(4), vec![q1], vec![q2], rd)
            .unwrap();
        nl.bind_port("q", q2).unwrap();
        nl
    }

    #[test]
    fn clean_gray_crossing_passes() {
        let nl = clean_crossing();
        crate::validate::check(&nl).unwrap();
        assert_eq!(lint(&nl), Vec::new());
    }

    #[test]
    fn single_domain_netlist_trivially_passes() {
        let entity = Entity::builder("e")
            .port("q", PortDir::Out, 4)
            .unwrap()
            .build()
            .unwrap();
        let mut nl = Netlist::new(entity);
        let d = nl.add_net("d", 4).unwrap();
        let q = nl.add_net("q", 4).unwrap();
        nl.add_cell("u_r", reg(4), vec![d], vec![q]).unwrap();
        nl.add_cell("u_i", Prim::Inc { width: 4 }, vec![q], vec![d])
            .unwrap();
        nl.bind_port("q", q).unwrap();
        assert!(lint(&nl).is_empty());
    }

    #[test]
    fn binary_coded_multi_bit_crossing_is_flagged() {
        // Same shape but the crossing register launches the raw binary
        // counter value.
        let entity = Entity::builder("xing")
            .port("q", PortDir::Out, 4)
            .unwrap()
            .build()
            .unwrap();
        let mut nl = Netlist::new(entity);
        let wr = nl.add_domain("wr_clk", 2).unwrap();
        let rd = nl.add_domain("rd_clk", 3).unwrap();
        let bin = nl.add_net("bin", 4).unwrap();
        let bin_next = nl.add_net("bin_next", 4).unwrap();
        let q1 = nl.add_net("q1", 4).unwrap();
        let q2 = nl.add_net("q2", 4).unwrap();
        nl.add_cell_in_domain("u_bin", reg(4), vec![bin_next], vec![bin], wr)
            .unwrap();
        nl.add_cell("u_inc", Prim::Inc { width: 4 }, vec![bin], vec![bin_next])
            .unwrap();
        nl.add_cell_in_domain("u_q1", reg(4), vec![bin], vec![q1], rd)
            .unwrap();
        nl.add_cell_in_domain("u_q2", reg(4), vec![q1], vec![q2], rd)
            .unwrap();
        nl.bind_port("q", q2).unwrap();
        let violations = lint(&nl);
        assert_eq!(violations.len(), 1);
        assert!(matches!(
            &violations[0],
            CdcViolation::UnsynchronizedMultiBit { launch, width: 4, .. } if launch == "u_bin"
        ));
    }

    #[test]
    fn combinational_logic_on_crossing_is_flagged() {
        // Insert an incrementer between the Gray launch and the
        // synchronizer: the crossing is no longer glitch-free.
        let entity = Entity::builder("xing")
            .port("q", PortDir::Out, 4)
            .unwrap()
            .build()
            .unwrap();
        let mut nl = Netlist::new(entity);
        let wr = nl.add_domain("wr_clk", 2).unwrap();
        let rd = nl.add_domain("rd_clk", 3).unwrap();
        let bin = nl.add_net("bin", 4).unwrap();
        let bin_next = nl.add_net("bin_next", 4).unwrap();
        let mangled = nl.add_net("mangled", 4).unwrap();
        let q1 = nl.add_net("q1", 4).unwrap();
        let q2 = nl.add_net("q2", 4).unwrap();
        nl.add_cell_in_domain("u_bin", reg(4), vec![bin_next], vec![bin], wr)
            .unwrap();
        nl.add_cell("u_inc", Prim::Inc { width: 4 }, vec![bin], vec![bin_next])
            .unwrap();
        nl.add_cell("u_mangle", Prim::Inc { width: 4 }, vec![bin], vec![mangled])
            .unwrap();
        nl.add_cell_in_domain("u_q1", reg(4), vec![mangled], vec![q1], rd)
            .unwrap();
        nl.add_cell_in_domain("u_q2", reg(4), vec![q1], vec![q2], rd)
            .unwrap();
        nl.bind_port("q", q2).unwrap();
        let violations = lint(&nl);
        assert!(violations.iter().any(
            |v| matches!(v, CdcViolation::CombinationalCrossing { launch, .. } if launch == "u_bin")
        ));
    }

    #[test]
    fn single_flop_sampler_is_flagged() {
        // Drop the second flop: u_q1's output feeds an incrementer, so
        // it is no longer a clean synchronizer head.
        let entity = Entity::builder("xing")
            .port("q", PortDir::Out, 4)
            .unwrap()
            .build()
            .unwrap();
        let mut nl = Netlist::new(entity);
        let wr = nl.add_domain("wr_clk", 2).unwrap();
        let rd = nl.add_domain("rd_clk", 3).unwrap();
        let bit = nl.add_net("bit", 1).unwrap();
        let bit_next = nl.add_net("bit_next", 1).unwrap();
        let q1 = nl.add_net("q1", 1).unwrap();
        let used = nl.add_net("used", 1).unwrap();
        let q = nl.add_net("q", 4).unwrap();
        nl.add_cell_in_domain("u_bit", reg(1), vec![bit_next], vec![bit], wr)
            .unwrap();
        nl.add_cell("u_not", Prim::Not { width: 1 }, vec![bit], vec![bit_next])
            .unwrap();
        nl.add_cell_in_domain("u_q1", reg(1), vec![bit], vec![q1], rd)
            .unwrap();
        nl.add_cell("u_use", Prim::Not { width: 1 }, vec![q1], vec![used])
            .unwrap();
        nl.add_cell(
            "u_pad",
            Prim::Concat {
                widths: vec![1, 1, 1, 1],
            },
            vec![used, used, used, used],
            vec![q],
        )
        .unwrap();
        nl.bind_port("q", q).unwrap();
        let violations = lint(&nl);
        assert_eq!(violations.len(), 1);
        assert!(matches!(
            &violations[0],
            CdcViolation::MissingSynchronizer { launch, sampler, .. }
                if launch == "u_bit" && sampler == "u_q1"
        ));
    }
}
