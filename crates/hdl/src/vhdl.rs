//! VHDL'93 emission.
//!
//! Renders [`Entity`] declarations in the exact layout of the paper's
//! Figures 4 and 5 (ports grouped by interface-section comments) and
//! structural [`Netlist`] architectures as synthesizable RTL.

use crate::prim::{CmpKind, GateOp, Prim};
use crate::{Entity, NetId, Netlist};
use std::fmt::Write;

/// The VHDL subtype for a port or signal of the given width.
#[must_use]
pub fn type_of(width: usize) -> String {
    if width == 1 {
        "std_logic".to_owned()
    } else {
        format!("std_logic_vector({} downto 0)", width - 1)
    }
}

/// Renders an entity declaration.
///
/// Ports that carry a [`crate::Port::group`] label are preceded by a
/// `-- group` comment the first time the group appears, reproducing the
/// figure layout of the paper:
///
/// ```text
/// entity rbuffer_fifo is
///   port (
///     -- methods
///     m_empty : in std_logic;
///     ...
/// ```
#[must_use]
pub fn emit_entity(entity: &Entity) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "entity {} is", entity.name());
    if !entity.generics().is_empty() {
        let _ = writeln!(out, "  generic (");
        for (i, g) in entity.generics().iter().enumerate() {
            let sep = if i + 1 == entity.generics().len() {
                ""
            } else {
                ";"
            };
            let _ = writeln!(
                out,
                "    {} : {} := {}{}",
                g.name(),
                g.type_name(),
                g.value(),
                sep
            );
        }
        let _ = writeln!(out, "  );");
    }
    if !entity.ports().is_empty() {
        let _ = writeln!(out, "  port (");
        let mut last_group: Option<&str> = None;
        for (i, p) in entity.ports().iter().enumerate() {
            if p.group() != last_group {
                if let Some(g) = p.group() {
                    let _ = writeln!(out, "    -- {g}");
                }
                last_group = p.group();
            }
            let sep = if i + 1 == entity.ports().len() {
                ""
            } else {
                ";"
            };
            let _ = writeln!(
                out,
                "    {} : {} {}{}",
                p.name(),
                p.dir(),
                type_of(p.width()),
                sep
            );
        }
        let _ = writeln!(out, "  );");
    }
    let _ = writeln!(out, "end {};", entity.name());
    out
}

fn net_ref(netlist: &Netlist, id: NetId) -> String {
    netlist.net(id).name().to_owned()
}

fn unsigned(expr: &str) -> String {
    format!("unsigned({expr})")
}

fn to_slv(expr: &str, width: usize) -> String {
    if width == 1 {
        expr.to_string()
    } else {
        format!("std_logic_vector({expr})")
    }
}

fn literal(value: u64, width: usize) -> String {
    if width == 1 {
        format!("'{}'", value & 1)
    } else {
        let mut s = String::with_capacity(width + 2);
        s.push('"');
        for i in (0..width).rev() {
            s.push(if value >> i & 1 == 1 { '1' } else { '0' });
        }
        s.push('"');
        s
    }
}

fn bool_expr(cond: &str) -> String {
    format!("'1' when {cond} else '0'")
}

/// Renders a structural architecture for the netlist.
///
/// Combinational primitives become concurrent signal assignments;
/// registers and truth tables become processes; block RAM, FIFO and
/// LIFO macros become component instantiations of the vendor cores the
/// paper relies on ("commonly found in FPGA designs", §3.4).
///
/// # Errors
///
/// Propagates [`crate::HdlError`] from structural validation — only a
/// valid netlist can be printed.
pub fn emit_architecture(netlist: &Netlist, arch_name: &str) -> Result<String, crate::HdlError> {
    crate::validate::check(netlist)?;
    let entity = netlist.entity();
    let mut out = String::new();
    let _ = writeln!(out, "architecture {arch_name} of {} is", entity.name());
    // A net stands directly for a port only when it carries the
    // port's own name. Otherwise (e.g. after wrapper dissolution
    // remapped a binding onto an internal net, or one net serves two
    // ports) it is declared as a signal and connected to the port
    // with an explicit assignment below.
    let direct: Vec<NetId> = netlist
        .bindings()
        .iter()
        .filter(|b| netlist.net(b.net()).name() == b.port())
        .map(|b| b.net())
        .collect();
    for (ni, net) in netlist.nets().iter().enumerate() {
        if !direct.contains(&NetId(ni)) {
            let _ = writeln!(out, "  signal {} : {};", net.name(), type_of(net.width()));
        }
    }
    // Component declarations for macros.
    let mut declared: Vec<&'static str> = Vec::new();
    for cell in netlist.cells() {
        let decl = match cell.prim() {
            Prim::BlockRam { .. } if !declared.contains(&"bram") => {
                declared.push("bram");
                Some(
                    "  component block_ram is\n    generic (addr_width : natural; data_width : natural);\n    port (clk : in std_logic; we : in std_logic;\n          waddr : in std_logic_vector; wdata : in std_logic_vector;\n          raddr : in std_logic_vector; rdata : out std_logic_vector);\n  end component;\n",
                )
            }
            Prim::FifoMacro { .. } if !declared.contains(&"fifo") => {
                declared.push("fifo");
                Some(
                    "  component fifo_core is\n    generic (depth : natural; width : natural);\n    port (clk : in std_logic; rst : in std_logic;\n          push : in std_logic; pop : in std_logic;\n          wdata : in std_logic_vector; rdata : out std_logic_vector;\n          empty : out std_logic; full : out std_logic);\n  end component;\n",
                )
            }
            Prim::LifoMacro { .. } if !declared.contains(&"lifo") => {
                declared.push("lifo");
                Some(
                    "  component lifo_core is\n    generic (depth : natural; width : natural);\n    port (clk : in std_logic; rst : in std_logic;\n          push : in std_logic; pop : in std_logic;\n          wdata : in std_logic_vector; rdata : out std_logic_vector;\n          empty : out std_logic; full : out std_logic);\n  end component;\n",
                )
            }
            _ => None,
        };
        if let Some(d) = decl {
            out.push_str(d);
        }
    }
    let _ = writeln!(out, "begin");
    // Explicit port connections for indirectly-bound nets.
    for binding in netlist.bindings() {
        let net = netlist.net(binding.net());
        if net.name() == binding.port() {
            continue;
        }
        let dir = entity
            .port(binding.port())
            .expect("binding validated against entity")
            .dir();
        match dir {
            crate::PortDir::In => {
                let _ = writeln!(out, "  {} <= {};", net.name(), binding.port());
            }
            crate::PortDir::Out | crate::PortDir::InOut => {
                let _ = writeln!(out, "  {} <= {};", binding.port(), net.name());
            }
        }
    }
    for (ci, cell) in netlist.cells().iter().enumerate() {
        let clock = netlist.domains()[netlist.cell_domain(crate::CellId(ci))].name();
        emit_cell(&mut out, netlist, cell, clock);
    }
    let _ = writeln!(out, "end {arch_name};");
    Ok(out)
}

fn emit_cell(out: &mut String, netlist: &Netlist, cell: &crate::Cell, clock: &str) {
    let r = |i: usize| net_ref(netlist, cell.inputs()[i]);
    let w = |i: usize| net_ref(netlist, cell.outputs()[i]);
    match cell.prim() {
        Prim::Const { value } => {
            let _ = writeln!(out, "  {} <= {};", w(0), value);
        }
        Prim::Buf { .. } => {
            let _ = writeln!(
                out,
                "  {} <= {};  -- wrapper, dissolves in synthesis",
                w(0),
                r(0)
            );
        }
        Prim::Not { .. } => {
            let _ = writeln!(out, "  {} <= not {};", w(0), r(0));
        }
        Prim::Gate { op, .. } => {
            let opname = match op {
                GateOp::And => "and",
                GateOp::Or => "or",
                GateOp::Xor => "xor",
            };
            let _ = writeln!(out, "  {} <= {} {} {};", w(0), r(0), opname, r(1));
        }
        Prim::ReduceOr { width } => {
            let cmp = format!("{} /= {}", r(0), literal(0, *width));
            let _ = writeln!(out, "  {} <= {};", w(0), bool_expr(&cmp));
        }
        Prim::ReduceAnd { width } => {
            let ones = (1u128 << width) - 1;
            let cmp = format!("{} = {}", r(0), literal(ones as u64, *width));
            let _ = writeln!(out, "  {} <= {};", w(0), bool_expr(&cmp));
        }
        Prim::Add { width } => {
            let expr = format!("{} + {}", unsigned(&r(0)), unsigned(&r(1)));
            let _ = writeln!(out, "  {} <= {};", w(0), to_slv(&expr, *width));
        }
        Prim::Sub { width } => {
            let expr = format!("{} - {}", unsigned(&r(0)), unsigned(&r(1)));
            let _ = writeln!(out, "  {} <= {};", w(0), to_slv(&expr, *width));
        }
        Prim::Inc { width } => {
            let expr = format!("{} + 1", unsigned(&r(0)));
            let _ = writeln!(out, "  {} <= {};", w(0), to_slv(&expr, *width));
        }
        Prim::Cmp { kind, .. } => {
            let op = match kind {
                CmpKind::Eq => "=",
                CmpKind::Ne => "/=",
                CmpKind::Lt => "<",
                CmpKind::Ge => ">=",
            };
            let cmp = format!("{} {} {}", unsigned(&r(0)), op, unsigned(&r(1)));
            let _ = writeln!(out, "  {} <= {};", w(0), bool_expr(&cmp));
        }
        Prim::Mux { ways, .. } => {
            let _ = writeln!(out, "  with {} select", r(0));
            for i in 0..*ways {
                let sel_w = crate::prim::sel_width(*ways);
                let choice = if i + 1 == *ways {
                    "others".to_owned()
                } else {
                    literal(i as u64, sel_w)
                };
                let term = if i + 1 == *ways { ";" } else { "," };
                let _ = writeln!(out, "    {} <= {} when {}{}", w(0), r(1 + i), choice, term);
            }
        }
        Prim::Slice { low, len, .. } => {
            let hi = low + len - 1;
            let idx = if *len == 1 {
                format!("({low})")
            } else {
                format!("({hi} downto {low})")
            };
            let _ = writeln!(out, "  {} <= {}{};", w(0), r(0), idx);
        }
        Prim::Concat { widths } => {
            let parts: Vec<String> = (0..widths.len()).map(r).collect();
            let _ = writeln!(out, "  {} <= {};", w(0), parts.join(" & "));
        }
        Prim::TriBuf { width } => {
            let z = if *width == 1 {
                "'Z'".to_owned()
            } else {
                "(others => 'Z')".to_owned()
            };
            let _ = writeln!(
                out,
                "  {} <= {} when {} = '1' else {};",
                w(0),
                r(1),
                r(0),
                z
            );
        }
        Prim::TruthTable {
            in_widths,
            out_width,
            table,
        } => {
            // Rendered as a case process over the concatenated inputs —
            // this is how the generated FSM next-state logic reads.
            let sel: Vec<String> = (0..in_widths.len()).map(r).collect();
            let total: usize = in_widths.iter().sum();
            let _ = writeln!(out, "  process ({})", sel.join(", "));
            let _ = writeln!(out, "  begin");
            let _ = writeln!(out, "    case {} is", sel.join(" & "));
            for (i, &word) in table.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "      when {} => {} <= {};",
                    literal(i as u64, total),
                    w(0),
                    literal(word, *out_width)
                );
            }
            let _ = writeln!(
                out,
                "      when others => {} <= {};",
                w(0),
                if *out_width == 1 {
                    "'X'".to_owned()
                } else {
                    "(others => 'X')".to_owned()
                }
            );
            let _ = writeln!(out, "    end case;");
            let _ = writeln!(out, "  end process;");
        }
        Prim::Reg {
            width,
            has_enable,
            reset_value,
        } => {
            let _ = writeln!(out, "  process ({clock})");
            let _ = writeln!(out, "  begin");
            let _ = writeln!(out, "    if rising_edge({clock}) then");
            let _ = writeln!(out, "      if rst = '1' then");
            let _ = writeln!(
                out,
                "        {} <= {};",
                w(0),
                literal(*reset_value, *width)
            );
            if *has_enable {
                let _ = writeln!(out, "      elsif {} = '1' then", r(1));
            } else {
                let _ = writeln!(out, "      else");
            }
            let _ = writeln!(out, "        {} <= {};", w(0), r(0));
            let _ = writeln!(out, "      end if;");
            let _ = writeln!(out, "    end if;");
            let _ = writeln!(out, "  end process;");
        }
        Prim::BlockRam {
            addr_width,
            data_width,
        } => {
            let _ = writeln!(
                out,
                "  {} : block_ram generic map (addr_width => {addr_width}, data_width => {data_width})",
                cell.name()
            );
            let _ = writeln!(
                out,
                "    port map (clk => clk, we => {}, waddr => {}, wdata => {}, raddr => {}, rdata => {});",
                r(0), r(1), r(2), r(3), w(0)
            );
        }
        Prim::FifoMacro { depth, width } => {
            let _ = writeln!(
                out,
                "  {} : fifo_core generic map (depth => {depth}, width => {width})",
                cell.name()
            );
            let _ = writeln!(
                out,
                "    port map (clk => clk, rst => rst, push => {}, pop => {}, wdata => {}, rdata => {}, empty => {}, full => {});",
                r(0), r(1), r(2), w(0), w(1), w(2)
            );
        }
        Prim::LifoMacro { depth, width } => {
            let _ = writeln!(
                out,
                "  {} : lifo_core generic map (depth => {depth}, width => {width})",
                cell.name()
            );
            let _ = writeln!(
                out,
                "    port map (clk => clk, rst => rst, push => {}, pop => {}, wdata => {}, rdata => {}, empty => {}, full => {});",
                r(0), r(1), r(2), w(0), w(1), w(2)
            );
        }
    }
}

/// Renders a complete design unit: library clause, entity and
/// architecture.
///
/// # Errors
///
/// Propagates structural validation failures from
/// [`emit_architecture`].
pub fn emit_component(netlist: &Netlist, arch_name: &str) -> Result<String, crate::HdlError> {
    let mut out = String::new();
    out.push_str("library ieee;\nuse ieee.std_logic_1164.all;\nuse ieee.numeric_std.all;\n\n");
    out.push_str(&emit_entity(netlist.entity()));
    out.push('\n');
    out.push_str(&emit_architecture(netlist, arch_name)?);
    Ok(out)
}

/// True if the port needs a `clk`/`rst` pair in the emitted design —
/// i.e. the netlist contains sequential primitives.
#[must_use]
pub fn needs_clock(netlist: &Netlist) -> bool {
    netlist.cells().iter().any(|c| c.prim().is_sequential())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prim::Prim;
    use crate::{Entity, LogicVector, Netlist, PortDir};

    fn figure4_entity() -> Entity {
        Entity::builder("rbuffer_fifo")
            .group("methods")
            .port("m_empty", PortDir::In, 1)
            .unwrap()
            .port("m_size", PortDir::In, 1)
            .unwrap()
            .port("m_pop", PortDir::In, 1)
            .unwrap()
            .group("params")
            .port("data", PortDir::Out, 8)
            .unwrap()
            .port("done", PortDir::Out, 1)
            .unwrap()
            .group("implementation interface")
            .port("p_empty", PortDir::In, 1)
            .unwrap()
            .port("p_read", PortDir::Out, 1)
            .unwrap()
            .port("p_data", PortDir::In, 8)
            .unwrap()
            .build()
            .unwrap()
    }

    #[test]
    fn entity_layout_matches_figure4() {
        let text = emit_entity(&figure4_entity());
        let expected = "\
entity rbuffer_fifo is
  port (
    -- methods
    m_empty : in std_logic;
    m_size : in std_logic;
    m_pop : in std_logic;
    -- params
    data : out std_logic_vector(7 downto 0);
    done : out std_logic;
    -- implementation interface
    p_empty : in std_logic;
    p_read : out std_logic;
    p_data : in std_logic_vector(7 downto 0)
  );
end rbuffer_fifo;
";
        assert_eq!(text, expected);
    }

    #[test]
    fn generics_render_with_defaults() {
        let e = Entity::builder("g")
            .generic("depth", crate::GenericValue::Natural(512))
            .unwrap()
            .port("q", PortDir::Out, 1)
            .unwrap()
            .build()
            .unwrap();
        let text = emit_entity(&e);
        assert!(text.contains("depth : natural := 512"));
    }

    fn small_netlist() -> Netlist {
        let entity = Entity::builder("incr")
            .port("a", PortDir::In, 8)
            .unwrap()
            .port("y", PortDir::Out, 8)
            .unwrap()
            .build()
            .unwrap();
        let mut nl = Netlist::new(entity);
        let a = nl.add_net("a", 8).unwrap();
        let y = nl.add_net("y", 8).unwrap();
        nl.add_cell("u_inc", Prim::Inc { width: 8 }, vec![a], vec![y])
            .unwrap();
        nl.bind_port("a", a).unwrap();
        nl.bind_port("y", y).unwrap();
        nl
    }

    #[test]
    fn architecture_renders_arithmetic() {
        let text = emit_architecture(&small_netlist(), "rtl").unwrap();
        assert!(text.contains("architecture rtl of incr is"));
        assert!(text.contains("y <= std_logic_vector(unsigned(a) + 1);"));
        assert!(text.contains("end rtl;"));
    }

    #[test]
    fn component_includes_library_clause() {
        let text = emit_component(&small_netlist(), "rtl").unwrap();
        assert!(text.starts_with("library ieee;"));
        assert!(text.contains("entity incr is"));
    }

    #[test]
    fn invalid_netlist_is_rejected() {
        let entity = Entity::builder("bad")
            .port("y", PortDir::Out, 1)
            .unwrap()
            .build()
            .unwrap();
        let nl = Netlist::new(entity); // port never bound
        assert!(emit_architecture(&nl, "rtl").is_err());
    }

    #[test]
    fn const_and_tribuf_render() {
        let entity = Entity::builder("drv")
            .port("en", PortDir::In, 1)
            .unwrap()
            .port("bus_io", PortDir::Out, 8)
            .unwrap()
            .build()
            .unwrap();
        let mut nl = Netlist::new(entity);
        let en = nl.add_net("en", 1).unwrap();
        let c = nl.add_net("cval", 8).unwrap();
        let b = nl.add_net("bus_io", 8).unwrap();
        nl.add_cell(
            "u_c",
            Prim::Const {
                value: LogicVector::from_u64(0xA5, 8).unwrap(),
            },
            vec![],
            vec![c],
        )
        .unwrap();
        nl.add_cell("u_t", Prim::TriBuf { width: 8 }, vec![en, c], vec![b])
            .unwrap();
        nl.bind_port("en", en).unwrap();
        nl.bind_port("bus_io", b).unwrap();
        let text = emit_architecture(&nl, "rtl").unwrap();
        assert!(text.contains("cval <= \"10100101\";"));
        assert!(text.contains("bus_io <= cval when en = '1' else (others => 'Z');"));
        assert!(text.contains("signal cval"));
    }

    #[test]
    fn register_renders_clocked_process() {
        let entity = Entity::builder("r")
            .port("d", PortDir::In, 4)
            .unwrap()
            .port("q", PortDir::Out, 4)
            .unwrap()
            .build()
            .unwrap();
        let mut nl = Netlist::new(entity);
        let d = nl.add_net("d", 4).unwrap();
        let q = nl.add_net("q", 4).unwrap();
        nl.add_cell(
            "u_r",
            Prim::Reg {
                width: 4,
                has_enable: false,
                reset_value: 5,
            },
            vec![d],
            vec![q],
        )
        .unwrap();
        nl.bind_port("d", d).unwrap();
        nl.bind_port("q", q).unwrap();
        let text = emit_architecture(&nl, "rtl").unwrap();
        assert!(text.contains("rising_edge(clk)"));
        assert!(text.contains("q <= \"0101\";"));
        assert!(needs_clock(&nl));
    }

    #[test]
    fn register_in_second_domain_renders_its_own_clock() {
        let entity = Entity::builder("r2")
            .port("d", PortDir::In, 4)
            .unwrap()
            .port("q", PortDir::Out, 4)
            .unwrap()
            .build()
            .unwrap();
        let mut nl = Netlist::new(entity);
        let rd = nl.add_domain("rd_clk", 3).unwrap();
        let d = nl.add_net("d", 4).unwrap();
        let q = nl.add_net("q", 4).unwrap();
        nl.add_cell_in_domain(
            "u_r",
            Prim::Reg {
                width: 4,
                has_enable: false,
                reset_value: 0,
            },
            vec![d],
            vec![q],
            rd,
        )
        .unwrap();
        nl.bind_port("d", d).unwrap();
        nl.bind_port("q", q).unwrap();
        let text = emit_architecture(&nl, "rtl").unwrap();
        assert!(text.contains("process (rd_clk)"));
        assert!(text.contains("rising_edge(rd_clk)"));
        assert!(!text.contains("rising_edge(clk)"));
    }

    #[test]
    fn fifo_macro_instantiates_core() {
        let entity = Entity::builder("f")
            .port("push", PortDir::In, 1)
            .unwrap()
            .port("pop", PortDir::In, 1)
            .unwrap()
            .port("wdata", PortDir::In, 8)
            .unwrap()
            .port("rdata", PortDir::Out, 8)
            .unwrap()
            .port("empty", PortDir::Out, 1)
            .unwrap()
            .port("full", PortDir::Out, 1)
            .unwrap()
            .build()
            .unwrap();
        let mut nl = Netlist::new(entity);
        let push = nl.add_net("push", 1).unwrap();
        let pop = nl.add_net("pop", 1).unwrap();
        let wdata = nl.add_net("wdata", 8).unwrap();
        let rdata = nl.add_net("rdata", 8).unwrap();
        let empty = nl.add_net("empty", 1).unwrap();
        let full = nl.add_net("full", 1).unwrap();
        nl.add_cell(
            "u_fifo",
            Prim::FifoMacro {
                depth: 512,
                width: 8,
            },
            vec![push, pop, wdata],
            vec![rdata, empty, full],
        )
        .unwrap();
        for (p, n) in [
            ("push", push),
            ("pop", pop),
            ("wdata", wdata),
            ("rdata", rdata),
            ("empty", empty),
            ("full", full),
        ] {
            nl.bind_port(p, n).unwrap();
        }
        let text = emit_architecture(&nl, "rtl").unwrap();
        assert!(text.contains("component fifo_core"));
        assert!(text.contains("u_fifo : fifo_core generic map (depth => 512, width => 8)"));
    }

    #[test]
    fn type_of_widths() {
        assert_eq!(type_of(1), "std_logic");
        assert_eq!(type_of(8), "std_logic_vector(7 downto 0)");
        assert_eq!(type_of(16), "std_logic_vector(15 downto 0)");
    }
}
