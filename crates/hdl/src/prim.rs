//! Technology primitive cells.
//!
//! The metaprogramming generator of the paper emits VHDL that synthesis
//! tools map onto FPGA primitives: flip-flops, 4-input LUT logic, carry
//! chains, Block SelectRAMs and vendor FIFO cores ("these cores are
//! commonly found in FPGA designs", §3.4). This module defines that
//! primitive vocabulary. A [`crate::Netlist`] is a graph of these cells;
//! `hdp-sim` interprets them cycle-accurately and `hdp-synth` maps them
//! onto Spartan-IIE resources.
//!
//! Every primitive is *pure structure*: combinational evaluation lives in
//! [`Prim::eval_comb`]; sequential primitives ([`Prim::is_sequential`])
//! keep their state in the simulator, not here.

use crate::{Bit, HdlError, LogicVector};

/// Comparison performed by [`Prim::Cmp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpKind {
    /// Equality, `a = b`.
    Eq,
    /// Inequality, `a /= b`.
    Ne,
    /// Unsigned less-than, `a < b`.
    Lt,
    /// Unsigned greater-or-equal, `a >= b`.
    Ge,
}

/// Bitwise gate operation performed by [`Prim::Gate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateOp {
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
}

/// A technology primitive cell.
///
/// Pin order conventions are documented per variant; [`Prim::input_widths`]
/// and [`Prim::output_widths`] give the exact contract that netlist
/// validation enforces.
#[derive(Debug, Clone, PartialEq)]
pub enum Prim {
    /// A register (bank of D flip-flops) with synchronous reset and
    /// optional clock enable.
    ///
    /// Inputs: `[d]`, or `[d, en]` when `has_enable`. Outputs: `[q]`.
    /// Reset (global, synchronous) loads `reset_value`.
    Reg {
        /// Register width in bits.
        width: usize,
        /// Whether the register has a clock-enable pin.
        has_enable: bool,
        /// Value loaded on synchronous reset.
        reset_value: u64,
    },
    /// A constant driver. Inputs: none. Outputs: `[q]`.
    Const {
        /// The constant value.
        value: LogicVector,
    },
    /// Bitwise NOT. Inputs: `[a]`. Outputs: `[y]`.
    Not {
        /// Operand width.
        width: usize,
    },
    /// A two-input bitwise gate. Inputs: `[a, b]`. Outputs: `[y]`.
    Gate {
        /// The operation.
        op: GateOp,
        /// Operand width.
        width: usize,
    },
    /// OR-reduction of a vector to one bit. Inputs: `[a]`. Outputs: `[y]` (1 bit).
    ReduceOr {
        /// Input width.
        width: usize,
    },
    /// AND-reduction of a vector to one bit. Inputs: `[a]`. Outputs: `[y]` (1 bit).
    ReduceAnd {
        /// Input width.
        width: usize,
    },
    /// Unsigned adder, wrapping. Inputs: `[a, b]`. Outputs: `[y]`.
    Add {
        /// Operand and result width.
        width: usize,
    },
    /// Unsigned subtractor, wrapping. Inputs: `[a, b]`. Outputs: `[y]`.
    Sub {
        /// Operand and result width.
        width: usize,
    },
    /// Incrementer (`a + 1`), wrapping. Inputs: `[a]`. Outputs: `[y]`.
    ///
    /// Kept distinct from [`Prim::Add`] because the generated iterator
    /// `inc` operation maps to a dedicated half-adder carry chain that is
    /// cheaper than a full adder.
    Inc {
        /// Operand and result width.
        width: usize,
    },
    /// Unsigned comparator. Inputs: `[a, b]`. Outputs: `[y]` (1 bit).
    Cmp {
        /// The comparison kind.
        kind: CmpKind,
        /// Operand width.
        width: usize,
    },
    /// Multiplexer. Inputs: `[sel, d0, d1, ..., d(ways-1)]`.
    /// Outputs: `[y]`. `sel` has `ceil(log2(ways))` bits.
    Mux {
        /// Data width.
        width: usize,
        /// Number of data inputs (at least 2).
        ways: usize,
    },
    /// Constant bit-slice. Inputs: `[a]` (`in_width` bits).
    /// Outputs: `[y]` (`len` bits taken from `low`).
    Slice {
        /// Input width.
        in_width: usize,
        /// Least significant extracted bit.
        low: usize,
        /// Number of extracted bits.
        len: usize,
    },
    /// Concatenation. Inputs: one net per element, **most significant
    /// first** (VHDL `&` order). Outputs: `[y]` of the summed width.
    Concat {
        /// Widths of the inputs, most significant first.
        widths: Vec<usize>,
    },
    /// A multi-output truth table (PLA-style), the generic form of FSM
    /// next-state and output logic emitted by the generator.
    ///
    /// Inputs: one net per entry of `in_widths` (most significant first,
    /// concatenated to index the table). Outputs: `[y]` of `out_width`
    /// bits. `table[i]` holds the output word for concatenated input `i`
    /// and must have `2^sum(in_widths)` entries.
    TruthTable {
        /// Widths of the inputs, most significant first.
        in_widths: Vec<usize>,
        /// Output width.
        out_width: usize,
        /// Output value per input combination.
        table: Vec<u64>,
    },
    /// Tri-state buffer: drives `a` when `en` is high, `'Z'` otherwise.
    /// Inputs: `[en, a]`. Outputs: `[y]`.
    ///
    /// Several tri-state buffers may drive the same net; the netlist
    /// validator exempts them from the single-driver rule.
    TriBuf {
        /// Data width.
        width: usize,
    },
    /// A buffer/alias. Inputs: `[a]`. Outputs: `[y]`. Free after
    /// synthesis — this is what the paper means by iterators being
    /// "wrappers that will be dissolved at the time of synthesizing".
    Buf {
        /// Data width.
        width: usize,
    },
    /// Synchronous-read block RAM (one write port, one read port), the
    /// Spartan-IIE Block SelectRAM. Sequential.
    ///
    /// Inputs: `[we, waddr, wdata, raddr]`. Outputs: `[rdata]` (valid one
    /// cycle after `raddr`).
    BlockRam {
        /// Address width; depth is `2^addr_width` words.
        addr_width: usize,
        /// Data width.
        data_width: usize,
    },
    /// A vendor FIFO core macro (built from block RAM plus pointer
    /// logic). Sequential.
    ///
    /// Inputs: `[push, pop, wdata]`. Outputs: `[rdata, empty, full]`.
    /// `rdata` shows the head element combinationally (first-word
    /// fall-through).
    FifoMacro {
        /// Capacity in elements.
        depth: usize,
        /// Element width.
        width: usize,
    },
    /// A vendor LIFO (stack) core macro. Sequential.
    ///
    /// Inputs: `[push, pop, wdata]`. Outputs: `[rdata, empty, full]`.
    /// `rdata` shows the top element combinationally.
    LifoMacro {
        /// Capacity in elements.
        depth: usize,
        /// Element width.
        width: usize,
    },
}

/// Number of select bits needed to address `ways` inputs.
#[must_use]
pub fn sel_width(ways: usize) -> usize {
    usize::max(
        1,
        usize::BITS as usize - (ways - 1).leading_zeros() as usize,
    )
}

impl Prim {
    /// The widths this primitive expects on its input pins, in pin order.
    #[must_use]
    pub fn input_widths(&self) -> Vec<usize> {
        match self {
            Prim::Reg {
                width, has_enable, ..
            } => {
                if *has_enable {
                    vec![*width, 1]
                } else {
                    vec![*width]
                }
            }
            Prim::Const { .. } => vec![],
            Prim::Not { width }
            | Prim::Inc { width }
            | Prim::ReduceOr { width }
            | Prim::ReduceAnd { width }
            | Prim::Buf { width } => vec![*width],
            Prim::Gate { width, .. }
            | Prim::Add { width }
            | Prim::Sub { width }
            | Prim::Cmp { width, .. } => {
                vec![*width, *width]
            }
            Prim::Mux { width, ways } => {
                let mut v = vec![sel_width(*ways)];
                v.extend(std::iter::repeat_n(*width, *ways));
                v
            }
            Prim::Slice { in_width, .. } => vec![*in_width],
            Prim::Concat { widths } => widths.clone(),
            Prim::TruthTable { in_widths, .. } => in_widths.clone(),
            Prim::TriBuf { width } => vec![1, *width],
            Prim::BlockRam {
                addr_width,
                data_width,
            } => vec![1, *addr_width, *data_width, *addr_width],
            Prim::FifoMacro { width, .. } | Prim::LifoMacro { width, .. } => {
                vec![1, 1, *width]
            }
        }
    }

    /// The widths this primitive drives on its output pins, in pin order.
    #[must_use]
    pub fn output_widths(&self) -> Vec<usize> {
        match self {
            Prim::Reg { width, .. } => vec![*width],
            Prim::Const { value } => vec![value.width()],
            Prim::Not { width }
            | Prim::Gate { width, .. }
            | Prim::Add { width }
            | Prim::Sub { width }
            | Prim::Inc { width }
            | Prim::Mux { width, .. }
            | Prim::TriBuf { width }
            | Prim::Buf { width } => vec![*width],
            Prim::ReduceOr { .. } | Prim::ReduceAnd { .. } | Prim::Cmp { .. } => vec![1],
            Prim::Slice { len, .. } => vec![*len],
            Prim::Concat { widths } => vec![widths.iter().sum()],
            Prim::TruthTable { out_width, .. } => vec![*out_width],
            Prim::BlockRam { data_width, .. } => vec![*data_width],
            Prim::FifoMacro { width, .. } | Prim::LifoMacro { width, .. } => {
                vec![*width, 1, 1]
            }
        }
    }

    /// Whether this primitive holds state across clock edges.
    ///
    /// Sequential primitives break combinational paths: their outputs
    /// are topological sources and their inputs are sinks.
    #[must_use]
    pub fn is_sequential(&self) -> bool {
        matches!(
            self,
            Prim::Reg { .. }
                | Prim::BlockRam { .. }
                | Prim::FifoMacro { .. }
                | Prim::LifoMacro { .. }
        )
    }

    /// Validates internal consistency of the primitive parameters.
    ///
    /// # Errors
    ///
    /// Returns [`HdlError::InvalidWidth`] for zero or oversized widths,
    /// and [`HdlError::IndexOutOfRange`] for slice bounds or truth-table
    /// size mismatches.
    pub fn validate(&self) -> Result<(), HdlError> {
        let check = |w: usize| -> Result<(), HdlError> {
            if w == 0 || w > crate::vector::MAX_WIDTH {
                Err(HdlError::InvalidWidth { width: w })
            } else {
                Ok(())
            }
        };
        for w in self
            .input_widths()
            .iter()
            .chain(self.output_widths().iter())
        {
            check(*w)?;
        }
        match self {
            Prim::Reg {
                width, reset_value, ..
            } => {
                if *width < 64 && *reset_value >> *width != 0 {
                    return Err(HdlError::ValueOverflow {
                        value: *reset_value,
                        width: *width,
                    });
                }
                Ok(())
            }
            Prim::Mux { ways, .. } => {
                if *ways < 2 {
                    return Err(HdlError::InvalidWidth { width: *ways });
                }
                Ok(())
            }
            Prim::Slice { in_width, low, len } => {
                if low + len > *in_width {
                    return Err(HdlError::IndexOutOfRange {
                        index: low + len - 1,
                        len: *in_width,
                    });
                }
                Ok(())
            }
            Prim::TruthTable {
                in_widths,
                out_width,
                table,
            } => {
                let total: usize = in_widths.iter().sum();
                if total > 20 {
                    // Keep tables bounded; the generator never needs more.
                    return Err(HdlError::InvalidWidth { width: total });
                }
                let expected = 1usize << total;
                if table.len() != expected {
                    return Err(HdlError::IndexOutOfRange {
                        index: table.len(),
                        len: expected,
                    });
                }
                for &word in table {
                    if *out_width < 64 && word >> *out_width != 0 {
                        return Err(HdlError::ValueOverflow {
                            value: word,
                            width: *out_width,
                        });
                    }
                }
                Ok(())
            }
            Prim::FifoMacro { depth, .. } | Prim::LifoMacro { depth, .. } => {
                if *depth == 0 {
                    return Err(HdlError::InvalidWidth { width: 0 });
                }
                Ok(())
            }
            _ => Ok(()),
        }
    }

    /// Evaluates a *combinational* primitive on concrete input values.
    ///
    /// Undefined (`X`/`Z`) inputs poison arithmetic and table lookups to
    /// all-`X` outputs, matching pessimistic VHDL simulation. Sequential
    /// primitives have no combinational function and return an empty
    /// vector; the simulator owns their state.
    ///
    /// # Errors
    ///
    /// Returns [`HdlError::WidthMismatch`] if `inputs` disagree with
    /// [`Prim::input_widths`].
    pub fn eval_comb(&self, inputs: &[LogicVector]) -> Result<Vec<LogicVector>, HdlError> {
        let expect = self.input_widths();
        if inputs.len() != expect.len() {
            return Err(HdlError::WidthMismatch {
                context: format!("{self:?} pin count"),
                expected: expect.len(),
                found: inputs.len(),
            });
        }
        for (i, (input, w)) in inputs.iter().zip(expect.iter()).enumerate() {
            if input.width() != *w {
                return Err(HdlError::WidthMismatch {
                    context: format!("{self:?} input pin {i}"),
                    expected: *w,
                    found: input.width(),
                });
            }
        }
        let out_w = self.output_widths();
        let poison = |w: usize| LogicVector::unknown(w).expect("validated width");
        let ok = match self {
            Prim::Reg { .. }
            | Prim::BlockRam { .. }
            | Prim::FifoMacro { .. }
            | Prim::LifoMacro { .. } => return Ok(Vec::new()),
            Prim::Const { value } => vec![*value],
            Prim::Not { width } => match inputs[0].to_u64() {
                Some(a) => {
                    vec![LogicVector::from_u64(!a & lv_mask(*width), *width)
                        .expect("masked value fits")]
                }
                None => vec![poison(*width)],
            },
            Prim::Gate { op, width } => match (inputs[0].to_u64(), inputs[1].to_u64()) {
                (Some(a), Some(b)) => {
                    let y = match op {
                        GateOp::And => a & b,
                        GateOp::Or => a | b,
                        GateOp::Xor => a ^ b,
                    };
                    vec![LogicVector::from_u64(y, *width).expect("masked value fits")]
                }
                // Bitwise gates can still produce defined bits when one
                // operand dominates (0 for AND, 1 for OR).
                _ => {
                    let mut y = LogicVector::unknown(*width).expect("validated width");
                    for i in 0..*width {
                        let a = inputs[0].bit(i).expect("within width");
                        let b = inputs[1].bit(i).expect("within width");
                        let bit = match op {
                            GateOp::And => a & b,
                            GateOp::Or => a | b,
                            GateOp::Xor => a ^ b,
                        };
                        y.set(i, bit).expect("within width");
                    }
                    vec![y]
                }
            },
            Prim::ReduceOr { .. } => {
                let any_one = inputs[0].iter().any(|b| b == Bit::One);
                let all_defined = inputs[0].is_defined();
                vec![if any_one {
                    lv_bit(true)
                } else if all_defined {
                    lv_bit(false)
                } else {
                    poison(1)
                }]
            }
            Prim::ReduceAnd { .. } => {
                let any_zero = inputs[0].iter().any(|b| b == Bit::Zero);
                let all_defined = inputs[0].is_defined();
                vec![if any_zero {
                    lv_bit(false)
                } else if all_defined {
                    lv_bit(true)
                } else {
                    poison(1)
                }]
            }
            Prim::Add { width } => match (inputs[0].to_u64(), inputs[1].to_u64()) {
                (Some(a), Some(b)) => {
                    vec![
                        LogicVector::from_u64(a.wrapping_add(b) & lv_mask(*width), *width)
                            .expect("masked value fits"),
                    ]
                }
                _ => vec![poison(*width)],
            },
            Prim::Sub { width } => match (inputs[0].to_u64(), inputs[1].to_u64()) {
                (Some(a), Some(b)) => {
                    vec![
                        LogicVector::from_u64(a.wrapping_sub(b) & lv_mask(*width), *width)
                            .expect("masked value fits"),
                    ]
                }
                _ => vec![poison(*width)],
            },
            Prim::Inc { width } => match inputs[0].to_u64() {
                Some(a) => vec![
                    LogicVector::from_u64(a.wrapping_add(1) & lv_mask(*width), *width)
                        .expect("masked value fits"),
                ],
                None => vec![poison(*width)],
            },
            Prim::Cmp { kind, .. } => match (inputs[0].to_u64(), inputs[1].to_u64()) {
                (Some(a), Some(b)) => {
                    let y = match kind {
                        CmpKind::Eq => a == b,
                        CmpKind::Ne => a != b,
                        CmpKind::Lt => a < b,
                        CmpKind::Ge => a >= b,
                    };
                    vec![lv_bit(y)]
                }
                _ => vec![poison(1)],
            },
            Prim::Mux { width, ways } => match inputs[0].to_u64() {
                Some(sel) if (sel as usize) < *ways => vec![inputs[1 + sel as usize]],
                _ => vec![poison(*width)],
            },
            Prim::Slice { low, len, .. } => {
                vec![inputs[0].slice(*low, *len).expect("validated bounds")]
            }
            Prim::Concat { .. } => {
                // Inputs are most significant first.
                let mut acc = inputs[0];
                for input in &inputs[1..] {
                    acc = acc.concat(input).expect("validated total width");
                }
                vec![acc]
            }
            Prim::TruthTable {
                out_width, table, ..
            } => {
                // Ternary evaluation: enumerate every value of the
                // undefined input bits; an output bit is defined when
                // it agrees across the whole enumeration. This models
                // how real LUT logic recovers from `X` on don't-care
                // inputs — essential for generated FSMs whose
                // handshake inputs start undefined.
                let mut known: u64 = 0;
                let mut x_positions: Vec<u32> = Vec::new();
                let mut bit_pos = 0u32;
                for input in inputs.iter().rev() {
                    for i in 0..input.width() {
                        match input.bit(i).expect("within width") {
                            Bit::One => known |= 1 << bit_pos,
                            Bit::Zero => {}
                            Bit::X | Bit::Z => x_positions.push(bit_pos),
                        }
                        bit_pos += 1;
                    }
                }
                const MAX_X_ENUM: usize = 10;
                if x_positions.len() > MAX_X_ENUM {
                    return Ok(vec![poison(*out_width)]);
                }
                let full = if *out_width >= 64 {
                    u64::MAX
                } else {
                    (1u64 << *out_width) - 1
                };
                let mut ones = full; // bits that were 1 in every combo
                let mut zeros = full; // bits that were 0 in every combo
                for combo in 0..(1u64 << x_positions.len()) {
                    let mut index = known;
                    for (i, &pos) in x_positions.iter().enumerate() {
                        if combo >> i & 1 == 1 {
                            index |= 1 << pos;
                        }
                    }
                    let word = table[index as usize];
                    ones &= word;
                    zeros &= !word;
                }
                let mut out = LogicVector::unknown(*out_width).expect("validated");
                for i in 0..*out_width {
                    if ones >> i & 1 == 1 {
                        out.set(i, Bit::One).expect("within width");
                    } else if zeros >> i & 1 == 1 {
                        out.set(i, Bit::Zero).expect("within width");
                    }
                }
                vec![out]
            }
            Prim::TriBuf { width } => match inputs[0].to_u64() {
                Some(1) => vec![inputs[1]],
                Some(_) => vec![LogicVector::high_z(*width).expect("validated width")],
                None => vec![poison(*width)],
            },
            Prim::Buf { .. } => vec![inputs[0]],
        };
        debug_assert_eq!(ok.len(), out_w.len());
        Ok(ok)
    }

    /// A short mnemonic used in reports and VHDL comments.
    #[must_use]
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Prim::Reg { .. } => "reg",
            Prim::Const { .. } => "const",
            Prim::Not { .. } => "not",
            Prim::Gate {
                op: GateOp::And, ..
            } => "and",
            Prim::Gate { op: GateOp::Or, .. } => "or",
            Prim::Gate {
                op: GateOp::Xor, ..
            } => "xor",
            Prim::ReduceOr { .. } => "reduce_or",
            Prim::ReduceAnd { .. } => "reduce_and",
            Prim::Add { .. } => "add",
            Prim::Sub { .. } => "sub",
            Prim::Inc { .. } => "inc",
            Prim::Cmp { .. } => "cmp",
            Prim::Mux { .. } => "mux",
            Prim::Slice { .. } => "slice",
            Prim::Concat { .. } => "concat",
            Prim::TruthTable { .. } => "table",
            Prim::TriBuf { .. } => "tribuf",
            Prim::Buf { .. } => "buf",
            Prim::BlockRam { .. } => "bram",
            Prim::FifoMacro { .. } => "fifo",
            Prim::LifoMacro { .. } => "lifo",
        }
    }
}

fn lv_mask(width: usize) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

fn lv_bit(value: bool) -> LogicVector {
    LogicVector::from_u64(u64::from(value), 1).expect("1-bit value")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lv(value: u64, width: usize) -> LogicVector {
        LogicVector::from_u64(value, width).unwrap()
    }

    #[test]
    fn sel_width_covers_way_counts() {
        assert_eq!(sel_width(2), 1);
        assert_eq!(sel_width(3), 2);
        assert_eq!(sel_width(4), 2);
        assert_eq!(sel_width(5), 3);
        assert_eq!(sel_width(8), 3);
        assert_eq!(sel_width(9), 4);
    }

    #[test]
    fn add_wraps() {
        let add = Prim::Add { width: 8 };
        let y = add.eval_comb(&[lv(250, 8), lv(10, 8)]).unwrap();
        assert_eq!(y[0].to_u64(), Some(4));
    }

    #[test]
    fn sub_wraps() {
        let sub = Prim::Sub { width: 8 };
        let y = sub.eval_comb(&[lv(3, 8), lv(5, 8)]).unwrap();
        assert_eq!(y[0].to_u64(), Some(254));
    }

    #[test]
    fn inc_matches_add_one() {
        let inc = Prim::Inc { width: 4 };
        assert_eq!(inc.eval_comb(&[lv(15, 4)]).unwrap()[0].to_u64(), Some(0));
        assert_eq!(inc.eval_comb(&[lv(7, 4)]).unwrap()[0].to_u64(), Some(8));
    }

    #[test]
    fn cmp_kinds() {
        for (kind, a, b, want) in [
            (CmpKind::Eq, 5, 5, 1),
            (CmpKind::Eq, 5, 6, 0),
            (CmpKind::Ne, 5, 6, 1),
            (CmpKind::Lt, 5, 6, 1),
            (CmpKind::Lt, 6, 5, 0),
            (CmpKind::Ge, 6, 5, 1),
            (CmpKind::Ge, 5, 5, 1),
        ] {
            let cmp = Prim::Cmp { kind, width: 8 };
            let y = cmp.eval_comb(&[lv(a, 8), lv(b, 8)]).unwrap();
            assert_eq!(y[0].to_u64(), Some(want), "{kind:?} {a} {b}");
        }
    }

    #[test]
    fn mux_selects() {
        let mux = Prim::Mux { width: 8, ways: 3 };
        let inputs = [lv(2, 2), lv(10, 8), lv(20, 8), lv(30, 8)];
        assert_eq!(mux.eval_comb(&inputs).unwrap()[0].to_u64(), Some(30));
    }

    #[test]
    fn mux_out_of_range_select_is_x() {
        let mux = Prim::Mux { width: 8, ways: 3 };
        let inputs = [lv(3, 2), lv(10, 8), lv(20, 8), lv(30, 8)];
        assert_eq!(mux.eval_comb(&inputs).unwrap()[0].to_u64(), None);
    }

    #[test]
    fn truth_table_lookup() {
        // 2-bit input -> 2x the value, 3-bit output.
        let tt = Prim::TruthTable {
            in_widths: vec![2],
            out_width: 3,
            table: vec![0, 2, 4, 6],
        };
        tt.validate().unwrap();
        assert_eq!(tt.eval_comb(&[lv(3, 2)]).unwrap()[0].to_u64(), Some(6));
    }

    #[test]
    fn truth_table_multi_input_index_order_is_msb_first() {
        // inputs (a:1bit, b:1bit): index = a<<1 | b
        let tt = Prim::TruthTable {
            in_widths: vec![1, 1],
            out_width: 2,
            table: vec![0, 1, 2, 3],
        };
        let y = tt.eval_comb(&[lv(1, 1), lv(0, 1)]).unwrap();
        assert_eq!(y[0].to_u64(), Some(2));
    }

    #[test]
    fn ternary_eval_defines_bits_independent_of_x() {
        // y = a (2-bit identity on input a, ignoring input b).
        let tt = Prim::TruthTable {
            in_widths: vec![2, 1],
            out_width: 2,
            table: vec![0, 0, 1, 1, 2, 2, 3, 3],
        };
        let a = lv(0b10, 2);
        let b_x = LogicVector::unknown(1).unwrap();
        // b is X but the output does not depend on it: fully defined.
        let y = tt.eval_comb(&[a, b_x]).unwrap();
        assert_eq!(y[0].to_u64(), Some(0b10));
    }

    #[test]
    fn ternary_eval_poisons_only_dependent_bits() {
        // out bit0 = b, out bit1 = a. With b undefined, bit1 stays
        // defined and bit0 is X.
        let tt = Prim::TruthTable {
            in_widths: vec![1, 1],
            out_width: 2,
            table: vec![0b00, 0b01, 0b10, 0b11],
        };
        let a = lv(1, 1);
        let b_x = LogicVector::unknown(1).unwrap();
        let y = tt.eval_comb(&[a, b_x]).unwrap();
        assert_eq!(y[0].bit(1).unwrap(), Bit::One);
        assert_eq!(y[0].bit(0).unwrap(), Bit::X);
    }

    #[test]
    fn ternary_eval_treats_z_as_unknown() {
        let tt = Prim::TruthTable {
            in_widths: vec![1],
            out_width: 1,
            table: vec![0, 1],
        };
        let z = LogicVector::high_z(1).unwrap();
        assert_eq!(tt.eval_comb(&[z]).unwrap()[0].to_u64(), None);
        // A constant-output table is defined even on Z input.
        let konst = Prim::TruthTable {
            in_widths: vec![1],
            out_width: 1,
            table: vec![1, 1],
        };
        assert_eq!(konst.eval_comb(&[z]).unwrap()[0].to_u64(), Some(1));
    }

    #[test]
    fn ternary_eval_gives_up_past_the_enumeration_cap() {
        // 12 undefined bits exceed the 10-bit enumeration cap: all X,
        // even for a constant table.
        let tt = Prim::TruthTable {
            in_widths: vec![12],
            out_width: 1,
            table: vec![1; 1 << 12],
        };
        let x = LogicVector::unknown(12).unwrap();
        assert_eq!(tt.eval_comb(&[x]).unwrap()[0].to_u64(), None);
    }

    #[test]
    fn truth_table_size_mismatch_rejected() {
        let tt = Prim::TruthTable {
            in_widths: vec![2],
            out_width: 1,
            table: vec![0, 1],
        };
        assert!(tt.validate().is_err());
    }

    #[test]
    fn tribuf_releases_bus() {
        let buf = Prim::TriBuf { width: 4 };
        let driven = buf.eval_comb(&[lv(1, 1), lv(9, 4)]).unwrap();
        assert_eq!(driven[0].to_u64(), Some(9));
        let released = buf.eval_comb(&[lv(0, 1), lv(9, 4)]).unwrap();
        assert_eq!(released[0], LogicVector::high_z(4).unwrap());
    }

    #[test]
    fn and_with_dominating_zero_is_defined() {
        let and = Prim::Gate {
            op: GateOp::And,
            width: 2,
        };
        let x = LogicVector::unknown(2).unwrap();
        let y = and.eval_comb(&[lv(0, 2), x]).unwrap();
        assert_eq!(y[0].to_u64(), Some(0));
    }

    #[test]
    fn arithmetic_poisons_on_x() {
        let add = Prim::Add { width: 8 };
        let x = LogicVector::unknown(8).unwrap();
        assert_eq!(add.eval_comb(&[x, lv(1, 8)]).unwrap()[0].to_u64(), None);
    }

    #[test]
    fn reduce_or_and() {
        let ror = Prim::ReduceOr { width: 4 };
        assert_eq!(ror.eval_comb(&[lv(0, 4)]).unwrap()[0].to_u64(), Some(0));
        assert_eq!(ror.eval_comb(&[lv(2, 4)]).unwrap()[0].to_u64(), Some(1));
        let rand = Prim::ReduceAnd { width: 4 };
        assert_eq!(rand.eval_comb(&[lv(0xF, 4)]).unwrap()[0].to_u64(), Some(1));
        assert_eq!(rand.eval_comb(&[lv(0xE, 4)]).unwrap()[0].to_u64(), Some(0));
    }

    #[test]
    fn slice_and_concat() {
        let slice = Prim::Slice {
            in_width: 8,
            low: 4,
            len: 4,
        };
        assert_eq!(
            slice.eval_comb(&[lv(0xAB, 8)]).unwrap()[0].to_u64(),
            Some(0xA)
        );
        let concat = Prim::Concat { widths: vec![4, 4] };
        let y = concat.eval_comb(&[lv(0xA, 4), lv(0xB, 4)]).unwrap();
        assert_eq!(y[0].to_u64(), Some(0xAB));
    }

    #[test]
    fn sequential_prims_have_no_comb_eval() {
        let reg = Prim::Reg {
            width: 8,
            has_enable: true,
            reset_value: 0,
        };
        assert!(reg.is_sequential());
        assert!(reg.eval_comb(&[lv(0, 8), lv(1, 1)]).unwrap().is_empty());
    }

    #[test]
    fn width_mismatch_is_reported() {
        let add = Prim::Add { width: 8 };
        assert!(matches!(
            add.eval_comb(&[lv(0, 4), lv(0, 8)]),
            Err(HdlError::WidthMismatch { .. })
        ));
        assert!(matches!(
            add.eval_comb(&[lv(0, 8)]),
            Err(HdlError::WidthMismatch { .. })
        ));
    }

    #[test]
    fn reg_reset_value_validated() {
        let reg = Prim::Reg {
            width: 4,
            has_enable: false,
            reset_value: 16,
        };
        assert!(reg.validate().is_err());
    }

    #[test]
    fn pin_contracts_are_consistent() {
        let prims: Vec<Prim> = vec![
            Prim::Reg {
                width: 8,
                has_enable: true,
                reset_value: 0,
            },
            Prim::Const { value: lv(5, 4) },
            Prim::Not { width: 3 },
            Prim::Gate {
                op: GateOp::Xor,
                width: 5,
            },
            Prim::ReduceOr { width: 7 },
            Prim::Add { width: 16 },
            Prim::Inc { width: 16 },
            Prim::Cmp {
                kind: CmpKind::Lt,
                width: 9,
            },
            Prim::Mux { width: 8, ways: 5 },
            Prim::Slice {
                in_width: 8,
                low: 2,
                len: 3,
            },
            Prim::Concat {
                widths: vec![8, 8, 8],
            },
            Prim::TriBuf { width: 8 },
            Prim::Buf { width: 8 },
            Prim::BlockRam {
                addr_width: 9,
                data_width: 8,
            },
            Prim::FifoMacro {
                depth: 512,
                width: 8,
            },
            Prim::LifoMacro {
                depth: 16,
                width: 8,
            },
        ];
        for prim in prims {
            prim.validate().unwrap_or_else(|e| panic!("{prim:?}: {e}"));
            assert!(!prim.mnemonic().is_empty());
            assert!(!prim.output_widths().is_empty(), "{prim:?}");
        }
    }
}
