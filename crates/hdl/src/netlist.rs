//! Structural netlists: graphs of primitive cells connected by nets.

use crate::prim::Prim;
use crate::{Entity, HdlError, PortDir};

/// Identifier of a net inside one [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetId(pub(crate) usize);

impl NetId {
    /// The raw index of the net.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

/// Identifier of a cell inside one [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CellId(pub(crate) usize);

impl CellId {
    /// The raw index of the cell.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

/// A named wire of a fixed width.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Net {
    name: String,
    width: usize,
}

impl Net {
    /// The net name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The net width in bits.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }
}

/// An instantiated primitive with its pin connections.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    name: String,
    prim: Prim,
    inputs: Vec<NetId>,
    outputs: Vec<NetId>,
}

impl Cell {
    /// The instance name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The primitive this cell instantiates.
    #[must_use]
    pub fn prim(&self) -> &Prim {
        &self.prim
    }

    /// Nets connected to the input pins, in pin order.
    #[must_use]
    pub fn inputs(&self) -> &[NetId] {
        &self.inputs
    }

    /// Nets connected to the output pins, in pin order.
    #[must_use]
    pub fn outputs(&self) -> &[NetId] {
        &self.outputs
    }
}

/// A clock domain of a netlist: a named clock with an integer period
/// expressed in simulator base steps.
///
/// Domain 0 is always the implicit default clock `clk` with period 1;
/// further domains are declared with [`Netlist::add_domain`] and tick
/// every `period` base steps (all domains coincide at step 0). Sequential
/// cells are assigned to a domain with [`Netlist::add_cell_in_domain`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClockDomain {
    name: String,
    period: u64,
}

impl ClockDomain {
    /// The clock name (also the `rising_edge(..)` rail in emitted VHDL).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The clock period in simulator base steps.
    #[must_use]
    pub fn period(&self) -> u64 {
        self.period
    }
}

/// Association between an entity port and an internal net.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortBinding {
    port: String,
    net: NetId,
}

impl PortBinding {
    /// The bound entity port name.
    #[must_use]
    pub fn port(&self) -> &str {
        &self.port
    }

    /// The internal net carrying the port.
    #[must_use]
    pub fn net(&self) -> NetId {
        self.net
    }
}

/// A structural architecture: an [`Entity`] plus a graph of primitive
/// cells and nets, the output format of the metaprogramming generator.
///
/// Clocks and the synchronous reset are not modelled as nets; sequential
/// primitives are clocked by the simulator and reset globally, which
/// matches the generated VHDL's implicit `clk`/`rst` rails. A netlist
/// starts with the single default domain `clk` (period 1) and may declare
/// further [`ClockDomain`]s for registers via [`Netlist::add_domain`] and
/// [`Netlist::add_cell_in_domain`] — the basis of the async-FIFO/CDC
/// families.
///
/// # Example
///
/// ```
/// use hdp_hdl::{Entity, Netlist, PortDir};
/// use hdp_hdl::prim::Prim;
///
/// # fn main() -> Result<(), hdp_hdl::HdlError> {
/// let entity = Entity::builder("inc8")
///     .port("a", PortDir::In, 8)?
///     .port("y", PortDir::Out, 8)?
///     .build()?;
/// let mut netlist = Netlist::new(entity);
/// let a = netlist.add_net("a", 8)?;
/// let y = netlist.add_net("y", 8)?;
/// netlist.add_cell("u_inc", Prim::Inc { width: 8 }, vec![a], vec![y])?;
/// netlist.bind_port("a", a)?;
/// netlist.bind_port("y", y)?;
/// hdp_hdl::validate::check(&netlist)?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Netlist {
    entity: Entity,
    nets: Vec<Net>,
    cells: Vec<Cell>,
    bindings: Vec<PortBinding>,
    domains: Vec<ClockDomain>,
    cell_domains: Vec<usize>,
}

impl Netlist {
    /// Creates an empty netlist implementing `entity`.
    ///
    /// The netlist starts with the single implicit clock domain `clk`
    /// (period 1); see [`Netlist::add_domain`].
    #[must_use]
    pub fn new(entity: Entity) -> Self {
        Self {
            entity,
            nets: Vec::new(),
            cells: Vec::new(),
            bindings: Vec::new(),
            domains: vec![ClockDomain {
                name: "clk".into(),
                period: 1,
            }],
            cell_domains: Vec::new(),
        }
    }

    /// The entity this netlist implements.
    #[must_use]
    pub fn entity(&self) -> &Entity {
        &self.entity
    }

    /// All nets, indexable by [`NetId::index`].
    #[must_use]
    pub fn nets(&self) -> &[Net] {
        &self.nets
    }

    /// All cells, indexable by [`CellId::index`].
    #[must_use]
    pub fn cells(&self) -> &[Cell] {
        &self.cells
    }

    /// All port bindings.
    #[must_use]
    pub fn bindings(&self) -> &[PortBinding] {
        &self.bindings
    }

    /// All clock domains; index 0 is always the default `clk` / period 1.
    #[must_use]
    pub fn domains(&self) -> &[ClockDomain] {
        &self.domains
    }

    /// Whether more than one clock domain is declared.
    #[must_use]
    pub fn is_multi_domain(&self) -> bool {
        self.domains.len() > 1
    }

    /// The domain index of a cell (0 = the default `clk` domain).
    #[must_use]
    pub fn cell_domain(&self, id: CellId) -> usize {
        self.cell_domains[id.0]
    }

    /// The domain indices of all cells, indexable by [`CellId::index`]
    /// (for callers iterating cells by raw position).
    #[must_use]
    pub fn cell_domains(&self) -> &[usize] {
        &self.cell_domains
    }

    /// Declares a new clock domain and returns its index.
    ///
    /// The name must be a legal identifier distinct from every existing
    /// domain and net name (the emitted VHDL references the clock as an
    /// implicit rail of that name), and the period must be at least 1.
    ///
    /// # Errors
    ///
    /// Returns [`HdlError::InvalidIdentifier`], [`HdlError::DuplicateName`]
    /// or [`HdlError::InvalidDomain`].
    pub fn add_domain(&mut self, name: impl Into<String>, period: u64) -> Result<usize, HdlError> {
        let name = name.into();
        if !crate::is_valid_identifier(&name) {
            return Err(HdlError::InvalidIdentifier { name });
        }
        if period == 0 {
            return Err(HdlError::InvalidDomain {
                context: format!("domain `{name}` has period 0"),
            });
        }
        if self.domains.iter().any(|d| d.name == name) || name == "rst" {
            return Err(HdlError::DuplicateName {
                name,
                kind: "clock domain",
            });
        }
        if self.nets.iter().any(|n| n.name == name) {
            return Err(HdlError::InvalidDomain {
                context: format!("domain `{name}` collides with a net name"),
            });
        }
        self.domains.push(ClockDomain { name, period });
        Ok(self.domains.len() - 1)
    }

    /// Looks up a net by id.
    #[must_use]
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.0]
    }

    /// Looks up a cell by id.
    #[must_use]
    pub fn cell(&self, id: CellId) -> &Cell {
        &self.cells[id.0]
    }

    /// Finds a net by name.
    #[must_use]
    pub fn find_net(&self, name: &str) -> Option<NetId> {
        self.nets.iter().position(|n| n.name == name).map(NetId)
    }

    /// The net bound to the named entity port, if bound.
    #[must_use]
    pub fn port_net(&self, port: &str) -> Option<NetId> {
        self.bindings.iter().find(|b| b.port == port).map(|b| b.net)
    }

    /// Adds a net.
    ///
    /// # Errors
    ///
    /// Returns [`HdlError::InvalidIdentifier`], [`HdlError::InvalidWidth`]
    /// or [`HdlError::DuplicateName`].
    pub fn add_net(&mut self, name: impl Into<String>, width: usize) -> Result<NetId, HdlError> {
        let name = name.into();
        if !crate::is_valid_identifier(&name) {
            return Err(HdlError::InvalidIdentifier { name });
        }
        if width == 0 || width > crate::vector::MAX_WIDTH {
            return Err(HdlError::InvalidWidth { width });
        }
        if self.nets.iter().any(|n| n.name == name) {
            return Err(HdlError::DuplicateName { name, kind: "net" });
        }
        if self.domains[1..].iter().any(|d| d.name == name) {
            return Err(HdlError::InvalidDomain {
                context: format!("net `{name}` collides with a clock domain name"),
            });
        }
        self.nets.push(Net { name, width });
        Ok(NetId(self.nets.len() - 1))
    }

    /// Adds a cell, eagerly checking the pin contract of its primitive
    /// against the connected net widths.
    ///
    /// # Errors
    ///
    /// Returns the primitive's own validation error, plus
    /// [`HdlError::WidthMismatch`] for wrong pin counts or widths,
    /// [`HdlError::NotFound`] for dangling net ids and
    /// [`HdlError::DuplicateName`] for a repeated instance name.
    pub fn add_cell(
        &mut self,
        name: impl Into<String>,
        prim: Prim,
        inputs: Vec<NetId>,
        outputs: Vec<NetId>,
    ) -> Result<CellId, HdlError> {
        let name = name.into();
        if !crate::is_valid_identifier(&name) {
            return Err(HdlError::InvalidIdentifier { name });
        }
        if self.cells.iter().any(|c| c.name == name) {
            return Err(HdlError::DuplicateName { name, kind: "cell" });
        }
        prim.validate()?;
        let in_w = prim.input_widths();
        let out_w = prim.output_widths();
        if inputs.len() != in_w.len() {
            return Err(HdlError::WidthMismatch {
                context: format!("cell `{name}` input pin count"),
                expected: in_w.len(),
                found: inputs.len(),
            });
        }
        if outputs.len() != out_w.len() {
            return Err(HdlError::WidthMismatch {
                context: format!("cell `{name}` output pin count"),
                expected: out_w.len(),
                found: outputs.len(),
            });
        }
        for (pin, (&net, &want)) in inputs.iter().zip(in_w.iter()).enumerate() {
            let actual = self.net_width(net, &name)?;
            if actual != want {
                return Err(HdlError::WidthMismatch {
                    context: format!("cell `{name}` input pin {pin}"),
                    expected: want,
                    found: actual,
                });
            }
        }
        for (pin, (&net, &want)) in outputs.iter().zip(out_w.iter()).enumerate() {
            let actual = self.net_width(net, &name)?;
            if actual != want {
                return Err(HdlError::WidthMismatch {
                    context: format!("cell `{name}` output pin {pin}"),
                    expected: want,
                    found: actual,
                });
            }
        }
        self.cells.push(Cell {
            name,
            prim,
            inputs,
            outputs,
        });
        self.cell_domains.push(0);
        Ok(CellId(self.cells.len() - 1))
    }

    /// Adds a cell clocked by the given domain (see [`Netlist::add_domain`]).
    ///
    /// Only register cells may live outside the default domain: the macro
    /// primitives (block RAM, FIFO, LIFO) model vendor cores that are
    /// hard-wired to the implicit `clk`, and combinational cells have no
    /// clock at all.
    ///
    /// # Errors
    ///
    /// Returns [`HdlError::InvalidDomain`] for an unknown domain index or
    /// a non-register primitive in a non-default domain, plus everything
    /// [`Netlist::add_cell`] returns.
    pub fn add_cell_in_domain(
        &mut self,
        name: impl Into<String>,
        prim: Prim,
        inputs: Vec<NetId>,
        outputs: Vec<NetId>,
        domain: usize,
    ) -> Result<CellId, HdlError> {
        let name = name.into();
        if domain >= self.domains.len() {
            return Err(HdlError::InvalidDomain {
                context: format!(
                    "cell `{name}` references domain #{domain} but only {} are declared",
                    self.domains.len()
                ),
            });
        }
        if domain != 0 && !matches!(prim, Prim::Reg { .. }) {
            return Err(HdlError::InvalidDomain {
                context: format!(
                    "cell `{name}` ({}) cannot join domain `{}`: only registers may \
                     leave the default `clk` domain",
                    prim.mnemonic(),
                    self.domains[domain].name
                ),
            });
        }
        let id = self.add_cell(name, prim, inputs, outputs)?;
        self.cell_domains[id.0] = domain;
        Ok(id)
    }

    fn net_width(&self, net: NetId, cell: &str) -> Result<usize, HdlError> {
        self.nets
            .get(net.0)
            .map(|n| n.width)
            .ok_or_else(|| HdlError::NotFound {
                kind: "net",
                name: format!("net #{} (cell `{cell}`)", net.0),
            })
    }

    /// Binds an entity port to an internal net.
    ///
    /// # Errors
    ///
    /// Returns [`HdlError::NotFound`] for an unknown port or net,
    /// [`HdlError::WidthMismatch`] for a width disagreement and
    /// [`HdlError::DuplicateName`] if the port is already bound.
    pub fn bind_port(&mut self, port: &str, net: NetId) -> Result<(), HdlError> {
        let Some(decl) = self.entity.port(port) else {
            return Err(HdlError::NotFound {
                kind: "port",
                name: port.into(),
            });
        };
        let width = self.net_width(net, port)?;
        if decl.width() != width {
            return Err(HdlError::WidthMismatch {
                context: format!("binding of port `{port}`"),
                expected: decl.width(),
                found: width,
            });
        }
        if self.bindings.iter().any(|b| b.port == port) {
            return Err(HdlError::DuplicateName {
                name: port.into(),
                kind: "port binding",
            });
        }
        self.bindings.push(PortBinding {
            port: port.into(),
            net,
        });
        Ok(())
    }

    /// Lists every driver of each net: cell output pins plus input /
    /// inout port bindings. Index by [`NetId::index`].
    #[must_use]
    pub fn drivers(&self) -> Vec<Vec<Driver>> {
        let mut drivers: Vec<Vec<Driver>> = vec![Vec::new(); self.nets.len()];
        for (ci, cell) in self.cells.iter().enumerate() {
            for (pin, &net) in cell.outputs.iter().enumerate() {
                drivers[net.0].push(Driver::CellOutput {
                    cell: CellId(ci),
                    pin,
                });
            }
        }
        for binding in &self.bindings {
            let dir = self
                .entity
                .port(&binding.port)
                .expect("binding validated against entity")
                .dir();
            if matches!(dir, PortDir::In | PortDir::InOut) {
                drivers[binding.net.0].push(Driver::InputPort {
                    port: binding.port.clone(),
                });
            }
        }
        drivers
    }

    /// Computes a topological order of the *combinational* cells.
    ///
    /// Sequential cells are excluded (their outputs act as sources).
    ///
    /// # Errors
    ///
    /// Returns [`HdlError::CombinationalLoop`] naming a net on the cycle.
    pub fn comb_topo_order(&self) -> Result<Vec<CellId>, HdlError> {
        // Kahn's algorithm over combinational cells, with nets as the
        // intermediate dependency carriers.
        let mut net_ready = vec![false; self.nets.len()];
        // Nets driven only by sequential cells or ports start ready.
        let mut comb_driver: Vec<Vec<usize>> = vec![Vec::new(); self.nets.len()];
        for (ci, cell) in self.cells.iter().enumerate() {
            if cell.prim.is_sequential() {
                continue;
            }
            for &net in &cell.outputs {
                comb_driver[net.0].push(ci);
            }
        }
        for (ni, drivers) in comb_driver.iter().enumerate() {
            if drivers.is_empty() {
                net_ready[ni] = true;
            }
        }
        let comb_cells: Vec<usize> = self
            .cells
            .iter()
            .enumerate()
            .filter(|(_, c)| !c.prim.is_sequential())
            .map(|(i, _)| i)
            .collect();
        let mut placed = vec![false; self.cells.len()];
        let mut order = Vec::with_capacity(comb_cells.len());
        loop {
            let mut progressed = false;
            for &ci in &comb_cells {
                if placed[ci] {
                    continue;
                }
                let cell = &self.cells[ci];
                if cell.inputs.iter().all(|n| net_ready[n.0]) {
                    placed[ci] = true;
                    order.push(CellId(ci));
                    progressed = true;
                    // Outputs become ready once *all* their comb drivers
                    // are placed (tri-state buses have several).
                    for &net in &cell.outputs {
                        if comb_driver[net.0].iter().all(|&d| placed[d]) {
                            net_ready[net.0] = true;
                        }
                    }
                }
            }
            if !progressed {
                break;
            }
        }
        if order.len() != comb_cells.len() {
            let stuck = comb_cells
                .iter()
                .find(|&&ci| !placed[ci])
                .expect("some cell is unplaced");
            let net = self.cells[*stuck]
                .inputs
                .iter()
                .find(|n| !net_ready[n.0])
                .expect("unplaced cell has an unready input");
            return Err(HdlError::CombinationalLoop {
                net: self.nets[net.0].name.clone(),
            });
        }
        Ok(order)
    }

    /// Counts instances of each primitive mnemonic, for reports.
    #[must_use]
    pub fn prim_histogram(&self) -> Vec<(&'static str, usize)> {
        let mut hist: Vec<(&'static str, usize)> = Vec::new();
        for cell in &self.cells {
            let key = cell.prim.mnemonic();
            match hist.iter_mut().find(|(k, _)| *k == key) {
                Some((_, n)) => *n += 1,
                None => hist.push((key, 1)),
            }
        }
        hist.sort_by_key(|(k, _)| *k);
        hist
    }
}

/// One driver of a net.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Driver {
    /// Driven by a cell output pin.
    CellOutput {
        /// The driving cell.
        cell: CellId,
        /// The output pin index on that cell.
        pin: usize,
    },
    /// Driven from outside through an `in` or `inout` port.
    InputPort {
        /// The port name.
        port: String,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prim::GateOp;
    use crate::PortDir;

    fn simple_entity() -> Entity {
        Entity::builder("e")
            .port("a", PortDir::In, 8)
            .unwrap()
            .port("y", PortDir::Out, 8)
            .unwrap()
            .build()
            .unwrap()
    }

    #[test]
    fn build_and_query_small_netlist() {
        let mut nl = Netlist::new(simple_entity());
        let a = nl.add_net("a", 8).unwrap();
        let y = nl.add_net("y", 8).unwrap();
        let c = nl
            .add_cell("u0", Prim::Inc { width: 8 }, vec![a], vec![y])
            .unwrap();
        nl.bind_port("a", a).unwrap();
        nl.bind_port("y", y).unwrap();
        assert_eq!(nl.cell(c).name(), "u0");
        assert_eq!(nl.find_net("y"), Some(y));
        assert_eq!(nl.port_net("a"), Some(a));
        assert_eq!(nl.prim_histogram(), vec![("inc", 1)]);
    }

    #[test]
    fn pin_width_mismatch_is_rejected() {
        let mut nl = Netlist::new(simple_entity());
        let a = nl.add_net("a", 4).unwrap();
        let y = nl.add_net("y", 8).unwrap();
        let err = nl.add_cell("u0", Prim::Inc { width: 8 }, vec![a], vec![y]);
        assert!(matches!(err, Err(HdlError::WidthMismatch { .. })));
    }

    #[test]
    fn pin_count_mismatch_is_rejected() {
        let mut nl = Netlist::new(simple_entity());
        let a = nl.add_net("a", 8).unwrap();
        let y = nl.add_net("y", 8).unwrap();
        let err = nl.add_cell(
            "u0",
            Prim::Gate {
                op: GateOp::And,
                width: 8,
            },
            vec![a],
            vec![y],
        );
        assert!(matches!(err, Err(HdlError::WidthMismatch { .. })));
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut nl = Netlist::new(simple_entity());
        nl.add_net("n", 1).unwrap();
        assert!(matches!(
            nl.add_net("n", 1),
            Err(HdlError::DuplicateName { .. })
        ));
    }

    #[test]
    fn binding_unknown_port_fails() {
        let mut nl = Netlist::new(simple_entity());
        let n = nl.add_net("n", 8).unwrap();
        assert!(matches!(
            nl.bind_port("nope", n),
            Err(HdlError::NotFound { .. })
        ));
    }

    #[test]
    fn binding_width_mismatch_fails() {
        let mut nl = Netlist::new(simple_entity());
        let n = nl.add_net("n", 4).unwrap();
        assert!(matches!(
            nl.bind_port("a", n),
            Err(HdlError::WidthMismatch { .. })
        ));
    }

    #[test]
    fn double_binding_fails() {
        let mut nl = Netlist::new(simple_entity());
        let n = nl.add_net("n", 8).unwrap();
        nl.bind_port("a", n).unwrap();
        assert!(matches!(
            nl.bind_port("a", n),
            Err(HdlError::DuplicateName { .. })
        ));
    }

    #[test]
    fn topo_order_respects_dependencies() {
        let mut nl = Netlist::new(simple_entity());
        let a = nl.add_net("a", 8).unwrap();
        let m = nl.add_net("m", 8).unwrap();
        let y = nl.add_net("y", 8).unwrap();
        // Add in reverse dependency order on purpose.
        let c1 = nl
            .add_cell("second", Prim::Inc { width: 8 }, vec![m], vec![y])
            .unwrap();
        let c0 = nl
            .add_cell("first", Prim::Inc { width: 8 }, vec![a], vec![m])
            .unwrap();
        let order = nl.comb_topo_order().unwrap();
        let pos = |c: CellId| order.iter().position(|&x| x == c).unwrap();
        assert!(pos(c0) < pos(c1));
    }

    #[test]
    fn comb_loop_is_detected() {
        let mut nl = Netlist::new(simple_entity());
        let x = nl.add_net("x", 8).unwrap();
        let z = nl.add_net("z", 8).unwrap();
        nl.add_cell("u0", Prim::Inc { width: 8 }, vec![x], vec![z])
            .unwrap();
        nl.add_cell("u1", Prim::Inc { width: 8 }, vec![z], vec![x])
            .unwrap();
        assert!(matches!(
            nl.comb_topo_order(),
            Err(HdlError::CombinationalLoop { .. })
        ));
    }

    #[test]
    fn register_breaks_loop() {
        let mut nl = Netlist::new(simple_entity());
        let x = nl.add_net("x", 8).unwrap();
        let z = nl.add_net("z", 8).unwrap();
        nl.add_cell("u0", Prim::Inc { width: 8 }, vec![x], vec![z])
            .unwrap();
        nl.add_cell(
            "u1",
            Prim::Reg {
                width: 8,
                has_enable: false,
                reset_value: 0,
            },
            vec![z],
            vec![x],
        )
        .unwrap();
        assert!(nl.comb_topo_order().is_ok());
    }

    #[test]
    fn domains_start_with_default_clk() {
        let nl = Netlist::new(simple_entity());
        assert_eq!(nl.domains().len(), 1);
        assert_eq!(nl.domains()[0].name(), "clk");
        assert_eq!(nl.domains()[0].period(), 1);
        assert!(!nl.is_multi_domain());
    }

    #[test]
    fn add_domain_and_place_register() {
        let mut nl = Netlist::new(simple_entity());
        let rd = nl.add_domain("rd_clk", 3).unwrap();
        assert_eq!(rd, 1);
        assert!(nl.is_multi_domain());
        let d = nl.add_net("d", 8).unwrap();
        let q = nl.add_net("q", 8).unwrap();
        let c = nl
            .add_cell_in_domain(
                "u_q",
                Prim::Reg {
                    width: 8,
                    has_enable: false,
                    reset_value: 0,
                },
                vec![d],
                vec![q],
                rd,
            )
            .unwrap();
        assert_eq!(nl.cell_domain(c), rd);
    }

    #[test]
    fn domain_rejects_bad_period_and_duplicates() {
        let mut nl = Netlist::new(simple_entity());
        assert!(matches!(
            nl.add_domain("rd_clk", 0),
            Err(HdlError::InvalidDomain { .. })
        ));
        assert!(matches!(
            nl.add_domain("clk", 2),
            Err(HdlError::DuplicateName { .. })
        ));
        nl.add_domain("rd_clk", 2).unwrap();
        assert!(matches!(
            nl.add_domain("rd_clk", 2),
            Err(HdlError::DuplicateName { .. })
        ));
        // The clock rail name must stay free on the net side, both ways.
        assert!(matches!(
            nl.add_net("rd_clk", 1),
            Err(HdlError::InvalidDomain { .. })
        ));
        nl.add_net("wr_clk", 1).unwrap();
        assert!(matches!(
            nl.add_domain("wr_clk", 2),
            Err(HdlError::InvalidDomain { .. })
        ));
    }

    #[test]
    fn only_registers_leave_the_default_domain() {
        let mut nl = Netlist::new(simple_entity());
        let rd = nl.add_domain("rd_clk", 2).unwrap();
        let a = nl.add_net("a", 8).unwrap();
        let y = nl.add_net("y", 8).unwrap();
        assert!(matches!(
            nl.add_cell_in_domain("u0", Prim::Inc { width: 8 }, vec![a], vec![y], rd),
            Err(HdlError::InvalidDomain { .. })
        ));
        assert!(matches!(
            nl.add_cell_in_domain("u0", Prim::Inc { width: 8 }, vec![a], vec![y], 9),
            Err(HdlError::InvalidDomain { .. })
        ));
        // Default-domain placement through the new API matches add_cell.
        let c = nl
            .add_cell_in_domain("u0", Prim::Inc { width: 8 }, vec![a], vec![y], 0)
            .unwrap();
        assert_eq!(nl.cell_domain(c), 0);
    }

    #[test]
    fn drivers_lists_cells_and_input_ports() {
        let mut nl = Netlist::new(simple_entity());
        let a = nl.add_net("a", 8).unwrap();
        let y = nl.add_net("y", 8).unwrap();
        nl.add_cell("u0", Prim::Inc { width: 8 }, vec![a], vec![y])
            .unwrap();
        nl.bind_port("a", a).unwrap();
        nl.bind_port("y", y).unwrap();
        let drivers = nl.drivers();
        assert_eq!(drivers[a.index()].len(), 1); // input port
        assert_eq!(drivers[y.index()].len(), 1); // cell output
        assert!(matches!(drivers[a.index()][0], Driver::InputPort { .. }));
    }
}
