//! Structural validation of netlists.
//!
//! The paper's generator promises "efficient VHDL components, ready to
//! be synthesized" (§3.4); these checks are the "ready" part: every
//! entity port bound, every net driven exactly once (tri-state buses
//! excepted), no dangling logic and no combinational cycles.

use crate::netlist::Driver;
use crate::prim::Prim;
use crate::{HdlError, Netlist, PortDir};

/// Runs the full structural check suite on a netlist.
///
/// The individual checks are also exposed ([`check_bindings`],
/// [`check_drivers`], [`check_no_comb_loops`]) for targeted diagnostics.
///
/// # Errors
///
/// Returns the first failure found, in the order: bindings, drivers,
/// combinational loops, clock domains.
///
/// # Example
///
/// ```
/// use hdp_hdl::{Entity, Netlist, PortDir, validate};
/// use hdp_hdl::prim::Prim;
///
/// # fn main() -> Result<(), hdp_hdl::HdlError> {
/// let entity = Entity::builder("pass")
///     .port("a", PortDir::In, 4)?
///     .port("y", PortDir::Out, 4)?
///     .build()?;
/// let mut netlist = Netlist::new(entity);
/// let a = netlist.add_net("a", 4)?;
/// let y = netlist.add_net("y", 4)?;
/// netlist.add_cell("u0", Prim::Buf { width: 4 }, vec![a], vec![y])?;
/// netlist.bind_port("a", a)?;
/// netlist.bind_port("y", y)?;
/// validate::check(&netlist)?;
/// # Ok(())
/// # }
/// ```
pub fn check(netlist: &Netlist) -> Result<(), HdlError> {
    check_bindings(netlist)?;
    check_drivers(netlist)?;
    check_no_comb_loops(netlist)?;
    check_domains(netlist)?;
    Ok(())
}

/// Checks the clock-domain table and per-cell domain assignments.
///
/// The constructors already enforce these invariants; re-checking them
/// here keeps `validate::check` a complete gate for netlists arriving
/// from any future deserializer.
///
/// # Errors
///
/// Returns [`HdlError::InvalidDomain`] for an out-of-range cell domain,
/// a zero period, or a non-register cell outside the default domain.
pub fn check_domains(netlist: &Netlist) -> Result<(), HdlError> {
    for (di, domain) in netlist.domains().iter().enumerate() {
        if domain.period() == 0 {
            return Err(HdlError::InvalidDomain {
                context: format!("domain `{}` has period 0", domain.name()),
            });
        }
        if di == 0 && (domain.name() != "clk" || domain.period() != 1) {
            return Err(HdlError::InvalidDomain {
                context: "domain 0 must be the default `clk` with period 1".into(),
            });
        }
    }
    for (ci, cell) in netlist.cells().iter().enumerate() {
        let domain = netlist.cell_domain(crate::CellId(ci));
        if domain >= netlist.domains().len() {
            return Err(HdlError::InvalidDomain {
                context: format!("cell `{}` references domain #{domain}", cell.name()),
            });
        }
        if domain != 0 && !matches!(cell.prim(), Prim::Reg { .. }) {
            return Err(HdlError::InvalidDomain {
                context: format!(
                    "cell `{}` ({}) outside the default domain",
                    cell.name(),
                    cell.prim().mnemonic()
                ),
            });
        }
    }
    Ok(())
}

/// Checks that every entity port is bound to a net.
///
/// # Errors
///
/// Returns [`HdlError::Unconnected`] naming the first unbound port.
pub fn check_bindings(netlist: &Netlist) -> Result<(), HdlError> {
    for port in netlist.entity().ports() {
        if netlist.port_net(port.name()).is_none() {
            return Err(HdlError::Unconnected {
                context: format!(
                    "port `{}` of entity `{}`",
                    port.name(),
                    netlist.entity().name()
                ),
            });
        }
    }
    Ok(())
}

/// Checks the single-driver rule.
///
/// A net must have exactly one driver, except:
///
/// * nets driven exclusively by [`Prim::TriBuf`] outputs (and optionally
///   an `inout` port) may have several drivers — that is a tri-state
///   bus, resolved at simulation time;
/// * nets read by nothing and driven by nothing are reported as
///   undriven, to catch generator bugs early.
///
/// # Errors
///
/// Returns [`HdlError::MultipleDrivers`] or [`HdlError::NoDriver`].
pub fn check_drivers(netlist: &Netlist) -> Result<(), HdlError> {
    let drivers = netlist.drivers();
    for (ni, net_drivers) in drivers.iter().enumerate() {
        let net = &netlist.nets()[ni];
        match net_drivers.len() {
            0 => {
                return Err(HdlError::NoDriver {
                    net: net.name().to_owned(),
                })
            }
            1 => {}
            _ => {
                let all_tristate = net_drivers.iter().all(|d| match d {
                    Driver::CellOutput { cell, .. } => {
                        matches!(netlist.cell(*cell).prim(), Prim::TriBuf { .. })
                    }
                    Driver::InputPort { port } => {
                        let decl = netlist
                            .entity()
                            .port(port)
                            .expect("binding validated against entity");
                        decl.dir() == PortDir::InOut
                    }
                });
                if !all_tristate {
                    return Err(HdlError::MultipleDrivers {
                        net: net.name().to_owned(),
                    });
                }
            }
        }
    }
    Ok(())
}

/// Checks that the combinational part of the netlist is acyclic.
///
/// # Errors
///
/// Returns [`HdlError::CombinationalLoop`] naming a net on the cycle.
pub fn check_no_comb_loops(netlist: &Netlist) -> Result<(), HdlError> {
    netlist.comb_topo_order().map(|_| ())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Entity;

    fn entity() -> Entity {
        Entity::builder("t")
            .port("a", PortDir::In, 4)
            .unwrap()
            .port("y", PortDir::Out, 4)
            .unwrap()
            .build()
            .unwrap()
    }

    #[test]
    fn unbound_port_is_reported() {
        let mut nl = Netlist::new(entity());
        let a = nl.add_net("a", 4).unwrap();
        nl.bind_port("a", a).unwrap();
        let err = check_bindings(&nl).unwrap_err();
        assert!(matches!(err, HdlError::Unconnected { context } if context.contains("`y`")));
    }

    #[test]
    fn undriven_net_is_reported() {
        let mut nl = Netlist::new(entity());
        let a = nl.add_net("a", 4).unwrap();
        let _floating = nl.add_net("floating", 4).unwrap();
        nl.bind_port("a", a).unwrap();
        let err = check_drivers(&nl).unwrap_err();
        assert!(matches!(err, HdlError::NoDriver { net } if net == "floating"));
    }

    #[test]
    fn double_driver_is_reported() {
        let mut nl = Netlist::new(entity());
        let a = nl.add_net("a", 4).unwrap();
        let y = nl.add_net("y", 4).unwrap();
        nl.add_cell("u0", Prim::Buf { width: 4 }, vec![a], vec![y])
            .unwrap();
        nl.add_cell("u1", Prim::Buf { width: 4 }, vec![a], vec![y])
            .unwrap();
        nl.bind_port("a", a).unwrap();
        nl.bind_port("y", y).unwrap();
        let err = check_drivers(&nl).unwrap_err();
        assert!(matches!(err, HdlError::MultipleDrivers { net } if net == "y"));
    }

    #[test]
    fn tristate_bus_passes_driver_check() {
        let mut nl = Netlist::new(entity());
        let a = nl.add_net("a", 4).unwrap();
        let en0 = nl.add_net("en0", 1).unwrap();
        let en1 = nl.add_net("en1", 1).unwrap();
        let bus = nl.add_net("shared_bus", 4).unwrap();
        let one = nl
            .add_net("one", 1)
            .and_then(|n| {
                nl.add_cell(
                    "c1",
                    Prim::Const {
                        value: crate::LogicVector::from_u64(1, 1).unwrap(),
                    },
                    vec![],
                    vec![n],
                )?;
                Ok(n)
            })
            .unwrap();
        nl.add_cell("b0", Prim::Buf { width: 1 }, vec![one], vec![en0])
            .unwrap();
        nl.add_cell("b1", Prim::Buf { width: 1 }, vec![one], vec![en1])
            .unwrap();
        nl.add_cell("t0", Prim::TriBuf { width: 4 }, vec![en0, a], vec![bus])
            .unwrap();
        nl.add_cell("t1", Prim::TriBuf { width: 4 }, vec![en1, a], vec![bus])
            .unwrap();
        nl.bind_port("a", a).unwrap();
        nl.bind_port("y", bus).unwrap();
        check_drivers(&nl).unwrap();
    }

    #[test]
    fn multi_domain_netlist_validates() {
        let mut nl = Netlist::new(entity());
        let rd = nl.add_domain("rd_clk", 2).unwrap();
        let a = nl.add_net("a", 4).unwrap();
        let y = nl.add_net("y", 4).unwrap();
        nl.add_cell_in_domain(
            "u_q",
            Prim::Reg {
                width: 4,
                has_enable: false,
                reset_value: 0,
            },
            vec![a],
            vec![y],
            rd,
        )
        .unwrap();
        nl.bind_port("a", a).unwrap();
        nl.bind_port("y", y).unwrap();
        check(&nl).unwrap();
    }

    #[test]
    fn full_check_passes_on_good_netlist() {
        let mut nl = Netlist::new(entity());
        let a = nl.add_net("a", 4).unwrap();
        let y = nl.add_net("y", 4).unwrap();
        nl.add_cell("u0", Prim::Inc { width: 4 }, vec![a], vec![y])
            .unwrap();
        nl.bind_port("a", a).unwrap();
        nl.bind_port("y", y).unwrap();
        check(&nl).unwrap();
    }
}
