//! VHDL identifier legality checks.

/// VHDL'93 reserved words that may not be used as identifiers.
const RESERVED: &[&str] = &[
    "abs",
    "access",
    "after",
    "alias",
    "all",
    "and",
    "architecture",
    "array",
    "assert",
    "attribute",
    "begin",
    "block",
    "body",
    "buffer",
    "bus",
    "case",
    "component",
    "configuration",
    "constant",
    "disconnect",
    "downto",
    "else",
    "elsif",
    "end",
    "entity",
    "exit",
    "file",
    "for",
    "function",
    "generate",
    "generic",
    "group",
    "guarded",
    "if",
    "impure",
    "in",
    "inertial",
    "inout",
    "is",
    "label",
    "library",
    "linkage",
    "literal",
    "loop",
    "map",
    "mod",
    "nand",
    "new",
    "next",
    "nor",
    "not",
    "null",
    "of",
    "on",
    "open",
    "or",
    "others",
    "out",
    "package",
    "port",
    "postponed",
    "procedure",
    "process",
    "pure",
    "range",
    "record",
    "register",
    "reject",
    "rem",
    "report",
    "return",
    "rol",
    "ror",
    "select",
    "severity",
    "signal",
    "shared",
    "sla",
    "sll",
    "sra",
    "srl",
    "subtype",
    "then",
    "to",
    "transport",
    "type",
    "unaffected",
    "units",
    "until",
    "use",
    "variable",
    "wait",
    "when",
    "while",
    "with",
    "xnor",
    "xor",
];

/// Returns `true` if `name` is a legal VHDL basic identifier.
///
/// A basic identifier starts with a letter, continues with letters,
/// digits or single underscores, does not end with an underscore, and is
/// not a reserved word (case-insensitively).
///
/// # Example
///
/// ```
/// use hdp_hdl::is_valid_identifier;
///
/// assert!(is_valid_identifier("rbuffer_fifo"));
/// assert!(is_valid_identifier("p_addr"));
/// assert!(!is_valid_identifier("9lives"));
/// assert!(!is_valid_identifier("double__under"));
/// assert!(!is_valid_identifier("signal"));
/// assert!(!is_valid_identifier("trailing_"));
/// ```
#[must_use]
pub fn is_valid_identifier(name: &str) -> bool {
    let mut chars = name.chars();
    let Some(first) = chars.next() else {
        return false;
    };
    if !first.is_ascii_alphabetic() {
        return false;
    }
    let mut prev_underscore = false;
    for c in chars {
        if c == '_' {
            if prev_underscore {
                return false;
            }
            prev_underscore = true;
        } else if c.is_ascii_alphanumeric() {
            prev_underscore = false;
        } else {
            return false;
        }
    }
    if name.ends_with('_') {
        return false;
    }
    let lower = name.to_ascii_lowercase();
    !RESERVED.contains(&lower.as_str())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_paper_identifiers() {
        for name in [
            "rbuffer_fifo",
            "rbuffer_sram",
            "m_empty",
            "m_size",
            "m_pop",
            "data",
            "done",
            "p_empty",
            "p_read",
            "p_data",
            "p_addr",
            "req",
            "ack",
            "wbuffer_it",
        ] {
            assert!(is_valid_identifier(name), "{name}");
        }
    }

    #[test]
    fn rejects_reserved_words_case_insensitively() {
        assert!(!is_valid_identifier("entity"));
        assert!(!is_valid_identifier("ENTITY"));
        assert!(!is_valid_identifier("Signal"));
    }

    #[test]
    fn rejects_malformed_names() {
        assert!(!is_valid_identifier(""));
        assert!(!is_valid_identifier("_lead"));
        assert!(!is_valid_identifier("trail_"));
        assert!(!is_valid_identifier("a__b"));
        assert!(!is_valid_identifier("has space"));
        assert!(!is_valid_identifier("ünïcode"));
        assert!(!is_valid_identifier("3com"));
    }

    #[test]
    fn single_letter_is_valid() {
        assert!(is_valid_identifier("a"));
        assert!(is_valid_identifier("q0"));
    }
}
