//! # hdp-hdl — hardware description intermediate representation
//!
//! This crate is the lowest substrate of the `hdp` workspace, the
//! reproduction of *"Model Reuse through Hardware Design Patterns"*
//! (Rincón et al., DATE 2005). The paper's metaprogramming code generator
//! emits "a set of efficient VHDL components, ready to be synthesized"
//! (§3.4); this crate provides everything such a generator needs:
//!
//! * [`Bit`] and [`LogicVector`] — four-state logic values modelled after
//!   VHDL's `std_logic` / `std_logic_vector`.
//! * [`Entity`], [`Port`], [`Generic`] — component interface declarations,
//!   mirroring the entities of the paper's Figures 4 and 5.
//! * [`Netlist`] and the primitive cell library in [`prim`] — structural
//!   architectures built from technology primitives (registers, LUT logic,
//!   adders, comparators, muxes, counters, block RAM and FIFO macros).
//! * [`vhdl`] — a VHDL pretty-printer that renders entities and structural
//!   architectures as synthesizable VHDL'93 text.
//! * [`validate`] — structural sanity checks (single driver per net, port
//!   width agreement, dangling pins, identifier legality).
//! * [`cdc`] — a static clock-domain-crossing lint over validated
//!   netlists: every register sampling a foreign-domain launch must do so
//!   through a clean synchronizer (or a Gray-coded vector).
//!
//! Downstream, `hdp-sim` interprets netlists cycle-accurately and
//! `hdp-synth` maps them onto Spartan-IIE resources to reproduce the
//! paper's Table 3.
//!
//! ## Example
//!
//! ```
//! use hdp_hdl::{Entity, PortDir};
//!
//! # fn main() -> Result<(), hdp_hdl::HdlError> {
//! let entity = Entity::builder("rbuffer_fifo")
//!     .port("m_pop", PortDir::In, 1)?
//!     .port("data", PortDir::Out, 8)?
//!     .port("done", PortDir::Out, 1)?
//!     .build()?;
//! assert_eq!(entity.name(), "rbuffer_fifo");
//! assert_eq!(entity.ports().len(), 3);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bit;
pub mod cdc;
mod entity;
mod error;
mod ident;
pub mod interp;
mod netlist;
pub mod prim;
pub mod validate;
mod vector;
pub mod vhdl;

pub use bit::Bit;
pub use entity::{Entity, EntityBuilder, Generic, GenericValue, Port, PortDir};
pub use error::HdlError;
pub use ident::is_valid_identifier;
pub use netlist::{Cell, CellId, ClockDomain, Net, NetId, Netlist, PortBinding};
pub use vector::{LogicVector, MAX_WIDTH};
