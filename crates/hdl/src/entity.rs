//! Entity declarations: the external interface of a generated component.

use crate::ident::is_valid_identifier;
use crate::HdlError;
use std::fmt;

/// Direction of an entity port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PortDir {
    /// Input port (`in`).
    In,
    /// Output port (`out`).
    Out,
    /// Bidirectional port (`inout`), used for shared tri-state buses
    /// such as an external SRAM data bus.
    InOut,
}

impl fmt::Display for PortDir {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PortDir::In => "in",
            PortDir::Out => "out",
            PortDir::InOut => "inout",
        })
    }
}

/// A single entity port.
///
/// The paper's generated entities (Figures 4 and 5) partition ports into
/// three groups: *methods* (operation strobes such as `m_pop`), *params*
/// (operation data such as `data`/`done`) and the *implementation
/// interface* (physical-device pins such as `p_read` or `p_addr`). The
/// optional [`Port::group`] label preserves this structure so the VHDL
/// printer can reproduce the figure layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Port {
    name: String,
    dir: PortDir,
    width: usize,
    group: Option<String>,
}

impl Port {
    /// The port name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The port direction.
    #[must_use]
    pub fn dir(&self) -> PortDir {
        self.dir
    }

    /// The port width in bits. Width 1 renders as `std_logic`, wider
    /// ports as `std_logic_vector(width-1 downto 0)`.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// The interface group this port belongs to, if any.
    #[must_use]
    pub fn group(&self) -> Option<&str> {
        self.group.as_deref()
    }
}

/// The value of an entity generic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GenericValue {
    /// An `integer` generic.
    Int(i64),
    /// A `natural` generic constrained to be non-negative.
    Natural(u64),
    /// A `string` generic.
    Str(String),
}

impl fmt::Display for GenericValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GenericValue::Int(v) => write!(f, "{v}"),
            GenericValue::Natural(v) => write!(f, "{v}"),
            GenericValue::Str(s) => write!(f, "\"{s}\""),
        }
    }
}

/// An entity generic with its default value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Generic {
    name: String,
    value: GenericValue,
}

impl Generic {
    /// The generic name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The default value.
    #[must_use]
    pub fn value(&self) -> &GenericValue {
        &self.value
    }

    /// The VHDL type name for this generic.
    #[must_use]
    pub fn type_name(&self) -> &'static str {
        match self.value {
            GenericValue::Int(_) => "integer",
            GenericValue::Natural(_) => "natural",
            GenericValue::Str(_) => "string",
        }
    }
}

/// A VHDL entity declaration: name, generics and ports.
///
/// Construct with [`Entity::builder`]. See the crate-level example.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entity {
    name: String,
    generics: Vec<Generic>,
    ports: Vec<Port>,
}

impl Entity {
    /// Starts building an entity with the given name.
    #[must_use]
    pub fn builder(name: impl Into<String>) -> EntityBuilder {
        EntityBuilder {
            name: name.into(),
            generics: Vec::new(),
            ports: Vec::new(),
            current_group: None,
        }
    }

    /// The entity name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The declared generics, in declaration order.
    #[must_use]
    pub fn generics(&self) -> &[Generic] {
        &self.generics
    }

    /// The declared ports, in declaration order.
    #[must_use]
    pub fn ports(&self) -> &[Port] {
        &self.ports
    }

    /// Looks up a port by name.
    #[must_use]
    pub fn port(&self, name: &str) -> Option<&Port> {
        self.ports.iter().find(|p| p.name == name)
    }

    /// Ports belonging to the given interface group, in declaration order.
    pub fn ports_in_group<'a>(&'a self, group: &'a str) -> impl Iterator<Item = &'a Port> + 'a {
        self.ports
            .iter()
            .filter(move |p| p.group.as_deref() == Some(group))
    }
}

impl fmt::Display for Entity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "entity {} ({} ports)", self.name, self.ports.len())
    }
}

/// Incremental builder for [`Entity`].
///
/// Port and generic declarations validate names and widths eagerly, so
/// a bad declaration fails at the call site rather than at `build`.
#[derive(Debug, Clone)]
pub struct EntityBuilder {
    name: String,
    generics: Vec<Generic>,
    ports: Vec<Port>,
    current_group: Option<String>,
}

impl EntityBuilder {
    /// Begins an interface group; subsequent ports carry this label until
    /// the next [`EntityBuilder::group`] call.
    #[must_use]
    pub fn group(mut self, label: impl Into<String>) -> Self {
        self.current_group = Some(label.into());
        self
    }

    /// Declares a port.
    ///
    /// # Errors
    ///
    /// Returns [`HdlError::InvalidIdentifier`], [`HdlError::InvalidWidth`]
    /// or [`HdlError::DuplicateName`]; the same error resurfaces from
    /// [`EntityBuilder::build`].
    pub fn port(mut self, name: &str, dir: PortDir, width: usize) -> Result<Self, HdlError> {
        if !is_valid_identifier(name) {
            return Err(HdlError::InvalidIdentifier { name: name.into() });
        }
        if width == 0 || width > crate::vector::MAX_WIDTH {
            return Err(HdlError::InvalidWidth { width });
        }
        if self.ports.iter().any(|p| p.name == name) {
            return Err(HdlError::DuplicateName {
                name: name.into(),
                kind: "port",
            });
        }
        self.ports.push(Port {
            name: name.into(),
            dir,
            width,
            group: self.current_group.clone(),
        });
        Ok(self)
    }

    /// Declares a generic with a default value.
    ///
    /// # Errors
    ///
    /// Returns [`HdlError::InvalidIdentifier`] or
    /// [`HdlError::DuplicateName`].
    pub fn generic(mut self, name: &str, value: GenericValue) -> Result<Self, HdlError> {
        if !is_valid_identifier(name) {
            return Err(HdlError::InvalidIdentifier { name: name.into() });
        }
        if self.generics.iter().any(|g| g.name == name) {
            return Err(HdlError::DuplicateName {
                name: name.into(),
                kind: "generic",
            });
        }
        self.generics.push(Generic {
            name: name.into(),
            value,
        });
        Ok(self)
    }

    /// Finishes the entity.
    ///
    /// # Errors
    ///
    /// Returns [`HdlError::InvalidIdentifier`] if the entity name is
    /// illegal.
    pub fn build(self) -> Result<Entity, HdlError> {
        if !is_valid_identifier(&self.name) {
            return Err(HdlError::InvalidIdentifier { name: self.name });
        }
        Ok(Entity {
            name: self.name,
            generics: self.generics,
            ports: self.ports,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rbuffer_fifo() -> Entity {
        Entity::builder("rbuffer_fifo")
            .group("methods")
            .port("m_empty", PortDir::In, 1)
            .unwrap()
            .port("m_size", PortDir::In, 1)
            .unwrap()
            .port("m_pop", PortDir::In, 1)
            .unwrap()
            .group("params")
            .port("data", PortDir::Out, 8)
            .unwrap()
            .port("done", PortDir::Out, 1)
            .unwrap()
            .group("implementation interface")
            .port("p_empty", PortDir::In, 1)
            .unwrap()
            .port("p_read", PortDir::Out, 1)
            .unwrap()
            .port("p_data", PortDir::In, 8)
            .unwrap()
            .build()
            .unwrap()
    }

    #[test]
    fn builds_paper_figure4_entity() {
        let e = rbuffer_fifo();
        assert_eq!(e.name(), "rbuffer_fifo");
        assert_eq!(e.ports().len(), 8);
        assert_eq!(e.port("data").unwrap().width(), 8);
        assert_eq!(e.port("p_read").unwrap().dir(), PortDir::Out);
    }

    #[test]
    fn groups_partition_ports() {
        let e = rbuffer_fifo();
        let methods: Vec<&str> = e.ports_in_group("methods").map(Port::name).collect();
        assert_eq!(methods, vec!["m_empty", "m_size", "m_pop"]);
        let implementation: Vec<&str> = e
            .ports_in_group("implementation interface")
            .map(Port::name)
            .collect();
        assert_eq!(implementation, vec!["p_empty", "p_read", "p_data"]);
    }

    #[test]
    fn duplicate_port_is_rejected() {
        let result = Entity::builder("e")
            .port("data", PortDir::In, 1)
            .unwrap()
            .port("data", PortDir::Out, 1);
        assert!(matches!(result, Err(HdlError::DuplicateName { .. })));
    }

    #[test]
    fn invalid_entity_name_is_rejected_at_build() {
        assert!(matches!(
            Entity::builder("entity").build(),
            Err(HdlError::InvalidIdentifier { .. })
        ));
    }

    #[test]
    fn zero_width_port_is_rejected() {
        assert!(matches!(
            Entity::builder("e").port("p", PortDir::In, 0),
            Err(HdlError::InvalidWidth { width: 0 })
        ));
    }

    #[test]
    fn generics_carry_types() {
        let e = Entity::builder("e")
            .generic("depth", GenericValue::Natural(512))
            .unwrap()
            .generic("device", GenericValue::Str("fifo".into()))
            .unwrap()
            .build()
            .unwrap();
        assert_eq!(e.generics()[0].type_name(), "natural");
        assert_eq!(e.generics()[1].type_name(), "string");
        assert_eq!(e.generics()[1].value().to_string(), "\"fifo\"");
    }

    #[test]
    fn display_mentions_name() {
        assert!(rbuffer_fifo().to_string().contains("rbuffer_fifo"));
    }
}
