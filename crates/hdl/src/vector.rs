//! Fixed-width logic vectors modelled after VHDL `std_logic_vector`.

use crate::{Bit, HdlError};
use std::fmt;

/// Maximum supported vector width in bits.
///
/// 64 bits comfortably covers every bus in the paper's designs: pixel
/// data is 8 or 24 bits and the external SRAM address bus of Figure 5 is
/// 16 bits.
pub const MAX_WIDTH: usize = 64;

/// A fixed-width four-state logic vector.
///
/// Values are stored as a packed pair of 64-bit masks: `value` holds the
/// `0`/`1` payload and `unknown`/`highz` flag bits that carry `X`/`Z`
/// state per position. This keeps cycle simulation of whole buses to a
/// handful of word operations while still propagating unknowns the way a
/// VHDL simulator would.
///
/// # Example
///
/// ```
/// use hdp_hdl::LogicVector;
///
/// # fn main() -> Result<(), hdp_hdl::HdlError> {
/// let a = LogicVector::from_u64(0xA5, 8)?;
/// assert_eq!(a.to_u64(), Some(0xA5));
/// assert_eq!(a.width(), 8);
/// let hi = a.slice(4, 4)?;
/// assert_eq!(hi.to_u64(), Some(0xA));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LogicVector {
    width: u8,
    value: u64,
    unknown: u64,
    highz: u64,
}

fn mask(width: usize) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

impl LogicVector {
    /// Creates a vector of the given width with every bit `'0'`.
    ///
    /// # Errors
    ///
    /// Returns [`HdlError::InvalidWidth`] if `width` is zero or exceeds
    /// [`MAX_WIDTH`].
    pub fn zeros(width: usize) -> Result<Self, HdlError> {
        Self::check_width(width)?;
        Ok(Self {
            width: width as u8,
            value: 0,
            unknown: 0,
            highz: 0,
        })
    }

    /// Creates a vector of the given width with every bit `'X'`.
    ///
    /// This is the power-on state of uninitialised storage.
    ///
    /// # Errors
    ///
    /// Returns [`HdlError::InvalidWidth`] for an unsupported width.
    pub fn unknown(width: usize) -> Result<Self, HdlError> {
        Self::check_width(width)?;
        Ok(Self {
            width: width as u8,
            value: 0,
            unknown: mask(width),
            highz: 0,
        })
    }

    /// Creates a vector of the given width with every bit `'Z'`.
    ///
    /// # Errors
    ///
    /// Returns [`HdlError::InvalidWidth`] for an unsupported width.
    pub fn high_z(width: usize) -> Result<Self, HdlError> {
        Self::check_width(width)?;
        Ok(Self {
            width: width as u8,
            value: 0,
            unknown: 0,
            highz: mask(width),
        })
    }

    /// Creates a fully-defined vector from an integer value.
    ///
    /// # Errors
    ///
    /// Returns [`HdlError::InvalidWidth`] for an unsupported width and
    /// [`HdlError::ValueOverflow`] if `value` does not fit.
    pub fn from_u64(value: u64, width: usize) -> Result<Self, HdlError> {
        Self::check_width(width)?;
        if value & !mask(width) != 0 {
            return Err(HdlError::ValueOverflow { value, width });
        }
        Ok(Self {
            width: width as u8,
            value,
            unknown: 0,
            highz: 0,
        })
    }

    /// Parses a VHDL-style bit-string such as `"10XZ"`.
    ///
    /// The leftmost character is the most significant bit, matching
    /// `std_logic_vector(n-1 downto 0)` literals.
    ///
    /// # Errors
    ///
    /// Returns [`HdlError::InvalidWidth`] for an empty or over-long
    /// string and [`HdlError::InvalidIdentifier`] if a character is not
    /// a logic literal.
    pub fn parse(text: &str) -> Result<Self, HdlError> {
        Self::check_width(text.len())?;
        let mut v = Self::zeros(text.len())?;
        for (offset, c) in text.chars().rev().enumerate() {
            let bit = Bit::from_char(c).ok_or_else(|| HdlError::InvalidIdentifier {
                name: text.to_owned(),
            })?;
            v.set(offset, bit)?;
        }
        Ok(v)
    }

    fn check_width(width: usize) -> Result<(), HdlError> {
        if width == 0 || width > MAX_WIDTH {
            return Err(HdlError::InvalidWidth { width });
        }
        Ok(())
    }

    /// The vector width in bits.
    #[must_use]
    pub fn width(&self) -> usize {
        usize::from(self.width)
    }

    /// Returns `true` if every bit is a defined `0` or `1`.
    #[must_use]
    pub fn is_defined(&self) -> bool {
        (self.unknown | self.highz) & mask(self.width()) == 0
    }

    /// The integer value, or `None` if any bit is `X` or `Z`.
    #[must_use]
    pub fn to_u64(&self) -> Option<u64> {
        if self.is_defined() {
            Some(self.value)
        } else {
            None
        }
    }

    /// Reads a single bit position (0 is least significant).
    ///
    /// # Errors
    ///
    /// Returns [`HdlError::IndexOutOfRange`] if `index >= width`.
    pub fn bit(&self, index: usize) -> Result<Bit, HdlError> {
        if index >= self.width() {
            return Err(HdlError::IndexOutOfRange {
                index,
                len: self.width(),
            });
        }
        let m = 1u64 << index;
        Ok(if self.highz & m != 0 {
            Bit::Z
        } else if self.unknown & m != 0 {
            Bit::X
        } else if self.value & m != 0 {
            Bit::One
        } else {
            Bit::Zero
        })
    }

    /// Writes a single bit position (0 is least significant).
    ///
    /// # Errors
    ///
    /// Returns [`HdlError::IndexOutOfRange`] if `index >= width`.
    pub fn set(&mut self, index: usize, bit: Bit) -> Result<(), HdlError> {
        if index >= self.width() {
            return Err(HdlError::IndexOutOfRange {
                index,
                len: self.width(),
            });
        }
        let m = 1u64 << index;
        self.value &= !m;
        self.unknown &= !m;
        self.highz &= !m;
        match bit {
            Bit::Zero => {}
            Bit::One => self.value |= m,
            Bit::X => self.unknown |= m,
            Bit::Z => self.highz |= m,
        }
        Ok(())
    }

    /// Extracts `len` bits starting at `low` (a `downto` slice).
    ///
    /// # Errors
    ///
    /// Returns [`HdlError::IndexOutOfRange`] if the slice exceeds the
    /// vector, or [`HdlError::InvalidWidth`] if `len` is zero.
    pub fn slice(&self, low: usize, len: usize) -> Result<Self, HdlError> {
        Self::check_width(len)?;
        if low + len > self.width() {
            return Err(HdlError::IndexOutOfRange {
                index: low + len - 1,
                len: self.width(),
            });
        }
        let m = mask(len);
        Ok(Self {
            width: len as u8,
            value: (self.value >> low) & m,
            unknown: (self.unknown >> low) & m,
            highz: (self.highz >> low) & m,
        })
    }

    /// Concatenates `self` (as the high part) with `low` (as the low part),
    /// matching VHDL's `self & low`.
    ///
    /// # Errors
    ///
    /// Returns [`HdlError::InvalidWidth`] if the combined width exceeds
    /// [`MAX_WIDTH`].
    pub fn concat(&self, low: &Self) -> Result<Self, HdlError> {
        let width = self.width() + low.width();
        Self::check_width(width)?;
        let shift = low.width();
        Ok(Self {
            width: width as u8,
            value: (self.value << shift) | low.value,
            unknown: (self.unknown << shift) | low.unknown,
            highz: (self.highz << shift) | low.highz,
        })
    }

    /// Zero-extends or truncates to a new width.
    ///
    /// Truncation keeps the least-significant bits, the behaviour of a
    /// VHDL resize on an unsigned value.
    ///
    /// # Errors
    ///
    /// Returns [`HdlError::InvalidWidth`] for an unsupported target width.
    pub fn resize(&self, width: usize) -> Result<Self, HdlError> {
        Self::check_width(width)?;
        let m = mask(width);
        Ok(Self {
            width: width as u8,
            value: self.value & m,
            unknown: self.unknown & m,
            highz: self.highz & m,
        })
    }

    /// Wrapping unsigned addition; any undefined input bit poisons the
    /// whole result to `X`, as in `numeric_std`.
    #[must_use]
    pub fn wrapping_add(&self, rhs: &Self) -> Self {
        let width = self.width().max(rhs.width());
        match (self.to_u64(), rhs.to_u64()) {
            (Some(a), Some(b)) => Self {
                width: width as u8,
                value: a.wrapping_add(b) & mask(width),
                unknown: 0,
                highz: 0,
            },
            _ => Self::unknown(width).expect("width already validated"),
        }
    }

    /// IEEE 1164 resolution of two drivers on the same bus.
    ///
    /// Computed word-level on the packed planes — `Z` yields to the
    /// other driver, agreement keeps the value, conflict or any `X`
    /// produces `X` — so resolving a whole vector costs a handful of
    /// plane ops rather than a bit-at-a-time fold. The planes are
    /// mutually exclusive per bit (the invariant [`LogicVector::set`]
    /// maintains), which is what lets each term below intersect them
    /// directly.
    ///
    /// # Errors
    ///
    /// Returns [`HdlError::WidthMismatch`] if the widths differ.
    pub fn resolve(&self, other: &Self) -> Result<Self, HdlError> {
        if self.width != other.width {
            return Err(HdlError::WidthMismatch {
                context: "bus resolution".into(),
                expected: self.width(),
                found: other.width(),
            });
        }
        let (va, ua, za) = self.raw_masks();
        let (vb, ub, zb) = other.raw_masks();
        let both = !za & !zb;
        let highz = za & zb;
        let unknown = (za & ub) | (zb & ua) | (both & (ua | ub | (va ^ vb)));
        let value = ((za & vb) | (zb & va) | (both & va & vb)) & !unknown;
        Ok(Self {
            width: self.width,
            value,
            unknown,
            highz,
        })
    }

    /// Iterates over bits from least significant to most significant.
    pub fn iter(&self) -> impl Iterator<Item = Bit> + '_ {
        (0..self.width()).map(|i| self.bit(i).expect("index within width"))
    }

    /// The raw packed bit planes `(value, unknown, highz)`.
    ///
    /// This is the vector's storage representation: bit `i` of the
    /// vector is `Z` if `highz` has bit `i` set, else `X` if `unknown`
    /// has it set, else the `0`/`1` payload in `value`. Intended for
    /// bulk storage layers (e.g. a packed signal arena) that want to
    /// move whole vectors with word operations; round-trips through
    /// [`LogicVector::from_raw_masks`].
    #[must_use]
    pub fn raw_masks(&self) -> (u64, u64, u64) {
        (self.value, self.unknown, self.highz)
    }

    /// Rebuilds a vector from raw bit planes (see
    /// [`LogicVector::raw_masks`]). Plane bits above `width` are
    /// masked off; within the width, `highz` takes precedence over
    /// `unknown`, which takes precedence over `value`, matching the
    /// storage invariant `set` maintains.
    ///
    /// # Errors
    ///
    /// Returns [`HdlError::InvalidWidth`] for an unsupported width.
    pub fn from_raw_masks(
        width: usize,
        value: u64,
        unknown: u64,
        highz: u64,
    ) -> Result<Self, HdlError> {
        Self::check_width(width)?;
        let m = mask(width);
        let highz = highz & m;
        let unknown = unknown & m & !highz;
        Ok(Self {
            width: width as u8,
            value: value & m & !unknown & !highz,
            unknown,
            highz,
        })
    }
}

impl LogicVector {
    /// Renders the bare bit-string, MSB first: exactly the characters
    /// [`fmt::Display`] prints between its quotes. One `String`
    /// allocation, no formatter machinery — hot paths that render
    /// traces (the simulation service renders every port every cycle)
    /// use this instead of `to_string()` plus quote trimming.
    #[must_use]
    pub fn to_bit_string(&self) -> String {
        let mut s = String::with_capacity(self.width());
        for i in (0..self.width()).rev() {
            let m = 1u64 << i;
            s.push(if self.highz & m != 0 {
                'Z'
            } else if self.unknown & m != 0 {
                'X'
            } else if self.value & m != 0 {
                '1'
            } else {
                '0'
            });
        }
        s
    }
}

impl fmt::Display for LogicVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "\"{}\"", self.to_bit_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_width_is_rejected() {
        assert_eq!(
            LogicVector::zeros(0),
            Err(HdlError::InvalidWidth { width: 0 })
        );
        assert_eq!(
            LogicVector::zeros(65),
            Err(HdlError::InvalidWidth { width: 65 })
        );
    }

    #[test]
    fn value_overflow_is_rejected() {
        assert_eq!(
            LogicVector::from_u64(256, 8),
            Err(HdlError::ValueOverflow {
                value: 256,
                width: 8
            })
        );
        assert!(LogicVector::from_u64(255, 8).is_ok());
    }

    #[test]
    fn full_width_values_work() {
        let v = LogicVector::from_u64(u64::MAX, 64).unwrap();
        assert_eq!(v.to_u64(), Some(u64::MAX));
    }

    #[test]
    fn parse_and_display_round_trip() {
        let v = LogicVector::parse("10XZ").unwrap();
        assert_eq!(v.to_string(), "\"10XZ\"");
        assert_eq!(v.bit(0).unwrap(), Bit::Z);
        assert_eq!(v.bit(3).unwrap(), Bit::One);
        assert_eq!(v.to_u64(), None);
    }

    #[test]
    fn slice_extracts_expected_bits() {
        let v = LogicVector::from_u64(0xABCD, 16).unwrap();
        assert_eq!(v.slice(8, 8).unwrap().to_u64(), Some(0xAB));
        assert_eq!(v.slice(0, 4).unwrap().to_u64(), Some(0xD));
        assert!(v.slice(12, 8).is_err());
    }

    #[test]
    fn concat_orders_high_then_low() {
        let hi = LogicVector::from_u64(0xA, 4).unwrap();
        let lo = LogicVector::from_u64(0x5, 4).unwrap();
        assert_eq!(hi.concat(&lo).unwrap().to_u64(), Some(0xA5));
    }

    #[test]
    fn concat_overflow_is_rejected() {
        let a = LogicVector::zeros(40).unwrap();
        let b = LogicVector::zeros(40).unwrap();
        assert!(a.concat(&b).is_err());
    }

    #[test]
    fn resize_truncates_low_bits() {
        let v = LogicVector::from_u64(0x1FF, 9).unwrap();
        assert_eq!(v.resize(8).unwrap().to_u64(), Some(0xFF));
        assert_eq!(v.resize(12).unwrap().to_u64(), Some(0x1FF));
    }

    #[test]
    fn wrapping_add_wraps_at_width() {
        let a = LogicVector::from_u64(0xFF, 8).unwrap();
        let b = LogicVector::from_u64(1, 8).unwrap();
        assert_eq!(a.wrapping_add(&b).to_u64(), Some(0));
    }

    #[test]
    fn wrapping_add_poisons_on_unknown() {
        let a = LogicVector::unknown(8).unwrap();
        let b = LogicVector::from_u64(1, 8).unwrap();
        assert_eq!(a.wrapping_add(&b).to_u64(), None);
    }

    #[test]
    fn resolution_of_z_bus_yields_driver() {
        let z = LogicVector::high_z(8).unwrap();
        let d = LogicVector::from_u64(0x5A, 8).unwrap();
        assert_eq!(z.resolve(&d).unwrap(), d);
        assert_eq!(d.resolve(&z).unwrap(), d);
    }

    #[test]
    fn conflicting_drivers_resolve_to_x() {
        let a = LogicVector::from_u64(0xFF, 8).unwrap();
        let b = LogicVector::from_u64(0x00, 8).unwrap();
        let r = a.resolve(&b).unwrap();
        assert!(!r.is_defined());
        assert_eq!(r.bit(0).unwrap(), Bit::X);
    }

    #[test]
    fn word_level_resolve_matches_bit_level_resolve() {
        // Exhaustive over every 2-bit four-state pair: the plane
        // computation must agree with Bit::resolve on each bit and
        // leave the planes in the canonical (mutually exclusive)
        // form `set` produces.
        let bits = [Bit::Zero, Bit::One, Bit::X, Bit::Z];
        let vectors: Vec<LogicVector> = bits
            .iter()
            .flat_map(|&hi| bits.iter().map(move |&lo| (hi, lo)))
            .map(|(hi, lo)| {
                let mut v = LogicVector::zeros(2).unwrap();
                v.set(0, lo).unwrap();
                v.set(1, hi).unwrap();
                v
            })
            .collect();
        for a in &vectors {
            for b in &vectors {
                let word = a.resolve(b).unwrap();
                let mut bitwise = LogicVector::zeros(2).unwrap();
                for i in 0..2 {
                    bitwise
                        .set(i, a.bit(i).unwrap().resolve(b.bit(i).unwrap()))
                        .unwrap();
                }
                assert_eq!(word, bitwise, "{a} resolve {b}");
            }
        }
    }

    #[test]
    fn set_and_bit_round_trip() {
        let mut v = LogicVector::zeros(4).unwrap();
        v.set(2, Bit::One).unwrap();
        v.set(3, Bit::Z).unwrap();
        assert_eq!(v.bit(2).unwrap(), Bit::One);
        assert_eq!(v.bit(3).unwrap(), Bit::Z);
        v.set(3, Bit::Zero).unwrap();
        assert_eq!(v.bit(3).unwrap(), Bit::Zero);
        assert!(v.set(4, Bit::One).is_err());
    }

    #[test]
    fn raw_masks_round_trip() {
        for text in ["10XZ", "0000", "ZZZZ", "X1Z0"] {
            let v = LogicVector::parse(text).unwrap();
            let (value, unknown, highz) = v.raw_masks();
            let back = LogicVector::from_raw_masks(v.width(), value, unknown, highz).unwrap();
            assert_eq!(back, v, "{text}");
        }
    }

    #[test]
    fn from_raw_masks_normalises_overlapping_planes() {
        // Z wins over X wins over the payload, and bits above the
        // width are dropped — the same invariants `set` maintains.
        let v = LogicVector::from_raw_masks(4, 0xFF, 0b0010, 0b0011).unwrap();
        assert_eq!(v.to_string(), "\"11ZZ\"");
        assert_eq!(v.bit(0).unwrap(), Bit::Z);
        assert_eq!(v.bit(1).unwrap(), Bit::Z);
        assert_eq!(v.bit(2).unwrap(), Bit::One);
        assert_eq!(v.bit(3).unwrap(), Bit::One);
        assert!(LogicVector::from_raw_masks(0, 0, 0, 0).is_err());
    }

    #[test]
    fn iter_yields_lsb_first() {
        let v = LogicVector::from_u64(0b01, 2).unwrap();
        let bits: Vec<Bit> = v.iter().collect();
        assert_eq!(bits, vec![Bit::One, Bit::Zero]);
    }

    #[test]
    fn bit_string_matches_display_without_quotes() {
        for text in ["10XZ", "0", "Z", "X1Z0", "1111000010100101"] {
            let v = LogicVector::parse(text).unwrap();
            assert_eq!(v.to_bit_string(), text);
            assert_eq!(v.to_string(), format!("\"{text}\""));
        }
    }
}
