//! Criterion bench over cycle-accurate simulation throughput: the
//! generated Table 3 netlists interpreted against the board models,
//! and the model-level (hand-written component) pipeline for
//! comparison.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hdp_bench::{build_design_sim, run_design_sim};
use hdp_core::golden::PixelOp;
use hdp_core::model::{Algorithm, VideoPipelineModel};
use hdp_core::pixel::{Frame, PixelFormat};
use hdp_metagen::design::{DesignKind, DesignParams, Style};
use std::hint::black_box;

fn bench_netlist_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("netlist_sim_frame");
    let frame = Frame::noise(32, 8, PixelFormat::Gray8, 9);
    let n = frame.pixels().len();
    group.throughput(Throughput::Elements(n as u64));
    for (kind, gap, out_len) in [
        (DesignKind::Saa2vga1, 0u32, n),
        (DesignKind::Blur, 1, (32 - 2) * (8 - 2)),
    ] {
        group.bench_function(kind.label().replace(' ', ""), |b| {
            b.iter(|| {
                let (mut sim, sink) = build_design_sim(
                    kind,
                    Style::Pattern,
                    DesignParams::small(32),
                    frame.pixels().to_vec(),
                    gap,
                    out_len,
                );
                let budget = n as u64 * u64::from(gap + 1) * 4 + 2000;
                black_box(run_design_sim(&mut sim, sink, budget))
            })
        });
    }
    group.finish();
}

fn bench_model_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("model_sim_frame");
    let frame = Frame::noise(32, 8, PixelFormat::Gray8, 10);
    group.throughput(Throughput::Elements(frame.pixels().len() as u64));
    group.bench_function("saa2vga_fifo", |b| {
        let model = VideoPipelineModel::new(
            "m",
            PixelFormat::Gray8,
            32,
            8,
            Algorithm::Transform(PixelOp::Identity),
        )
        .unwrap();
        b.iter(|| black_box(model.process_frame(&frame).unwrap()))
    });
    group.bench_function("blur_line_buffer", |b| {
        let model = VideoPipelineModel::new("m", PixelFormat::Gray8, 32, 8, Algorithm::Blur)
            .unwrap()
            .with_source_gap(1);
        b.iter(|| black_box(model.process_frame(&frame).unwrap()))
    });
    group.finish();
}

criterion_group!(benches, bench_netlist_sim, bench_model_sim);
criterion_main!(benches);
