//! Criterion bench over cycle-accurate simulation throughput: the
//! generated Table 3 netlists interpreted against the board models,
//! and the model-level (hand-written component) pipeline for
//! comparison.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hdp_bench::{build_design_sim, run_design_batch, run_design_sim, DesignSimSpec};
use hdp_core::golden::PixelOp;
use hdp_core::model::{Algorithm, VideoPipelineModel};
use hdp_core::pixel::{Frame, PixelFormat};
use hdp_metagen::design::{DesignKind, DesignParams, Style};
use hdp_sim::SchedMode;
use std::hint::black_box;

fn bench_netlist_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("netlist_sim_frame");
    let frame = Frame::noise(32, 8, PixelFormat::Gray8, 9);
    let n = frame.pixels().len();
    group.throughput(Throughput::Elements(n as u64));
    for (kind, gap, out_len) in [
        (DesignKind::Saa2vga1, 0u32, n),
        (DesignKind::Blur, 1, (32 - 2) * (8 - 2)),
    ] {
        group.bench_function(kind.label().replace(' ', ""), |b| {
            b.iter(|| {
                let spec = DesignSimSpec::new(
                    kind,
                    Style::Pattern,
                    DesignParams::small(32),
                    frame.pixels().to_vec(),
                )
                .gap(gap)
                .out_len(out_len);
                let (mut sim, sink) = build_design_sim(&spec).unwrap();
                let budget = n as u64 * u64::from(gap + 1) * 4 + 2000;
                black_box(run_design_sim(&mut sim, sink, budget))
            })
        });
    }
    group.finish();
}

fn bench_model_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("model_sim_frame");
    let frame = Frame::noise(32, 8, PixelFormat::Gray8, 10);
    group.throughput(Throughput::Elements(frame.pixels().len() as u64));
    group.bench_function("saa2vga_fifo", |b| {
        let model = VideoPipelineModel::new(
            "m",
            PixelFormat::Gray8,
            32,
            8,
            Algorithm::Transform(PixelOp::Identity),
        )
        .unwrap();
        b.iter(|| black_box(model.process_frame(&frame).unwrap()))
    });
    group.bench_function("blur_line_buffer", |b| {
        let model = VideoPipelineModel::new("m", PixelFormat::Gray8, 32, 8, Algorithm::Blur)
            .unwrap()
            .with_source_gap(1);
        b.iter(|| black_box(model.process_frame(&frame).unwrap()))
    });
    group.finish();
}

/// Three-way scheduling-mode matrix on the blur-filter workload:
/// legacy full-sweep/full-eval, event-driven + incremental netlist
/// evaluation, and parallel wave evaluation. All configurations are
/// asserted bit-identical before any time is measured.
fn bench_sched_modes(c: &mut Criterion) {
    let mut group = c.benchmark_group("sched_mode_blur_frame");
    let frame = Frame::noise(32, 8, PixelFormat::Gray8, 11);
    let n = frame.pixels().len();
    let out_len = (32 - 2) * (8 - 2);
    let gap = 1u32;
    let budget = n as u64 * u64::from(gap + 1) * 4 + 2000;
    let run = |mode: SchedMode, incremental: bool| {
        let spec = DesignSimSpec::new(
            DesignKind::Blur,
            Style::Pattern,
            DesignParams::small(32),
            frame.pixels().to_vec(),
        )
        .gap(gap)
        .out_len(out_len)
        .mode(mode)
        .incremental(incremental);
        let (mut sim, sink) = build_design_sim(&spec).unwrap();
        run_design_sim(&mut sim, sink, budget)
    };
    let reference = run(SchedMode::FullSweep, false);
    for (label, mode) in [
        ("event", SchedMode::EventDriven),
        ("parallel_t2", SchedMode::Parallel { threads: 2 }),
        ("parallel_t8", SchedMode::Parallel { threads: 8 }),
    ] {
        assert_eq!(
            run(mode, true),
            reference,
            "{label} must agree bit for bit with the full sweep"
        );
    }
    group.throughput(Throughput::Elements(n as u64));
    group.bench_function("sweep", |b| {
        b.iter(|| black_box(run(SchedMode::FullSweep, false)))
    });
    group.bench_function("event", |b| {
        b.iter(|| black_box(run(SchedMode::EventDriven, true)))
    });
    group.bench_function("parallel", |b| {
        b.iter(|| black_box(run(SchedMode::parallel(), true)))
    });
    group.finish();
}

/// Frame-throughput batch: eight independent blur simulations, run on
/// one worker vs. the machine's available parallelism via
/// `run_design_batch`. Equality of every frame against the
/// single-threaded batch is asserted before timing.
fn bench_sched_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("sched_mode_blur_batch");
    let frame = Frame::noise(32, 8, PixelFormat::Gray8, 12);
    let n = frame.pixels().len();
    let out_len = (32 - 2) * (8 - 2);
    let gap = 1u32;
    let budget = n as u64 * u64::from(gap + 1) * 4 + 2000;
    const BATCH: usize = 8;
    let build_batch = || {
        let spec = DesignSimSpec::new(
            DesignKind::Blur,
            Style::Pattern,
            DesignParams::small(32),
            frame.pixels().to_vec(),
        )
        .gap(gap)
        .out_len(out_len)
        .mode(SchedMode::EventDriven);
        (0..BATCH)
            .map(|_| build_design_sim(&spec).unwrap())
            .collect::<Vec<_>>()
    };
    assert_eq!(
        run_design_batch(build_batch(), budget, 1),
        run_design_batch(build_batch(), budget, 8),
        "batch frames must not depend on worker count"
    );
    group.throughput(Throughput::Elements((n * BATCH) as u64));
    group.bench_function("threads_1", |b| {
        b.iter(|| black_box(run_design_batch(build_batch(), budget, 1)))
    });
    group.bench_function("threads_8", |b| {
        b.iter(|| black_box(run_design_batch(build_batch(), budget, 8)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_netlist_sim,
    bench_model_sim,
    bench_sched_modes,
    bench_sched_batch
);
criterion_main!(benches);
