//! Criterion bench over the Table 3 flow: generating and synthesizing
//! each design in both styles. One benchmark per table row and style,
//! so regressions in the generator or the mapper show per design.

use criterion::{criterion_group, criterion_main, Criterion};
use hdp_metagen::design::{generate, DesignKind, DesignParams, Style};
use hdp_synth::synthesize;
use std::hint::black_box;

fn bench_generate(c: &mut Criterion) {
    let mut group = c.benchmark_group("generate");
    for kind in DesignKind::ALL {
        for style in [Style::Pattern, Style::Custom] {
            group.bench_function(
                format!("{}_{:?}", kind.label().replace(' ', ""), style),
                |b| {
                    b.iter(|| {
                        generate(
                            black_box(kind),
                            black_box(style),
                            DesignParams::paper_default(),
                        )
                        .unwrap()
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_synthesize(c: &mut Criterion) {
    let mut group = c.benchmark_group("synthesize");
    for kind in DesignKind::ALL {
        for style in [Style::Pattern, Style::Custom] {
            let design = generate(kind, style, DesignParams::paper_default()).unwrap();
            group.bench_function(
                format!("{}_{:?}", kind.label().replace(' ', ""), style),
                |b| b.iter(|| synthesize(black_box(&design.netlist)).unwrap()),
            );
        }
    }
    group.finish();
}

fn bench_dissolution(c: &mut Criterion) {
    let design = generate(
        DesignKind::Saa2vga2,
        Style::Pattern,
        DesignParams::paper_default(),
    )
    .unwrap();
    c.bench_function("dissolve_wrappers/saa2vga2", |b| {
        b.iter(|| hdp_synth::dissolve_wrappers(black_box(&design.netlist)).unwrap())
    });
}

criterion_group!(benches, bench_generate, bench_synthesize, bench_dissolution);
criterion_main!(benches);
