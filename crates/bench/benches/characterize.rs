//! Criterion bench over the §3.4 characterisation sweep and the
//! component generators it drives.

use criterion::{criterion_group, criterion_main, Criterion};
use hdp_metagen::arbiter_gen::{arbiter, Policy};
use hdp_metagen::container_gen::{rbuffer_fifo, rbuffer_sram, ContainerParams};
use hdp_metagen::iterator_gen::read_width_adapter;
use hdp_metagen::ops::OpSet;
use hdp_synth::characterize::{sweep, SweepGrid};
use hdp_synth::Xsb300e;
use std::hint::black_box;

fn bench_sweep(c: &mut Criterion) {
    let board = Xsb300e::new();
    c.bench_function("characterize/default_grid", |b| {
        b.iter(|| sweep(black_box(&board), &SweepGrid::default()).unwrap())
    });
}

fn bench_generators(c: &mut Criterion) {
    let params = ContainerParams::paper_default();
    let mut group = c.benchmark_group("component_gen");
    group.bench_function("rbuffer_fifo", |b| {
        b.iter(|| rbuffer_fifo(black_box(params), OpSet::figure4()).unwrap())
    });
    group.bench_function("rbuffer_sram", |b| {
        b.iter(|| rbuffer_sram(black_box(params), OpSet::figure4()).unwrap())
    });
    group.bench_function("read_width_adapter_24_8", |b| {
        b.iter(|| read_width_adapter("it", black_box(24), 8).unwrap())
    });
    group.bench_function("arbiter_rr_4", |b| {
        b.iter(|| arbiter("arb", black_box(4), 16, 8, Policy::RoundRobin).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_sweep, bench_generators);
criterion_main!(benches);
