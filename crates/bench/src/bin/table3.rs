//! Regenerates the paper's **Table 3**: the three evaluation designs
//! synthesized in pattern-based and custom (ad-hoc) styles, reported
//! as `pattern/custom` per cell — plus a functional verification run
//! of every netlist against the golden models.
//!
//! Paper reference values (XC2S300E, vendor toolchain):
//!
//! ```text
//! Design      FFs        LUTs       blockRAM  clk MHz
//! saa2vga 1   147/147    169/168    2/2       98/98
//! saa2vga 2    69/69     127/127    0/0       96/96
//! blur       3145/3145  4170/4169   2/2       98/98
//! ```

use hdp_bench::{build_design_sim, run_design_sim, DesignSimSpec};
use hdp_core::golden::{blur3x3, BlurBorder};
use hdp_core::pixel::{Frame, PixelFormat};
use hdp_metagen::design::{generate, DesignKind, DesignParams, Style};
use hdp_synth::synthesize;

fn main() {
    println!("Table 3. Design experiments (pattern / custom)");
    println!();
    println!(
        "{:<11} {:>13} {:>13} {:>9} {:>9}",
        "Design", "FFs", "LUTs", "blockRAM", "clk MHz"
    );
    println!("{}", "-".repeat(60));
    for kind in DesignKind::ALL {
        let p = synthesize(
            &generate(kind, Style::Pattern, DesignParams::paper_default())
                .expect("generate pattern")
                .netlist,
        )
        .expect("synthesize pattern");
        let c = synthesize(
            &generate(kind, Style::Custom, DesignParams::paper_default())
                .expect("generate custom")
                .netlist,
        )
        .expect("synthesize custom");
        println!(
            "{:<11} {:>13} {:>13} {:>9} {:>9}",
            kind.label(),
            format!("{}/{}", p.ffs, c.ffs),
            format!("{}/{}", p.luts, c.luts),
            format!("{}/{}", p.brams, c.brams),
            format!("{:.0}/{:.0}", p.clk_mhz, c.clk_mhz)
        );
    }
    println!();

    // Functional verification: each synthesized netlist also has to
    // *work*. Run a frame through every design/style and check the
    // result against the golden models.
    println!("functional verification (64x16 frame through each netlist):");
    let frame = Frame::noise(64, 16, PixelFormat::Gray8, 42);
    let small = DesignParams::small(64);
    for kind in DesignKind::ALL {
        for style in [Style::Pattern, Style::Custom] {
            let (expected, gap): (Vec<u64>, u32) = match kind {
                DesignKind::Saa2vga1 => (frame.pixels().to_vec(), 0),
                DesignKind::Saa2vga2 => (frame.pixels().to_vec(), 39),
                DesignKind::Blur => (
                    blur3x3(&frame, BlurBorder::Crop)
                        .expect("golden blur")
                        .into_pixels(),
                    1,
                ),
            };
            let spec = DesignSimSpec::new(kind, style, small, frame.pixels().to_vec())
                .gap(gap)
                .out_len(expected.len());
            let (mut sim, sink) = build_design_sim(&spec).expect("design builds");
            let budget = frame.pixels().len() as u64 * u64::from(gap + 1) * 4 + 4000;
            let out = run_design_sim(&mut sim, sink, budget);
            let ok = out == expected;
            println!(
                "  {:<11} {:<8} {} ({} cycles)",
                kind.label(),
                format!("{style:?}"),
                if ok { "OK" } else { "MISMATCH" },
                sim.cycle()
            );
            assert!(ok, "{} {:?} produced a wrong frame", kind.label(), style);
        }
    }
    println!();
    println!("shape checks vs. the paper:");
    println!("  - pattern == custom on the FIFO and blur rows (wrappers dissolve)");
    println!("  - saa2vga 2 uses no block RAM and fewer FFs than saa2vga 1");
    println!("  - blur is the largest design");
}
