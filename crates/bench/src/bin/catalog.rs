//! Prints the seeded hardware design pattern catalog — the §5 future
//! work ("there is a need to develop a hardware version of a design
//! pattern catalog").

use hdp_core::catalog::{catalog, HardwareStatus};

fn main() {
    println!("hardware design pattern catalog (seed)");
    println!();
    println!("{:<16} {:<12} {:<22} reading", "pattern", "class", "status");
    println!("{}", "-".repeat(100));
    for e in catalog() {
        let status = match e.status {
            HardwareStatus::EstablishedPractice => "established practice",
            HardwareStatus::ThisLibrary => "this library (DATE'05)",
            HardwareStatus::Open => "open",
            HardwareStatus::NoCounterpart => "no counterpart",
        };
        println!(
            "{:<16} {:<12} {:<22} {}",
            e.name,
            e.class.to_string(),
            status,
            e.hardware_reading
        );
    }
}
