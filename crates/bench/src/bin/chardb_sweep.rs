//! Scaled §3.4 characterisation sweep: thousands of metagen-sampled
//! designs through `synthesize` + `estimate_mw`, persisted as an
//! `hdp-chardb-v1` database.
//!
//! The family axis is round-robined ([`sample_spec_in`]) so every
//! `(kind, target)` pair gets `count / 12` points regardless of seed,
//! and the whole batch is sharded across `pool::run_sharded` workers.
//! The run is deterministic for a fixed `--seed`: specs are drawn
//! from one sequential RNG stream before sharding, and the sharded
//! characterisation is pure, so the emitted database is byte-identical
//! at any `--threads` value.
//!
//! ```text
//! chardb_sweep [--count N] [--seed N] [--threads N]
//!              [--out FILE] [--summary FILE]
//! ```
//!
//! Writes the database to `--out` (default `chardb.json`) and a
//! `BENCH_chardb.json` summary (points/sec, family×target coverage,
//! plus a demonstration `select` answer). Exits non-zero when any
//! point fails to characterise, when a family ends up uncovered, or
//! when the demonstration query finds no target.

use hdp_metagen::sampler::{sample_spec_in, FAMILIES};
use hdp_service::pool::run_sharded;
use hdp_synth::board::Xsb300e;
use hdp_synth::chardb::{characterize_spec, CharDb};
use hdp_synth::select::{auto_select, SelectConstraints, Selection};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;
use std::process::ExitCode;

const SUMMARY_JSON: &str = "BENCH_chardb.json";

struct Args {
    count: usize,
    seed: u64,
    threads: usize,
    out: String,
    summary: String,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        count: 1200,
        seed: 42,
        threads: 4,
        out: "chardb.json".to_owned(),
        summary: SUMMARY_JSON.to_owned(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut text = |flag: &str| it.next().ok_or_else(|| format!("{flag} expects a value"));
        match flag.as_str() {
            "--out" => args.out = text("--out")?,
            "--summary" => args.summary = text("--summary")?,
            "--count" => {
                args.count = text("--count")?
                    .parse::<usize>()
                    .map_err(|e| format!("--count: {e}"))?
                    .max(1);
            }
            "--seed" => {
                args.seed = text("--seed")?
                    .parse::<u64>()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--threads" => {
                args.threads = text("--threads")?
                    .parse::<usize>()
                    .map_err(|e| format!("--threads: {e}"))?
                    .max(1);
            }
            other => {
                return Err(format!(
                    "unknown argument `{other}` (expected --count/--seed/--threads/--out/--summary)"
                ))
            }
        }
    }
    Ok(args)
}

#[allow(clippy::cast_precision_loss, clippy::too_many_lines)]
fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("chardb_sweep: {e}");
            return ExitCode::FAILURE;
        }
    };

    // Phase 1: draw the whole batch from one sequential RNG stream so
    // the spec list (and therefore the database) is a pure function
    // of (seed, count), independent of the thread count.
    let mut rng = StdRng::seed_from_u64(args.seed);
    let specs: Vec<_> = (0..args.count)
        .map(|i| sample_spec_in(&mut rng, i % FAMILIES.len()))
        .collect();

    // Phase 2: characterise, sharded.
    let board = Xsb300e::new();
    let started = std::time::Instant::now();
    let results = run_sharded(specs, args.threads, |spec| {
        let label = spec.label();
        (label, characterize_spec(&spec, &board))
    });
    let elapsed = started.elapsed().as_secs_f64();

    // Phase 3: assemble the database.
    let mut db = CharDb::new();
    let mut errors = 0usize;
    let mut duplicates = 0usize;
    for (label, result) in results {
        match result {
            Ok(record) => match db.append(record) {
                Ok(true) => {}
                Ok(false) => duplicates += 1,
                Err(e) => {
                    eprintln!("chardb_sweep: {label}: {e}");
                    errors += 1;
                }
            },
            Err(e) => {
                eprintln!("chardb_sweep: {label}: {e}");
                errors += 1;
            }
        }
    }
    let coverage = db.coverage();
    let families_covered = coverage.len();
    let points_per_sec = args.count as f64 / elapsed.max(1e-9);

    if let Err(e) = db.save(&args.out) {
        eprintln!("chardb_sweep: {e}");
        return ExitCode::FAILURE;
    }

    // A demonstration of the §3.4 decision the database automates:
    // the cheapest queue target that still answers in one cycle.
    let demo = SelectConstraints {
        kind: "queue".to_owned(),
        min_data_width: 8,
        min_depth: 4,
        max_access_cycles: Some(1),
        ..SelectConstraints::default()
    };
    let selection = auto_select(&db, &demo);

    let mut summary = String::new();
    let _ = write!(
        summary,
        "{{\n  \"schema\": \"hdp-bench-chardb-v1\",\n  \"seed\": {},\n  \"threads\": {},\n  \"requested_points\": {},\n  \"unique_points\": {},\n  \"duplicates\": {},\n  \"errors\": {},\n  \"elapsed_s\": {:.3},\n  \"points_per_sec\": {:.1},\n  \"families\": {},\n  \"families_covered\": {},\n  \"coverage\": {{",
        args.seed,
        args.threads,
        args.count,
        db.len(),
        duplicates,
        errors,
        elapsed,
        points_per_sec,
        FAMILIES.len(),
        families_covered,
    );
    for (i, ((kind, target), count)) in coverage.iter().enumerate() {
        let _ = write!(
            summary,
            "{}\n    \"{kind}/{target}\": {count}",
            if i == 0 { "" } else { "," }
        );
    }
    let _ = write!(
        summary,
        "\n  }},\n  \"select_demo\": {}\n}}\n",
        selection.to_json()
    );
    if let Err(e) = std::fs::write(&args.summary, &summary) {
        eprintln!("chardb_sweep: cannot write {}: {e}", args.summary);
        return ExitCode::FAILURE;
    }
    print!("{summary}");
    eprintln!(
        "chardb_sweep: {} unique points ({} duplicates, {} errors) in {:.2}s ({:.0} points/s) -> {}",
        db.len(),
        duplicates,
        errors,
        elapsed,
        points_per_sec,
        args.out
    );
    eprintln!("chardb_sweep: demo query: {selection}");

    let mut ok = true;
    if errors > 0 {
        eprintln!("chardb_sweep: FAIL: {errors} points failed to characterise");
        ok = false;
    }
    // Round-robined sampling must cover every (kind, target) pair
    // that is distinct; FAMILIES has repeated pairs (the iterator
    // rows), so compare against the distinct set.
    let distinct: std::collections::BTreeSet<_> = FAMILIES.iter().collect();
    if families_covered < distinct.len() {
        eprintln!(
            "chardb_sweep: FAIL: only {families_covered} of {} family pairs covered",
            distinct.len()
        );
        ok = false;
    }
    if matches!(selection, Selection::NoTarget(_)) {
        eprintln!("chardb_sweep: FAIL: demo select query found no target");
        ok = false;
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
