//! Regenerates the paper's **Table 2**: the iterator operations,
//! their meaning, and which iterator kinds provide them.

use hdp_core::classify::{IterKind, IterOp};

fn main() {
    println!("Table 2. Iterator Operations");
    println!();
    println!("{:<9} | {:<26} | Applicability", "Operation", "Meaning");
    println!("{}", "-".repeat(72));
    for op in IterOp::ALL {
        let kinds: Vec<String> = IterKind::ALL
            .iter()
            .filter(|k| k.supports(op))
            .map(ToString::to_string)
            .collect();
        println!(
            "{:<9} | {:<26} | {}",
            op.to_string(),
            op.meaning(),
            kinds.join(", ")
        );
    }
    println!();
    println!("operation sets per iterator kind:");
    for kind in IterKind::ALL {
        let ops: Vec<String> = kind.operations().iter().map(ToString::to_string).collect();
        println!("  {:<13} {}", kind.to_string(), ops.join(", "));
    }
}
