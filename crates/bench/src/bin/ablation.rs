//! Ablation experiments over the design choices DESIGN.md calls out:
//!
//! 1. **Wrapper dissolution** — the pattern designs with and without
//!    the synthesis optimisation, quantifying the raw cost of the
//!    iterator wrappers that the paper claims "will be dissolved at
//!    the time of synthesizing the design".
//! 2. **Operation pruning** — the generated read buffer with the full
//!    method set vs. pruned to the copy algorithm's needs.
//! 3. **Engine selection** — streaming vs. sequenced copy over FIFO
//!    containers: cycles per frame, justifying the generator's
//!    implementation choice.

use hdp_core::golden::PixelOp;
use hdp_core::model::{Algorithm, EngineHandle, VideoPipelineModel};
use hdp_core::pixel::{Frame, PixelFormat};
use hdp_metagen::container_gen::{rbuffer_fifo, ContainerParams};
use hdp_metagen::design::{generate, DesignKind, DesignParams, Style};
use hdp_metagen::ops::{MethodOp, OpSet};
use hdp_synth::{dissolve_wrappers, map_resources};

fn main() {
    println!("ablation 1: wrapper dissolution (pattern designs)");
    println!(
        "  {:<11} {:>16} {:>16} {:>14}",
        "design", "raw FF/LUT", "dissolved", "wrappers gone"
    );
    for kind in DesignKind::ALL {
        let d = generate(kind, Style::Pattern, DesignParams::paper_default()).unwrap();
        let raw = map_resources(&d.netlist);
        let opt = map_resources(&dissolve_wrappers(&d.netlist).unwrap());
        let bufs = d
            .netlist
            .cells()
            .iter()
            .filter(|c| matches!(c.prim(), hdp_hdl::prim::Prim::Buf { .. }))
            .count();
        println!(
            "  {:<11} {:>16} {:>16} {:>14}",
            kind.label(),
            format!("{}/{}", raw.ffs, raw.luts),
            format!("{}/{}", opt.ffs, opt.luts),
            bufs
        );
    }
    println!("  (wrapper buffers are free even unmapped; dissolution removes the cells)");
    println!();

    println!("ablation 2: operation pruning (generated rbuffer_fifo)");
    let params = ContainerParams::paper_default();
    for (label, ops) in [
        ("empty+size+pop (figure 4)", OpSet::figure4()),
        ("pop only (copy needs)", OpSet::of(&[MethodOp::Pop])),
    ] {
        let nl = rbuffer_fifo(params, ops).unwrap();
        let r = map_resources(&dissolve_wrappers(&nl).unwrap());
        println!(
            "  {:<26} {:>2} ports  {:>2} cells  {:>2} LUTs",
            label,
            nl.entity().ports().len(),
            nl.cells().len(),
            r.luts
        );
    }
    println!();

    println!("ablation 3: engine selection (64x16 frame over FIFO containers)");
    let frame = Frame::noise(64, 16, PixelFormat::Gray8, 3);
    let model = VideoPipelineModel::new(
        "m",
        PixelFormat::Gray8,
        64,
        16,
        Algorithm::Transform(PixelOp::Identity),
    )
    .unwrap();
    // The elaborator picks streaming for FIFO targets; measure it.
    let mut fast = model.elaborate(&frame).unwrap();
    assert!(matches!(fast.engine(), EngineHandle::Streaming(_)));
    fast.run_to_completion().unwrap();
    let streaming_cycles = fast.sim.cycle();
    // Force the sequenced engine by inserting width adaptation with a
    // trivial ratio is not possible; instead compare against the SRAM
    // binding (which forces sequencing) at latency 1.
    let slow_model = model
        .retarget_input(hdp_core::spec::PhysicalTarget::ExternalSram { latency: 1 })
        .retarget_output(hdp_core::spec::PhysicalTarget::ExternalSram { latency: 1 })
        .with_source_gap(15);
    let mut slow = slow_model.elaborate(&frame).unwrap();
    assert!(matches!(slow.engine(), EngineHandle::Sequenced(_)));
    slow.run_to_completion().unwrap();
    let sequenced_cycles = slow.sim.cycle();
    println!("  streaming over FIFOs : {streaming_cycles} cycles (~1 px/cycle)");
    println!("  sequenced over SRAMs : {sequenced_cycles} cycles (memory-bound)");
    println!(
        "  ratio: {:.1}x — why the generator picks per-target implementations",
        sequenced_cycles as f64 / streaming_cycles as f64
    );
}
