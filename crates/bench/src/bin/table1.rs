//! Regenerates the paper's **Table 1**: the classification of the
//! common containers by access type (random / sequential) and
//! traversal (forward / backward), straight from the library's
//! taxonomy data.

use hdp_core::classify::ContainerKind;

fn main() {
    println!("Table 1. Common containers");
    println!();
    println!(
        "{:<14} | {:^15} | {:^17}",
        "Containers", "Random", "Sequential"
    );
    println!(
        "{:<14} | {:^7}{:^8} | {:^8}{:^9}",
        "", "Input", "Output", "Input", "Output"
    );
    println!("{}", "-".repeat(54));
    for kind in ContainerKind::ALL {
        let c = kind.classification();
        let tick = |b: bool| if b { "yes" } else { "-" };
        println!(
            "{:<14} | {:^7}{:^8} | {:^8}{:^9}",
            kind.to_string(),
            tick(c.random_input),
            tick(c.random_output),
            c.sequential_input.to_string(),
            c.sequential_output.to_string()
        );
    }
    println!();
    println!("supported iterator kinds per container:");
    for kind in ContainerKind::ALL {
        let kinds: Vec<String> = kind
            .supported_iterators()
            .iter()
            .map(ToString::to_string)
            .collect();
        println!("  {:<14} {}", kind.to_string(), kinds.join(", "));
    }
}
