//! Regenerates the paper's **Figures 4 and 5**: the generated VHDL of
//! the read buffer over a FIFO device and over an SRAM device.

use hdp_hdl::vhdl;
use hdp_metagen::container_gen::{rbuffer_fifo, rbuffer_sram, ContainerParams};
use hdp_metagen::ops::OpSet;

fn main() {
    let params = ContainerParams::paper_default();
    println!("Figure 4. Read buffer over a FIFO device");
    println!();
    let fig4 = rbuffer_fifo(params, OpSet::figure4()).expect("figure 4 generates");
    print!("{}", vhdl::emit_entity(fig4.entity()));
    println!();
    println!("Figure 5. Read buffer over an SRAM device");
    println!("(implementation interface — the difference from Figure 4)");
    println!();
    let fig5 = rbuffer_sram(params, OpSet::figure4()).expect("figure 5 generates");
    let text = vhdl::emit_entity(fig5.entity());
    // Print from the implementation-interface group onwards, matching
    // the paper's "includes only the differences" presentation.
    let start = text
        .find("    -- implementation interface")
        .expect("group present");
    println!("...");
    print!("{}", &text[start..]);
    println!();
    println!("full architectures: cargo run --example codegen_vhdl");
}
