//! Service throughput benchmark: cold vs warm plan cache.
//!
//! Submits a fixed-seed batch of distinct designs to an in-process
//! [`hdp_service::Service`] twice and records sustained designs/sec
//! for both passes in `BENCH_service.json`. The first pass compiles
//! every design (all cache misses); the second pass reuses every
//! cached plan (all hits). The run fails — exits non-zero — when the
//! warm pass is not bit-identical to the cold pass, when the
//! second-pass hit ratio falls below `--min-hit-ratio`, when the
//! warm/cold speedup falls below `--min-speedup`, or when the
//! observability plane's warm-pass overhead (counters on vs fully
//! disabled) exceeds `--max-obs-overhead` percent.
//!
//! ```text
//! service [--designs N] [--cycles N] [--seed N] [--threads N]
//!         [--reps N] [--min-hit-ratio F%] [--min-speedup F%]
//!         [--max-obs-overhead F%] [--out FILE]
//! ```
//!
//! The ratio flags take integer percentages (`--min-speedup 200` =
//! warm must sustain at least 2x cold) so the CLI stays integer-only
//! like the other bench drivers.

use hdp_service::bench::{run, BenchConfig};
use std::process::ExitCode;

const SUMMARY_JSON: &str = "BENCH_service.json";

struct Args {
    config: BenchConfig,
    min_hit_pct: u64,
    min_speedup_pct: u64,
    max_obs_overhead_pct: Option<u64>,
    out: String,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        config: BenchConfig::default(),
        min_hit_pct: 90,
        min_speedup_pct: 100,
        max_obs_overhead_pct: None,
        out: SUMMARY_JSON.to_owned(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        if flag == "--out" {
            args.out = it.next().ok_or("--out expects a value")?;
            continue;
        }
        let mut value = |flag: &str| {
            it.next()
                .ok_or_else(|| format!("{flag} expects a value"))?
                .parse::<u64>()
                .map_err(|e| format!("{flag}: {e}"))
        };
        match flag.as_str() {
            "--designs" => args.config.designs = value("--designs")?.max(1) as usize,
            "--cycles" => args.config.cycles = value("--cycles")?.max(1) as usize,
            "--seed" => args.config.seed = value("--seed")?,
            "--threads" => args.config.threads = value("--threads")?.max(1) as usize,
            "--reps" => args.config.reps = value("--reps")?.max(1) as usize,
            "--min-hit-ratio" => args.min_hit_pct = value("--min-hit-ratio")?,
            "--min-speedup" => args.min_speedup_pct = value("--min-speedup")?,
            "--max-obs-overhead" => {
                args.max_obs_overhead_pct = Some(value("--max-obs-overhead")?);
            }
            other => {
                return Err(format!(
                    "unknown argument `{other}` (expected --designs/--cycles/--seed/--threads/--reps/--min-hit-ratio/--min-speedup/--max-obs-overhead/--out)"
                ))
            }
        }
    }
    // The warm pass only hits when the cache can hold the whole batch.
    args.config.cache_capacity = args.config.cache_capacity.max(args.config.designs);
    Ok(args)
}

#[allow(clippy::cast_precision_loss)]
fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("service bench: {e}");
            return ExitCode::FAILURE;
        }
    };
    let report = match run(&args.config) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("service bench: job failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let text = report.to_json();
    if let Err(e) = std::fs::write(&args.out, &text) {
        eprintln!("service bench: cannot write {}: {e}", args.out);
        return ExitCode::FAILURE;
    }
    println!("{text}");

    let second_pass_ratio = report.warm_hit_ratio;
    eprintln!(
        "service bench: {} designs x {} cycles, cold {:.1}/s warm {:.1}/s (x{:.2}), second-pass hit ratio {:.3}, obs overhead {:.2}%",
        report.config.designs,
        report.config.cycles,
        report.cold_rate(),
        report.warm_rate(),
        report.speedup(),
        second_pass_ratio,
        report.obs_overhead_pct,
    );

    let mut ok = true;
    if !report.identical {
        eprintln!("service bench: FAIL: warm trace diverged from cold trace");
        ok = false;
    }
    if second_pass_ratio * 100.0 < args.min_hit_pct as f64 {
        eprintln!(
            "service bench: FAIL: second-pass hit ratio {:.3} below {}%",
            second_pass_ratio, args.min_hit_pct
        );
        ok = false;
    }
    if report.speedup() * 100.0 < args.min_speedup_pct as f64 {
        eprintln!(
            "service bench: FAIL: warm speedup x{:.2} below {}%",
            report.speedup(),
            args.min_speedup_pct
        );
        ok = false;
    }
    if let Some(max_pct) = args.max_obs_overhead_pct {
        if report.obs_overhead_pct > max_pct as f64 {
            eprintln!(
                "service bench: FAIL: observability overhead {:.2}% above {max_pct}%",
                report.obs_overhead_pct
            );
            ok = false;
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
