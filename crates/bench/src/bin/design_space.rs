//! Regenerates the §3.4 design-space characterisation: every
//! container×target×parameter implementation on the XSB-300E, with
//! area, access time and power, plus constraint-driven regions of
//! interest.

use hdp_synth::characterize::{region_of_interest, sweep, Constraints, SweepGrid};
use hdp_synth::Xsb300e;

fn main() {
    let board = Xsb300e::new();
    let points = sweep(&board, &SweepGrid::default()).expect("sweep runs");
    if std::env::args().any(|a| a == "--csv") {
        print!("{}", hdp_synth::characterize::to_csv(&points));
        return;
    }
    println!(
        "design-space characterisation on the {} ({} points)",
        board.device.name,
        points.len()
    );
    println!();
    for p in &points {
        println!("{p}");
    }
    println!();
    for (label, constraints) in [
        (
            "cost-driven (no block RAM)",
            Constraints {
                max_brams: Some(0),
                ..Constraints::default()
            },
        ),
        (
            "performance-driven (1 cycle/access)",
            Constraints {
                max_access_cycles: Some(1),
                ..Constraints::default()
            },
        ),
        (
            "power budget (<= 18 mW)",
            Constraints {
                max_power_mw: Some(18.0),
                ..Constraints::default()
            },
        ),
    ] {
        let roi = region_of_interest(&points, constraints);
        println!("region of interest: {label} — {} points", roi.len());
        for p in roi {
            println!("  {p}");
        }
        println!();
    }
}
