//! Scheduling-mode performance matrix, the start of the perf
//! trajectory record: times the blur-filter frame workload under the
//! full-sweep, event-driven, parallel, compiled and lowered
//! schedulers, plus the multi-design batch runner at 1 and N worker
//! threads and the 64-way bit-parallel [`LaneBatch`] engine, and
//! writes the numbers to `BENCH_sched_modes.json`.
//!
//! Every configuration is asserted bit-identical against the
//! full-sweep reference before any time is measured; every lane of
//! the packed run is asserted bit-identical against its own scalar
//! event-driven run.

use hdp_bench::{build_design_sim, run_design_batch, run_design_sim, DesignSimSpec};
use hdp_core::pixel::{Frame, PixelFormat};
use hdp_hdl::prim::{GateOp, Prim};
use hdp_hdl::{Entity, LogicVector, Netlist, PortDir};
use hdp_metagen::design::{DesignKind, DesignParams, Style};
use hdp_sim::{LaneBatch, NetlistComponent, SchedMode, SimStats, Simulator, TelemetryLevel, LANES};
use std::fmt::Write as _;
use std::time::Instant;

const WIDTH: usize = 32;
const HEIGHT: usize = 8;
const GAP: u32 = 1;
const BATCH: usize = 8;
const REPS: usize = 20;
/// Lane workload shape: a feed-forward add/xor pipeline.
const LANE_STAGES: usize = 24;
const LANE_WIDTH: usize = 16;
const LANE_CYCLES: usize = 256;

fn build(
    frame: &Frame,
    mode: SchedMode,
    incremental: bool,
) -> (hdp_sim::Simulator, hdp_sim::ComponentId) {
    let spec = DesignSimSpec::new(
        DesignKind::Blur,
        Style::Pattern,
        DesignParams::small(32),
        frame.pixels().to_vec(),
    )
    .gap(GAP)
    .out_len((WIDTH - 2) * (HEIGHT - 2))
    .mode(mode)
    .incremental(incremental);
    build_design_sim(&spec).expect("design builds")
}

fn budget(frame: &Frame) -> u64 {
    frame.pixels().len() as u64 * u64::from(GAP + 1) * 4 + 2000
}

/// The 64-way lane workload: `LANE_STAGES` Fibonacci-style add/xor
/// stages feeding a register, `dout` tapping the last combinational
/// net. Entirely feed-forward, so the lane engine packs it exactly.
fn lane_pipeline() -> Netlist {
    let width = LANE_WIDTH;
    let entity = Entity::builder("pipe")
        .port("din", PortDir::In, width)
        .unwrap()
        .port("dout", PortDir::Out, width)
        .unwrap()
        .build()
        .unwrap();
    let mut nl = Netlist::new(entity);
    let din = nl.add_net("din", width).unwrap();
    let q = nl.add_net("q", width).unwrap();
    let mut prev = din;
    let mut older = q;
    for i in 0..LANE_STAGES {
        let sum = nl.add_net(format!("s{i}"), width).unwrap();
        nl.add_cell(
            format!("u_add{i}"),
            Prim::Add { width },
            vec![prev, older],
            vec![sum],
        )
        .unwrap();
        let mix = nl.add_net(format!("x{i}"), width).unwrap();
        nl.add_cell(
            format!("u_xor{i}"),
            Prim::Gate {
                op: GateOp::Xor,
                width,
            },
            vec![sum, prev],
            vec![mix],
        )
        .unwrap();
        older = prev;
        prev = mix;
    }
    nl.add_cell(
        "u_reg",
        Prim::Reg {
            width,
            has_enable: false,
            reset_value: 0,
        },
        vec![prev],
        vec![q],
    )
    .unwrap();
    nl.bind_port("din", din).unwrap();
    nl.bind_port("dout", prev).unwrap();
    nl
}

/// One scalar event-driven run of the lane workload, returning the
/// settled `dout` trace.
fn scalar_lane_run(nl: &Netlist, stim: &[u64]) -> Vec<LogicVector> {
    let mut sim = Simulator::with_mode(SchedMode::EventDriven);
    let din = sim.add_signal("din", LANE_WIDTH).unwrap();
    let dout = sim.add_signal("dout", LANE_WIDTH).unwrap();
    let comp = NetlistComponent::new(
        "dut",
        nl.clone(),
        sim.bus(),
        &[("din", din), ("dout", dout)],
    )
    .unwrap();
    sim.add_component(comp);
    let mut trace = Vec::with_capacity(stim.len());
    for (c, &v) in stim.iter().enumerate() {
        sim.poke(din, v).unwrap();
        if c == 0 {
            sim.reset().unwrap();
        } else {
            sim.settle().unwrap();
        }
        trace.push(sim.peek(dout).unwrap());
        sim.step().unwrap();
    }
    trace
}

/// One packed run: all 64 stimuli advanced by the same settles and
/// ticks. Returns per-lane `dout` traces.
fn packed_lane_run(nl: &Netlist, stims: &[Vec<u64>]) -> Vec<Vec<LogicVector>> {
    let mut lanes = LaneBatch::new("lanes", nl).unwrap();
    lanes.reset();
    let cycles = stims[0].len();
    let mut traces = vec![Vec::with_capacity(cycles); stims.len()];
    for c in 0..cycles {
        for (k, stim) in stims.iter().enumerate() {
            lanes.poke("din", k, stim[c]).unwrap();
        }
        lanes.settle();
        for (k, t) in traces.iter_mut().enumerate() {
            t.push(lanes.peek("dout", k).unwrap());
        }
        lanes.tick().unwrap();
    }
    traces
}

/// Mean wall-clock milliseconds of `REPS` runs of `f`.
fn time_ms(mut f: impl FnMut()) -> f64 {
    // One warm-up run keeps first-touch page faults out of the mean.
    f();
    let start = Instant::now();
    for _ in 0..REPS {
        f();
    }
    start.elapsed().as_secs_f64() * 1000.0 / REPS as f64
}

fn main() {
    let frame = Frame::noise(WIDTH, HEIGHT, PixelFormat::Gray8, 11);
    let budget = budget(&frame);
    let host = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    // Always record a >=2-worker point, even on single-core hosts
    // (there it measures scheduling overhead rather than speedup).
    let threads = match SchedMode::parallel() {
        SchedMode::Parallel { threads } => threads.max(2),
        _ => unreachable!(),
    };

    // Bit-identity gate: no timing without agreement.
    let reference = {
        let (mut sim, sink) = build(&frame, SchedMode::FullSweep, false);
        run_design_sim(&mut sim, sink, budget)
    };
    for (label, mode) in [
        ("event", SchedMode::EventDriven),
        ("parallel", SchedMode::Parallel { threads }),
        ("compiled", SchedMode::Compiled),
        ("lowered", SchedMode::Lowered),
    ] {
        let (mut sim, sink) = build(&frame, mode, true);
        assert_eq!(
            run_design_sim(&mut sim, sink, budget),
            reference,
            "{label} must match the full sweep bit for bit"
        );
    }

    println!("Scheduling-mode matrix — blur 32x8, gap {GAP} ({REPS} reps)");
    println!();
    // Timed runs stay at TelemetryLevel::Off (the zero-cost default);
    // a separate instrumented run per mode records the wave/island
    // shape behind each number.
    let mut single = Vec::new();
    let mut shapes: Vec<(&str, SimStats)> = Vec::new();
    for (label, mode, incremental) in [
        ("full_sweep", SchedMode::FullSweep, false),
        ("event_driven", SchedMode::EventDriven, true),
        ("parallel", SchedMode::Parallel { threads }, true),
        ("compiled", SchedMode::Compiled, true),
        ("lowered", SchedMode::Lowered, true),
    ] {
        let ms = time_ms(|| {
            let (mut sim, sink) = build(&frame, mode, incremental);
            std::hint::black_box(run_design_sim(&mut sim, sink, budget));
        });
        println!("  {label:<14} {ms:>8.3} ms/frame");
        single.push((label, ms));
        let (mut sim, sink) = build(&frame, mode, incremental);
        sim.set_telemetry(TelemetryLevel::Counters);
        std::hint::black_box(run_design_sim(&mut sim, sink, budget));
        shapes.push((label, sim.stats()));
    }

    // Batch: the frame-throughput workload. Built once per timing run
    // inside the closure so construction cost is paid equally.
    let batch_frames_1 = run_design_batch(
        (0..BATCH)
            .map(|_| build(&frame, SchedMode::EventDriven, true))
            .collect(),
        budget,
        1,
    );
    let batch_frames_n = run_design_batch(
        (0..BATCH)
            .map(|_| build(&frame, SchedMode::EventDriven, true))
            .collect(),
        budget,
        threads,
    );
    assert_eq!(
        batch_frames_1, batch_frames_n,
        "batch results must not depend on worker count"
    );
    println!();
    let mut batch = Vec::new();
    // Simulations are consumed by a batch run; rebuild per rep but
    // time only the run itself.
    for t in [1usize, threads] {
        let mut total = 0.0f64;
        {
            // Warm-up.
            let sims: Vec<_> = (0..BATCH)
                .map(|_| build(&frame, SchedMode::EventDriven, true))
                .collect();
            std::hint::black_box(run_design_batch(sims, budget, t));
        }
        for _ in 0..REPS {
            let sims: Vec<_> = (0..BATCH)
                .map(|_| build(&frame, SchedMode::EventDriven, true))
                .collect();
            let start = Instant::now();
            std::hint::black_box(run_design_batch(sims, budget, t));
            total += start.elapsed().as_secs_f64() * 1000.0;
        }
        let ms = total / REPS as f64;
        println!("  batch x{BATCH}, {t:>2} thread(s) {ms:>8.3} ms");
        batch.push((t, ms));
    }
    let speedup = batch[0].1 / batch[1].1;
    println!();
    if host == 1 {
        println!(
            "  batch thread-scaling skipped: single-core host (x{BATCH} on {} threads measured {speedup:.2}x, overhead only)",
            batch[1].0
        );
    } else {
        println!(
            "  batch speedup {speedup:.2}x on {} threads (event-driven baseline)",
            batch[1].0
        );
    }
    let event_ms = single
        .iter()
        .find(|(l, _)| *l == "event_driven")
        .expect("event timing recorded")
        .1;
    let compiled_ms = single
        .iter()
        .find(|(l, _)| *l == "compiled")
        .expect("compiled timing recorded")
        .1;
    let compiled_speedup = event_ms / compiled_ms;
    println!("  compiled speedup {compiled_speedup:.2}x vs event-driven (single sim)");

    // 64-way lane engine: one packed run carries 64 independent
    // stimuli, refereed lane by lane against scalar event-driven runs
    // before any timing.
    let pipe = lane_pipeline();
    let mut stims: Vec<Vec<u64>> = Vec::with_capacity(LANES);
    let mut state = 0x243F_6A88_85A3_08D3u64;
    for _ in 0..LANES {
        let mut lane = Vec::with_capacity(LANE_CYCLES);
        for _ in 0..LANE_CYCLES {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            lane.push(state & ((1 << LANE_WIDTH) - 1));
        }
        stims.push(lane);
    }
    let packed_traces = packed_lane_run(&pipe, &stims);
    for (k, stim) in stims.iter().enumerate() {
        assert_eq!(
            packed_traces[k],
            scalar_lane_run(&pipe, stim),
            "lane {k} must match its scalar event-driven run bit for bit"
        );
    }
    let packed64_ms = time_ms(|| {
        std::hint::black_box(packed_lane_run(&pipe, &stims));
    });
    let scalar_event_ms = time_ms(|| {
        std::hint::black_box(scalar_lane_run(&pipe, &stims[0]));
    });
    let per_lane_ms = packed64_ms / LANES as f64;
    let lowered_speedup = scalar_event_ms / per_lane_ms;
    println!();
    println!(
        "  lane64 pipeline ({LANE_STAGES} stages x {LANE_WIDTH} bits, {LANE_CYCLES} cycles): \
         packed {packed64_ms:.3} ms for {LANES} lanes ({per_lane_ms:.4} ms/lane), \
         scalar event-driven {scalar_event_ms:.3} ms/run"
    );
    println!("  lowered speedup {lowered_speedup:.2}x vs event-driven (per packed lane)");

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"bench\": \"sched_modes\",");
    let _ = writeln!(
        json,
        "  \"workload\": {{\"design\": \"blur\", \"width\": {WIDTH}, \"height\": {HEIGHT}, \"gap\": {GAP}, \"reps\": {REPS}}},"
    );
    json.push_str("  \"single_sim_ms_per_frame\": {\n");
    for (i, (label, ms)) in single.iter().enumerate() {
        let sep = if i + 1 == single.len() { "" } else { "," };
        let _ = writeln!(json, "    \"{label}\": {ms:.4}{sep}");
    }
    json.push_str("  },\n");
    let _ = writeln!(
        json,
        "  \"batch\": {{\"designs\": {BATCH}, \"mode\": \"event_driven\","
    );
    for (i, (t, ms)) in batch.iter().enumerate() {
        let sep = if i + 1 == batch.len() { "" } else { "," };
        let _ = writeln!(json, "    \"threads_{t}_ms\": {ms:.4}{sep}");
    }
    json.push_str("  },\n");
    // Per-run scheduler shape from an instrumented (Counters) rerun of
    // each single-sim configuration: island partition, wave fan-out
    // and activity totals.
    json.push_str("  \"telemetry\": {\n");
    for (i, (label, stats)) in shapes.iter().enumerate() {
        let sep = if i + 1 == shapes.len() { "" } else { "," };
        let islands: Vec<String> = stats.island_sizes.iter().map(u64::to_string).collect();
        let _ = writeln!(
            json,
            "    \"{label}\": {{\"evals\": {}, \"delta_passes\": {}, \"max_wake\": {}, \
             \"toggles\": {}, \"parallel_waves\": {}, \"inline_waves\": {}, \
             \"fallback_settles\": {}, \"compiled_settles\": {}, \"lowered_settles\": {}, \
             \"ops_executed\": {}, \"island_sizes\": [{}]}}{sep}",
            stats.total_evals(),
            stats.passes,
            stats.max_wake,
            stats.total_toggles(),
            stats.parallel_waves,
            stats.inline_waves,
            stats.fallback_settles,
            stats.compiled_settles,
            stats.lowered_settles,
            stats.ops_executed,
            islands.join(","),
        );
    }
    json.push_str("  },\n");
    let _ = writeln!(
        json,
        "  \"lane64\": {{\"stages\": {LANE_STAGES}, \"width\": {LANE_WIDTH}, \
         \"cycles\": {LANE_CYCLES}, \"lanes\": {LANES}, \
         \"packed_ms\": {packed64_ms:.4}, \"per_lane_ms\": {per_lane_ms:.4}, \
         \"scalar_event_ms\": {scalar_event_ms:.4}}},"
    );
    let _ = writeln!(
        json,
        "  \"compiled_speedup_vs_event\": {compiled_speedup:.4},"
    );
    let _ = writeln!(
        json,
        "  \"lowered_speedup_vs_event\": {lowered_speedup:.4},"
    );
    // A one-worker host cannot measure thread scaling; a sub-1.0
    // "speedup" there is scheduling overhead, not a regression.
    if host == 1 {
        let _ = writeln!(json, "  \"batch_speedup\": \"skipped_single_core\",");
    } else {
        let _ = writeln!(json, "  \"batch_speedup\": {speedup:.4},");
    }
    let _ = writeln!(json, "  \"batch_threads\": {threads},");
    let _ = writeln!(json, "  \"host_threads\": {host}");
    json.push_str("}\n");
    std::fs::write("BENCH_sched_modes.json", json).expect("write BENCH_sched_modes.json");
    println!("wrote BENCH_sched_modes.json");
}
