//! Differential conformance fuzzer.
//!
//! Samples random designs from the metagen design space, runs each
//! through the five-oracle conformance stack (`hdp-conform`), shrinks
//! any diverging case to a minimal reproducer and writes it next to
//! the summary as `conform_repro_<n>.json`. The run summary lands in
//! `BENCH_conform.json`; the process exits non-zero when any
//! divergence survives, so CI can gate on it directly.
//!
//! ```text
//! conform [--seed N] [--count N] [--budget-ms N] [--cycles N]
//! ```
//!
//! `--budget-ms` stops sampling early once the wall-clock budget is
//! spent (the case in flight is finished, never abandoned), so smoke
//! jobs get a hard upper bound on runtime.

use hdp_conform::{shrink, Case, Json, Stimulus};
use hdp_metagen::sampler::sample_spec;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::process::ExitCode;
use std::time::Instant;

const SUMMARY_JSON: &str = "BENCH_conform.json";

struct Args {
    seed: u64,
    count: usize,
    budget_ms: Option<u64>,
    cycles: usize,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seed: 0xC0F0,
        count: 200,
        budget_ms: None,
        cycles: 12,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .ok_or_else(|| format!("{flag} expects a value"))?
                .parse::<u64>()
                .map_err(|e| format!("{flag}: {e}"))
        };
        match flag.as_str() {
            "--seed" => args.seed = value("--seed")?,
            "--count" => args.count = value("--count")? as usize,
            "--budget-ms" => args.budget_ms = Some(value("--budget-ms")?),
            "--cycles" => args.cycles = (value("--cycles")? as usize).max(1),
            other => {
                return Err(format!(
                    "unknown argument `{other}` (expected --seed/--count/--budget-ms/--cycles)"
                ))
            }
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("conform: {e}");
            return ExitCode::FAILURE;
        }
    };
    let start = Instant::now();
    let mut rng = StdRng::seed_from_u64(args.seed);
    let mut kinds: BTreeMap<String, u64> = BTreeMap::new();
    let mut targets: BTreeMap<String, u64> = BTreeMap::new();
    let mut divergences = Vec::new();
    let mut checked = 0usize;

    for index in 0..args.count {
        if let Some(budget) = args.budget_ms {
            if start.elapsed().as_millis() as u64 >= budget {
                break;
            }
        }
        let spec = sample_spec(&mut rng);
        let label = spec.label();
        *kinds.entry(spec.kind().to_owned()).or_insert(0) += 1;
        *targets.entry(spec.target().to_owned()).or_insert(0) += 1;
        let stimulus = match spec.instantiate() {
            Ok(netlist) => Stimulus::sample(&netlist, args.cycles, &mut rng),
            // A generator failure still goes through Case::check so it
            // is reported (and serialised) like any other divergence.
            Err(_) => Stimulus {
                inputs: vec![],
                cycles: vec![vec![]],
            },
        };
        let case = Case { spec, stimulus };
        checked += 1;
        if case.check().is_none() {
            continue;
        }
        let (minimal, divergence) = shrink(&case);
        let divergence = divergence.expect("a diverging case shrinks to a diverging case");
        let path = format!("conform_repro_{index}.json");
        let doc = hdp_conform::wire::repro_to_json(args.seed, &minimal, &divergence);
        if let Err(e) = std::fs::write(&path, &doc) {
            eprintln!("conform: cannot write {path}: {e}");
        }
        eprintln!("conform: DIVERGENCE in {label} -> {path}\n  {divergence}");
        divergences.push(Json::Obj(vec![
            ("index".to_owned(), Json::Num(index as u64)),
            ("design".to_owned(), Json::Str(label)),
            ("reproducer".to_owned(), Json::Str(path)),
            ("report".to_owned(), Json::Str(divergence.to_string())),
        ]));
    }

    let count_map = |map: &BTreeMap<String, u64>| {
        Json::Obj(
            map.iter()
                .map(|(k, v)| (k.clone(), Json::Num(*v)))
                .collect(),
        )
    };
    let n_div = divergences.len();
    let summary = Json::Obj(vec![
        ("seed".to_owned(), Json::Num(args.seed)),
        ("requested".to_owned(), Json::Num(args.count as u64)),
        ("checked".to_owned(), Json::Num(checked as u64)),
        (
            "cycles_per_design".to_owned(),
            Json::Num(args.cycles as u64),
        ),
        (
            "elapsed_ms".to_owned(),
            Json::Num(start.elapsed().as_millis() as u64),
        ),
        (
            "oracles".to_owned(),
            Json::Arr(
                hdp_conform::ORACLE_LABELS
                    .iter()
                    .map(|l| Json::Str((*l).to_owned()))
                    .collect(),
            ),
        ),
        ("kinds".to_owned(), count_map(&kinds)),
        ("targets".to_owned(), count_map(&targets)),
        ("divergences".to_owned(), Json::Arr(divergences)),
    ]);
    let text = summary.to_string();
    if let Err(e) = std::fs::write(SUMMARY_JSON, &text) {
        eprintln!("conform: cannot write {SUMMARY_JSON}: {e}");
        return ExitCode::FAILURE;
    }
    println!("{text}");
    eprintln!(
        "conform: {checked} designs x {} cycles x {} oracles in {} ms, {n_div} divergence(s)",
        args.cycles,
        hdp_conform::ORACLE_LABELS.len(),
        start.elapsed().as_millis(),
    );
    if n_div == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
