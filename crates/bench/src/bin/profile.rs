//! Telemetry profile of the blur design: runs the same frame workload
//! under the full-sweep, event-driven, parallel and lowered scheduler
//! modes with full instrumentation, checks the cross-mode telemetry
//! invariants, and writes
//! `BENCH_profile.json` (counter summary) plus
//! `BENCH_profile.trace.json` (Chrome trace-event spans, loadable in
//! `chrome://tracing` / Perfetto).
//!
//! `profile --validate` re-reads the two artefacts and checks them
//! against the expected schema — the CI telemetry smoke job runs the
//! profile and then the validator.

use hdp_bench::{build_design_sim, run_design_sim, DesignSimSpec};
use hdp_core::pixel::{Frame, PixelFormat};
use hdp_metagen::design::{DesignKind, DesignParams, Style};
use hdp_sim::telemetry::json_string;
use hdp_sim::{SchedMode, SimStats, TelemetryLevel};
use std::fmt::Write as _;

const WIDTH: usize = 32;
const HEIGHT: usize = 8;
const GAP: u32 = 1;
const PROFILE_JSON: &str = "BENCH_profile.json";
const TRACE_JSON: &str = "BENCH_profile.trace.json";

fn profile_mode(frame: &Frame, mode: SchedMode) -> SimStats {
    let spec = DesignSimSpec::new(
        DesignKind::Blur,
        Style::Pattern,
        DesignParams::small(32),
        frame.pixels().to_vec(),
    )
    .gap(GAP)
    .out_len((WIDTH - 2) * (HEIGHT - 2))
    .mode(mode)
    .telemetry(TelemetryLevel::Full);
    let (mut sim, sink) = build_design_sim(&spec).expect("design builds");
    let budget = frame.pixels().len() as u64 * u64::from(GAP + 1) * 4 + 2000;
    std::hint::black_box(run_design_sim(&mut sim, sink, budget));
    sim.stats()
}

fn mode_json(label: &str, stats: &SimStats) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "    \"{label}\": {{");
    let _ = writeln!(out, "      \"steps\": {},", stats.steps);
    let _ = writeln!(out, "      \"settles\": {},", stats.settles);
    let _ = writeln!(out, "      \"delta_passes\": {},", stats.passes);
    let _ = writeln!(
        out,
        "      \"max_passes_per_settle\": {},",
        stats.max_passes
    );
    let _ = writeln!(out, "      \"total_evals\": {},", stats.total_evals());
    let _ = writeln!(out, "      \"total_toggles\": {},", stats.total_toggles());
    let _ = writeln!(out, "      \"total_drives\": {},", stats.total_drives());
    let _ = writeln!(out, "      \"max_wake\": {},", stats.max_wake);
    let _ = writeln!(out, "      \"parallel_waves\": {},", stats.parallel_waves);
    let _ = writeln!(out, "      \"inline_waves\": {},", stats.inline_waves);
    let _ = writeln!(
        out,
        "      \"fallback_settles\": {},",
        stats.fallback_settles
    );
    let _ = writeln!(
        out,
        "      \"compiled_settles\": {},",
        stats.compiled_settles
    );
    let _ = writeln!(out, "      \"lowered_settles\": {},", stats.lowered_settles);
    let _ = writeln!(out, "      \"ops_executed\": {},", stats.ops_executed);
    let causes: Vec<String> = stats
        .fallback_cause_counts()
        .map(|(cause, n)| format!("\"{}\": {n}", cause.label()))
        .collect();
    let _ = writeln!(out, "      \"fallback_causes\": {{{}}},", causes.join(", "));
    let notes: Vec<String> = stats.notes.iter().map(|n| json_string(n)).collect();
    let _ = writeln!(out, "      \"notes\": [{}],", notes.join(","));
    let islands: Vec<String> = stats.island_sizes.iter().map(u64::to_string).collect();
    let _ = writeln!(out, "      \"island_sizes\": [{}],", islands.join(","));
    let _ = writeln!(out, "      \"trace_spans\": {},", stats.trace.len());
    out.push_str("      \"components_by_evals\": [\n");
    let mut comps: Vec<_> = stats.components.iter().collect();
    comps.sort_by(|a, b| b.evals.cmp(&a.evals).then_with(|| a.name.cmp(&b.name)));
    let top = comps.len().min(8);
    for (i, c) in comps.iter().take(top).enumerate() {
        let sep = if i + 1 == top { "" } else { "," };
        let _ = writeln!(
            out,
            "        {{\"name\": {}, \"evals\": {}, \"skips\": {}, \"eval_ns\": {}}}{sep}",
            json_string(&c.name),
            c.evals,
            c.skips,
            c.eval_ns
        );
    }
    out.push_str("      ],\n");
    out.push_str("      \"signals_by_toggles\": [\n");
    let mut sigs: Vec<_> = stats.signals.iter().filter(|s| s.drives > 0).collect();
    sigs.sort_by(|a, b| b.toggles.cmp(&a.toggles).then_with(|| a.name.cmp(&b.name)));
    let top = sigs.len().min(8);
    for (i, s) in sigs.iter().take(top).enumerate() {
        let sep = if i + 1 == top { "" } else { "," };
        let _ = writeln!(
            out,
            "        {{\"name\": {}, \"toggles\": {}, \"drives\": {}}}{sep}",
            json_string(&s.name),
            s.toggles,
            s.drives
        );
    }
    out.push_str("      ]\n");
    out.push_str("    }");
    out
}

/// The text of one mode's object inside the profile summary (from
/// its label to the closing brace at mode indentation).
fn mode_section<'a>(profile: &'a str, label: &str) -> Option<&'a str> {
    let start = profile.find(&format!("\"{label}\": {{"))?;
    let rest = &profile[start..];
    let end = rest.find("\n    }")?;
    Some(&rest[..end])
}

/// A numeric field's value inside one mode section.
fn field_u64(section: &str, key: &str) -> Option<u64> {
    let pos = section.find(&format!("\"{key}\": "))?;
    let rest = &section[pos + key.len() + 4..];
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

/// Checks the profile summary against its schema: every required key
/// present, the modes object complete — with the per-mode lowered
/// counters (`lowered_settles`, `ops_executed`, `fallback_causes`)
/// pinned per scheduler mode — and the trace file a Chrome
/// trace-event object. Returns a list of problems (empty = valid).
fn validate_artifacts(profile: &str, trace: &str) -> Vec<String> {
    let mut problems = Vec::new();
    for key in [
        "\"bench\": \"profile\"",
        "\"workload\"",
        "\"telemetry_level\": \"Full\"",
        "\"modes\"",
        "\"full_sweep\"",
        "\"event_driven\"",
        "\"parallel\"",
        "\"lowered\"",
        "\"lowered_settles\"",
        "\"ops_executed\"",
        "\"total_evals\"",
        "\"total_toggles\"",
        "\"island_sizes\"",
        "\"components_by_evals\"",
        "\"signals_by_toggles\"",
        "\"invariants\"",
        "\"eval_counts_event_eq_parallel\": true",
        "\"toggle_counts_mode_invariant\": true",
        "\"trace_file\"",
    ] {
        if !profile.contains(key) {
            problems.push(format!("{PROFILE_JSON}: missing {key}"));
        }
    }
    // Per-mode schema: every mode section carries the full counter
    // set, and the lowered counters are pinned to the scheduler that
    // produced them — only the lowered mode executes op streams.
    for label in ["full_sweep", "event_driven", "parallel", "lowered"] {
        let Some(section) = mode_section(profile, label) else {
            problems.push(format!("{PROFILE_JSON}: missing mode section {label}"));
            continue;
        };
        for key in [
            "settles",
            "lowered_settles",
            "compiled_settles",
            "fallback_settles",
            "ops_executed",
            "fallback_causes",
        ] {
            if !section.contains(&format!("\"{key}\"")) {
                problems.push(format!("{PROFILE_JSON}: mode {label} missing {key}"));
            }
        }
        let lowered_settles = field_u64(section, "lowered_settles");
        let ops_executed = field_u64(section, "ops_executed");
        if label == "lowered" {
            if lowered_settles == Some(0) {
                problems.push(format!(
                    "{PROFILE_JSON}: lowered mode reports zero lowered_settles"
                ));
            }
            if ops_executed == Some(0) {
                problems.push(format!(
                    "{PROFILE_JSON}: lowered mode reports zero ops_executed"
                ));
            }
        } else {
            if lowered_settles.is_some_and(|n| n > 0) {
                problems.push(format!(
                    "{PROFILE_JSON}: mode {label} reports lowered_settles but never lowers"
                ));
            }
            if ops_executed.is_some_and(|n| n > 0) {
                problems.push(format!(
                    "{PROFILE_JSON}: mode {label} reports ops_executed but never lowers"
                ));
            }
        }
    }
    if profile.matches('{').count() != profile.matches('}').count() {
        problems.push(format!("{PROFILE_JSON}: unbalanced braces"));
    }
    if !trace.trim_start().starts_with("{\"traceEvents\":[") {
        problems.push(format!("{TRACE_JSON}: not a trace-event object"));
    }
    if !trace.contains("\"displayTimeUnit\"") {
        problems.push(format!("{TRACE_JSON}: missing displayTimeUnit"));
    }
    if !trace.contains("\"ph\":\"X\"") {
        problems.push(format!("{TRACE_JSON}: no complete-event spans"));
    }
    for (name, text) in [(PROFILE_JSON, profile), (TRACE_JSON, trace)] {
        if text.matches('[').count() != text.matches(']').count() {
            problems.push(format!("{name}: unbalanced brackets"));
        }
    }
    problems
}

fn validate_existing() -> ! {
    let profile = std::fs::read_to_string(PROFILE_JSON)
        .unwrap_or_else(|e| panic!("cannot read {PROFILE_JSON}: {e}"));
    let trace = std::fs::read_to_string(TRACE_JSON)
        .unwrap_or_else(|e| panic!("cannot read {TRACE_JSON}: {e}"));
    let problems = validate_artifacts(&profile, &trace);
    if problems.is_empty() {
        println!("{PROFILE_JSON} and {TRACE_JSON} match the expected schema");
        std::process::exit(0);
    }
    for p in &problems {
        eprintln!("schema violation: {p}");
    }
    std::process::exit(1);
}

fn main() {
    if std::env::args().any(|a| a == "--validate") {
        validate_existing();
    }
    let frame = Frame::noise(WIDTH, HEIGHT, PixelFormat::Gray8, 11);

    let sweep = profile_mode(&frame, SchedMode::FullSweep);
    let event = profile_mode(&frame, SchedMode::EventDriven);
    let threads = match SchedMode::parallel() {
        SchedMode::Parallel { threads } => threads.max(2),
        _ => unreachable!(),
    };
    let parallel = profile_mode(&frame, SchedMode::Parallel { threads });
    let lowered = profile_mode(&frame, SchedMode::Lowered);

    // Cross-mode telemetry invariants (the same invariants the test
    // suite proves on the proptest families, checked here on the real
    // blur workload): parallel waves are the event scheduler's wake
    // sets, so eval counts match exactly; settled toggle activity is
    // identical in every mode because the waveforms are bit-identical.
    // The full sweep evaluates everything every pass, so its eval
    // count is the upper bound the others are measured against.
    assert_eq!(
        event.total_evals(),
        parallel.total_evals(),
        "event and parallel eval counts must be bit-identical"
    );
    for (c, rc) in parallel.components.iter().zip(&event.components) {
        assert_eq!(
            (c.name.as_str(), c.evals),
            (rc.name.as_str(), rc.evals),
            "per-component eval counts must match"
        );
    }
    for (label, stats) in [
        ("event", &event),
        ("parallel", &parallel),
        ("lowered", &lowered),
    ] {
        assert_eq!(
            stats.total_toggles(),
            sweep.total_toggles(),
            "{label} toggle counts must match the full sweep"
        );
    }
    assert!(
        lowered.lowered_settles > 0,
        "the lowered mode must settle on the op-stream walk"
    );
    assert!(
        sweep.total_evals() >= event.total_evals(),
        "the sweep is the eval-count upper bound"
    );

    println!("Telemetry profile — blur {WIDTH}x{HEIGHT}, gap {GAP}, level Full");
    println!();
    print!("{}", event.report());
    println!();
    println!(
        "  cross-mode: sweep evals {} | event = parallel evals {} | toggles {} (all modes)",
        sweep.total_evals(),
        event.total_evals(),
        event.total_toggles()
    );

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"profile\",\n");
    let _ = writeln!(
        json,
        "  \"workload\": {{\"design\": \"blur\", \"width\": {WIDTH}, \"height\": {HEIGHT}, \"gap\": {GAP}}},"
    );
    json.push_str("  \"telemetry_level\": \"Full\",\n");
    let _ = writeln!(json, "  \"parallel_threads\": {threads},");
    json.push_str("  \"modes\": {\n");
    let _ = writeln!(json, "{},", mode_json("full_sweep", &sweep));
    let _ = writeln!(json, "{},", mode_json("event_driven", &event));
    let _ = writeln!(json, "{},", mode_json("parallel", &parallel));
    let _ = writeln!(json, "{}", mode_json("lowered", &lowered));
    json.push_str("  },\n");
    json.push_str("  \"invariants\": {\n");
    json.push_str("    \"eval_counts_event_eq_parallel\": true,\n");
    json.push_str("    \"toggle_counts_mode_invariant\": true,\n");
    json.push_str("    \"sweep_evals_upper_bound\": true\n");
    json.push_str("  },\n");
    let _ = writeln!(json, "  \"trace_file\": {}", json_string(TRACE_JSON));
    json.push_str("}\n");

    // The event-driven run's spans go to the trace artefact: one
    // scheduler thread, step > pass > eval nesting.
    let trace = event.chrome_trace();
    let problems = validate_artifacts(&json, &trace);
    assert!(
        problems.is_empty(),
        "schema self-check failed: {problems:?}"
    );
    std::fs::write(PROFILE_JSON, &json).expect("write profile json");
    std::fs::write(TRACE_JSON, &trace).expect("write trace json");
    println!();
    println!(
        "wrote {PROFILE_JSON} and {TRACE_JSON} ({} spans)",
        event.trace.len()
    );
}
