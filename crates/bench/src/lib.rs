//! # hdp-bench — experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation:
//!
//! | binary | artefact |
//! |---|---|
//! | `table1` | Table 1 — container classification |
//! | `table2` | Table 2 — iterator operations |
//! | `table3` | Table 3 — pattern vs. custom synthesis results |
//! | `figure4_5` | Figures 4 and 5 — generated VHDL components |
//! | `design_space` | §3.4 — characterisation sweep and regions of interest |
//!
//! Criterion benches (`cargo bench`) measure the generator, the
//! synthesis flow and cycle-accurate simulation throughput of the
//! Table 3 designs.

use hdp_metagen::design::{generate, DesignKind, DesignParams, Style};
use hdp_sim::devices::{Sram, VideoIn, VideoOut};
use hdp_sim::{NetlistComponent, SchedMode, SignalId, Simulator};

/// Builds a ready-to-run simulation of one generated Table 3 design:
/// the design netlist plus video source, sink and (for the SRAM
/// design) two external memories. Returns the simulator and the sink
/// handle.
///
/// # Panics
///
/// Panics on generation or wiring failures — the harness treats those
/// as fatal.
#[must_use]
pub fn build_design_sim(
    kind: DesignKind,
    style: Style,
    params: DesignParams,
    pixels: Vec<u64>,
    gap: u32,
    out_len: usize,
) -> (Simulator, hdp_sim::ComponentId) {
    build_design_sim_scheduled(
        kind,
        style,
        params,
        pixels,
        gap,
        out_len,
        SchedMode::default(),
        true,
    )
}

/// [`build_design_sim`] with explicit scheduler configuration: the
/// simulator's [`SchedMode`] and whether the netlist interpreter uses
/// incremental evaluation. `(FullSweep, false)` reproduces the legacy
/// evaluate-everything behaviour for baseline measurements.
///
/// # Panics
///
/// Panics on generation or wiring failures — the harness treats those
/// as fatal.
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn build_design_sim_scheduled(
    kind: DesignKind,
    style: Style,
    params: DesignParams,
    pixels: Vec<u64>,
    gap: u32,
    out_len: usize,
    mode: SchedMode,
    incremental: bool,
) -> (Simulator, hdp_sim::ComponentId) {
    let design = generate(kind, style, params).expect("design generates");
    let mut sim = Simulator::new();
    sim.set_mode(mode);
    let vid_valid = sim.add_signal("vid_valid", 1).unwrap();
    let vid_data = sim.add_signal("vid_data", params.data_width).unwrap();
    let vga_valid = sim.add_signal("vga_valid", 1).unwrap();
    let vga_data = sim.add_signal("vga_data", params.data_width).unwrap();
    let mut map: Vec<(String, SignalId)> = vec![
        ("vid_valid".into(), vid_valid),
        ("vid_data".into(), vid_data),
        ("vga_valid".into(), vga_valid),
        ("vga_data".into(), vga_data),
    ];
    if kind == DesignKind::Saa2vga2 {
        for prefix in ["im", "om"] {
            let req = sim.add_signal(format!("{prefix}_req"), 1).unwrap();
            let we = sim.add_signal(format!("{prefix}_we"), 1).unwrap();
            let addr = sim
                .add_signal(format!("{prefix}_addr"), params.addr_width)
                .unwrap();
            let wdata = sim
                .add_signal(format!("{prefix}_wdata"), params.data_width)
                .unwrap();
            let ack = sim.add_signal(format!("{prefix}_ack"), 1).unwrap();
            let rdata = sim
                .add_signal(format!("{prefix}_rdata"), params.data_width)
                .unwrap();
            sim.add_component(Sram::new(
                format!("sram_{prefix}"),
                params.addr_width,
                params.data_width,
                2,
                req,
                we,
                addr,
                wdata,
                ack,
                rdata,
            ));
            for (p, s) in [
                (format!("{prefix}_req"), req),
                (format!("{prefix}_we"), we),
                (format!("{prefix}_addr"), addr),
                (format!("{prefix}_wdata"), wdata),
                (format!("{prefix}_ack"), ack),
                (format!("{prefix}_rdata"), rdata),
            ] {
                map.push((p, s));
            }
        }
    }
    let map_refs: Vec<(&str, SignalId)> = map.iter().map(|(n, s)| (n.as_str(), *s)).collect();
    let dut =
        NetlistComponent::new("dut", design.netlist, sim.bus(), &map_refs).expect("design wires");
    let dut = sim.add_component(dut);
    if !incremental {
        sim.component_mut::<NetlistComponent>(dut)
            .expect("dut present")
            .set_incremental(false);
    }
    sim.add_component(VideoIn::new(
        "video_decoder",
        pixels,
        params.data_width,
        gap,
        false,
        vid_valid,
        vid_data,
    ));
    let sink = sim.add_component(VideoOut::new(
        "vga_coder",
        out_len,
        None,
        vga_valid,
        vga_data,
    ));
    sim.reset().unwrap();
    (sim, sink)
}

/// Runs a built design simulation until a frame is collected or the
/// cycle budget runs out; returns the frame.
///
/// # Panics
///
/// Panics on simulation errors or if no frame arrives in time.
#[must_use]
pub fn run_design_sim(sim: &mut Simulator, sink: hdp_sim::ComponentId, budget: u64) -> Vec<u64> {
    let mut remaining = budget;
    while remaining > 0 {
        let chunk = remaining.min(256);
        sim.run(chunk).expect("simulation error");
        remaining -= chunk;
        if !sim.component::<VideoOut>(sink).unwrap().frames().is_empty() {
            break;
        }
    }
    sim.component::<VideoOut>(sink)
        .unwrap()
        .frames()
        .first()
        .cloned()
        .expect("frame collected within budget")
}

/// Runs several independent, already-built design simulations to
/// frame completion, distributed round-robin over `threads` worker
/// threads ([`Simulator`] is `Send`, so whole simulations migrate to
/// workers). Returns each design's first frame in input order —
/// frame-throughput workloads (the paper's video pipelines processing
/// a stream of frames, or a design-space sweep) are embarrassingly
/// parallel at this granularity, complementing the intra-simulation
/// parallelism of [`SchedMode::Parallel`].
///
/// # Panics
///
/// Panics on simulation errors or if any design misses its budget,
/// like [`run_design_sim`].
#[must_use]
pub fn run_design_batch(
    sims: Vec<(Simulator, hdp_sim::ComponentId)>,
    budget: u64,
    threads: usize,
) -> Vec<Vec<u64>> {
    let threads = threads.clamp(1, sims.len().max(1));
    let mut work: Vec<Vec<(usize, Simulator, hdp_sim::ComponentId)>> =
        (0..threads).map(|_| Vec::new()).collect();
    for (i, (sim, sink)) in sims.into_iter().enumerate() {
        work[i % threads].push((i, sim, sink));
    }
    let mut results: Vec<(usize, Vec<u64>)> = std::thread::scope(|s| {
        let handles: Vec<_> = work
            .into_iter()
            .map(|chunk| {
                s.spawn(move || {
                    chunk
                        .into_iter()
                        .map(|(i, mut sim, sink)| (i, run_design_sim(&mut sim, sink, budget)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("batch worker panicked"))
            .collect()
    });
    results.sort_by_key(|&(i, _)| i);
    results.into_iter().map(|(_, f)| f).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_the_fifo_design() {
        let pixels: Vec<u64> = (0..32).map(|i| i & 0xFF).collect();
        let (mut sim, sink) = build_design_sim(
            DesignKind::Saa2vga1,
            Style::Pattern,
            DesignParams::small(8),
            pixels.clone(),
            0,
            pixels.len(),
        );
        let out = run_design_sim(&mut sim, sink, 4000);
        assert_eq!(out, pixels);
    }

    #[test]
    fn batch_matches_sequential_runs() {
        let pixels: Vec<u64> = (0..32).map(|i| (i * 7) & 0xFF).collect();
        let build = |mode| {
            build_design_sim_scheduled(
                DesignKind::Saa2vga1,
                Style::Pattern,
                DesignParams::small(8),
                pixels.clone(),
                0,
                pixels.len(),
                mode,
                true,
            )
        };
        let sims: Vec<_> = (0..5)
            .map(|i| {
                build(if i % 2 == 0 {
                    SchedMode::EventDriven
                } else {
                    SchedMode::parallel()
                })
            })
            .collect();
        let frames = run_design_batch(sims, 4000, 3);
        assert_eq!(frames.len(), 5);
        for f in frames {
            assert_eq!(f, pixels);
        }
    }
}
