//! # hdp-bench — experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation:
//!
//! | binary | artefact |
//! |---|---|
//! | `table1` | Table 1 — container classification |
//! | `table2` | Table 2 — iterator operations |
//! | `table3` | Table 3 — pattern vs. custom synthesis results |
//! | `figure4_5` | Figures 4 and 5 — generated VHDL components |
//! | `design_space` | §3.4 — characterisation sweep and regions of interest |
//!
//! Criterion benches (`cargo bench`) measure the generator, the
//! synthesis flow and cycle-accurate simulation throughput of the
//! Table 3 designs.

use hdp_metagen::design::{generate, DesignKind, DesignParams, Style};
use hdp_sim::devices::{Sram, VideoIn, VideoOut};
use hdp_sim::{NetlistComponent, SchedMode, SignalId, SimError, Simulator, TelemetryLevel};

/// Complete configuration for one generated Table 3 design
/// simulation: the design-space point (kind, style, parameters), the
/// stimulus the video decoder model feeds it, and the simulator
/// set-up (scheduler mode, interpreter strategy, telemetry). The one
/// argument of [`build_design_sim`].
///
/// Construct with [`DesignSimSpec::new`] and refine with the
/// builder-style setters:
///
/// ```
/// use hdp_bench::DesignSimSpec;
/// use hdp_metagen::design::{DesignKind, DesignParams, Style};
/// use hdp_sim::SchedMode;
///
/// let spec = DesignSimSpec::new(
///     DesignKind::Saa2vga1,
///     Style::Pattern,
///     DesignParams::small(8),
///     (0..16).collect(),
/// )
/// .mode(SchedMode::Compiled);
/// let (mut sim, sink) = hdp_bench::build_design_sim(&spec).unwrap();
/// let frame = hdp_bench::run_design_sim(&mut sim, sink, 4000);
/// assert_eq!(frame.len(), 16);
/// ```
#[derive(Debug, Clone)]
pub struct DesignSimSpec {
    /// Which Table 3 design to generate.
    pub kind: DesignKind,
    /// Pattern-based or custom implementation style.
    pub style: Style,
    /// Generator parameters (widths, depth, address bus).
    pub params: DesignParams,
    /// Pixel stream the video decoder model emits.
    pub pixels: Vec<u64>,
    /// Idle cycles the decoder inserts between pixels.
    pub gap: u32,
    /// Frame length the VGA sink collects before reporting a frame.
    pub out_len: usize,
    /// Scheduler mode for the simulator.
    pub mode: SchedMode,
    /// Whether the netlist interpreter evaluates incrementally.
    /// `(FullSweep, false)` reproduces the legacy evaluate-everything
    /// behaviour for baseline measurements.
    pub incremental: bool,
    /// Instrumentation level for the simulator.
    pub telemetry: TelemetryLevel,
}

impl DesignSimSpec {
    /// A spec with the common defaults: no inter-pixel gap, a frame
    /// as long as the pixel stream, the default scheduler, the
    /// incremental interpreter and no telemetry.
    #[must_use]
    pub fn new(kind: DesignKind, style: Style, params: DesignParams, pixels: Vec<u64>) -> Self {
        let out_len = pixels.len();
        Self {
            kind,
            style,
            params,
            pixels,
            gap: 0,
            out_len,
            mode: SchedMode::default(),
            incremental: true,
            telemetry: TelemetryLevel::default(),
        }
    }

    /// Sets the idle-cycle gap between pixels.
    #[must_use]
    pub fn gap(mut self, gap: u32) -> Self {
        self.gap = gap;
        self
    }

    /// Sets the frame length the sink collects.
    #[must_use]
    pub fn out_len(mut self, out_len: usize) -> Self {
        self.out_len = out_len;
        self
    }

    /// Sets the scheduler mode.
    #[must_use]
    pub fn mode(mut self, mode: SchedMode) -> Self {
        self.mode = mode;
        self
    }

    /// Selects incremental or evaluate-everything interpretation.
    #[must_use]
    pub fn incremental(mut self, incremental: bool) -> Self {
        self.incremental = incremental;
        self
    }

    /// Sets the telemetry level.
    #[must_use]
    pub fn telemetry(mut self, level: TelemetryLevel) -> Self {
        self.telemetry = level;
        self
    }
}

/// Builds a ready-to-run simulation of one generated Table 3 design:
/// the design netlist plus video source, sink and (for the SRAM
/// design) two external memories, configured exactly as the spec
/// says. Returns the simulator and the sink handle.
///
/// # Errors
///
/// Propagates generation and wiring failures as [`SimError`].
pub fn build_design_sim(
    spec: &DesignSimSpec,
) -> Result<(Simulator, hdp_sim::ComponentId), SimError> {
    let params = spec.params;
    let design = generate(spec.kind, spec.style, params)?;
    let mut sim = Simulator::new();
    sim.set_mode(spec.mode);
    sim.set_telemetry(spec.telemetry);
    let vid_valid = sim.add_signal("vid_valid", 1)?;
    let vid_data = sim.add_signal("vid_data", params.data_width)?;
    let vga_valid = sim.add_signal("vga_valid", 1)?;
    let vga_data = sim.add_signal("vga_data", params.data_width)?;
    let mut map: Vec<(String, SignalId)> = vec![
        ("vid_valid".into(), vid_valid),
        ("vid_data".into(), vid_data),
        ("vga_valid".into(), vga_valid),
        ("vga_data".into(), vga_data),
    ];
    if spec.kind == DesignKind::Saa2vga2 {
        for prefix in ["im", "om"] {
            let req = sim.add_signal(format!("{prefix}_req"), 1)?;
            let we = sim.add_signal(format!("{prefix}_we"), 1)?;
            let addr = sim.add_signal(format!("{prefix}_addr"), params.addr_width)?;
            let wdata = sim.add_signal(format!("{prefix}_wdata"), params.data_width)?;
            let ack = sim.add_signal(format!("{prefix}_ack"), 1)?;
            let rdata = sim.add_signal(format!("{prefix}_rdata"), params.data_width)?;
            sim.add_component(Sram::new(
                format!("sram_{prefix}"),
                params.addr_width,
                params.data_width,
                2,
                req,
                we,
                addr,
                wdata,
                ack,
                rdata,
            ));
            for (p, s) in [
                (format!("{prefix}_req"), req),
                (format!("{prefix}_we"), we),
                (format!("{prefix}_addr"), addr),
                (format!("{prefix}_wdata"), wdata),
                (format!("{prefix}_ack"), ack),
                (format!("{prefix}_rdata"), rdata),
            ] {
                map.push((p, s));
            }
        }
    }
    let map_refs: Vec<(&str, SignalId)> = map.iter().map(|(n, s)| (n.as_str(), *s)).collect();
    let dut = NetlistComponent::new("dut", design.netlist, sim.bus(), &map_refs)?;
    let dut = sim.add_component(dut);
    if !spec.incremental {
        sim.component_mut::<NetlistComponent>(dut)
            .ok_or_else(|| SimError::Protocol {
                component: "dut".into(),
                message: "netlist component vanished after registration".into(),
            })?
            .set_incremental(false);
    }
    sim.add_component(VideoIn::new(
        "video_decoder",
        spec.pixels.clone(),
        params.data_width,
        spec.gap,
        false,
        vid_valid,
        vid_data,
    ));
    let sink = sim.add_component(VideoOut::new(
        "vga_coder",
        spec.out_len,
        None,
        vga_valid,
        vga_data,
    ));
    sim.reset()?;
    Ok((sim, sink))
}

/// Legacy positional form of [`build_design_sim`].
///
/// # Panics
///
/// Panics on generation or wiring failures, preserving the original
/// contract.
#[deprecated(
    since = "0.1.0",
    note = "use `build_design_sim(&DesignSimSpec)` — scheduler and telemetry now live in the spec"
)]
#[must_use]
#[allow(clippy::too_many_arguments)]
pub fn build_design_sim_scheduled(
    kind: DesignKind,
    style: Style,
    params: DesignParams,
    pixels: Vec<u64>,
    gap: u32,
    out_len: usize,
    mode: SchedMode,
    incremental: bool,
) -> (Simulator, hdp_sim::ComponentId) {
    let spec = DesignSimSpec::new(kind, style, params, pixels)
        .gap(gap)
        .out_len(out_len)
        .mode(mode)
        .incremental(incremental);
    build_design_sim(&spec).expect("design builds")
}

/// Runs a built design simulation until a frame is collected or the
/// cycle budget runs out; returns the frame.
///
/// # Panics
///
/// Panics on simulation errors or if no frame arrives in time.
#[must_use]
pub fn run_design_sim(sim: &mut Simulator, sink: hdp_sim::ComponentId, budget: u64) -> Vec<u64> {
    let mut remaining = budget;
    while remaining > 0 {
        let chunk = remaining.min(256);
        sim.run(chunk).expect("simulation error");
        remaining -= chunk;
        if !sim.component::<VideoOut>(sink).unwrap().frames().is_empty() {
            break;
        }
    }
    sim.component::<VideoOut>(sink)
        .unwrap()
        .frames()
        .first()
        .cloned()
        .expect("frame collected within budget")
}

/// Runs several independent, already-built design simulations to
/// frame completion, distributed round-robin over `threads` worker
/// threads ([`Simulator`] is `Send`, so whole simulations migrate to
/// workers). Returns each design's first frame in input order —
/// frame-throughput workloads (the paper's video pipelines processing
/// a stream of frames, or a design-space sweep) are embarrassingly
/// parallel at this granularity, complementing the intra-simulation
/// parallelism of [`SchedMode::Parallel`].
///
/// # Panics
///
/// Panics on simulation errors or if any design misses its budget,
/// like [`run_design_sim`].
#[must_use]
pub fn run_design_batch(
    sims: Vec<(Simulator, hdp_sim::ComponentId)>,
    budget: u64,
    threads: usize,
) -> Vec<Vec<u64>> {
    hdp_service::pool::run_sharded(sims, threads, |(mut sim, sink)| {
        run_design_sim(&mut sim, sink, budget)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_the_fifo_design() {
        let pixels: Vec<u64> = (0..32).map(|i| i & 0xFF).collect();
        let spec = DesignSimSpec::new(
            DesignKind::Saa2vga1,
            Style::Pattern,
            DesignParams::small(8),
            pixels.clone(),
        );
        let (mut sim, sink) = build_design_sim(&spec).unwrap();
        let out = run_design_sim(&mut sim, sink, 4000);
        assert_eq!(out, pixels);
    }

    #[test]
    fn batch_matches_sequential_runs() {
        let pixels: Vec<u64> = (0..32).map(|i| (i * 7) & 0xFF).collect();
        let base = DesignSimSpec::new(
            DesignKind::Saa2vga1,
            Style::Pattern,
            DesignParams::small(8),
            pixels.clone(),
        );
        let sims: Vec<_> = (0..5)
            .map(|i| {
                let mode = if i % 2 == 0 {
                    SchedMode::EventDriven
                } else {
                    SchedMode::parallel()
                };
                build_design_sim(&base.clone().mode(mode)).unwrap()
            })
            .collect();
        let frames = run_design_batch(sims, 4000, 3);
        assert_eq!(frames.len(), 5);
        for f in frames {
            assert_eq!(f, pixels);
        }
    }

    #[test]
    #[allow(deprecated)]
    fn legacy_shim_matches_the_spec_api() {
        let pixels: Vec<u64> = (0..16).collect();
        let (mut old_sim, old_sink) = build_design_sim_scheduled(
            DesignKind::Saa2vga1,
            Style::Pattern,
            DesignParams::small(8),
            pixels.clone(),
            0,
            pixels.len(),
            SchedMode::EventDriven,
            true,
        );
        let spec = DesignSimSpec::new(
            DesignKind::Saa2vga1,
            Style::Pattern,
            DesignParams::small(8),
            pixels.clone(),
        );
        let (mut new_sim, new_sink) = build_design_sim(&spec).unwrap();
        assert_eq!(
            run_design_sim(&mut old_sim, old_sink, 4000),
            run_design_sim(&mut new_sim, new_sink, 4000),
        );
    }
}
