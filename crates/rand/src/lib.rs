//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! vendors the tiny subset of the `rand 0.8` API the workspace
//! actually uses: a seedable RNG (`rngs::StdRng`) and
//! [`Rng::gen_range`] over integer ranges. The generator is a
//! SplitMix64 — deterministic across platforms, which is all the
//! synthetic-workload generation in `hdp-core` needs (frames are
//! compared against golden models computed from the same stream, never
//! against hard-coded constants).

#![forbid(unsafe_code)]

/// Seedable random number generators.
pub mod rngs {
    /// The standard RNG: here a SplitMix64, not cryptographic, but
    /// deterministic and uniform enough for synthetic test frames.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) state: u64,
    }
}

use rngs::StdRng;

/// A random number generator that can be explicitly seeded.
pub trait SeedableRng: Sized {
    /// Creates the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        StdRng { state: seed }
    }
}

impl StdRng {
    /// The next raw 64-bit output (SplitMix64 step).
    pub(crate) fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// A half-open or inclusive integer range values can be sampled from.
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample(self, rng: &mut StdRng) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut StdRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u128 + 1;
                start + ((rng.next_u64() as u128) % span) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// The user-facing generator interface.
pub trait Rng {
    /// Samples one value uniformly from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T;
}

impl Rng for StdRng {
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u64 = rng.gen_range(0..=255u64);
            assert!(v <= 255);
            let w: usize = rng.gen_range(3..9usize);
            assert!((3..9).contains(&w));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
