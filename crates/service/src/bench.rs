//! The service's self-benchmark: cold pass vs warm pass.
//!
//! Samples a fixed-seed batch of distinct designs and measures two
//! regimes. **Cold**: every design misses the cache (instantiate +
//! validate + levelize + compile). **Warm**: the cache already holds
//! every design, so a submission only pays the netlist replay and the
//! cycle loop. Each regime is measured `reps` times — cold against a
//! fresh service per repetition, warm against one primed service —
//! and the best repetition is reported, which washes out scheduler
//! noise on passes that only take a few milliseconds. The report
//! records sustained designs/sec for both regimes, the warm hit
//! ratio, and whether warm execution reproduced the cold traces bit
//! for bit — which it must.
//!
//! The run also prices the observability plane: a second primed
//! service with metrics fully disabled ([`ObsMode::Disabled`]) is
//! timed on the same warm batch, and the report's
//! `obs_overhead_pct` is how much slower the default
//! counters-enabled warm pass is than that baseline. CI gates it
//! below a few percent — the counters fast path is a handful of
//! relaxed atomic increments per job.

use crate::cache::CacheStats;
use crate::exec::{JobOptions, JobOutcome, Service, ServiceError};
use crate::metrics::ObsMode;
use hdp_conform::wire::design_hash;
use hdp_conform::{Case, Stimulus};
use hdp_metagen::sampler::sample_spec;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Write as _;
use std::time::Instant;

/// Parameters of one benchmark run.
#[derive(Debug, Clone, Copy)]
pub struct BenchConfig {
    /// Distinct designs in the batch.
    pub designs: usize,
    /// Stimulus length per design, in cycles. The default is short on
    /// purpose: the service's dispatch regime is many small stimuli
    /// against a cached design (conformance fuzzing, stimulus
    /// sweeps), where the per-design preparation the cache removes
    /// dominates the cycle loop it cannot remove.
    pub cycles: usize,
    /// RNG seed for design and stimulus sampling.
    pub seed: u64,
    /// Worker threads for batch execution.
    pub threads: usize,
    /// Plan-cache entry budget (must hold the whole batch for a
    /// fully warm second pass).
    pub cache_capacity: usize,
    /// Timed repetitions per regime; the best one is reported.
    pub reps: usize,
}

impl Default for BenchConfig {
    fn default() -> Self {
        Self {
            designs: 50,
            cycles: 6,
            seed: 0xda7e_2005,
            threads: 4,
            cache_capacity: 64,
            reps: 5,
        }
    }
}

/// The measurements of one benchmark run.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// The configuration that produced this report.
    pub config: BenchConfig,
    /// Best wall-clock seconds for a cold (all-miss) pass.
    pub cold_secs: f64,
    /// Best wall-clock seconds for a warm (all-hit) pass.
    pub warm_secs: f64,
    /// Cache counters of the warm service (priming pass included).
    pub stats: CacheStats,
    /// Hit ratio over the timed warm passes alone (1.0 when every
    /// submission reused a cached design).
    pub warm_hit_ratio: f64,
    /// Whether the warm pass reproduced the cold traces bit for bit.
    pub identical: bool,
    /// Designs whose compiled plan was installed on the warm pass.
    pub plans_installed: usize,
    /// Warm-pass slowdown of the default counters-enabled service
    /// over an observability-disabled baseline, in percent (clamped
    /// at 0 — measurement noise can make the instrumented pass win).
    pub obs_overhead_pct: f64,
}

impl BenchReport {
    /// Sustained designs/sec of the cold pass.
    #[must_use]
    pub fn cold_rate(&self) -> f64 {
        rate(self.config.designs, self.cold_secs)
    }

    /// Sustained designs/sec of the warm pass.
    #[must_use]
    pub fn warm_rate(&self) -> f64 {
        rate(self.config.designs, self.warm_secs)
    }

    /// Warm throughput over cold throughput.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        if self.warm_secs > 0.0 {
            self.cold_secs / self.warm_secs
        } else {
            f64::INFINITY
        }
    }

    /// Renders the report as the `BENCH_service.json` document.
    ///
    /// Hand-formatted because the report carries floating-point rates
    /// ([`hdp_conform::Json`] is integer-only by design).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut json = String::new();
        json.push_str("{\n");
        json.push_str("  \"schema\": \"hdp-service-bench-v1\",\n");
        let _ = writeln!(json, "  \"designs\": {},", self.config.designs);
        let _ = writeln!(json, "  \"cycles\": {},", self.config.cycles);
        let _ = writeln!(json, "  \"seed\": {},", self.config.seed);
        let _ = writeln!(json, "  \"threads\": {},", self.config.threads);
        let _ = writeln!(json, "  \"reps\": {},", self.config.reps);
        let mode = match JobOptions::default().mode {
            hdp_sim::SchedMode::Lowered => "lowered",
            hdp_sim::SchedMode::Compiled => "compiled",
            hdp_sim::SchedMode::EventDriven => "event_driven",
            hdp_sim::SchedMode::FullSweep => "full_sweep",
            hdp_sim::SchedMode::Parallel { .. } => "parallel",
        };
        let _ = writeln!(json, "  \"mode\": \"{mode}\",");
        let _ = writeln!(json, "  \"cold_secs\": {:.6},", self.cold_secs);
        let _ = writeln!(json, "  \"warm_secs\": {:.6},", self.warm_secs);
        let _ = writeln!(json, "  \"cold_designs_per_sec\": {:.1},", self.cold_rate());
        let _ = writeln!(json, "  \"warm_designs_per_sec\": {:.1},", self.warm_rate());
        let _ = writeln!(json, "  \"speedup\": {:.2},", self.speedup());
        let _ = writeln!(json, "  \"warm_hit_ratio\": {:.4},", self.warm_hit_ratio);
        let _ = writeln!(
            json,
            "  \"cache_hit_ratio\": {:.4},",
            self.stats.hit_ratio()
        );
        let _ = writeln!(json, "  \"cache_hits\": {},", self.stats.hits);
        let _ = writeln!(json, "  \"cache_misses\": {},", self.stats.misses);
        let _ = writeln!(json, "  \"plans_installed\": {},", self.plans_installed);
        let _ = writeln!(
            json,
            "  \"obs_overhead_pct\": {:.2},",
            self.obs_overhead_pct
        );
        let _ = writeln!(json, "  \"identical\": {}", self.identical);
        json.push('}');
        json
    }
}

/// Back-to-back warm (and baseline) passes per timed repetition. A
/// single warm pass over the default batch is only a couple of
/// milliseconds — far too short to resolve a few-percent
/// observability overhead against scheduler noise — so each timed
/// region runs this many passes and reports the per-pass average.
pub const WARM_PASSES: usize = 8;

fn rate(designs: usize, secs: f64) -> f64 {
    if secs > 0.0 {
        #[allow(clippy::cast_precision_loss)]
        {
            designs as f64 / secs
        }
    } else {
        f64::INFINITY
    }
}

/// Samples `count` cases with pairwise-distinct design hashes.
///
/// # Panics
///
/// When a sampled design fails to instantiate (a metagen bug).
#[must_use]
pub fn sample_batch(count: usize, cycles: usize, seed: u64) -> Vec<Case> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seen = std::collections::HashSet::new();
    let mut cases = Vec::with_capacity(count);
    while cases.len() < count {
        let spec = sample_spec(&mut rng);
        if !seen.insert(design_hash(&spec)) {
            continue; // duplicate design: resample
        }
        let netlist = spec.instantiate().expect("sampled design instantiates");
        let stimulus = Stimulus::sample(&netlist, cycles, &mut rng);
        cases.push(Case { spec, stimulus });
    }
    cases
}

/// Runs the cold-vs-warm benchmark.
///
/// # Errors
///
/// The first [`ServiceError`] any job produced.
pub fn run(config: &BenchConfig) -> Result<BenchReport, ServiceError> {
    let cases = sample_batch(config.designs, config.cycles, config.seed);
    let opts = JobOptions::default();
    let reps = config.reps.max(1);

    // Warm service: primed with an untimed pass so every timed warm
    // repetition hits the cache on every design.
    let service = Service::new(config.cache_capacity);
    let primer = service.run_batch(cases.clone(), &opts, config.threads);
    let _: Vec<JobOutcome> = primer.into_iter().collect::<Result<_, _>>()?;
    let primed_stats = service.cache_stats();

    // Observability baseline: an identically primed service with the
    // metrics plane disabled, timed on the same warm batch. The gap
    // between this and the default (counters-on) warm pass is the
    // price of observability.
    let baseline = Service::with_obs(config.cache_capacity, ObsMode::Disabled);
    let primer = baseline.run_batch(cases.clone(), &opts, config.threads);
    let _: Vec<JobOutcome> = primer.into_iter().collect::<Result<_, _>>()?;

    // The regimes are interleaved — cold pass, warm pass, repeat — so
    // a load or frequency shift mid-benchmark skews both the same
    // way instead of silently inflating (or deflating) the ratio.
    // Each repetition's cold pass uses a fresh (empty-cache) service,
    // so every submission pays the full instantiate/validate/compile.
    //
    let mut cold_secs = f64::INFINITY;
    let mut warm_secs = f64::INFINITY;
    let mut baseline_secs = f64::INFINITY;
    let mut cold_outcomes: Option<Vec<JobOutcome>> = None;
    let mut warm_outcomes: Option<Vec<JobOutcome>> = None;
    for rep in 0..reps {
        let cold_service = Service::new(config.cache_capacity);
        let start = Instant::now();
        let pass = cold_service.run_batch(cases.clone(), &opts, config.threads);
        cold_secs = cold_secs.min(start.elapsed().as_secs_f64());
        let pass: Vec<JobOutcome> = pass.into_iter().collect::<Result<_, _>>()?;
        cold_outcomes.get_or_insert(pass);

        // Alternate which regime runs first: whichever goes second
        // starts with caches and branch predictors warmed by the
        // first, so a fixed order would systematically flatter one
        // side of the overhead ratio. Taking the per-regime minimum
        // over alternating reps gives both sides equal chances at
        // the favoured slot.
        let mut time_warm = |warm_secs: &mut f64| -> Result<(), ServiceError> {
            let start = Instant::now();
            for _ in 0..WARM_PASSES {
                let pass = service.run_batch(cases.clone(), &opts, config.threads);
                let pass: Vec<JobOutcome> = pass.into_iter().collect::<Result<_, _>>()?;
                warm_outcomes.get_or_insert(pass);
            }
            #[allow(clippy::cast_precision_loss)]
            {
                *warm_secs = warm_secs.min(start.elapsed().as_secs_f64() / WARM_PASSES as f64);
            }
            Ok(())
        };
        let time_baseline = |baseline_secs: &mut f64| -> Result<(), ServiceError> {
            let start = Instant::now();
            for _ in 0..WARM_PASSES {
                let pass = baseline.run_batch(cases.clone(), &opts, config.threads);
                let _: Vec<JobOutcome> = pass.into_iter().collect::<Result<_, _>>()?;
            }
            #[allow(clippy::cast_precision_loss)]
            {
                *baseline_secs =
                    baseline_secs.min(start.elapsed().as_secs_f64() / WARM_PASSES as f64);
            }
            Ok(())
        };
        if rep % 2 == 0 {
            time_warm(&mut warm_secs)?;
            time_baseline(&mut baseline_secs)?;
        } else {
            time_baseline(&mut baseline_secs)?;
            time_warm(&mut warm_secs)?;
        }
    }
    let cold = cold_outcomes.expect("at least one cold repetition ran");
    let warm = warm_outcomes.expect("at least one warm repetition ran");

    let identical = cold.len() == warm.len()
        && cold
            .iter()
            .zip(&warm)
            .all(|(c, w)| c.trace == w.trace && c.ports == w.ports);
    let plans_installed = warm.iter().filter(|w| w.plan_installed).count();
    let stats = service.cache_stats();
    let warm_lookups = (stats.hits + stats.misses) - (primed_stats.hits + primed_stats.misses);
    #[allow(clippy::cast_precision_loss)]
    let warm_hit_ratio = if warm_lookups == 0 {
        0.0
    } else {
        (stats.hits - primed_stats.hits) as f64 / warm_lookups as f64
    };

    let obs_overhead_pct = if baseline_secs > 0.0 {
        ((warm_secs / baseline_secs) - 1.0).max(0.0) * 100.0
    } else {
        0.0
    };

    Ok(BenchReport {
        config: *config,
        cold_secs,
        warm_secs,
        stats,
        warm_hit_ratio,
        identical,
        plans_installed,
        obs_overhead_pct,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_designs_are_pairwise_distinct() {
        let cases = sample_batch(12, 4, 9);
        let hashes: std::collections::HashSet<String> =
            cases.iter().map(|c| design_hash(&c.spec)).collect();
        assert_eq!(hashes.len(), 12);
    }

    #[test]
    fn warm_pass_hits_and_reproduces() {
        let config = BenchConfig {
            designs: 8,
            cycles: 6,
            threads: 2,
            reps: 2,
            ..BenchConfig::default()
        };
        let report = run(&config).unwrap();
        assert!(report.identical, "warm trace must match cold trace");
        assert_eq!(report.stats.misses, 8, "only the primer pass misses");
        assert_eq!(
            report.stats.hits,
            (2 * WARM_PASSES * 8) as u64,
            "every timed warm pass hits"
        );
        assert!((report.warm_hit_ratio - 1.0).abs() < 1e-9);
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"hdp-service-bench-v1\""));
        assert!(json.contains("\"identical\": true"));
        assert!(json.contains("\"obs_overhead_pct\""));
        assert!(report.obs_overhead_pct >= 0.0);
    }
}
