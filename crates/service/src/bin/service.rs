//! The `service` CLI: serve, submit, select, bench, metrics.
//!
//! ```text
//! service serve   [--addr HOST:PORT] [--threads N] [--cache N]
//!                 [--obs off|counters|sample] [--catalog FILE]
//! service submit  [--addr HOST:PORT] [FILE ...]
//! service select  --kind KIND [--catalog FILE | --addr HOST:PORT]
//!                 [--min-width N] [--min-depth N] [--min-clk-khz N]
//!                 [--max-area N] [--max-power-uw N] [--max-access N]
//! service bench   [--designs N] [--cycles N] [--seed N] [--threads N]
//!                 [--reps N] [--cache N] [--out FILE]
//! service metrics [--addr HOST:PORT] [--json]
//! ```
//!
//! `serve` runs the job server in the foreground until killed; by
//! default it samples (`--obs sample`): per-stage latency histograms
//! and span timing on every job. `--catalog` loads an `hdp-chardb-v1`
//! characterisation database and enables the `select` wire verb.
//! `submit` reads newline-delimited job documents from the given
//! files (or stdin when none) and prints one response per line.
//! `select` answers one §3.4 implementation-selection query — the
//! cheapest characterised target satisfying the constraints — either
//! locally against `--catalog FILE` or over the wire against a
//! running server's catalog, printing an `hdp-service-select-v1`
//! document. `bench` runs the cold-vs-warm cache benchmark and writes
//! `BENCH_service.json`. `metrics` fetches a live
//! `hdp-service-metrics-v1` snapshot from a running server via the
//! `stats` verb and renders it Prometheus-style (`--json` prints the
//! raw snapshot document instead).

use hdp_service::bench::BenchConfig;
use hdp_service::job::SELECT_SCHEMA;
use hdp_service::metrics::{MetricsSnapshot, ObsMode};
use hdp_service::{serve, submit, Service};
use hdp_synth::{auto_select, CharDb, SelectConstraints};
use std::io::Read;
use std::process::ExitCode;
use std::sync::Arc;

fn value(it: &mut impl Iterator<Item = String>, flag: &str) -> Result<String, String> {
    it.next().ok_or_else(|| format!("{flag} expects a value"))
}

fn num(it: &mut impl Iterator<Item = String>, flag: &str) -> Result<u64, String> {
    value(it, flag)?
        .parse::<u64>()
        .map_err(|e| format!("{flag}: {e}"))
}

fn cmd_serve(mut it: impl Iterator<Item = String>) -> Result<(), String> {
    let mut addr = "127.0.0.1:7501".to_owned();
    let mut threads = 4usize;
    let mut cache = 256usize;
    let mut obs = ObsMode::Sampled;
    let mut catalog: Option<String> = None;
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--addr" => addr = value(&mut it, "--addr")?,
            "--threads" => threads = num(&mut it, "--threads")?.max(1) as usize,
            "--cache" => cache = num(&mut it, "--cache")? as usize,
            "--obs" => obs = ObsMode::parse(&value(&mut it, "--obs")?)?,
            "--catalog" => catalog = Some(value(&mut it, "--catalog")?),
            other => return Err(format!("serve: unknown argument `{other}`")),
        }
    }
    let service = Arc::new(Service::with_obs(cache, obs));
    let mut catalog_note = String::new();
    if let Some(path) = &catalog {
        let db = CharDb::load(path).map_err(|e| e.to_string())?;
        catalog_note = format!(", catalog {} points", db.len());
        service.set_catalog(Arc::new(db));
    }
    let handle = serve(addr.as_str(), service, threads).map_err(|e| e.to_string())?;
    eprintln!(
        "service: listening on {} ({threads} workers, cache capacity {cache}, obs {}{catalog_note})",
        handle.addr(),
        obs.label()
    );
    // Foreground server: park until killed. The handle's drop logic
    // never runs, which is fine — the process exit tears it down.
    loop {
        std::thread::park();
    }
}

fn cmd_submit(mut it: impl Iterator<Item = String>) -> Result<(), String> {
    let mut addr = "127.0.0.1:7501".to_owned();
    let mut files = Vec::new();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--addr" => addr = value(&mut it, "--addr")?,
            other => files.push(other.to_owned()),
        }
    }
    let mut lines = Vec::new();
    if files.is_empty() {
        let mut text = String::new();
        std::io::stdin()
            .read_to_string(&mut text)
            .map_err(|e| format!("stdin: {e}"))?;
        lines.extend(text.lines().map(str::to_owned));
    } else {
        for file in &files {
            let text = std::fs::read_to_string(file).map_err(|e| format!("{file}: {e}"))?;
            lines.extend(text.lines().map(str::to_owned));
        }
    }
    lines.retain(|l| !l.trim().is_empty());
    if lines.is_empty() {
        return Err("submit: no job documents given".to_owned());
    }
    let responses = submit(addr.as_str(), &lines).map_err(|e| e.to_string())?;
    for response in responses {
        println!("{response}");
    }
    Ok(())
}

fn cmd_select(mut it: impl Iterator<Item = String>) -> Result<(), String> {
    let mut addr = "127.0.0.1:7501".to_owned();
    let mut catalog: Option<String> = None;
    let mut constraints = SelectConstraints::default();
    let mut have_kind = false;
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--addr" => addr = value(&mut it, "--addr")?,
            "--catalog" => catalog = Some(value(&mut it, "--catalog")?),
            "--kind" => {
                constraints.kind = value(&mut it, "--kind")?;
                have_kind = true;
            }
            "--min-width" => {
                constraints.min_data_width = num(&mut it, "--min-width")? as usize;
            }
            "--min-depth" => constraints.min_depth = num(&mut it, "--min-depth")? as usize,
            "--min-clk-khz" => constraints.min_clk_khz = num(&mut it, "--min-clk-khz")?,
            "--max-area" => constraints.max_area_cells = Some(num(&mut it, "--max-area")?),
            "--max-power-uw" => {
                constraints.max_power_uw = Some(num(&mut it, "--max-power-uw")?);
            }
            "--max-access" => {
                let n = num(&mut it, "--max-access")?;
                constraints.max_access_cycles =
                    Some(u32::try_from(n).map_err(|_| format!("--max-access: {n} too large"))?);
            }
            other => return Err(format!("select: unknown argument `{other}`")),
        }
    }
    if !have_kind {
        return Err("select: --kind is required (e.g. --kind queue)".to_owned());
    }
    match catalog {
        // Local mode: load the database and answer in-process,
        // printing the same document shape the wire verb returns.
        Some(path) => {
            let db = CharDb::load(&path).map_err(|e| e.to_string())?;
            let selection = auto_select(&db, &constraints);
            let doc = hdp_conform::Json::Obj(vec![
                (
                    "schema".to_owned(),
                    hdp_conform::Json::Str(SELECT_SCHEMA.into()),
                ),
                (
                    "catalog_points".to_owned(),
                    hdp_conform::Json::Num(db.len() as u64),
                ),
                ("constraints".to_owned(), constraints.to_json()),
                ("result".to_owned(), selection.to_json()),
            ]);
            println!("{doc}");
            eprintln!("service select: {selection}");
        }
        // Wire mode: ask a running server's catalog.
        None => {
            let line = format!("{{\"verb\":\"select\",\"constraints\":{}}}", {
                constraints.to_json()
            });
            let responses = submit(addr.as_str(), &[line]).map_err(|e| format!("{addr}: {e}"))?;
            let response = responses
                .first()
                .ok_or_else(|| "select: empty response".to_owned())?;
            println!("{response}");
        }
    }
    Ok(())
}

fn cmd_bench(mut it: impl Iterator<Item = String>) -> Result<(), String> {
    let mut config = BenchConfig::default();
    let mut out = "BENCH_service.json".to_owned();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--designs" => config.designs = num(&mut it, "--designs")?.max(1) as usize,
            "--cycles" => config.cycles = num(&mut it, "--cycles")?.max(1) as usize,
            "--seed" => config.seed = num(&mut it, "--seed")?,
            "--threads" => config.threads = num(&mut it, "--threads")?.max(1) as usize,
            "--reps" => config.reps = num(&mut it, "--reps")?.max(1) as usize,
            "--cache" => config.cache_capacity = num(&mut it, "--cache")? as usize,
            "--out" => out = value(&mut it, "--out")?,
            other => return Err(format!("bench: unknown argument `{other}`")),
        }
    }
    if config.cache_capacity < config.designs {
        return Err(format!(
            "bench: cache capacity {} cannot hold all {} designs (the warm pass would miss)",
            config.cache_capacity, config.designs
        ));
    }
    let report = hdp_service::bench::run(&config).map_err(|e| e.to_string())?;
    let text = report.to_json();
    std::fs::write(&out, &text).map_err(|e| format!("{out}: {e}"))?;
    println!("{text}");
    eprintln!(
        "service bench: {} designs, cold {:.1}/s warm {:.1}/s (x{:.2}), hit ratio {:.3}, identical={}",
        report.config.designs,
        report.cold_rate(),
        report.warm_rate(),
        report.speedup(),
        report.warm_hit_ratio,
        report.identical,
    );
    if !report.identical {
        return Err("bench: warm trace diverged from cold trace".to_owned());
    }
    Ok(())
}

fn cmd_metrics(mut it: impl Iterator<Item = String>) -> Result<(), String> {
    let mut addr = "127.0.0.1:7501".to_owned();
    let mut raw_json = false;
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--addr" => addr = value(&mut it, "--addr")?,
            "--json" => raw_json = true,
            other => return Err(format!("metrics: unknown argument `{other}`")),
        }
    }
    let responses = submit(addr.as_str(), &["{\"verb\":\"stats\"}".to_owned()])
        .map_err(|e| format!("{addr}: {e}"))?;
    let line = responses
        .first()
        .ok_or_else(|| "metrics: empty response".to_owned())?;
    if raw_json {
        println!("{line}");
        return Ok(());
    }
    let doc = hdp_conform::Json::parse(line).map_err(|e| format!("metrics: bad snapshot: {e}"))?;
    let snapshot = MetricsSnapshot::from_json(&doc)?;
    print!("{}", snapshot.render_text());
    Ok(())
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let result = match args.next().as_deref() {
        Some("serve") => cmd_serve(args),
        Some("submit") => cmd_submit(args),
        Some("select") => cmd_select(args),
        Some("bench") => cmd_bench(args),
        Some("metrics") => cmd_metrics(args),
        Some(other) => Err(format!(
            "unknown subcommand `{other}` (expected serve/submit/select/bench/metrics)"
        )),
        None => Err("usage: service <serve|submit|select|bench|metrics> [options]".to_owned()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("service: {e}");
            ExitCode::FAILURE
        }
    }
}
