//! The `service` CLI: serve, submit, bench.
//!
//! ```text
//! service serve  [--addr HOST:PORT] [--threads N] [--cache N]
//! service submit [--addr HOST:PORT] [FILE ...]
//! service bench  [--designs N] [--cycles N] [--seed N] [--threads N]
//!                [--reps N] [--cache N] [--out FILE]
//! ```
//!
//! `serve` runs the job server in the foreground until killed.
//! `submit` reads newline-delimited job documents from the given
//! files (or stdin when none) and prints one response per line.
//! `bench` runs the cold-vs-warm cache benchmark and writes
//! `BENCH_service.json`.

use hdp_service::bench::BenchConfig;
use hdp_service::{serve, submit, Service};
use std::io::Read;
use std::process::ExitCode;
use std::sync::Arc;

fn value(it: &mut impl Iterator<Item = String>, flag: &str) -> Result<String, String> {
    it.next().ok_or_else(|| format!("{flag} expects a value"))
}

fn num(it: &mut impl Iterator<Item = String>, flag: &str) -> Result<u64, String> {
    value(it, flag)?
        .parse::<u64>()
        .map_err(|e| format!("{flag}: {e}"))
}

fn cmd_serve(mut it: impl Iterator<Item = String>) -> Result<(), String> {
    let mut addr = "127.0.0.1:7501".to_owned();
    let mut threads = 4usize;
    let mut cache = 256usize;
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--addr" => addr = value(&mut it, "--addr")?,
            "--threads" => threads = num(&mut it, "--threads")?.max(1) as usize,
            "--cache" => cache = num(&mut it, "--cache")? as usize,
            other => return Err(format!("serve: unknown argument `{other}`")),
        }
    }
    let handle =
        serve(addr.as_str(), Arc::new(Service::new(cache)), threads).map_err(|e| e.to_string())?;
    eprintln!(
        "service: listening on {} ({threads} workers, cache capacity {cache})",
        handle.addr()
    );
    // Foreground server: park until killed. The handle's drop logic
    // never runs, which is fine — the process exit tears it down.
    loop {
        std::thread::park();
    }
}

fn cmd_submit(mut it: impl Iterator<Item = String>) -> Result<(), String> {
    let mut addr = "127.0.0.1:7501".to_owned();
    let mut files = Vec::new();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--addr" => addr = value(&mut it, "--addr")?,
            other => files.push(other.to_owned()),
        }
    }
    let mut lines = Vec::new();
    if files.is_empty() {
        let mut text = String::new();
        std::io::stdin()
            .read_to_string(&mut text)
            .map_err(|e| format!("stdin: {e}"))?;
        lines.extend(text.lines().map(str::to_owned));
    } else {
        for file in &files {
            let text = std::fs::read_to_string(file).map_err(|e| format!("{file}: {e}"))?;
            lines.extend(text.lines().map(str::to_owned));
        }
    }
    lines.retain(|l| !l.trim().is_empty());
    if lines.is_empty() {
        return Err("submit: no job documents given".to_owned());
    }
    let responses = submit(addr.as_str(), &lines).map_err(|e| e.to_string())?;
    for response in responses {
        println!("{response}");
    }
    Ok(())
}

fn cmd_bench(mut it: impl Iterator<Item = String>) -> Result<(), String> {
    let mut config = BenchConfig::default();
    let mut out = "BENCH_service.json".to_owned();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--designs" => config.designs = num(&mut it, "--designs")?.max(1) as usize,
            "--cycles" => config.cycles = num(&mut it, "--cycles")?.max(1) as usize,
            "--seed" => config.seed = num(&mut it, "--seed")?,
            "--threads" => config.threads = num(&mut it, "--threads")?.max(1) as usize,
            "--reps" => config.reps = num(&mut it, "--reps")?.max(1) as usize,
            "--cache" => config.cache_capacity = num(&mut it, "--cache")? as usize,
            "--out" => out = value(&mut it, "--out")?,
            other => return Err(format!("bench: unknown argument `{other}`")),
        }
    }
    if config.cache_capacity < config.designs {
        return Err(format!(
            "bench: cache capacity {} cannot hold all {} designs (the warm pass would miss)",
            config.cache_capacity, config.designs
        ));
    }
    let report = hdp_service::bench::run(&config).map_err(|e| e.to_string())?;
    let text = report.to_json();
    std::fs::write(&out, &text).map_err(|e| format!("{out}: {e}"))?;
    println!("{text}");
    eprintln!(
        "service bench: {} designs, cold {:.1}/s warm {:.1}/s (x{:.2}), hit ratio {:.3}, identical={}",
        report.config.designs,
        report.cold_rate(),
        report.warm_rate(),
        report.speedup(),
        report.warm_hit_ratio,
        report.identical,
    );
    if !report.identical {
        return Err("bench: warm trace diverged from cold trace".to_owned());
    }
    Ok(())
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let result = match args.next().as_deref() {
        Some("serve") => cmd_serve(args),
        Some("submit") => cmd_submit(args),
        Some("bench") => cmd_bench(args),
        Some(other) => Err(format!(
            "unknown subcommand `{other}` (expected serve/submit/bench)"
        )),
        None => Err("usage: service <serve|submit|bench> [options]".to_owned()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("service: {e}");
            ExitCode::FAILURE
        }
    }
}
