//! Per-job span tracing: the request-path timeline of one job.
//!
//! PR 3 gave the *simulator* a Chrome-trace exporter
//! ([`hdp_sim::SimStats::chrome_trace`]); this module gives the
//! *service* the same treatment. A [`SpanBuilder`] rides through
//! [`crate::Service::run_case`] stamping each stage boundary — cache
//! lookup, build, execute, publish, verify — and finishes into a
//! [`JobSpan`]: plain per-stage nanosecond data that renders as the
//! exact trace-event format the simulator uses, so a slow job's
//! server-side timeline loads in Perfetto next to its simulator
//! timeline.
//!
//! Stage timings are clock reads, so spans are only recorded when the
//! service samples ([`crate::metrics::ObsMode::Sampled`]) or the job
//! explicitly asks for its span (`options.span`). With sampling off
//! and no span requested, none of this module's code runs on the job
//! path.

use hdp_sim::{SimStats, TelemetryLevel, TraceEvent};
use std::time::Instant;

/// One stage of the service request path, in pipeline order.
///
/// `Queue` is recorded by the [server](crate::server) (accept →
/// worker pickup); `Parse` and `Render` by the [JSON
/// layer](crate::job); the rest by [`crate::Service::run_case`].
/// `Total` spans one whole `run_case` call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Connection accepted → claimed by a worker thread.
    Queue,
    /// Wire document → [`hdp_conform::Case`] + options.
    Parse,
    /// Content-address hash plus the plan-cache lookup (lock held).
    CacheLookup,
    /// Metagen instantiation, netlist validation and simulator wiring
    /// (cold path; warm jobs only pay the template clone here).
    Build,
    /// The stimulus drive loop: pokes, settles, clock edges, trace
    /// capture.
    Execute,
    /// Plan export and cache publication after a cold run.
    Publish,
    /// The optional cache-free full-sweep verification re-run.
    Verify,
    /// Response JSON rendering.
    Render,
    /// The whole job execution (`run_case` entry to exit).
    Total,
}

impl Stage {
    /// Number of distinct stages.
    pub const COUNT: usize = 9;

    /// Every stage, in pipeline order.
    pub const ALL: [Stage; Stage::COUNT] = [
        Stage::Queue,
        Stage::Parse,
        Stage::CacheLookup,
        Stage::Build,
        Stage::Execute,
        Stage::Publish,
        Stage::Verify,
        Stage::Render,
        Stage::Total,
    ];

    /// Position of this stage in per-stage arrays.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            Stage::Queue => 0,
            Stage::Parse => 1,
            Stage::CacheLookup => 2,
            Stage::Build => 3,
            Stage::Execute => 4,
            Stage::Publish => 5,
            Stage::Verify => 6,
            Stage::Render => 7,
            Stage::Total => 8,
        }
    }

    /// Stable snake_case label used in metrics and JSON documents.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Stage::Queue => "queue",
            Stage::Parse => "parse",
            Stage::CacheLookup => "cache_lookup",
            Stage::Build => "build",
            Stage::Execute => "execute",
            Stage::Publish => "publish",
            Stage::Verify => "verify",
            Stage::Render => "render",
            Stage::Total => "total",
        }
    }
}

/// One recorded stage interval, relative to the span's epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StageSpan {
    /// Which stage this interval covers.
    pub stage: Stage,
    /// Start, nanoseconds since the job span's epoch.
    pub ts_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

/// The finished server-side timeline of one job: plain data, ready to
/// render or aggregate.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct JobSpan {
    /// Recorded stage intervals, in completion order (`Total` last).
    pub stages: Vec<StageSpan>,
}

impl JobSpan {
    /// Duration of one stage, if it was recorded.
    #[must_use]
    pub fn stage_ns(&self, stage: Stage) -> Option<u64> {
        self.stages
            .iter()
            .find(|s| s.stage == stage)
            .map(|s| s.dur_ns)
    }

    /// Whole-job duration (the `Total` stage, or the latest stage end
    /// when `Total` was not recorded).
    #[must_use]
    pub fn total_ns(&self) -> u64 {
        self.stage_ns(Stage::Total).unwrap_or_else(|| {
            self.stages
                .iter()
                .map(|s| s.ts_ns + s.dur_ns)
                .max()
                .unwrap_or(0)
        })
    }

    /// Renders the span as Chrome trace-event JSON — byte-compatible
    /// with [`hdp_sim::SimStats::chrome_trace`] (it *is* that
    /// exporter), so the server-side timeline opens in Perfetto /
    /// `chrome://tracing` exactly like a simulator profile.
    #[must_use]
    pub fn chrome_trace(&self) -> String {
        let trace: Vec<TraceEvent> = self
            .stages
            .iter()
            .map(|s| TraceEvent {
                name: s.stage.label().to_owned(),
                cat: "service",
                ts_ns: s.ts_ns,
                dur_ns: s.dur_ns,
                tid: 0,
            })
            .collect();
        SimStats {
            level: TelemetryLevel::Full,
            trace,
            ..SimStats::default()
        }
        .chrome_trace()
    }
}

/// An opaque stage-start stamp handed out by [`SpanBuilder::mark`].
#[derive(Debug, Clone, Copy)]
pub struct SpanMark(Instant);

/// Accumulates stage intervals for one job.
#[derive(Debug)]
pub struct SpanBuilder {
    epoch: Instant,
    stages: Vec<StageSpan>,
}

impl Default for SpanBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl SpanBuilder {
    /// A fresh span whose epoch is now.
    #[must_use]
    pub fn new() -> Self {
        Self {
            epoch: Instant::now(),
            stages: Vec::with_capacity(Stage::COUNT),
        }
    }

    /// Stamps the start of a stage.
    #[must_use]
    pub fn mark(&self) -> SpanMark {
        SpanMark(Instant::now())
    }

    /// Closes a stage opened with [`SpanBuilder::mark`].
    pub fn record(&mut self, stage: Stage, mark: SpanMark) {
        let ts_ns = ns_u64(mark.0.duration_since(self.epoch));
        let dur_ns = ns_u64(mark.0.elapsed());
        self.stages.push(StageSpan {
            stage,
            ts_ns,
            dur_ns,
        });
    }

    /// Finishes the span, appending a `Total` interval from the epoch
    /// to now.
    #[must_use]
    pub fn finish(mut self) -> JobSpan {
        let dur_ns = ns_u64(self.epoch.elapsed());
        self.stages.push(StageSpan {
            stage: Stage::Total,
            ts_ns: 0,
            dur_ns,
        });
        JobSpan {
            stages: self.stages,
        }
    }
}

/// Runs `f`, recording it under `stage` when a span is being built.
/// The `None` path is exactly `f()` — no clock reads.
pub fn timed<T>(span: &mut Option<SpanBuilder>, stage: Stage, f: impl FnOnce() -> T) -> T {
    match span {
        Some(builder) => {
            let mark = builder.mark();
            let result = f();
            builder.record(stage, mark);
            result
        }
        None => f(),
    }
}

fn ns_u64(d: std::time::Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_indices_are_dense_and_labels_stable() {
        for (i, s) in Stage::ALL.iter().enumerate() {
            assert_eq!(s.index(), i);
        }
        let labels: std::collections::HashSet<&str> =
            Stage::ALL.iter().map(|s| s.label()).collect();
        assert_eq!(labels.len(), Stage::COUNT, "labels are unique");
    }

    #[test]
    fn span_builder_records_stages_and_total() {
        let mut builder = SpanBuilder::new();
        let mark = builder.mark();
        std::hint::black_box(0u64);
        builder.record(Stage::Execute, mark);
        let span = builder.finish();
        assert!(span.stage_ns(Stage::Execute).is_some());
        assert!(span.stage_ns(Stage::Build).is_none());
        let total = span.total_ns();
        assert!(total >= span.stage_ns(Stage::Execute).unwrap());
    }

    #[test]
    fn timed_records_only_when_building() {
        let mut none: Option<SpanBuilder> = None;
        assert_eq!(timed(&mut none, Stage::Build, || 7), 7);
        let mut some = Some(SpanBuilder::new());
        assert_eq!(timed(&mut some, Stage::Build, || 7), 7);
        let span = some.unwrap().finish();
        assert!(span.stage_ns(Stage::Build).is_some());
    }

    #[test]
    fn chrome_trace_is_the_sim_exporter_format() {
        let span = JobSpan {
            stages: vec![
                StageSpan {
                    stage: Stage::Execute,
                    ts_ns: 1_000,
                    dur_ns: 2_000,
                },
                StageSpan {
                    stage: Stage::Total,
                    ts_ns: 0,
                    dur_ns: 5_000,
                },
            ],
        };
        let json = span.chrome_trace();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"cat\":\"service\""));
        assert!(json.contains("\"name\":\"execute\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
