//! The long-running job server.
//!
//! Transport is deliberately minimal: newline-delimited JSON over
//! TCP. A client connects, writes one job document per line
//! ([`crate::job`]), and reads one response document per line, in
//! order. Connections are distributed over a fixed pool of worker
//! threads that all share one [`Service`] — and therefore one plan
//! cache, so a design compiled for any client is warm for every
//! client.
//!
//! Everything here is `std`: `std::net` sockets, `std::thread`
//! workers and an `mpsc` hand-off channel. No async runtime.

use crate::exec::Service;
use crate::job;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

/// A running server: the bound address plus the machinery to stop it.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    service: Arc<Service>,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the listener actually bound (resolves `:0`).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared service, e.g. for reading cache statistics.
    #[must_use]
    pub fn service(&self) -> &Arc<Service> {
        &self.service
    }

    /// Stops accepting, drains the workers and joins every thread.
    /// Connections already handed to a worker finish first.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // The accept loop blocks in `accept()`; poke it awake with a
        // throwaway connection so it observes the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if self.accept_thread.is_some() {
            self.stop();
        }
    }
}

fn handle_connection(service: &Service, stream: &TcpStream) -> std::io::Result<()> {
    let reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let response = job::handle_line(service, &line);
        writer.write_all(response.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
    }
    Ok(())
}

/// Binds `addr` and serves jobs on `threads` workers until
/// [`ServerHandle::shutdown`]. Every accept, queue hand-off and
/// worker pickup is reported to the service's metrics plane:
/// `connections_total`, the `queue_depth` / `connections_active`
/// gauges, per-worker busy time, and (when sampling) the
/// [`Queue`](crate::obs::Stage::Queue) latency histogram.
///
/// # Errors
///
/// An [`std::io::Error`] when the listener cannot bind.
pub fn serve(
    addr: impl ToSocketAddrs,
    service: Arc<Service>,
    threads: usize,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let (tx, rx) = mpsc::channel::<(TcpStream, Instant)>();
    let rx = Arc::new(Mutex::new(rx));

    let workers: Vec<JoinHandle<()>> = (0..threads.max(1))
        .map(|worker_index| {
            let rx = Arc::clone(&rx);
            let service = Arc::clone(&service);
            std::thread::spawn(move || loop {
                let stream = {
                    let guard = rx.lock().expect("worker queue poisoned");
                    guard.recv()
                };
                match stream {
                    Ok((stream, accepted)) => {
                        let sampled = service.metrics().mode().sampled();
                        service
                            .metrics()
                            .connection_claimed(sampled.then(|| elapsed_ns(accepted)));
                        let claimed = sampled.then(Instant::now);
                        let _ = handle_connection(&service, &stream);
                        service
                            .metrics()
                            .connection_closed(worker_index, claimed.map(elapsed_ns));
                    }
                    Err(_) => break, // channel closed: server shut down
                }
            })
        })
        .collect();

    let accept_thread = {
        let shutdown = Arc::clone(&shutdown);
        let service = Arc::clone(&service);
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
                match stream {
                    Ok(stream) => {
                        service.metrics().connection_queued();
                        if tx.send((stream, Instant::now())).is_err() {
                            break;
                        }
                    }
                    Err(_) => continue,
                }
            }
            drop(tx); // closing the channel stops the workers
        })
    };

    Ok(ServerHandle {
        addr,
        service,
        shutdown,
        accept_thread: Some(accept_thread),
        workers,
    })
}

/// Submits job lines over one connection and returns the response
/// lines, in order.
///
/// # Errors
///
/// An [`std::io::Error`] for connect/read/write failures, including a
/// server that closes the connection before answering every line.
pub fn submit(addr: impl ToSocketAddrs, lines: &[String]) -> std::io::Result<Vec<String>> {
    let stream = TcpStream::connect(addr)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let mut responses = Vec::with_capacity(lines.len());
    for line in lines {
        writer.write_all(line.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        let mut response = String::new();
        if reader.read_line(&mut response)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection mid-batch",
            ));
        }
        responses.push(response.trim_end().to_owned());
    }
    Ok(responses)
}

fn elapsed_ns(since: Instant) -> u64 {
    u64::try_from(since.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdp_conform::wire::job_to_json;
    use hdp_conform::{Case, Json, Stimulus};
    use hdp_metagen::sampler::sample_spec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn job_line(seed: u64, cycles: usize) -> String {
        let mut rng = StdRng::seed_from_u64(seed);
        let spec = sample_spec(&mut rng);
        let netlist = spec.instantiate().unwrap();
        let stimulus = Stimulus::sample(&netlist, cycles, &mut rng);
        job_to_json(&Case { spec, stimulus })
    }

    #[test]
    fn serves_jobs_and_shares_the_cache_across_connections() {
        let handle = serve("127.0.0.1:0", Arc::new(Service::new(8)), 2).unwrap();
        let addr = handle.addr();
        let line = job_line(77, 6);

        let first = submit(addr, std::slice::from_ref(&line)).unwrap();
        let second = submit(addr, std::slice::from_ref(&line)).unwrap();
        let cold = Json::parse(&first[0]).unwrap();
        let warm = Json::parse(&second[0]).unwrap();
        assert_eq!(cold.get("cache").and_then(Json::as_str), Some("miss"));
        assert_eq!(warm.get("cache").and_then(Json::as_str), Some("hit"));
        assert_eq!(cold.get("trace"), warm.get("trace"));

        let stats = handle.service().cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        handle.shutdown();
    }

    #[test]
    fn select_verb_round_trips_over_tcp() {
        use hdp_metagen::sampler::sample_spec_in;
        use hdp_synth::board::Xsb300e;
        use hdp_synth::{characterize_spec, CharDb};

        let service = Arc::new(Service::new(8));
        let mut rng = StdRng::seed_from_u64(9);
        let board = Xsb300e::new();
        let mut db = CharDb::new();
        for family in 0..hdp_metagen::sampler::FAMILIES.len() {
            let spec = sample_spec_in(&mut rng, family);
            let _ = db.append(characterize_spec(&spec, &board).unwrap());
        }
        service.set_catalog(Arc::new(db));

        let handle = serve("127.0.0.1:0", service, 2).unwrap();
        let lines = vec!["{\"verb\":\"select\",\"constraints\":{\"kind\":\"queue\"}}".to_owned()];
        let responses = submit(handle.addr(), &lines).unwrap();
        let doc = Json::parse(&responses[0]).unwrap();
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some(crate::job::SELECT_SCHEMA)
        );
        assert_eq!(
            doc.get("result").and_then(|r| r.get("selected")),
            Some(&Json::Bool(true))
        );
        let metrics = handle.service().metrics();
        assert_eq!(metrics.get(crate::metrics::Counter::SelectHits), 1);
        handle.shutdown();
    }

    #[test]
    fn malformed_lines_get_error_documents_without_killing_the_connection() {
        let handle = serve("127.0.0.1:0", Arc::new(Service::new(8)), 1).unwrap();
        let lines = vec!["{\"schema\": \"wrong\"}".to_owned(), job_line(5, 4)];
        let responses = submit(handle.addr(), &lines).unwrap();
        let err = Json::parse(&responses[0]).unwrap();
        assert!(err.get("error").is_some());
        let ok = Json::parse(&responses[1]).unwrap();
        assert!(ok.get("trace").is_some());
        handle.shutdown();
    }
}
