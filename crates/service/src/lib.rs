//! Simulation-as-a-service for the hdp design-pattern library.
//!
//! The conformance engine showed that a generated design plus a
//! sampled stimulus is a complete, serialisable job
//! ([`hdp_conform::wire`]). This crate turns that observation into a
//! service: a long-running job server that accepts
//! `hdp-conform-repro-v1` documents, simulates them, and answers with
//! traces, waveforms and telemetry — amortising design compilation
//! across every stimulus ever submitted for the same design.
//!
//! The layers, bottom up:
//!
//! - [`pool`] — a generic sharded worker pool over scoped threads,
//!   deterministic and order-preserving.
//! - [`cache`] — the content-addressed LRU [`cache::PlanCache`]:
//!   validated [`hdp_hdl::Netlist`]s plus exported
//!   [`hdp_sim::CompiledPlan`]s, keyed by
//!   [`hdp_conform::wire::design_hash`].
//! - [`exec`] — the [`Service`]: runs one job ([`Service::run_case`])
//!   or a sharded batch ([`Service::run_batch`]) against the shared
//!   cache, with optional VCD capture, telemetry and oracle
//!   verification.
//! - [`job`] — the JSON request/response layer
//!   (`hdp-service-result-v1`), including the `stats` and `select`
//!   control verbs (the latter answers §3.4 implementation-selection
//!   queries against an installed [`hdp_synth::CharDb`] catalog).
//! - [`server`] — newline-delimited JSON over TCP, plain `std::net`
//!   and `std::thread`.
//! - [`obs`] / [`metrics`] — the observability plane: per-job
//!   [`obs::JobSpan`] stage tracing (Chrome-trace renderable) and the
//!   service-wide [`metrics::MetricsRegistry`] of counters, gauges and
//!   log2 latency histograms, served live by the `stats` wire verb.
//! - [`bench`](mod@bench) — the cold-vs-warm self-benchmark behind
//!   `BENCH_service.json`.
//!
//! ```no_run
//! use hdp_service::{serve, Service};
//! use std::sync::Arc;
//!
//! let handle = serve("127.0.0.1:7501", Arc::new(Service::new(256)), 4)?;
//! println!("serving on {}", handle.addr());
//! # Ok::<(), std::io::Error>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bench;
pub mod cache;
pub mod exec;
pub mod job;
pub mod metrics;
pub mod obs;
pub mod pool;
pub mod server;

pub use cache::{CacheStats, CachedDesign, PlanCache};
pub use exec::{JobOptions, JobOutcome, Service, ServiceError};
pub use job::{handle_line, parse_job, RESULT_SCHEMA, SELECT_SCHEMA};
pub use metrics::{
    validate_snapshot, Counter, MetricsRegistry, MetricsSnapshot, ObsMode, METRICS_SCHEMA,
};
pub use obs::{JobSpan, SpanBuilder, Stage};
pub use pool::run_sharded;
pub use server::{serve, submit, ServerHandle};
