//! A generic sharded work pool over scoped threads.
//!
//! Items are distributed round-robin over a fixed set of workers and
//! the results returned in input order. Sharding up front (instead of
//! a shared queue) keeps the pool allocation-light and deterministic:
//! which worker runs which item depends only on the item index and
//! the worker count, never on timing. That determinism is what lets
//! the service promise bit-identical batch results for any `threads`
//! value, and it is why `hdp_bench::run_design_batch` delegates here.

/// Runs `f` over every item on `threads` workers, returning results
/// in input order. `threads` is clamped to `1..=items.len()`; with
/// one worker the items run sequentially on a single spawned thread.
///
/// # Panics
///
/// Propagates a panic from any worker.
pub fn run_sharded<T, R, F>(items: Vec<T>, threads: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    run_sharded_observed(items, threads, f, |_, _, _| {})
}

/// [`run_sharded`] with a per-shard observer: after a shard drains,
/// `observe(shard_index, busy_ns, items)` is called from that shard's
/// thread with its wall-clock busy time and item count. The
/// observation hook is how [`crate::Service::run_batch`] feeds the
/// metrics plane's per-shard gauges; the cost over [`run_sharded`] is
/// two clock reads per *shard* (not per item).
///
/// # Panics
///
/// Propagates a panic from any worker.
pub fn run_sharded_observed<T, R, F, O>(items: Vec<T>, threads: usize, f: F, observe: O) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
    O: Fn(usize, u64, u64) + Sync,
{
    let threads = threads.clamp(1, items.len().max(1));
    let mut shards: Vec<Vec<(usize, T)>> = (0..threads).map(|_| Vec::new()).collect();
    for (i, item) in items.into_iter().enumerate() {
        shards[i % threads].push((i, item));
    }
    let f = &f;
    let observe = &observe;
    let mut results: Vec<(usize, R)> = std::thread::scope(|s| {
        let handles: Vec<_> = shards
            .into_iter()
            .enumerate()
            .map(|(shard_index, shard)| {
                s.spawn(move || {
                    let started = std::time::Instant::now();
                    let count = shard.len() as u64;
                    let out = shard
                        .into_iter()
                        .map(|(i, item)| (i, f(item)))
                        .collect::<Vec<_>>();
                    let busy_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
                    observe(shard_index, busy_ns, count);
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("pool worker panicked"))
            .collect()
    });
    results.sort_by_key(|&(i, _)| i);
    results.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order_for_any_worker_count() {
        let items: Vec<u64> = (0..37).collect();
        for threads in [1, 2, 3, 8, 64] {
            let out = run_sharded(items.clone(), threads, |x| x * 2);
            assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn handles_empty_input() {
        let out: Vec<u64> = run_sharded(Vec::<u64>::new(), 4, |x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn observer_sees_every_item_exactly_once() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let observed_items = AtomicU64::new(0);
        let observed_shards = AtomicU64::new(0);
        let out = run_sharded_observed(
            (0..10u64).collect(),
            3,
            |x| x + 1,
            |_, _, items| {
                observed_items.fetch_add(items, Ordering::Relaxed);
                observed_shards.fetch_add(1, Ordering::Relaxed);
            },
        );
        assert_eq!(out.len(), 10);
        assert_eq!(observed_items.load(Ordering::Relaxed), 10);
        assert_eq!(observed_shards.load(Ordering::Relaxed), 3);
    }
}
