//! The service's JSON request/response layer.
//!
//! A request is one `hdp-conform-repro-v1` document per line — the
//! exact format the conformance engine's reproducers use
//! ([`hdp_conform::wire`]) — optionally extended with an `options`
//! object the wire parser ignores:
//!
//! ```json
//! {"schema": "hdp-conform-repro-v1", "design": {…}, "stimulus": {…},
//!  "options": {"mode": "lowered", "vcd": false,
//!              "telemetry": false, "verify": false, "threads": 2}}
//! ```
//!
//! | option      | values                                                           | default   |
//! |-------------|------------------------------------------------------------------|-----------|
//! | `mode`      | `lowered`, `compiled`, `event_driven`, `full_sweep`, `parallel`  | `lowered` |
//! | `threads`   | worker threads for `parallel` mode                               | `2`       |
//! | `vcd`       | return a VCD waveform (disables plan reuse)                      | `false`   |
//! | `telemetry` | return a telemetry summary                                       | `false`   |
//! | `verify`    | re-run cache-free under full sweep and compare                   | `false`   |
//! | `span`      | return the job's per-stage server-side timeline                  | `false`   |
//!
//! Besides job submissions, the layer answers two control verbs:
//!
//! * `{"verb": "stats"}` returns the service's live
//!   [`hdp-service-metrics-v1`](crate::metrics::METRICS_SCHEMA)
//!   snapshot — counters, cache state and latency histograms — as a
//!   single-line document.
//! * `{"verb": "select", "constraints": {…}}` answers a §3.4
//!   implementation-selection query against the server's
//!   characterisation catalog ([`hdp_synth::CharDb`], installed via
//!   [`Service::set_catalog`](crate::exec::Service::set_catalog)):
//!   the cheapest recorded target satisfying the constraints, as an
//!   [`hdp-service-select-v1`](SELECT_SCHEMA) document wrapping
//!   [`hdp_synth::Selection`]. Control verbs never count as jobs.
//!
//! A response is one `hdp-service-result-v1` JSON document per line:
//! `design_hash`, `cache` (`"hit"`/`"miss"`), `plan_installed`, the
//! output `ports`, the per-cycle `trace` of bit-strings, and the
//! optional `telemetry` / `vcd` / `verified` sections. Failures
//! produce `{"schema": "hdp-service-result-v1", "error": {…}}` with
//! the failing `stage` (`wire`, `build` or `sim`).

use crate::exec::{JobOptions, JobOutcome, ServiceError};
use crate::metrics::Counter;
use crate::obs::Stage;
use hdp_conform::wire::{self, WireError};
use hdp_conform::{Case, Json};
use hdp_sim::{SchedMode, SimStats};
use hdp_synth::{auto_select, SelectConstraints, Selection};
use std::time::Instant;

/// The schema identifier of every response document.
pub const RESULT_SCHEMA: &str = "hdp-service-result-v1";

/// The schema identifier of every `select` verb response document.
pub const SELECT_SCHEMA: &str = "hdp-service-select-v1";

/// Parses one submission line: the wire case plus the service
/// options.
///
/// # Errors
///
/// [`WireError`] for a malformed document, unknown mode string, or
/// out-of-range thread count.
pub fn parse_job(text: &str) -> Result<(Case, JobOptions), WireError> {
    let case = wire::parse_case(text)?;
    let doc = Json::parse(text).map_err(|detail| WireError::Syntax { detail })?;
    let mut opts = JobOptions::default();
    if let Some(options) = doc.get("options") {
        let threads = match options.get("threads") {
            None => 2,
            Some(v) => {
                let t = v.as_u64().ok_or_else(|| WireError::Field {
                    path: "options.threads".into(),
                    detail: "not a number".into(),
                })?;
                usize::try_from(t)
                    .ok()
                    .filter(|&t| (1..=256).contains(&t))
                    .ok_or_else(|| WireError::Field {
                        path: "options.threads".into(),
                        detail: format!("{t} outside 1..=256"),
                    })?
            }
        };
        if let Some(mode) = options.get("mode") {
            opts.mode = match mode.as_str() {
                Some("lowered") => SchedMode::Lowered,
                Some("compiled") => SchedMode::Compiled,
                Some("event_driven") => SchedMode::EventDriven,
                Some("full_sweep") => SchedMode::FullSweep,
                Some("parallel") => SchedMode::Parallel { threads },
                other => {
                    return Err(WireError::Field {
                        path: "options.mode".into(),
                        detail: format!("unknown mode {other:?}"),
                    })
                }
            };
        }
        for (key, slot) in [
            ("vcd", &mut opts.vcd as &mut bool),
            ("telemetry", &mut opts.telemetry),
            ("verify", &mut opts.verify),
            ("span", &mut opts.span),
        ] {
            if let Some(v) = options.get(key) {
                *slot = v.as_bool().ok_or_else(|| WireError::Field {
                    path: format!("options.{key}"),
                    detail: "not a boolean".into(),
                })?;
            }
        }
    }
    Ok((case, opts))
}

fn stats_to_json(stats: &SimStats) -> Json {
    Json::Obj(vec![
        ("steps".to_owned(), Json::Num(stats.steps)),
        ("settles".to_owned(), Json::Num(stats.settles)),
        ("delta_passes".to_owned(), Json::Num(stats.passes)),
        ("total_evals".to_owned(), Json::Num(stats.total_evals())),
        ("total_toggles".to_owned(), Json::Num(stats.total_toggles())),
        (
            "compiled_settles".to_owned(),
            Json::Num(stats.compiled_settles),
        ),
        (
            "lowered_settles".to_owned(),
            Json::Num(stats.lowered_settles),
        ),
        ("ops_executed".to_owned(), Json::Num(stats.ops_executed)),
        (
            "fallback_settles".to_owned(),
            Json::Num(stats.fallback_settles),
        ),
        ("plan_installs".to_owned(), Json::Num(stats.plan_installs)),
        (
            "fallback_causes".to_owned(),
            Json::Obj(
                stats
                    .fallback_cause_counts()
                    .map(|(cause, n)| (cause.label().to_owned(), Json::Num(n)))
                    .collect(),
            ),
        ),
    ])
}

/// Renders a completed job as a response document.
#[must_use]
pub fn outcome_to_json(out: &JobOutcome) -> String {
    let mut fields = vec![
        ("schema".to_owned(), Json::Str(RESULT_SCHEMA.into())),
        ("design_hash".to_owned(), Json::Str(out.design_hash.clone())),
        ("label".to_owned(), Json::Str(out.label.clone())),
        (
            "cache".to_owned(),
            Json::Str(if out.cache_hit { "hit" } else { "miss" }.into()),
        ),
        ("plan_installed".to_owned(), Json::Bool(out.plan_installed)),
        ("cycles".to_owned(), Json::Num(out.cycles as u64)),
        (
            "ports".to_owned(),
            Json::Arr(
                out.ports
                    .iter()
                    .map(|(name, width)| {
                        Json::Obj(vec![
                            ("name".to_owned(), Json::Str(name.clone())),
                            ("width".to_owned(), Json::Num(*width as u64)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "trace".to_owned(),
            Json::Arr(
                out.trace
                    .iter()
                    .map(|row| Json::Arr(row.iter().map(|v| Json::Str(v.clone())).collect()))
                    .collect(),
            ),
        ),
    ];
    if let Some(stats) = &out.stats {
        fields.push(("telemetry".to_owned(), stats_to_json(stats)));
    }
    if let Some(vcd) = &out.vcd {
        fields.push(("vcd".to_owned(), Json::Str(vcd.clone())));
    }
    if let Some(verified) = out.verified {
        fields.push(("verified".to_owned(), Json::Bool(verified)));
    }
    if let Some(span) = &out.span {
        fields.push((
            "span".to_owned(),
            Json::Obj(vec![
                ("total_ns".to_owned(), Json::Num(span.total_ns())),
                (
                    "stages".to_owned(),
                    Json::Arr(
                        span.stages
                            .iter()
                            .map(|s| {
                                Json::Obj(vec![
                                    ("stage".to_owned(), Json::Str(s.stage.label().into())),
                                    ("ts_ns".to_owned(), Json::Num(s.ts_ns)),
                                    ("dur_ns".to_owned(), Json::Num(s.dur_ns)),
                                ])
                            })
                            .collect(),
                    ),
                ),
                ("chrome_trace".to_owned(), Json::Str(span.chrome_trace())),
            ]),
        ));
    }
    Json::Obj(fields).to_string()
}

/// Renders a failed job as a response document.
#[must_use]
pub fn error_to_json(err: &ServiceError) -> String {
    let stage = match err {
        ServiceError::Wire(_) => "wire",
        ServiceError::Build { .. } => "build",
        ServiceError::Sim { .. } => "sim",
    };
    Json::Obj(vec![
        ("schema".to_owned(), Json::Str(RESULT_SCHEMA.into())),
        (
            "error".to_owned(),
            Json::Obj(vec![
                ("stage".to_owned(), Json::Str(stage.into())),
                ("message".to_owned(), Json::Str(err.to_string())),
            ]),
        ),
    ])
    .to_string()
}

/// Runs one submission line end to end against a service: parse,
/// execute, render. Infallible by construction — failures render as
/// error documents. The `{"verb": "stats"}` control line answers
/// with the live metrics snapshot instead of running a job.
#[must_use]
pub fn handle_line(service: &crate::exec::Service, line: &str) -> String {
    if let Some(response) = handle_verb(service, line) {
        return response;
    }
    let metrics = service.metrics();
    let sampled = metrics.mode().sampled();
    let parse_started = sampled.then(Instant::now);
    let parsed = parse_job(line);
    if let Some(started) = parse_started {
        metrics.record_stage_ns(Stage::Parse, elapsed_ns(started));
    }
    match parsed {
        Ok((case, opts)) => match service.run_case(&case, &opts) {
            Ok(outcome) => {
                let render_started = sampled.then(Instant::now);
                let response = outcome_to_json(&outcome);
                if let Some(started) = render_started {
                    metrics.record_stage_ns(Stage::Render, elapsed_ns(started));
                }
                response
            }
            Err(e) => error_to_json(&e),
        },
        Err(e) => {
            metrics.inc(Counter::ErrorsWire);
            error_to_json(&ServiceError::Wire(e))
        }
    }
}

/// Answers a control verb (`{"verb": "stats"}` or
/// `{"verb": "select"}`), or `None` when the line is a job
/// submission. The substring pre-check keeps the job path free of a
/// second parse attempt.
fn handle_verb(service: &crate::exec::Service, line: &str) -> Option<String> {
    if !line.contains("\"verb\"") {
        return None;
    }
    let doc = Json::parse(line).ok()?;
    match doc.get("verb").and_then(Json::as_str)? {
        "stats" => {
            service.metrics().inc(Counter::StatsRequests);
            Some(service.metrics_snapshot().to_json())
        }
        "select" => Some(answer_select(service, &doc)),
        other => {
            service.metrics().inc(Counter::ErrorsWire);
            Some(error_to_json(&ServiceError::Wire(WireError::Field {
                path: "verb".into(),
                detail: format!("unknown verb {other:?}"),
            })))
        }
    }
}

/// Answers one `select` verb request: parse the constraints, run
/// [`auto_select`] against the installed catalog, wrap the
/// [`Selection`] in a [`SELECT_SCHEMA`] document. A request counts as
/// a hit or a no-target only when it actually reached the optimiser —
/// malformed constraints and a missing catalog render as error
/// documents and count as neither, so
/// `select_hits + select_no_target <= select_requests` always holds.
fn answer_select(service: &crate::exec::Service, doc: &Json) -> String {
    let metrics = service.metrics();
    metrics.inc(Counter::SelectRequests);
    let bad = |path: &str, detail: String| {
        metrics.inc(Counter::ErrorsWire);
        error_to_json(&ServiceError::Wire(WireError::Field {
            path: path.into(),
            detail,
        }))
    };
    let Some(constraints_doc) = doc.get("constraints") else {
        return bad("constraints", "missing constraints object".into());
    };
    let constraints = match SelectConstraints::from_json(constraints_doc) {
        Ok(c) => c,
        Err(detail) => return bad("constraints", detail),
    };
    let Some(catalog) = service.catalog() else {
        return bad(
            "verb",
            "no characterisation catalog installed (serve with --catalog FILE)".into(),
        );
    };
    let selection = auto_select(&catalog, &constraints);
    metrics.inc(match selection {
        Selection::Target { .. } => Counter::SelectHits,
        Selection::NoTarget(_) => Counter::SelectNoTarget,
    });
    Json::Obj(vec![
        ("schema".to_owned(), Json::Str(SELECT_SCHEMA.into())),
        ("catalog_points".to_owned(), Json::Num(catalog.len() as u64)),
        ("constraints".to_owned(), constraints.to_json()),
        ("result".to_owned(), selection.to_json()),
    ])
    .to_string()
}

fn elapsed_ns(started: Instant) -> u64 {
    u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::Service;
    use hdp_conform::Stimulus;
    use hdp_metagen::sampler::{sample_spec, sample_spec_in, FAMILIES};
    use hdp_synth::board::Xsb300e;
    use hdp_synth::{characterize_spec, CharDb};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    fn small_catalog() -> CharDb {
        let mut rng = StdRng::seed_from_u64(5);
        let board = Xsb300e::new();
        let mut db = CharDb::new();
        for family in 0..FAMILIES.len() {
            let spec = sample_spec_in(&mut rng, family);
            let record = characterize_spec(&spec, &board).unwrap();
            let _ = db.append(record);
        }
        db
    }

    fn job_line(seed: u64, cycles: usize, options: &str) -> String {
        let mut rng = StdRng::seed_from_u64(seed);
        let spec = sample_spec(&mut rng);
        let netlist = spec.instantiate().unwrap();
        let stimulus = Stimulus::sample(&netlist, cycles, &mut rng);
        let doc = wire::job_to_json(&Case { spec, stimulus });
        if options.is_empty() {
            doc
        } else {
            format!(
                "{},\"options\":{}}}",
                doc.strip_suffix('}').unwrap(),
                options
            )
        }
    }

    #[test]
    fn parses_options() {
        let line = job_line(
            3,
            4,
            "{\"mode\":\"parallel\",\"threads\":4,\"vcd\":true,\"verify\":true}",
        );
        let (_, opts) = parse_job(&line).unwrap();
        assert_eq!(opts.mode, SchedMode::Parallel { threads: 4 });
        assert!(opts.vcd);
        assert!(opts.verify);
        assert!(!opts.telemetry);
    }

    #[test]
    fn defaults_to_lowered_mode() {
        let line = job_line(3, 4, "");
        let (_, opts) = parse_job(&line).unwrap();
        assert_eq!(opts, JobOptions::default());
        assert_eq!(opts.mode, SchedMode::Lowered);
    }

    #[test]
    fn parses_lowered_mode() {
        let line = job_line(3, 4, "{\"mode\":\"lowered\"}");
        let (_, opts) = parse_job(&line).unwrap();
        assert_eq!(opts.mode, SchedMode::Lowered);
    }

    #[test]
    fn rejects_unknown_mode() {
        let line = job_line(3, 4, "{\"mode\":\"warp\"}");
        assert!(matches!(
            parse_job(&line),
            Err(WireError::Field { path, .. }) if path == "options.mode"
        ));
    }

    #[test]
    fn handle_line_round_trips_a_job() {
        let service = Service::new(4);
        let line = job_line(21, 6, "{\"telemetry\":true}");
        let cold = handle_line(&service, &line);
        let warm = handle_line(&service, &line);
        let cold_doc = Json::parse(&cold).unwrap();
        let warm_doc = Json::parse(&warm).unwrap();
        assert_eq!(
            cold_doc.get("schema").and_then(Json::as_str),
            Some(RESULT_SCHEMA)
        );
        assert_eq!(cold_doc.get("cache").and_then(Json::as_str), Some("miss"));
        assert_eq!(warm_doc.get("cache").and_then(Json::as_str), Some("hit"));
        assert_eq!(cold_doc.get("trace"), warm_doc.get("trace"));
        assert!(cold_doc.get("telemetry").is_some());
    }

    #[test]
    fn select_verb_answers_from_the_catalog() {
        let service = Service::new(4);
        service.set_catalog(Arc::new(small_catalog()));
        let hit = handle_line(
            &service,
            "{\"verb\":\"select\",\"constraints\":{\"kind\":\"queue\"}}",
        );
        let doc = Json::parse(&hit).unwrap();
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some(SELECT_SCHEMA)
        );
        let result = doc.get("result").unwrap();
        assert_eq!(result.get("selected"), Some(&Json::Bool(true)));
        assert_eq!(result.get("kind").and_then(Json::as_str), Some("queue"));

        // An unachievable clock gets a structured no-target answer,
        // not an error document.
        let miss = handle_line(
            &service,
            "{\"verb\":\"select\",\"constraints\":{\"kind\":\"queue\",\"min_clk_khz\":10000000000}}",
        );
        let miss_doc = Json::parse(&miss).unwrap();
        assert!(miss_doc.get("error").is_none());
        assert_eq!(
            miss_doc.get("result").and_then(|r| r.get("selected")),
            Some(&Json::Bool(false))
        );

        let m = service.metrics();
        assert_eq!(m.get(Counter::SelectRequests), 2);
        assert_eq!(m.get(Counter::SelectHits), 1);
        assert_eq!(m.get(Counter::SelectNoTarget), 1);
        assert_eq!(m.get(Counter::JobsTotal), 0, "control verbs are not jobs");
        let snap = Json::parse(&service.metrics_snapshot().to_json()).unwrap();
        let problems = crate::metrics::validate_snapshot(&snap);
        assert!(
            problems.is_empty(),
            "snapshot invariants broke: {problems:?}"
        );
    }

    #[test]
    fn select_without_a_catalog_or_constraints_is_a_wire_error() {
        let service = Service::new(4);
        for line in [
            // No catalog installed.
            "{\"verb\":\"select\",\"constraints\":{\"kind\":\"queue\"}}",
            // Missing constraints object.
            "{\"verb\":\"select\"}",
        ] {
            let response = handle_line(&service, line);
            let doc = Json::parse(&response).unwrap();
            assert_eq!(
                doc.get("error")
                    .and_then(|e| e.get("stage"))
                    .and_then(Json::as_str),
                Some("wire"),
                "line {line:?} must fail at the wire stage"
            );
        }
        let m = service.metrics();
        assert_eq!(m.get(Counter::SelectRequests), 2);
        assert_eq!(
            m.get(Counter::SelectHits) + m.get(Counter::SelectNoTarget),
            0,
            "requests that never reach the optimiser count as neither"
        );
    }

    #[test]
    fn handle_line_reports_errors_as_documents() {
        let service = Service::new(4);
        let response = handle_line(&service, "not json at all");
        let doc = Json::parse(&response).unwrap();
        assert_eq!(
            doc.get("error")
                .and_then(|e| e.get("stage"))
                .and_then(Json::as_str),
            Some("wire")
        );
    }
}
