//! Job execution against the plan cache.
//!
//! A job is a [`Case`] (design-space point + stimulus) plus
//! [`JobOptions`]. Execution mirrors the conformance engine's oracle
//! harness cycle for cycle — poke the row, reset on cycle 0 / settle
//! otherwise, record the settled output ports, clock edge — so a
//! service trace is directly comparable to any oracle trace.
//!
//! The cache closes the reuse loop:
//!
//! * **miss** — instantiate the spec, validate it while wiring the
//!   interpreter, simulate (the compiled scheduler levelizes — and,
//!   in the default lowered mode, translates each interpreter into a
//!   word-level op stream — on the fly), then publish the netlist and
//!   the exported [`CompiledPlan`](hdp_sim::CompiledPlan) under the
//!   design's content address;
//! * **hit** — clone the cached netlist and install the cached plan
//!   ([`Simulator::install_plan`]), skipping metagen instantiation,
//!   the levelization settle and the lowering pass entirely.
//!
//! Cached and cold execution are bit-identical: the installed
//! schedule is the one a local compile would have produced, and the
//! cycle protocol never changes. The `verify` option re-runs every
//! job against a cache-free full-sweep reference and compares traces
//! to prove it.

use crate::cache::{CacheStats, CachedDesign, PlanCache};
use crate::metrics::{CacheSection, Counter, MetricsRegistry, MetricsSnapshot, ObsMode};
use crate::obs::{timed, JobSpan, SpanBuilder, Stage};
use crate::pool::run_sharded_observed;
use hdp_conform::wire::{design_hash, WireError};
use hdp_conform::{Case, Stimulus};
use hdp_hdl::{Netlist, PortDir};
use hdp_metagen::sampler::FAMILIES;
use hdp_sim::vcd::VcdRecorder;
use hdp_sim::{
    NetlistComponent, SchedMode, SignalId, SimError, SimStats, Simulator, TelemetryLevel,
};
use std::error::Error;
use std::fmt;
use std::sync::{Arc, Mutex};

/// A failure while accepting or running a job.
#[derive(Debug)]
#[non_exhaustive]
pub enum ServiceError {
    /// The submission document did not parse.
    Wire(WireError),
    /// The design could not be generated or wired.
    Build {
        /// What went wrong.
        message: String,
    },
    /// The simulation failed mid-run.
    Sim {
        /// The stimulus cycle that failed (0-based).
        cycle: usize,
        /// The simulator's error.
        source: SimError,
    },
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Wire(e) => write!(f, "bad submission: {e}"),
            ServiceError::Build { message } => write!(f, "design build failed: {message}"),
            ServiceError::Sim { cycle, source } => {
                write!(f, "simulation failed at cycle #{cycle}: {source}")
            }
        }
    }
}

impl Error for ServiceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ServiceError::Wire(e) => Some(e),
            ServiceError::Sim { source, .. } => Some(source),
            ServiceError::Build { .. } => None,
        }
    }
}

impl From<WireError> for ServiceError {
    fn from(e: WireError) -> Self {
        ServiceError::Wire(e)
    }
}

/// Per-job execution options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobOptions {
    /// Scheduler mode. The default, [`SchedMode::Lowered`], and
    /// [`SchedMode::Compiled`] are the modes that export and install
    /// plans (a lowered plan also carries the word-level op streams);
    /// the cache still serves netlists to the others.
    pub mode: SchedMode,
    /// Record and return a VCD waveform of every port. Disables plan
    /// reuse for the job (the recorder changes the design shape).
    pub vcd: bool,
    /// Collect telemetry counters and return a summary.
    pub telemetry: bool,
    /// Re-run the job cache-free under the full-sweep reference
    /// scheduler and compare traces bit for bit.
    pub verify: bool,
    /// Record this job's per-stage [`JobSpan`] and return it in the
    /// outcome, even when the service is not sampling.
    pub span: bool,
}

impl Default for JobOptions {
    fn default() -> Self {
        Self {
            mode: SchedMode::Lowered,
            vcd: false,
            telemetry: false,
            verify: false,
            span: false,
        }
    }
}

/// The result of one executed job.
#[derive(Debug, Clone)]
pub struct JobOutcome {
    /// Content address of the design ([`design_hash`]).
    pub design_hash: String,
    /// Human-readable design label.
    pub label: String,
    /// Whether the design was served from the cache.
    pub cache_hit: bool,
    /// Whether a cached [`CompiledPlan`](hdp_sim::CompiledPlan) was
    /// installed (always `false` on a miss or for modes that neither
    /// export nor install plans).
    pub plan_installed: bool,
    /// The design's non-input ports as `(name, width)`, in entity
    /// order — the columns of `trace`.
    pub ports: Vec<(String, usize)>,
    /// Settled four-state values, one row per stimulus cycle, one
    /// bit-string per port (MSB first; `X` marks undefined bits).
    pub trace: Vec<Vec<String>>,
    /// Stimulus cycles executed.
    pub cycles: usize,
    /// Telemetry summary, when requested.
    pub stats: Option<SimStats>,
    /// VCD waveform text, when requested.
    pub vcd: Option<String>,
    /// Outcome of the cold-reference comparison, when requested.
    pub verified: Option<bool>,
    /// The job's server-side stage timeline, when requested
    /// ([`JobOptions::span`]).
    pub span: Option<JobSpan>,
}

/// A simulator wired for one job.
struct BuiltSim {
    sim: Simulator,
    inputs: Vec<SignalId>,
    outputs: Vec<(String, SignalId)>,
    recorder: Option<hdp_sim::ComponentId>,
}

/// Builds a simulator for one job. On a cache hit, `template` is the
/// pristine interpreter instance to clone; signal ids are assigned
/// deterministically (entity port order from a fresh simulator), so a
/// template wired against one job's bus is valid for every job of the
/// same design. On a miss the netlist is validated and a fresh
/// template is built — and returned, so the caller can publish it.
fn build_sim(
    netlist: &Arc<Netlist>,
    template: Option<&NetlistComponent>,
    stim: &Stimulus,
    mode: SchedMode,
    telemetry: TelemetryLevel,
    want_vcd: bool,
) -> Result<(BuiltSim, Option<Arc<NetlistComponent>>), ServiceError> {
    let build_err = |message: String| ServiceError::Build { message };
    let mut sim = Simulator::with_mode(mode);
    sim.set_telemetry(telemetry);
    let mut bindings: Vec<(String, SignalId)> = Vec::new();
    let mut outputs = Vec::new();
    for port in netlist.entity().ports() {
        let id = sim
            .add_signal(port.name(), port.width())
            .map_err(|e| build_err(e.to_string()))?;
        bindings.push((port.name().to_owned(), id));
        if port.dir() != PortDir::In {
            outputs.push((port.name().to_owned(), id));
        }
    }
    let inputs = stim
        .inputs
        .iter()
        .map(|(name, _)| {
            bindings
                .iter()
                .find(|(n, _)| n == name)
                .map(|&(_, id)| id)
                .ok_or_else(|| build_err(format!("stimulus input `{name}` is not a port")))
        })
        .collect::<Result<Vec<_>, _>>()?;
    let (comp, built_template) = match template {
        Some(t) => (t.clone(), None),
        None => {
            let binding_refs: Vec<(&str, SignalId)> =
                bindings.iter().map(|(n, id)| (n.as_str(), *id)).collect();
            hdp_hdl::validate::check(netlist).map_err(|e| build_err(e.to_string()))?;
            let comp = NetlistComponent::new_prevalidated(
                "dut",
                Arc::clone(netlist),
                sim.bus(),
                &binding_refs,
            )
            .map_err(|e| build_err(e.to_string()))?;
            let t = Arc::new(comp.clone());
            (comp, Some(t))
        }
    };
    sim.add_component(comp);
    let recorder = want_vcd.then(|| {
        let watched: Vec<SignalId> = bindings.iter().map(|&(_, id)| id).collect();
        sim.add_component(VcdRecorder::new("vcd", watched))
    });
    Ok((
        BuiltSim {
            sim,
            inputs,
            outputs,
            recorder,
        },
        built_template,
    ))
}

/// Drives the stimulus through a built simulator with the oracle
/// protocol, returning the rendered output trace.
fn drive(built: &mut BuiltSim, stim: &Stimulus) -> Result<Vec<Vec<String>>, ServiceError> {
    let mut trace = Vec::with_capacity(stim.cycles.len());
    for (cycle, row) in stim.cycles.iter().enumerate() {
        let at = |source: SimError| ServiceError::Sim { cycle, source };
        for (&id, &value) in built.inputs.iter().zip(row) {
            built.sim.poke(id, value).map_err(at)?;
        }
        if cycle == 0 {
            built.sim.reset().map_err(at)?;
        } else {
            built.sim.settle().map_err(at)?;
        }
        let mut settled = Vec::with_capacity(built.outputs.len());
        for &(_, id) in &built.outputs {
            let v = built.sim.peek(id).map_err(at)?;
            settled.push(v.to_bit_string());
        }
        trace.push(settled);
        built.sim.step().map_err(at)?;
    }
    Ok(trace)
}

/// The simulation service: a plan cache plus the execution engine and
/// its metrics plane.
///
/// `Service` is `Sync` — one instance is shared by every worker of a
/// [server](crate::server) or batch run. The cache lock is held only
/// for lookups and insertions, never across a simulation; the
/// [`MetricsRegistry`] is lock-free.
#[derive(Debug)]
pub struct Service {
    cache: Mutex<PlanCache>,
    metrics: MetricsRegistry,
    catalog: Mutex<Option<Arc<hdp_synth::CharDb>>>,
}

impl Service {
    /// A service whose cache holds at most `cache_capacity` designs,
    /// recording monotonic counters ([`ObsMode::Counters`]).
    #[must_use]
    pub fn new(cache_capacity: usize) -> Self {
        Self::with_obs(cache_capacity, ObsMode::Counters)
    }

    /// A service with an explicit observability mode:
    /// [`ObsMode::Disabled`] for benchmarking the bare job path,
    /// [`ObsMode::Sampled`] for stage histograms, spans and
    /// simulator-telemetry absorption on every job.
    #[must_use]
    pub fn with_obs(cache_capacity: usize, obs: ObsMode) -> Self {
        Self {
            cache: Mutex::new(PlanCache::new(cache_capacity)),
            metrics: MetricsRegistry::new(obs),
            catalog: Mutex::new(None),
        }
    }

    /// Installs a characterisation catalog, enabling the `select`
    /// wire verb. Replaces any previously installed catalog; the
    /// `Arc` lets every in-flight query keep a consistent snapshot
    /// while a newer catalog is swapped in.
    ///
    /// # Panics
    ///
    /// Panics if a previous catalog user panicked while holding the
    /// lock.
    pub fn set_catalog(&self, catalog: Arc<hdp_synth::CharDb>) {
        *self.catalog.lock().expect("catalog lock poisoned") = Some(catalog);
    }

    /// The installed characterisation catalog, if any.
    ///
    /// # Panics
    ///
    /// Panics if a previous catalog user panicked while holding the
    /// lock.
    #[must_use]
    pub fn catalog(&self) -> Option<Arc<hdp_synth::CharDb>> {
        self.catalog.lock().expect("catalog lock poisoned").clone()
    }

    /// The live metrics plane.
    #[must_use]
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Cache counters since construction.
    ///
    /// # Panics
    ///
    /// Panics if a previous cache user panicked while holding the lock.
    #[must_use]
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.lock().expect("cache lock poisoned").stats()
    }

    /// Number of designs currently cached.
    ///
    /// # Panics
    ///
    /// Panics if a previous cache user panicked while holding the lock.
    #[must_use]
    pub fn cache_len(&self) -> usize {
        self.cache.lock().expect("cache lock poisoned").len()
    }

    /// A complete metrics snapshot: the registry's counters, gauges
    /// and histograms with the cache section stitched in from
    /// [`PlanCache::stats`]. This is the document behind the `stats`
    /// wire verb and the `hdp-service metrics` CLI.
    ///
    /// # Panics
    ///
    /// Panics if a previous cache user panicked while holding the lock.
    #[must_use]
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let mut snap = self.metrics.snapshot();
        let cache = self.cache.lock().expect("cache lock poisoned");
        let stats = cache.stats();
        snap.cache = Some(CacheSection {
            hits: stats.hits,
            misses: stats.misses,
            insertions: stats.insertions,
            evictions: stats.evictions,
            plan_attaches: stats.plan_attaches,
            bytes_inserted: stats.bytes_inserted,
            bytes_evicted: stats.bytes_evicted,
            bytes_resident: cache.bytes_resident(),
            len: cache.len() as u64,
            capacity: cache.capacity() as u64,
        });
        snap
    }

    /// Executes one job.
    ///
    /// # Errors
    ///
    /// [`ServiceError`] when the design cannot be built or the
    /// simulation fails; see the module docs for the cache protocol.
    pub fn run_case(&self, case: &Case, opts: &JobOptions) -> Result<JobOutcome, ServiceError> {
        // Reject before the job is counted: a rejected submission
        // never reaches the cache, so counting it in `jobs_total`
        // would break the `hits + misses == jobs_total` invariant.
        if case.spec.family >= FAMILIES.len() {
            self.metrics.inc(Counter::JobsRejected);
            return Err(ServiceError::Build {
                message: format!("design family index {} is out of range", case.spec.family),
            });
        }
        let mut span = (self.metrics.mode().sampled() || opts.span).then(SpanBuilder::new);
        let result = self.run_accepted(case, opts, &mut span);
        match &result {
            Ok(out) => {
                self.metrics.inc(Counter::JobsOk);
                self.metrics.inc(Counter::for_mode(opts.mode));
                if out.plan_installed {
                    self.metrics.inc(Counter::PlansInstalled);
                }
                if opts.vcd {
                    self.metrics.inc(Counter::JobsVcd);
                }
                if opts.verify {
                    self.metrics.inc(Counter::JobsVerify);
                }
                if out.verified == Some(false) {
                    self.metrics.inc(Counter::VerifyFailures);
                }
            }
            Err(ServiceError::Sim { .. }) => {
                self.metrics.inc(Counter::ErrorsSim);
                self.metrics.inc(Counter::for_mode(opts.mode));
            }
            Err(_) => {
                self.metrics.inc(Counter::ErrorsBuild);
                self.metrics.inc(Counter::for_mode(opts.mode));
            }
        }
        match result {
            Ok(mut out) => {
                if let Some(builder) = span {
                    let job_span = builder.finish();
                    for stage in &job_span.stages {
                        self.metrics.record_stage_ns(stage.stage, stage.dur_ns);
                    }
                    if opts.span {
                        out.span = Some(job_span);
                    }
                }
                Ok(out)
            }
            Err(e) => {
                // Errored jobs still record their timeline — a latency
                // regression visible only on failures is still real.
                if let Some(builder) = span {
                    let job_span = builder.finish();
                    for stage in &job_span.stages {
                        self.metrics.record_stage_ns(stage.stage, stage.dur_ns);
                    }
                }
                Err(e)
            }
        }
    }

    /// The accepted-job path: everything after the family-range
    /// check. `jobs_total` is incremented exactly at the cache
    /// lookup, so `cache hits + misses == jobs_total` by construction.
    fn run_accepted(
        &self,
        case: &Case,
        opts: &JobOptions,
        span: &mut Option<SpanBuilder>,
    ) -> Result<JobOutcome, ServiceError> {
        let label = case.spec.label();
        let (hash, cached) = timed(span, Stage::CacheLookup, || {
            let hash = design_hash(&case.spec);
            self.metrics.inc(Counter::JobsTotal);
            let cached = self
                .cache
                .lock()
                .expect("cache lock poisoned")
                .lookup(&hash);
            (hash, cached)
        });
        let cache_hit = cached.is_some();

        // A VCD recorder adds a component, so the sim no longer has
        // the shape the cached plan was exported from.
        let plan_eligible =
            matches!(opts.mode, SchedMode::Compiled | SchedMode::Lowered) && !opts.vcd;
        // Sampled services run every job with simulator counters on,
        // so settles / executed ops / fallback causes aggregate into
        // the service-wide metrics.
        let telemetry = if opts.telemetry || self.metrics.mode().sampled() {
            TelemetryLevel::Counters
        } else {
            TelemetryLevel::Off
        };
        let (mut built, built_template, plan_installed) = timed(span, Stage::Build, || {
            let (netlist, template, cached_plan) = match cached {
                Some(design) => (design.netlist, Some(design.template), design.plan),
                None => {
                    let netlist = case.spec.instantiate().map_err(|e| ServiceError::Build {
                        message: e.to_string(),
                    })?;
                    (Arc::new(netlist), None, None)
                }
            };
            let (mut built, built_template) = build_sim(
                &netlist,
                template.as_deref(),
                &case.stimulus,
                opts.mode,
                telemetry,
                opts.vcd,
            )?;
            let mut plan_installed = false;
            if plan_eligible {
                if let Some(plan) = &cached_plan {
                    // A mismatch can only mean the cached entry predates a
                    // generator change; fall back to a local compile.
                    plan_installed = built.sim.install_plan(plan).is_ok();
                }
            }
            Ok::<_, ServiceError>((built, (netlist, built_template), plan_installed))
        })?;
        let (netlist, built_template) = built_template;

        let trace = timed(span, Stage::Execute, || drive(&mut built, &case.stimulus))?;

        // Publish what this run derived. Exporting after the run (not
        // before) captures every driver link the stimulus exercised,
        // so the installed schedule ages exactly like this one did.
        timed(span, Stage::Publish, || {
            if plan_eligible && !plan_installed {
                let exported = match built.sim.export_plan() {
                    Some(plan) => Some(plan),
                    None => {
                        // Short stimuli can finish before the lazy build
                        // triggers; force it so the next submission wins.
                        built.sim.compile().map_err(|source| ServiceError::Sim {
                            cycle: case.stimulus.cycles.len(),
                            source,
                        })?;
                        built.sim.export_plan()
                    }
                };
                let mut cache = self.cache.lock().expect("cache lock poisoned");
                if cache_hit {
                    if let Some(plan) = exported {
                        cache.attach_plan(&hash, plan);
                    }
                } else {
                    cache.insert(
                        hash.clone(),
                        CachedDesign {
                            netlist: Arc::clone(&netlist),
                            template: built_template.expect("miss path built a template"),
                            plan: exported.map(Arc::new),
                        },
                    );
                }
            } else if !cache_hit {
                self.cache.lock().expect("cache lock poisoned").insert(
                    hash.clone(),
                    CachedDesign {
                        netlist: Arc::clone(&netlist),
                        template: built_template.expect("miss path built a template"),
                        plan: None,
                    },
                );
            }
            Ok::<_, ServiceError>(())
        })?;

        let verified = timed(span, Stage::Verify, || {
            if !opts.verify {
                return Ok::<_, ServiceError>(None);
            }
            let cold_netlist = case.spec.instantiate().map_err(|e| ServiceError::Build {
                message: e.to_string(),
            })?;
            let (mut cold, _) = build_sim(
                &Arc::new(cold_netlist),
                None,
                &case.stimulus,
                SchedMode::FullSweep,
                TelemetryLevel::Off,
                false,
            )?;
            Ok(Some(drive(&mut cold, &case.stimulus)? == trace))
        })?;

        let stats = (telemetry != TelemetryLevel::Off).then(|| built.sim.stats());
        if let Some(stats) = &stats {
            self.metrics.absorb_sim_stats(stats);
        }
        let vcd = built.recorder.map(|id| {
            built
                .sim
                .component::<VcdRecorder>(id)
                .expect("recorder present")
                .render(built.sim.bus())
        });
        Ok(JobOutcome {
            design_hash: hash,
            label,
            cache_hit,
            plan_installed,
            ports: built
                .outputs
                .iter()
                .map(|(n, id)| (n.clone(), built.sim.bus().width(*id).unwrap_or(0)))
                .collect(),
            trace,
            cycles: case.stimulus.cycles.len(),
            stats: opts.telemetry.then(|| stats.clone()).flatten(),
            vcd,
            verified,
            span: None,
        })
    }

    /// Executes a batch of jobs on a sharded worker pool, sharing
    /// this service's cache. Results come back in input order; each
    /// shard reports its busy time and item count to the metrics
    /// plane (busy time only when sampling — it is a clock read).
    #[must_use]
    pub fn run_batch(
        &self,
        cases: Vec<Case>,
        opts: &JobOptions,
        threads: usize,
    ) -> Vec<Result<JobOutcome, ServiceError>> {
        let sampled = self.metrics.mode().sampled();
        run_sharded_observed(
            cases,
            threads,
            |case| self.run_case(&case, opts),
            |shard, busy_ns, items| {
                self.metrics
                    .record_shard(shard, if sampled { busy_ns } else { 0 }, items);
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdp_metagen::sampler::sample_spec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_case(seed: u64, cycles: usize) -> Case {
        let mut rng = StdRng::seed_from_u64(seed);
        let spec = sample_spec(&mut rng);
        let netlist = spec.instantiate().unwrap();
        let stimulus = Stimulus::sample(&netlist, cycles, &mut rng);
        Case { spec, stimulus }
    }

    #[test]
    fn second_submission_hits_and_matches() {
        let service = Service::new(8);
        let case = sample_case(42, 10);
        let opts = JobOptions::default();
        let cold = service.run_case(&case, &opts).unwrap();
        let warm = service.run_case(&case, &opts).unwrap();
        assert!(!cold.cache_hit);
        assert!(warm.cache_hit);
        assert!(warm.plan_installed || cold.trace.is_empty());
        assert_eq!(cold.trace, warm.trace, "cached run must be bit-identical");
        assert_eq!(cold.design_hash, warm.design_hash);
        let stats = service.cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
    }

    #[test]
    fn lowered_default_executes_op_streams_and_hits_warm() {
        let service = Service::new(8);
        let case = sample_case(42, 10);
        let opts = JobOptions {
            telemetry: true,
            ..JobOptions::default()
        };
        assert_eq!(opts.mode, SchedMode::Lowered);
        let cold = service.run_case(&case, &opts).unwrap();
        let warm = service.run_case(&case, &opts).unwrap();
        assert!(warm.cache_hit && warm.plan_installed);
        assert_eq!(
            cold.trace, warm.trace,
            "warm lowered run must be bit-identical"
        );
        let stats = warm.stats.expect("telemetry requested");
        assert!(
            stats.lowered_settles > 0,
            "the warm job must settle on the lowered op-stream walk"
        );
    }

    #[test]
    fn verify_option_confirms_against_the_reference() {
        let service = Service::new(8);
        let case = sample_case(7, 6);
        let opts = JobOptions {
            verify: true,
            ..JobOptions::default()
        };
        let out = service.run_case(&case, &opts).unwrap();
        assert_eq!(out.verified, Some(true));
    }

    #[test]
    fn vcd_option_returns_a_waveform() {
        let service = Service::new(8);
        let case = sample_case(11, 5);
        let opts = JobOptions {
            vcd: true,
            ..JobOptions::default()
        };
        let out = service.run_case(&case, &opts).unwrap();
        let vcd = out.vcd.expect("vcd requested");
        assert!(vcd.contains("$var wire"));
        assert!(!out.plan_installed, "vcd jobs never install plans");
    }

    #[test]
    fn batch_shares_the_cache_across_workers() {
        let service = Service::new(8);
        let case = sample_case(99, 8);
        let cases: Vec<Case> = (0..6).map(|_| case.clone()).collect();
        let results = service.run_batch(cases, &JobOptions::default(), 3);
        let outcomes: Vec<_> = results.into_iter().map(Result::unwrap).collect();
        let reference = &outcomes[0].trace;
        for out in &outcomes {
            assert_eq!(&out.trace, reference);
        }
        let stats = service.cache_stats();
        assert_eq!(stats.hits + stats.misses, 6);
        assert!(stats.hits >= 1, "same design must eventually hit");
    }

    /// The multi-clock `async_fifo` family rides through the service
    /// like any other design: the family-range gate admits it, the
    /// cold run executes (falling back from lowered op streams to
    /// interpreted ticks on partial firings), the warm run serves the
    /// cached artefacts bit-identically, and the trace is independent
    /// of the scheduler mode.
    #[test]
    fn async_fifo_jobs_run_and_cache_across_modes() {
        use hdp_metagen::sampler::DesignSpec;
        use hdp_metagen::OpSet;
        let service = Service::new(8);
        let mut rng = StdRng::seed_from_u64(0xF1F0);
        let spec = DesignSpec {
            family: 11,
            data_width: 4,
            depth: 4,
            addr_width: 8,
            key_width: 8,
            wide: 0,
            write_side: false,
            ops: OpSet::new(),
            wr_period: 2,
            rd_period: 3,
        };
        let netlist = spec.instantiate().unwrap();
        let stimulus = Stimulus::sample(&netlist, 12, &mut rng);
        let case = Case { spec, stimulus };
        let cold = service.run_case(&case, &JobOptions::default()).unwrap();
        let warm = service.run_case(&case, &JobOptions::default()).unwrap();
        assert!(!cold.cache_hit);
        assert!(warm.cache_hit);
        assert_eq!(cold.trace, warm.trace);
        assert!(!cold.trace.is_empty());
        let full = service
            .run_case(
                &case,
                &JobOptions {
                    mode: SchedMode::FullSweep,
                    ..JobOptions::default()
                },
            )
            .unwrap();
        assert_eq!(cold.trace, full.trace, "trace must be mode-independent");
    }
}
