//! The service-wide metrics plane: monotonic counters, gauges and
//! fixed-bucket log2 latency histograms behind an atomics-only API.
//!
//! One [`MetricsRegistry`] lives inside every [`crate::Service`] and
//! is shared — lock-free — by all server workers and batch shards.
//! Three cost tiers, picked by [`ObsMode`]:
//!
//! * [`ObsMode::Disabled`] — nothing is recorded; the job path pays
//!   one predicted branch per would-be increment.
//! * [`ObsMode::Counters`] (the default) — monotonic counters only:
//!   a handful of relaxed atomic increments per job, **no clock
//!   reads**. This is the production fast path; the service bench
//!   gates its overhead below 5% (`obs_overhead_pct` in
//!   `BENCH_service.json`).
//! * [`ObsMode::Sampled`] — counters plus wall-clock stage timings:
//!   per-stage latency histograms, per-job [`crate::obs::JobSpan`]s,
//!   and per-job [`hdp_sim::SimStats`] absorption (jobs run at
//!   [`hdp_sim::TelemetryLevel::Counters`] so settle/op/fallback
//!   counters aggregate service-wide).
//!
//! Histograms use fixed log2 buckets (bucket *i* holds durations in
//! `[2^i, 2^(i+1))` ns), so p50/p90/p99 are derivable from the
//! snapshot with no dependencies and a bounded error of one octave.
//!
//! A [`MetricsSnapshot`] is the serialisable face: a versioned
//! [`METRICS_SCHEMA`] JSON document (the `stats` wire verb), a
//! Prometheus-style plain-text render ([`MetricsSnapshot::render_text`],
//! the `hdp-service metrics` CLI), and an invariant validator
//! ([`validate_snapshot`]) shared by the tests and the CI smoke job.

use crate::obs::Stage;
use hdp_conform::Json;
use hdp_sim::{FallbackCause, SchedMode, SimStats};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};

/// The schema identifier of every metrics snapshot document.
pub const METRICS_SCHEMA: &str = "hdp-service-metrics-v1";

/// Log2 buckets per latency histogram. Bucket `i` holds durations in
/// `[2^i, 2^(i+1))` nanoseconds; the last bucket absorbs everything
/// above (`2^39` ns ≈ 9 minutes).
pub const HIST_BUCKETS: usize = 40;

/// Worker/shard slots tracked individually; higher indices fold into
/// the last slot.
pub const MAX_WORKER_SLOTS: usize = 64;

/// How much observability a [`crate::Service`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ObsMode {
    /// Record nothing.
    Disabled,
    /// Monotonic counters only — atomic increments, no clock reads.
    #[default]
    Counters,
    /// Counters plus stage timings, histograms, per-job spans and
    /// simulator-telemetry absorption.
    Sampled,
}

impl ObsMode {
    /// Whether any counters are recorded.
    #[must_use]
    pub fn enabled(self) -> bool {
        self != ObsMode::Disabled
    }

    /// Whether stage timings (clock reads) are recorded.
    #[must_use]
    pub fn sampled(self) -> bool {
        self == ObsMode::Sampled
    }

    /// Stable label used in snapshot documents.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ObsMode::Disabled => "disabled",
            ObsMode::Counters => "counters",
            ObsMode::Sampled => "sampled",
        }
    }

    /// Parses a CLI/label string (`disabled`/`off`, `counters`,
    /// `sampled`/`sample`).
    ///
    /// # Errors
    ///
    /// A message naming the accepted values.
    pub fn parse(text: &str) -> Result<Self, String> {
        match text {
            "disabled" | "off" => Ok(ObsMode::Disabled),
            "counters" => Ok(ObsMode::Counters),
            "sampled" | "sample" => Ok(ObsMode::Sampled),
            other => Err(format!(
                "unknown obs mode `{other}` (expected off, counters or sample)"
            )),
        }
    }
}

/// Every monotonic counter the registry tracks. A dense enum (rather
/// than ad-hoc fields) so snapshots, renders and the
/// counter-of-counters overhead test all iterate one table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// Jobs that reached execution (exactly one cache lookup each).
    JobsTotal,
    /// Jobs that completed successfully.
    JobsOk,
    /// Jobs rejected before the cache lookup (bad family index).
    JobsRejected,
    /// Jobs that failed building the design.
    ErrorsBuild,
    /// Jobs that failed mid-simulation.
    ErrorsSim,
    /// Submissions that failed wire parsing (never became jobs).
    ErrorsWire,
    /// Jobs that installed a cached [`hdp_sim::CompiledPlan`].
    PlansInstalled,
    /// Jobs that requested a VCD waveform.
    JobsVcd,
    /// Jobs that requested cache-free verification.
    JobsVerify,
    /// Verification re-runs whose trace diverged (must stay 0).
    VerifyFailures,
    /// Jobs executed under [`SchedMode::Lowered`].
    ModeLowered,
    /// Jobs executed under [`SchedMode::Compiled`].
    ModeCompiled,
    /// Jobs executed under [`SchedMode::EventDriven`].
    ModeEventDriven,
    /// Jobs executed under [`SchedMode::FullSweep`].
    ModeFullSweep,
    /// Jobs executed under [`SchedMode::Parallel`].
    ModeParallel,
    /// Simulator settles absorbed from per-job telemetry (sampled).
    SimSettles,
    /// Simulator delta passes absorbed from per-job telemetry.
    SimDeltaPasses,
    /// Lowered op-stream settles absorbed from per-job telemetry.
    SimLoweredSettles,
    /// Compiled rank-walk settles absorbed from per-job telemetry.
    SimCompiledSettles,
    /// Event-driven fallback settles absorbed from per-job telemetry.
    SimFallbackSettles,
    /// Word-level ops executed, absorbed from per-job telemetry.
    SimOpsExecuted,
    /// Plan installs observed by simulators (per-job telemetry).
    SimPlanInstalls,
    /// TCP connections accepted.
    ConnectionsTotal,
    /// `stats` verb requests served.
    StatsRequests,
    /// `select` verb requests received (including malformed ones).
    SelectRequests,
    /// `select` requests answered with a satisfying target.
    SelectHits,
    /// `select` requests answered with a structured no-target result.
    SelectNoTarget,
}

impl Counter {
    /// Number of counters.
    pub const COUNT: usize = 27;

    /// Every counter, in table order.
    pub const ALL: [Counter; Counter::COUNT] = [
        Counter::JobsTotal,
        Counter::JobsOk,
        Counter::JobsRejected,
        Counter::ErrorsBuild,
        Counter::ErrorsSim,
        Counter::ErrorsWire,
        Counter::PlansInstalled,
        Counter::JobsVcd,
        Counter::JobsVerify,
        Counter::VerifyFailures,
        Counter::ModeLowered,
        Counter::ModeCompiled,
        Counter::ModeEventDriven,
        Counter::ModeFullSweep,
        Counter::ModeParallel,
        Counter::SimSettles,
        Counter::SimDeltaPasses,
        Counter::SimLoweredSettles,
        Counter::SimCompiledSettles,
        Counter::SimFallbackSettles,
        Counter::SimOpsExecuted,
        Counter::SimPlanInstalls,
        Counter::ConnectionsTotal,
        Counter::StatsRequests,
        Counter::SelectRequests,
        Counter::SelectHits,
        Counter::SelectNoTarget,
    ];

    /// Stable snake_case name used in snapshot documents.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Counter::JobsTotal => "jobs_total",
            Counter::JobsOk => "jobs_ok",
            Counter::JobsRejected => "jobs_rejected",
            Counter::ErrorsBuild => "errors_build",
            Counter::ErrorsSim => "errors_sim",
            Counter::ErrorsWire => "errors_wire",
            Counter::PlansInstalled => "plans_installed",
            Counter::JobsVcd => "jobs_vcd",
            Counter::JobsVerify => "jobs_verify",
            Counter::VerifyFailures => "verify_failures",
            Counter::ModeLowered => "mode_lowered",
            Counter::ModeCompiled => "mode_compiled",
            Counter::ModeEventDriven => "mode_event_driven",
            Counter::ModeFullSweep => "mode_full_sweep",
            Counter::ModeParallel => "mode_parallel",
            Counter::SimSettles => "sim_settles",
            Counter::SimDeltaPasses => "sim_delta_passes",
            Counter::SimLoweredSettles => "sim_lowered_settles",
            Counter::SimCompiledSettles => "sim_compiled_settles",
            Counter::SimFallbackSettles => "sim_fallback_settles",
            Counter::SimOpsExecuted => "sim_ops_executed",
            Counter::SimPlanInstalls => "sim_plan_installs",
            Counter::ConnectionsTotal => "connections_total",
            Counter::StatsRequests => "stats_requests",
            Counter::SelectRequests => "select_requests",
            Counter::SelectHits => "select_hits",
            Counter::SelectNoTarget => "select_no_target",
        }
    }

    /// The counter for one scheduler mode.
    #[must_use]
    pub fn for_mode(mode: SchedMode) -> Counter {
        match mode {
            SchedMode::Lowered => Counter::ModeLowered,
            SchedMode::Compiled => Counter::ModeCompiled,
            SchedMode::EventDriven => Counter::ModeEventDriven,
            SchedMode::FullSweep => Counter::ModeFullSweep,
            SchedMode::Parallel { .. } => Counter::ModeParallel,
        }
    }
}

/// A fixed-bucket log2 latency histogram over relaxed atomics.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    sum_ns: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_ns: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// The bucket index a duration falls into: `floor(log2(ns))`,
    /// clamped to the table.
    #[must_use]
    pub fn bucket_index(ns: u64) -> usize {
        (63 - ns.max(1).leading_zeros() as usize).min(HIST_BUCKETS - 1)
    }

    /// Exclusive upper bound of bucket `i` in nanoseconds
    /// (`u64::MAX` for the overflow bucket).
    #[must_use]
    pub fn bucket_bound(i: usize) -> u64 {
        if i + 1 >= HIST_BUCKETS {
            u64::MAX
        } else {
            1u64 << (i + 1)
        }
    }

    /// Records one duration.
    pub fn record(&self, ns: u64) {
        self.buckets[Self::bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// A plain-data copy of the current state.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
        }
    }
}

/// Plain-data copy of one [`LatencyHistogram`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Sample count per log2 bucket (index = `floor(log2(ns))`).
    pub buckets: Vec<u64>,
    /// Sum of all recorded durations, nanoseconds.
    pub sum_ns: u64,
}

impl HistogramSnapshot {
    /// Total recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// The upper bound (ns) of the bucket containing the `q`-quantile
    /// sample (0 when the histogram is empty). Monotonic in `q`, so
    /// `quantile_ns(0.99) >= quantile_ns(0.5)` always holds.
    #[must_use]
    pub fn quantile_ns(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation)]
        #[allow(clippy::cast_sign_loss)]
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return LatencyHistogram::bucket_bound(i);
            }
        }
        LatencyHistogram::bucket_bound(HIST_BUCKETS - 1)
    }

    /// Mean recorded duration in nanoseconds (0 when empty).
    #[must_use]
    pub fn mean_ns(&self) -> u64 {
        self.sum_ns.checked_div(self.count()).unwrap_or(0)
    }
}

/// Per-slot worker/shard activity in a snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SlotSnapshot {
    /// Cumulative busy wall-clock nanoseconds (0 below
    /// [`ObsMode::Sampled`]).
    pub busy_ns: u64,
    /// Items (connections for server workers, jobs for batch shards)
    /// processed.
    pub items: u64,
}

/// The live, shared metric state of one [`crate::Service`].
///
/// All mutation is relaxed atomics; `&self` everywhere. The mode is
/// fixed at construction, so the disabled/counters fast paths are a
/// plain branch on an immutable field.
#[derive(Debug)]
pub struct MetricsRegistry {
    mode: ObsMode,
    counters: [AtomicU64; Counter::COUNT],
    fallback_causes: [AtomicU64; FallbackCause::COUNT],
    stages: [LatencyHistogram; Stage::COUNT],
    queue_depth: AtomicU64,
    connections_active: AtomicU64,
    worker_busy_ns: [AtomicU64; MAX_WORKER_SLOTS],
    worker_items: [AtomicU64; MAX_WORKER_SLOTS],
    shard_busy_ns: [AtomicU64; MAX_WORKER_SLOTS],
    shard_items: [AtomicU64; MAX_WORKER_SLOTS],
}

impl MetricsRegistry {
    /// A registry recording at `mode`.
    #[must_use]
    pub fn new(mode: ObsMode) -> Self {
        Self {
            mode,
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            fallback_causes: std::array::from_fn(|_| AtomicU64::new(0)),
            stages: std::array::from_fn(|_| LatencyHistogram::default()),
            queue_depth: AtomicU64::new(0),
            connections_active: AtomicU64::new(0),
            worker_busy_ns: std::array::from_fn(|_| AtomicU64::new(0)),
            worker_items: std::array::from_fn(|_| AtomicU64::new(0)),
            shard_busy_ns: std::array::from_fn(|_| AtomicU64::new(0)),
            shard_items: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// The recording mode fixed at construction.
    #[must_use]
    pub fn mode(&self) -> ObsMode {
        self.mode
    }

    /// Increments a counter by 1 (no-op when disabled).
    #[inline]
    pub fn inc(&self, counter: Counter) {
        self.add(counter, 1);
    }

    /// Adds to a counter (no-op when disabled).
    #[inline]
    pub fn add(&self, counter: Counter, n: u64) {
        if self.mode.enabled() {
            self.counters[counter as usize].fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value of a counter.
    #[must_use]
    pub fn get(&self, counter: Counter) -> u64 {
        self.counters[counter as usize].load(Ordering::Relaxed)
    }

    /// Records one stage duration into its latency histogram. Callers
    /// only measure when [`ObsMode::sampled`] (or a job requested its
    /// span), so this records unconditionally unless disabled.
    pub fn record_stage_ns(&self, stage: Stage, ns: u64) {
        if self.mode.enabled() {
            self.stages[stage.index()].record(ns);
        }
    }

    /// Absorbs one job's simulator telemetry into the service-wide
    /// counters (sampled mode drives every job at
    /// [`hdp_sim::TelemetryLevel::Counters`] for exactly this).
    pub fn absorb_sim_stats(&self, stats: &SimStats) {
        if !self.mode.enabled() {
            return;
        }
        self.add(Counter::SimSettles, stats.settles);
        self.add(Counter::SimDeltaPasses, stats.passes);
        self.add(Counter::SimLoweredSettles, stats.lowered_settles);
        self.add(Counter::SimCompiledSettles, stats.compiled_settles);
        self.add(Counter::SimFallbackSettles, stats.fallback_settles);
        self.add(Counter::SimOpsExecuted, stats.ops_executed);
        self.add(Counter::SimPlanInstalls, stats.plan_installs);
        for (cause, n) in stats.fallback_cause_counts() {
            if n > 0 {
                self.fallback_causes[cause.index()].fetch_add(n, Ordering::Relaxed);
            }
        }
    }

    /// A connection was accepted and queued for a worker.
    pub fn connection_queued(&self) {
        if self.mode.enabled() {
            self.inc(Counter::ConnectionsTotal);
            self.queue_depth.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// A worker claimed a queued connection; `wait_ns` is the queue
    /// wait when sampling measured it.
    pub fn connection_claimed(&self, wait_ns: Option<u64>) {
        if self.mode.enabled() {
            self.queue_depth.fetch_sub(1, Ordering::Relaxed);
            self.connections_active.fetch_add(1, Ordering::Relaxed);
            if let Some(ns) = wait_ns {
                self.stages[Stage::Queue.index()].record(ns);
            }
        }
    }

    /// A worker finished a connection.
    pub fn connection_closed(&self, worker: usize, busy_ns: Option<u64>) {
        if self.mode.enabled() {
            self.connections_active.fetch_sub(1, Ordering::Relaxed);
            let slot = worker.min(MAX_WORKER_SLOTS - 1);
            self.worker_items[slot].fetch_add(1, Ordering::Relaxed);
            if let Some(ns) = busy_ns {
                self.worker_busy_ns[slot].fetch_add(ns, Ordering::Relaxed);
            }
        }
    }

    /// A batch shard finished: `items` jobs over `busy_ns` of
    /// wall-clock (`busy_ns` 0 below sampled).
    pub fn record_shard(&self, shard: usize, busy_ns: u64, items: u64) {
        if self.mode.enabled() {
            let slot = shard.min(MAX_WORKER_SLOTS - 1);
            self.shard_busy_ns[slot].fetch_add(busy_ns, Ordering::Relaxed);
            self.shard_items[slot].fetch_add(items, Ordering::Relaxed);
        }
    }

    /// A plain-data copy of every counter, gauge and histogram.
    /// Cache-level fields are stitched in by
    /// [`crate::Service::metrics_snapshot`], which owns the cache.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let slots = |busy: &[AtomicU64; MAX_WORKER_SLOTS],
                     items: &[AtomicU64; MAX_WORKER_SLOTS]| {
            let mut v: Vec<SlotSnapshot> = busy
                .iter()
                .zip(items)
                .map(|(b, i)| SlotSnapshot {
                    busy_ns: b.load(Ordering::Relaxed),
                    items: i.load(Ordering::Relaxed),
                })
                .collect();
            while v.last().is_some_and(|s| s.busy_ns == 0 && s.items == 0) {
                v.pop();
            }
            v
        };
        MetricsSnapshot {
            mode: self.mode.label().to_owned(),
            counters: Counter::ALL.iter().map(|&c| (c, self.get(c))).collect(),
            fallback_causes: FallbackCause::ALL
                .iter()
                .map(|&c| (c, self.fallback_causes[c.index()].load(Ordering::Relaxed)))
                .collect(),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            connections_active: self.connections_active.load(Ordering::Relaxed),
            cache: None,
            workers: slots(&self.worker_busy_ns, &self.worker_items),
            shards: slots(&self.shard_busy_ns, &self.shard_items),
            stages: Stage::ALL
                .iter()
                .map(|&s| (s, self.stages[s.index()].snapshot()))
                .collect(),
        }
    }

    /// Renders the current state as Prometheus-style plain text.
    #[must_use]
    pub fn render_text(&self) -> String {
        self.snapshot().render_text()
    }
}

/// Cache-level fields of a snapshot (from
/// [`crate::PlanCache::stats`] plus the resident gauges).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheSection {
    /// Lookups that found a cached design.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// First-time insertions.
    pub insertions: u64,
    /// LRU evictions (cumulative — survives wraps).
    pub evictions: u64,
    /// Plans attached to already-cached designs.
    pub plan_attaches: u64,
    /// Estimated bytes ever inserted (cumulative).
    pub bytes_inserted: u64,
    /// Estimated bytes evicted (cumulative).
    pub bytes_evicted: u64,
    /// Estimated bytes currently resident (gauge).
    pub bytes_resident: u64,
    /// Designs currently cached (gauge).
    pub len: u64,
    /// Entry budget.
    pub capacity: u64,
}

/// A plain-data, serialisable snapshot of a service's metrics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// The registry's [`ObsMode`] label.
    pub mode: String,
    /// Every monotonic counter, in table order.
    pub counters: Vec<(Counter, u64)>,
    /// Typed fallback-cause counters aggregated across jobs.
    pub fallback_causes: Vec<(FallbackCause, u64)>,
    /// Connections accepted but not yet claimed by a worker (gauge).
    pub queue_depth: u64,
    /// Connections currently being served (gauge).
    pub connections_active: u64,
    /// Cache counters and gauges (absent until stitched in by
    /// [`crate::Service::metrics_snapshot`]).
    pub cache: Option<CacheSection>,
    /// Per-server-worker activity.
    pub workers: Vec<SlotSnapshot>,
    /// Per-batch-shard activity.
    pub shards: Vec<SlotSnapshot>,
    /// Per-stage latency histograms, in [`Stage::ALL`] order.
    pub stages: Vec<(Stage, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// Value of one counter.
    #[must_use]
    pub fn counter(&self, counter: Counter) -> u64 {
        self.counters
            .iter()
            .find(|(c, _)| *c == counter)
            .map_or(0, |(_, n)| *n)
    }

    /// The histogram of one stage.
    #[must_use]
    pub fn stage(&self, stage: Stage) -> Option<&HistogramSnapshot> {
        self.stages
            .iter()
            .find(|(s, _)| *s == stage)
            .map(|(_, h)| h)
    }

    /// Renders the versioned single-line JSON document served by the
    /// `stats` wire verb.
    #[must_use]
    pub fn to_json(&self) -> String {
        let obj = |pairs: Vec<(String, Json)>| Json::Obj(pairs);
        let counters = self
            .counters
            .iter()
            .map(|(c, n)| (c.name().to_owned(), Json::Num(*n)))
            .collect();
        let causes = self
            .fallback_causes
            .iter()
            .map(|(c, n)| (c.label().to_owned(), Json::Num(*n)))
            .collect();
        let slot_arr = |slots: &[SlotSnapshot]| {
            Json::Arr(
                slots
                    .iter()
                    .map(|s| {
                        obj(vec![
                            ("busy_ns".to_owned(), Json::Num(s.busy_ns)),
                            ("items".to_owned(), Json::Num(s.items)),
                        ])
                    })
                    .collect(),
            )
        };
        let histograms = Json::Obj(
            self.stages
                .iter()
                .map(|(stage, h)| {
                    let sparse: Vec<Json> = h
                        .buckets
                        .iter()
                        .enumerate()
                        .filter(|&(_, &n)| n > 0)
                        .map(|(i, &n)| Json::Arr(vec![Json::Num(i as u64), Json::Num(n)]))
                        .collect();
                    (
                        stage.label().to_owned(),
                        obj(vec![
                            ("count".to_owned(), Json::Num(h.count())),
                            ("sum_ns".to_owned(), Json::Num(h.sum_ns)),
                            ("p50_ns".to_owned(), Json::Num(h.quantile_ns(0.50))),
                            ("p90_ns".to_owned(), Json::Num(h.quantile_ns(0.90))),
                            ("p99_ns".to_owned(), Json::Num(h.quantile_ns(0.99))),
                            ("buckets".to_owned(), Json::Arr(sparse)),
                        ]),
                    )
                })
                .collect(),
        );
        let mut fields = vec![
            ("schema".to_owned(), Json::Str(METRICS_SCHEMA.to_owned())),
            ("mode".to_owned(), Json::Str(self.mode.clone())),
            ("counters".to_owned(), Json::Obj(counters)),
            ("fallback_causes".to_owned(), Json::Obj(causes)),
            (
                "gauges".to_owned(),
                obj(vec![
                    ("queue_depth".to_owned(), Json::Num(self.queue_depth)),
                    (
                        "connections_active".to_owned(),
                        Json::Num(self.connections_active),
                    ),
                ]),
            ),
        ];
        if let Some(c) = &self.cache {
            fields.push((
                "cache".to_owned(),
                obj(vec![
                    ("hits".to_owned(), Json::Num(c.hits)),
                    ("misses".to_owned(), Json::Num(c.misses)),
                    ("insertions".to_owned(), Json::Num(c.insertions)),
                    ("evictions".to_owned(), Json::Num(c.evictions)),
                    ("plan_attaches".to_owned(), Json::Num(c.plan_attaches)),
                    ("bytes_inserted".to_owned(), Json::Num(c.bytes_inserted)),
                    ("bytes_evicted".to_owned(), Json::Num(c.bytes_evicted)),
                    ("bytes_resident".to_owned(), Json::Num(c.bytes_resident)),
                    ("len".to_owned(), Json::Num(c.len)),
                    ("capacity".to_owned(), Json::Num(c.capacity)),
                ]),
            ));
        }
        fields.push(("workers".to_owned(), slot_arr(&self.workers)));
        fields.push(("shards".to_owned(), slot_arr(&self.shards)));
        fields.push(("histograms".to_owned(), histograms));
        Json::Obj(fields).to_string()
    }

    /// Parses a snapshot document produced by
    /// [`MetricsSnapshot::to_json`].
    ///
    /// # Errors
    ///
    /// A message naming the malformed field.
    pub fn from_json(doc: &Json) -> Result<Self, String> {
        if doc.get("schema").and_then(Json::as_str) != Some(METRICS_SCHEMA) {
            return Err(format!("not a {METRICS_SCHEMA} document"));
        }
        let num = |v: Option<&Json>, what: &str| {
            v.and_then(Json::as_u64)
                .ok_or_else(|| format!("missing or non-numeric {what}"))
        };
        let counters_doc = doc.get("counters").ok_or("missing counters")?;
        let counters = Counter::ALL
            .iter()
            .map(|&c| num(counters_doc.get(c.name()), c.name()).map(|n| (c, n)))
            .collect::<Result<Vec<_>, _>>()?;
        let causes_doc = doc
            .get("fallback_causes")
            .ok_or("missing fallback_causes")?;
        let fallback_causes = FallbackCause::ALL
            .iter()
            .map(|&c| num(causes_doc.get(c.label()), c.label()).map(|n| (c, n)))
            .collect::<Result<Vec<_>, _>>()?;
        let gauges = doc.get("gauges").ok_or("missing gauges")?;
        let slots = |v: Option<&Json>| -> Result<Vec<SlotSnapshot>, String> {
            v.and_then(Json::as_arr)
                .unwrap_or(&[])
                .iter()
                .map(|s| {
                    Ok(SlotSnapshot {
                        busy_ns: num(s.get("busy_ns"), "slot busy_ns")?,
                        items: num(s.get("items"), "slot items")?,
                    })
                })
                .collect()
        };
        let hist_doc = doc.get("histograms").ok_or("missing histograms")?;
        let stages = Stage::ALL
            .iter()
            .map(|&stage| {
                let h = hist_doc
                    .get(stage.label())
                    .ok_or_else(|| format!("missing histogram {}", stage.label()))?;
                let mut buckets = vec![0u64; HIST_BUCKETS];
                for pair in h.get("buckets").and_then(Json::as_arr).unwrap_or(&[]) {
                    let pair = pair.as_arr().ok_or("bucket entry is not a pair")?;
                    let (i, n) = match pair {
                        [i, n] => (
                            num(Some(i), "bucket index")? as usize,
                            num(Some(n), "bucket count")?,
                        ),
                        _ => return Err("bucket entry is not a pair".to_owned()),
                    };
                    if i >= HIST_BUCKETS {
                        return Err(format!("bucket index {i} out of range"));
                    }
                    buckets[i] = n;
                }
                Ok((
                    stage,
                    HistogramSnapshot {
                        buckets,
                        sum_ns: num(h.get("sum_ns"), "sum_ns")?,
                    },
                ))
            })
            .collect::<Result<Vec<_>, String>>()?;
        let cache = match doc.get("cache") {
            None => None,
            Some(c) => Some(CacheSection {
                hits: num(c.get("hits"), "cache.hits")?,
                misses: num(c.get("misses"), "cache.misses")?,
                insertions: num(c.get("insertions"), "cache.insertions")?,
                evictions: num(c.get("evictions"), "cache.evictions")?,
                plan_attaches: num(c.get("plan_attaches"), "cache.plan_attaches")?,
                bytes_inserted: num(c.get("bytes_inserted"), "cache.bytes_inserted")?,
                bytes_evicted: num(c.get("bytes_evicted"), "cache.bytes_evicted")?,
                bytes_resident: num(c.get("bytes_resident"), "cache.bytes_resident")?,
                len: num(c.get("len"), "cache.len")?,
                capacity: num(c.get("capacity"), "cache.capacity")?,
            }),
        };
        Ok(MetricsSnapshot {
            mode: doc
                .get("mode")
                .and_then(Json::as_str)
                .ok_or("missing mode")?
                .to_owned(),
            counters,
            fallback_causes,
            queue_depth: num(gauges.get("queue_depth"), "queue_depth")?,
            connections_active: num(gauges.get("connections_active"), "connections_active")?,
            cache,
            workers: slots(doc.get("workers"))?,
            shards: slots(doc.get("shards"))?,
            stages,
        })
    }

    /// Renders the snapshot as Prometheus-style plain text
    /// (`# TYPE` comments, cumulative `_bucket{le=...}` histogram
    /// series).
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut out = String::with_capacity(4096);
        let _ = writeln!(out, "# hdp-service metrics (mode {})", self.mode);
        for (c, n) in &self.counters {
            let _ = writeln!(out, "# TYPE hdp_service_{} counter", c.name());
            let _ = writeln!(out, "hdp_service_{} {n}", c.name());
        }
        out.push_str("# TYPE hdp_service_fallback_cause_total counter\n");
        for (c, n) in &self.fallback_causes {
            let _ = writeln!(
                out,
                "hdp_service_fallback_cause_total{{cause=\"{}\"}} {n}",
                c.label()
            );
        }
        out.push_str("# TYPE hdp_service_queue_depth gauge\n");
        let _ = writeln!(out, "hdp_service_queue_depth {}", self.queue_depth);
        out.push_str("# TYPE hdp_service_connections_active gauge\n");
        let _ = writeln!(
            out,
            "hdp_service_connections_active {}",
            self.connections_active
        );
        if let Some(c) = &self.cache {
            for (name, kind, value) in [
                ("cache_hits", "counter", c.hits),
                ("cache_misses", "counter", c.misses),
                ("cache_insertions", "counter", c.insertions),
                ("cache_evictions", "counter", c.evictions),
                ("cache_plan_attaches", "counter", c.plan_attaches),
                ("cache_bytes_inserted", "counter", c.bytes_inserted),
                ("cache_bytes_evicted", "counter", c.bytes_evicted),
                ("cache_bytes_resident", "gauge", c.bytes_resident),
                ("cache_entries", "gauge", c.len),
                ("cache_capacity", "gauge", c.capacity),
            ] {
                let _ = writeln!(out, "# TYPE hdp_service_{name} {kind}");
                let _ = writeln!(out, "hdp_service_{name} {value}");
            }
        }
        for (family, slots) in [("worker", &self.workers), ("shard", &self.shards)] {
            if slots.is_empty() {
                continue;
            }
            let _ = writeln!(out, "# TYPE hdp_service_{family}_busy_ns counter");
            let _ = writeln!(out, "# TYPE hdp_service_{family}_items counter");
            for (i, s) in slots.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "hdp_service_{family}_busy_ns{{{family}=\"{i}\"}} {}",
                    s.busy_ns
                );
                let _ = writeln!(
                    out,
                    "hdp_service_{family}_items{{{family}=\"{i}\"}} {}",
                    s.items
                );
            }
        }
        out.push_str("# TYPE hdp_service_stage_latency_ns histogram\n");
        for (stage, h) in &self.stages {
            if h.count() == 0 {
                continue;
            }
            let mut cumulative = 0u64;
            for (i, &n) in h.buckets.iter().enumerate() {
                if n == 0 {
                    continue;
                }
                cumulative += n;
                let _ = writeln!(
                    out,
                    "hdp_service_stage_latency_ns_bucket{{stage=\"{}\",le=\"{}\"}} {cumulative}",
                    stage.label(),
                    LatencyHistogram::bucket_bound(i)
                );
            }
            let _ = writeln!(
                out,
                "hdp_service_stage_latency_ns_bucket{{stage=\"{}\",le=\"+Inf\"}} {cumulative}",
                stage.label()
            );
            let _ = writeln!(
                out,
                "hdp_service_stage_latency_ns_sum{{stage=\"{}\"}} {}",
                stage.label(),
                h.sum_ns
            );
            let _ = writeln!(
                out,
                "hdp_service_stage_latency_ns_count{{stage=\"{}\"}} {}",
                stage.label(),
                h.count()
            );
        }
        out
    }
}

/// Validates a snapshot document against the
/// [`METRICS_SCHEMA`] schema and its cross-counter invariants.
/// Returns a list of problems (empty = valid). Shared by the unit
/// tests, the integration suite and the CI `service-metrics-smoke`
/// job.
#[must_use]
pub fn validate_snapshot(doc: &Json) -> Vec<String> {
    let mut problems = Vec::new();
    let snap = match MetricsSnapshot::from_json(doc) {
        Ok(snap) => snap,
        Err(e) => return vec![e],
    };
    let jobs = snap.counter(Counter::JobsTotal);
    if let Some(cache) = &snap.cache {
        if cache.hits + cache.misses != jobs {
            problems.push(format!(
                "cache hits {} + misses {} != jobs_total {jobs}",
                cache.hits, cache.misses
            ));
        }
        if cache.bytes_inserted < cache.bytes_evicted + cache.bytes_resident {
            problems.push(format!(
                "cache byte accounting: inserted {} < evicted {} + resident {}",
                cache.bytes_inserted, cache.bytes_evicted, cache.bytes_resident
            ));
        }
        if cache.len > cache.capacity {
            problems.push(format!(
                "cache len {} exceeds capacity {}",
                cache.len, cache.capacity
            ));
        }
    }
    let outcomes = snap.counter(Counter::JobsOk)
        + snap.counter(Counter::ErrorsBuild)
        + snap.counter(Counter::ErrorsSim);
    if outcomes != jobs {
        problems.push(format!(
            "job outcomes {outcomes} (ok + build errors + sim errors) != jobs_total {jobs}"
        ));
    }
    let by_mode: u64 = [
        Counter::ModeLowered,
        Counter::ModeCompiled,
        Counter::ModeEventDriven,
        Counter::ModeFullSweep,
        Counter::ModeParallel,
    ]
    .iter()
    .map(|&c| snap.counter(c))
    .sum();
    if by_mode != jobs {
        problems.push(format!("jobs by mode {by_mode} != jobs_total {jobs}"));
    }
    if snap.counter(Counter::VerifyFailures) > 0 {
        problems.push("verify_failures is nonzero: cached execution diverged".to_owned());
    }
    // Select requests that were not malformed resolve to exactly one
    // of hit / no-target, so the two can never exceed the requests.
    let select_resolved = snap.counter(Counter::SelectHits) + snap.counter(Counter::SelectNoTarget);
    if select_resolved > snap.counter(Counter::SelectRequests) {
        problems.push(format!(
            "select hits {} + no-target {} exceed select_requests {}",
            snap.counter(Counter::SelectHits),
            snap.counter(Counter::SelectNoTarget),
            snap.counter(Counter::SelectRequests)
        ));
    }
    for (stage, h) in &snap.stages {
        let (p50, p99) = (h.quantile_ns(0.50), h.quantile_ns(0.99));
        if p99 < p50 {
            problems.push(format!("stage {} p99 {p99} < p50 {p50}", stage.label()));
        }
        let bucket_total: u64 = h.buckets.iter().sum();
        if bucket_total != h.count() {
            problems.push(format!("stage {} bucket sum mismatch", stage.label()));
        }
    }
    if snap.mode == ObsMode::Sampled.label() {
        if let Some(total) = snap.stage(Stage::Total) {
            if total.count() != jobs {
                problems.push(format!(
                    "sampled mode: total-stage histogram count {} != jobs_total {jobs}",
                    total.count()
                ));
            }
        }
        // Settle-shaped causes reconcile with the absorbed simulator
        // counters; LoweredComponent counts components, not settles.
        let settle_causes: u64 = snap
            .fallback_causes
            .iter()
            .filter(|(c, _)| *c != FallbackCause::LoweredComponent)
            .map(|(_, n)| n)
            .sum();
        if settle_causes != snap.counter(Counter::SimFallbackSettles) {
            problems.push(format!(
                "settle-shaped fallback causes {settle_causes} != sim_fallback_settles {}",
                snap.counter(Counter::SimFallbackSettles)
            ));
        }
    }
    problems
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_log2() {
        assert_eq!(LatencyHistogram::bucket_index(0), 0);
        assert_eq!(LatencyHistogram::bucket_index(1), 0);
        assert_eq!(LatencyHistogram::bucket_index(2), 1);
        assert_eq!(LatencyHistogram::bucket_index(3), 1);
        assert_eq!(LatencyHistogram::bucket_index(1024), 10);
        assert_eq!(
            LatencyHistogram::bucket_index(u64::MAX),
            HIST_BUCKETS - 1,
            "overflow clamps to the last bucket"
        );
    }

    #[test]
    fn histogram_quantiles_are_monotonic() {
        let h = LatencyHistogram::default();
        for ns in [10, 100, 1_000, 10_000, 100_000, 1_000_000] {
            h.record(ns);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count(), 6);
        let p50 = snap.quantile_ns(0.50);
        let p90 = snap.quantile_ns(0.90);
        let p99 = snap.quantile_ns(0.99);
        assert!(p50 <= p90 && p90 <= p99, "p50 {p50} p90 {p90} p99 {p99}");
        assert!(snap.mean_ns() > 0);
    }

    #[test]
    fn empty_histogram_quantile_is_zero() {
        let snap = LatencyHistogram::default().snapshot();
        assert_eq!(snap.count(), 0);
        assert_eq!(snap.quantile_ns(0.99), 0);
        assert_eq!(snap.mean_ns(), 0);
    }

    #[test]
    fn counter_table_is_dense() {
        for (i, c) in Counter::ALL.iter().enumerate() {
            assert_eq!(*c as usize, i, "{} out of order", c.name());
        }
        let names: std::collections::HashSet<&str> =
            Counter::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(names.len(), Counter::COUNT);
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let reg = MetricsRegistry::new(ObsMode::Disabled);
        reg.inc(Counter::JobsTotal);
        reg.record_stage_ns(Stage::Execute, 1_000);
        reg.connection_queued();
        let snap = reg.snapshot();
        assert!(snap.counters.iter().all(|&(_, n)| n == 0));
        assert!(snap.stages.iter().all(|(_, h)| h.count() == 0));
        assert_eq!(snap.queue_depth, 0);
    }

    #[test]
    fn snapshot_json_round_trips() {
        let reg = MetricsRegistry::new(ObsMode::Sampled);
        reg.inc(Counter::JobsTotal);
        reg.inc(Counter::JobsOk);
        reg.inc(Counter::ModeLowered);
        reg.record_stage_ns(Stage::Total, 5_000);
        reg.record_stage_ns(Stage::Execute, 3_000);
        reg.record_shard(0, 9_000, 1);
        let mut snap = reg.snapshot();
        snap.cache = Some(CacheSection {
            hits: 0,
            misses: 1,
            insertions: 1,
            bytes_inserted: 640,
            bytes_resident: 640,
            len: 1,
            capacity: 8,
            ..CacheSection::default()
        });
        let text = snap.to_json();
        assert!(!text.contains('\n'), "wire documents are single-line");
        let doc = Json::parse(&text).expect("snapshot parses");
        let back = MetricsSnapshot::from_json(&doc).expect("snapshot round-trips");
        assert_eq!(back, snap);
        assert_eq!(validate_snapshot(&doc), Vec::<String>::new());
    }

    #[test]
    fn validator_catches_reconciliation_breaks() {
        let reg = MetricsRegistry::new(ObsMode::Counters);
        reg.inc(Counter::JobsTotal); // no outcome, no mode, no cache lookup
        let mut snap = reg.snapshot();
        snap.cache = Some(CacheSection {
            capacity: 8,
            ..CacheSection::default()
        });
        let doc = Json::parse(&snap.to_json()).unwrap();
        let problems = validate_snapshot(&doc);
        assert!(
            problems.iter().any(|p| p.contains("jobs_total")),
            "unreconciled counters must be reported: {problems:?}"
        );
    }

    #[test]
    fn render_text_is_prometheus_shaped() {
        let reg = MetricsRegistry::new(ObsMode::Sampled);
        reg.inc(Counter::JobsTotal);
        reg.record_stage_ns(Stage::Execute, 2_000);
        let text = reg.render_text();
        assert!(text.contains("# TYPE hdp_service_jobs_total counter"));
        assert!(text.contains("hdp_service_jobs_total 1"));
        assert!(
            text.contains("hdp_service_stage_latency_ns_bucket{stage=\"execute\",le=\"2048\"} 1")
        );
        assert!(text.contains("hdp_service_stage_latency_ns_count{stage=\"execute\"} 1"));
        assert!(text.contains("le=\"+Inf\"} 1"));
    }
}
