//! The content-addressed plan cache.
//!
//! The expensive part of simulating a generated design is not the
//! cycle loop — it is everything before it: metagen instantiation,
//! netlist validation and the compiled scheduler's levelization. All
//! three depend only on the *design*, never on the stimulus, so the
//! service caches their products keyed by the design's content
//! address ([`hdp_conform::wire::design_hash`]): the validated
//! [`Netlist`], the pristine (never-evaluated) [`NetlistComponent`]
//! built from it, and, when the design levelizes, the exported
//! [`CompiledPlan`]. A warm submission clones the component template
//! (a memcpy of its state vectors — the netlist itself is shared
//! behind an `Arc`) and installs the plan
//! ([`hdp_sim::Simulator::install_plan`]) instead of re-deriving any
//! of it — compile once, simulate millions of stimuli.
//!
//! Eviction is least-recently-used over a fixed entry budget, and
//! every lookup outcome is counted so the server can report its hit
//! ratio.

use hdp_hdl::Netlist;
use hdp_sim::{CompiledPlan, NetlistComponent};
use std::collections::HashMap;
use std::sync::Arc;

/// Lookup / insertion counters of a [`PlanCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a cached entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries inserted (first insertion per key).
    pub insertions: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
}

impl CacheStats {
    /// Hits as a fraction of all lookups (0.0 when none happened).
    #[must_use]
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                self.hits as f64 / total as f64
            }
        }
    }
}

/// The per-design artefacts the cache hands out on a hit.
#[derive(Debug, Clone)]
pub struct CachedDesign {
    /// The validated netlist.
    pub netlist: Arc<Netlist>,
    /// A pristine, never-evaluated interpreter instance; clone it per
    /// job instead of re-levelizing and re-wiring.
    pub template: Arc<NetlistComponent>,
    /// The exported compiled schedule, once some job derived one.
    pub plan: Option<Arc<CompiledPlan>>,
}

/// One cached design plus its LRU stamp.
#[derive(Debug, Clone)]
struct Entry {
    design: CachedDesign,
    last_used: u64,
}

/// An LRU cache of per-design artefacts, keyed by content address.
///
/// Not internally synchronised — the service wraps it in a mutex and
/// holds the lock only for lookups and insertions, never while a
/// simulation runs.
#[derive(Debug)]
pub struct PlanCache {
    capacity: usize,
    tick: u64,
    entries: HashMap<String, Entry>,
    stats: CacheStats,
}

impl PlanCache {
    /// An empty cache holding at most `capacity` designs. A zero
    /// capacity disables caching: every lookup misses and inserts are
    /// dropped.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            tick: 0,
            entries: HashMap::new(),
            stats: CacheStats::default(),
        }
    }

    /// Looks up a design by content address, refreshing its LRU
    /// position. Returns shared handles — the cache keeps ownership,
    /// and a lookup costs reference-count bumps, not deep clones.
    pub fn lookup(&mut self, hash: &str) -> Option<CachedDesign> {
        self.tick += 1;
        match self.entries.get_mut(hash) {
            Some(entry) => {
                entry.last_used = self.tick;
                self.stats.hits += 1;
                Some(entry.design.clone())
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Inserts (or refreshes) a design, evicting the least recently
    /// used entry if the cache is full.
    pub fn insert(&mut self, hash: String, design: CachedDesign) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        if let Some(entry) = self.entries.get_mut(&hash) {
            // Concurrent submitters may both miss and both insert;
            // keep the richer entry (a plan beats no plan).
            entry.last_used = self.tick;
            if entry.design.plan.is_none() {
                entry.design.plan = design.plan;
            }
            return;
        }
        if self.entries.len() >= self.capacity {
            if let Some(victim) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                self.entries.remove(&victim);
                self.stats.evictions += 1;
            }
        }
        self.entries.insert(
            hash,
            Entry {
                design,
                last_used: self.tick,
            },
        );
        self.stats.insertions += 1;
    }

    /// Attaches a plan to an already cached design (a warm submission
    /// that had to compile locally publishes its schedule here).
    pub fn attach_plan(&mut self, hash: &str, plan: CompiledPlan) {
        if let Some(entry) = self.entries.get_mut(hash) {
            if entry.design.plan.is_none() {
                entry.design.plan = Some(Arc::new(plan));
            }
        }
    }

    /// Number of cached designs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entry budget.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Counters since construction.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdp_hdl::{Entity, Netlist, PortDir};

    /// A minimal valid design (q' = q + 1) wrapped as a cache entry.
    fn tiny_design(name: &str) -> CachedDesign {
        let entity = Entity::builder(name)
            .port("q", PortDir::Out, 4)
            .unwrap()
            .build()
            .unwrap();
        let mut nl = Netlist::new(entity);
        let q = nl.add_net("q", 4).unwrap();
        let d = nl.add_net("d", 4).unwrap();
        nl.add_cell(
            "u_reg",
            hdp_hdl::prim::Prim::Reg {
                width: 4,
                has_enable: false,
                reset_value: 0,
            },
            vec![d],
            vec![q],
        )
        .unwrap();
        nl.add_cell(
            "u_inc",
            hdp_hdl::prim::Prim::Inc { width: 4 },
            vec![q],
            vec![d],
        )
        .unwrap();
        nl.bind_port("q", q).unwrap();
        let mut sim = hdp_sim::Simulator::new();
        let sig = sim.add_signal("q", 4).unwrap();
        let netlist = Arc::new(nl);
        let template = NetlistComponent::new_prevalidated(
            "dut",
            Arc::clone(&netlist),
            sim.bus(),
            &[("q", sig)],
        )
        .unwrap();
        CachedDesign {
            netlist,
            template: Arc::new(template),
            plan: None,
        }
    }

    #[test]
    fn counts_hits_and_misses() {
        let mut cache = PlanCache::new(4);
        assert!(cache.lookup("h1").is_none());
        cache.insert("h1".into(), tiny_design("a"));
        assert!(cache.lookup("h1").is_some());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.insertions), (1, 1, 1));
        assert!((stats.hit_ratio() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut cache = PlanCache::new(2);
        cache.insert("h1".into(), tiny_design("a"));
        cache.insert("h2".into(), tiny_design("b"));
        assert!(cache.lookup("h1").is_some()); // refresh h1: h2 is now LRU
        cache.insert("h3".into(), tiny_design("c"));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.lookup("h2").is_none(), "h2 was the LRU victim");
        assert!(cache.lookup("h1").is_some());
        assert!(cache.lookup("h3").is_some());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut cache = PlanCache::new(0);
        cache.insert("h1".into(), tiny_design("a"));
        assert!(cache.is_empty());
        assert!(cache.lookup("h1").is_none());
    }

    #[test]
    fn reinsert_keeps_existing_plan_slot_filled_once() {
        let mut cache = PlanCache::new(2);
        cache.insert("h1".into(), tiny_design("a"));
        cache.insert("h1".into(), tiny_design("a"));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().insertions, 1);
    }
}
