//! The content-addressed plan cache.
//!
//! The expensive part of simulating a generated design is not the
//! cycle loop — it is everything before it: metagen instantiation,
//! netlist validation and the compiled scheduler's levelization. All
//! three depend only on the *design*, never on the stimulus, so the
//! service caches their products keyed by the design's content
//! address ([`hdp_conform::wire::design_hash`]): the validated
//! [`Netlist`], the pristine (never-evaluated) [`NetlistComponent`]
//! built from it, and, when the design levelizes, the exported
//! [`CompiledPlan`]. A warm submission clones the component template
//! (a memcpy of its state vectors — the netlist itself is shared
//! behind an `Arc`) and installs the plan
//! ([`hdp_sim::Simulator::install_plan`]) instead of re-deriving any
//! of it — compile once, simulate millions of stimuli.
//!
//! Eviction is least-recently-used over a fixed entry budget, and
//! every lookup outcome is counted so the server can report its hit
//! ratio. Alongside the entry count the cache keeps a byte-level
//! estimate of what is resident ([`PlanCache::bytes_resident`]) and
//! cumulative inserted/evicted byte counters, so the metrics plane
//! can expose cache pressure, not just hit ratio.

use hdp_hdl::{Cell, Netlist};
use hdp_sim::{CompiledPlan, NetlistComponent};
use std::collections::HashMap;
use std::sync::Arc;

/// Lookup / insertion counters of a [`PlanCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a cached entry.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries inserted (first insertion per key).
    pub insertions: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Plans attached to already cached designs
    /// ([`PlanCache::attach_plan`] calls that stuck).
    pub plan_attaches: u64,
    /// Estimated bytes ever made resident (insertions plus plan
    /// attachments; cumulative, survives evictions).
    pub bytes_inserted: u64,
    /// Estimated bytes released by evictions (cumulative).
    pub bytes_evicted: u64,
}

impl CacheStats {
    /// Hits as a fraction of all lookups (0.0 when none happened).
    #[must_use]
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                self.hits as f64 / total as f64
            }
        }
    }
}

/// The per-design artefacts the cache hands out on a hit.
#[derive(Debug, Clone)]
pub struct CachedDesign {
    /// The validated netlist.
    pub netlist: Arc<Netlist>,
    /// A pristine, never-evaluated interpreter instance; clone it per
    /// job instead of re-levelizing and re-wiring.
    pub template: Arc<NetlistComponent>,
    /// The exported compiled schedule, once some job derived one.
    pub plan: Option<Arc<CompiledPlan>>,
}

impl CachedDesign {
    /// Estimated resident footprint of this entry in bytes: netlist
    /// structure plus the compiled plan's
    /// [`CompiledPlan::estimate_bytes`]. A cache-sizing estimate, not
    /// an allocator measurement — the interpreter template is counted
    /// via its netlist, whose shape dominates its state vectors.
    #[must_use]
    pub fn estimate_bytes(&self) -> u64 {
        let nets: u64 = self
            .netlist
            .nets()
            .iter()
            .map(|n| (std::mem::size_of::<hdp_hdl::Net>() + n.name().len()) as u64)
            .sum();
        let cells: u64 = self
            .netlist
            .cells()
            .iter()
            .map(|c| {
                (std::mem::size_of::<Cell>()
                    + c.name().len()
                    + (c.inputs().len() + c.outputs().len()) * std::mem::size_of::<u32>())
                    as u64
            })
            .sum();
        let plan = self.plan.as_ref().map_or(0, |p| p.estimate_bytes());
        nets + cells + plan
    }
}

/// One cached design plus its LRU stamp and byte estimate.
#[derive(Debug, Clone)]
struct Entry {
    design: CachedDesign,
    last_used: u64,
    bytes: u64,
}

/// An LRU cache of per-design artefacts, keyed by content address.
///
/// Not internally synchronised — the service wraps it in a mutex and
/// holds the lock only for lookups and insertions, never while a
/// simulation runs.
#[derive(Debug)]
pub struct PlanCache {
    capacity: usize,
    tick: u64,
    entries: HashMap<String, Entry>,
    stats: CacheStats,
    bytes_resident: u64,
}

impl PlanCache {
    /// An empty cache holding at most `capacity` designs. A zero
    /// capacity disables caching: every lookup misses and inserts are
    /// dropped.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            tick: 0,
            entries: HashMap::new(),
            stats: CacheStats::default(),
            bytes_resident: 0,
        }
    }

    /// Looks up a design by content address, refreshing its LRU
    /// position. Returns shared handles — the cache keeps ownership,
    /// and a lookup costs reference-count bumps, not deep clones.
    pub fn lookup(&mut self, hash: &str) -> Option<CachedDesign> {
        self.tick += 1;
        match self.entries.get_mut(hash) {
            Some(entry) => {
                entry.last_used = self.tick;
                self.stats.hits += 1;
                Some(entry.design.clone())
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Inserts (or refreshes) a design, evicting the least recently
    /// used entry if the cache is full.
    pub fn insert(&mut self, hash: String, design: CachedDesign) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        if let Some(entry) = self.entries.get_mut(&hash) {
            // Concurrent submitters may both miss and both insert;
            // keep the richer entry (a plan beats no plan).
            entry.last_used = self.tick;
            if entry.design.plan.is_none() && design.plan.is_some() {
                entry.design.plan = design.plan;
                let grown = entry.design.estimate_bytes();
                self.stats.bytes_inserted += grown - entry.bytes;
                self.bytes_resident += grown - entry.bytes;
                entry.bytes = grown;
            }
            return;
        }
        if self.entries.len() >= self.capacity {
            if let Some(victim) = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                if let Some(evicted) = self.entries.remove(&victim) {
                    self.stats.evictions += 1;
                    self.stats.bytes_evicted += evicted.bytes;
                    self.bytes_resident -= evicted.bytes;
                }
            }
        }
        let bytes = design.estimate_bytes();
        self.stats.bytes_inserted += bytes;
        self.bytes_resident += bytes;
        self.entries.insert(
            hash,
            Entry {
                design,
                last_used: self.tick,
                bytes,
            },
        );
        self.stats.insertions += 1;
    }

    /// Attaches a plan to an already cached design (a warm submission
    /// that had to compile locally publishes its schedule here).
    pub fn attach_plan(&mut self, hash: &str, plan: CompiledPlan) {
        if let Some(entry) = self.entries.get_mut(hash) {
            if entry.design.plan.is_none() {
                let plan_bytes = plan.estimate_bytes();
                entry.design.plan = Some(Arc::new(plan));
                self.stats.plan_attaches += 1;
                self.stats.bytes_inserted += plan_bytes;
                self.bytes_resident += plan_bytes;
                entry.bytes += plan_bytes;
            }
        }
    }

    /// Number of cached designs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entry budget.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Estimated bytes currently resident across all entries (the
    /// gauge behind `cache.bytes_resident` in metrics snapshots;
    /// always `bytes_inserted - bytes_evicted`).
    #[must_use]
    pub fn bytes_resident(&self) -> u64 {
        self.bytes_resident
    }

    /// Counters since construction.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdp_hdl::{Entity, Netlist, PortDir};

    /// A minimal valid design (q' = q + 1) wrapped as a cache entry.
    fn tiny_design(name: &str) -> CachedDesign {
        let entity = Entity::builder(name)
            .port("q", PortDir::Out, 4)
            .unwrap()
            .build()
            .unwrap();
        let mut nl = Netlist::new(entity);
        let q = nl.add_net("q", 4).unwrap();
        let d = nl.add_net("d", 4).unwrap();
        nl.add_cell(
            "u_reg",
            hdp_hdl::prim::Prim::Reg {
                width: 4,
                has_enable: false,
                reset_value: 0,
            },
            vec![d],
            vec![q],
        )
        .unwrap();
        nl.add_cell(
            "u_inc",
            hdp_hdl::prim::Prim::Inc { width: 4 },
            vec![q],
            vec![d],
        )
        .unwrap();
        nl.bind_port("q", q).unwrap();
        let mut sim = hdp_sim::Simulator::new();
        let sig = sim.add_signal("q", 4).unwrap();
        let netlist = Arc::new(nl);
        let template = NetlistComponent::new_prevalidated(
            "dut",
            Arc::clone(&netlist),
            sim.bus(),
            &[("q", sig)],
        )
        .unwrap();
        CachedDesign {
            netlist,
            template: Arc::new(template),
            plan: None,
        }
    }

    #[test]
    fn counts_hits_and_misses() {
        let mut cache = PlanCache::new(4);
        assert!(cache.lookup("h1").is_none());
        cache.insert("h1".into(), tiny_design("a"));
        assert!(cache.lookup("h1").is_some());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.insertions), (1, 1, 1));
        assert!((stats.hit_ratio() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut cache = PlanCache::new(2);
        cache.insert("h1".into(), tiny_design("a"));
        cache.insert("h2".into(), tiny_design("b"));
        assert!(cache.lookup("h1").is_some()); // refresh h1: h2 is now LRU
        cache.insert("h3".into(), tiny_design("c"));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.lookup("h2").is_none(), "h2 was the LRU victim");
        assert!(cache.lookup("h1").is_some());
        assert!(cache.lookup("h3").is_some());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut cache = PlanCache::new(0);
        cache.insert("h1".into(), tiny_design("a"));
        assert!(cache.is_empty());
        assert!(cache.lookup("h1").is_none());
    }

    #[test]
    fn byte_accounting_reconciles_across_insert_attach_evict() {
        let mut cache = PlanCache::new(1);
        cache.insert("h1".into(), tiny_design("a"));
        let after_insert = cache.bytes_resident();
        assert!(after_insert > 0, "a design has a nonzero footprint");
        assert_eq!(cache.stats().bytes_inserted, after_insert);

        // Attach a plan: resident and cumulative grow by the same amount.
        let design = tiny_design("a");
        let mut sim = hdp_sim::Simulator::new();
        let q = sim.add_signal("q", 4).unwrap();
        let comp = NetlistComponent::new_prevalidated(
            "dut",
            Arc::clone(&design.netlist),
            sim.bus(),
            &[("q", q)],
        )
        .unwrap();
        sim.add_component(comp);
        sim.set_mode(hdp_sim::SchedMode::Compiled);
        assert!(sim.compile().unwrap());
        let plan = sim.export_plan().expect("a counter levelizes");
        cache.attach_plan("h1", plan);
        let stats = cache.stats();
        assert_eq!(stats.plan_attaches, 1);
        assert!(cache.bytes_resident() > after_insert);
        assert_eq!(stats.bytes_inserted, cache.bytes_resident());

        // Evict by inserting a second design into capacity 1.
        cache.insert("h2".into(), tiny_design("b"));
        let stats = cache.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(
            stats.bytes_inserted,
            stats.bytes_evicted + cache.bytes_resident(),
            "every byte is either resident or evicted"
        );
    }

    #[test]
    fn reinsert_keeps_existing_plan_slot_filled_once() {
        let mut cache = PlanCache::new(2);
        cache.insert("h1".into(), tiny_design("a"));
        cache.insert("h1".into(), tiny_design("a"));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.stats().insertions, 1);
    }
}
