//! The `hdp-conform-repro-v1` wire format.
//!
//! This module is the stable, documented home of the JSON interchange
//! format that started life as the conformance engine's reproducer
//! files and is now also the submission format of the `hdp-service`
//! job server. A document is a single JSON object with these fields:
//!
//! | field        | type   | required | meaning                                   |
//! |--------------|--------|----------|-------------------------------------------|
//! | `schema`     | string | yes      | always [`SCHEMA`] (`hdp-conform-repro-v1`)|
//! | `design`     | object | yes      | a design-space point (see below)          |
//! | `stimulus`   | object | yes      | per-cycle input vectors (see below)       |
//! | `seed`       | number | no       | RNG seed the case was sampled from        |
//! | `divergence` | object | no       | oracle disagreement report (repro files)  |
//!
//! The `design` object carries every [`DesignSpec`] axis —
//! `family` (index into [`FAMILIES`]), `data_width`, `depth`,
//! `addr_width`, `key_width`, `wide`, `write_side` and the `ops`
//! array of method-port names — plus redundant human-readable
//! `label`/`kind`/`target` strings that parsers ignore. Designs with
//! a non-trivial clock-domain ratio additionally carry `wr_period`
//! and `rd_period` (integer domain periods in base steps); both
//! default to 1 when absent, and serialisation omits them at the
//! default so pre-existing single-clock documents — and their content
//! addresses — are unchanged. The
//! `stimulus` object has an `inputs` array of `{name, width}` port
//! descriptors and a `cycles` array of per-cycle value rows, one
//! number per input in declaration order.
//!
//! Two document flavours share the schema:
//!
//! * **Reproducers** ([`repro_to_json`]) additionally record the
//!   sampling `seed` and the observed `divergence`; they are committed
//!   under `tests/repros/` and replayed as regression tests.
//! * **Jobs** ([`job_to_json`]) are bare `design` + `stimulus`
//!   submissions for the simulation service.
//!
//! [`parse_case`] accepts both flavours (extra fields are ignored),
//! never panics on malformed input, and reports the first problem as
//! a structured [`WireError`].
//!
//! # Content addressing
//!
//! [`design_hash`] derives a 32-hex-digit content address from the
//! canonical serialised form of a design point. The service's plan
//! cache keys on it: two submissions hash alike exactly when their
//! design axes are identical, so a compiled schedule validated for
//! one can be reused for the other. The hash is part of the wire
//! contract — it must stay stable across releases, and a pinned
//! literal in this module's tests enforces that.
//!
//! [`DesignSpec`]: hdp_metagen::sampler::DesignSpec
//! [`FAMILIES`]: hdp_metagen::sampler::FAMILIES

use crate::json::Json;
use crate::oracle::{Divergence, Stimulus};
use crate::shrink::Case;
use hdp_metagen::sampler::{DesignSpec, FAMILIES};
use hdp_metagen::{MethodOp, OpSet};
use std::error::Error;
use std::fmt;

/// The schema identifier every v1 document carries.
pub const SCHEMA: &str = "hdp-conform-repro-v1";

/// A structured parse failure for a v1 wire document.
///
/// Exactly one error is reported per parse — the first problem
/// encountered. The enum is `#[non_exhaustive]`: future format
/// revisions may add variants without a semver break.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WireError {
    /// The text is not syntactically valid JSON.
    Syntax {
        /// The underlying parser's description (includes a byte
        /// offset where available).
        detail: String,
    },
    /// The document's `schema` field is missing or names a different
    /// format.
    Schema {
        /// The schema string found, if any.
        found: Option<String>,
    },
    /// A required field is missing, has the wrong JSON type, or holds
    /// an out-of-range value.
    Field {
        /// Dotted path of the offending field (e.g. `design.family`).
        path: String,
        /// What was wrong with it.
        detail: String,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Syntax { detail } => write!(f, "malformed JSON: {detail}"),
            WireError::Schema { found: Some(s) } => {
                write!(f, "not an `{SCHEMA}` document (schema is `{s}`)")
            }
            WireError::Schema { found: None } => {
                write!(f, "not an `{SCHEMA}` document (no `schema` field)")
            }
            WireError::Field { path, detail } => write!(f, "bad field `{path}`: {detail}"),
        }
    }
}

impl Error for WireError {}

fn bad(path: impl Into<String>, detail: impl Into<String>) -> WireError {
    WireError::Field {
        path: path.into(),
        detail: detail.into(),
    }
}

// ---------------------------------------------------------------------------
// Serialisation
// ---------------------------------------------------------------------------

fn ops_to_json(ops: OpSet) -> Json {
    Json::Arr(
        ops.iter()
            .map(|op| Json::Str(op.port_name().to_owned()))
            .collect(),
    )
}

/// Serialises a design-space point as the wire `design` object.
///
/// The canonical form — field order, label strings and all — feeds
/// [`design_hash`], so it must not change observably for specs that
/// already round-trip.
#[must_use]
pub fn spec_to_json(spec: &DesignSpec) -> Json {
    let mut fields = vec![
        ("label".to_owned(), Json::Str(spec.label())),
        ("kind".to_owned(), Json::Str(spec.kind().to_owned())),
        ("target".to_owned(), Json::Str(spec.target().to_owned())),
        ("family".to_owned(), Json::Num(spec.family as u64)),
        ("data_width".to_owned(), Json::Num(spec.data_width as u64)),
        ("depth".to_owned(), Json::Num(spec.depth as u64)),
        ("addr_width".to_owned(), Json::Num(spec.addr_width as u64)),
        ("key_width".to_owned(), Json::Num(spec.key_width as u64)),
        ("wide".to_owned(), Json::Num(spec.wide as u64)),
        ("write_side".to_owned(), Json::Bool(spec.write_side)),
    ];
    // The clock-domain axes are emitted only when they deviate from
    // the synchronous default, so every pre-existing single-clock
    // document (and its content address) is byte-identical.
    if spec.wr_period != 1 || spec.rd_period != 1 {
        fields.push(("wr_period".to_owned(), Json::Num(spec.wr_period)));
        fields.push(("rd_period".to_owned(), Json::Num(spec.rd_period)));
    }
    fields.push(("ops".to_owned(), ops_to_json(spec.ops)));
    Json::Obj(fields)
}

/// Serialises a stimulus as the wire `stimulus` object.
#[must_use]
pub fn stimulus_to_json(stim: &Stimulus) -> Json {
    Json::Obj(vec![
        (
            "inputs".to_owned(),
            Json::Arr(
                stim.inputs
                    .iter()
                    .map(|(name, width)| {
                        Json::Obj(vec![
                            ("name".to_owned(), Json::Str(name.clone())),
                            ("width".to_owned(), Json::Num(*width as u64)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "cycles".to_owned(),
            Json::Arr(
                stim.cycles
                    .iter()
                    .map(|row| Json::Arr(row.iter().map(|&v| Json::Num(v)).collect()))
                    .collect(),
            ),
        ),
    ])
}

/// Serialises a divergence report as the wire `divergence` object.
#[must_use]
pub fn divergence_to_json(d: &Divergence) -> Json {
    Json::Obj(vec![
        ("cycle".to_owned(), Json::Num(d.cycle as u64)),
        (
            "port".to_owned(),
            d.port.clone().map_or(Json::Null, Json::Str),
        ),
        (
            "details".to_owned(),
            Json::Arr(
                d.details
                    .iter()
                    .map(|(oracle, value)| {
                        Json::Obj(vec![
                            ("oracle".to_owned(), Json::Str(oracle.clone())),
                            ("value".to_owned(), Json::Str(value.clone())),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("report".to_owned(), Json::Str(d.to_string())),
    ])
}

/// Serialises a diverging case — plus the divergence it produced and
/// the seed it came from — as a self-contained reproducer document.
#[must_use]
pub fn repro_to_json(seed: u64, case: &Case, divergence: &Divergence) -> String {
    Json::Obj(vec![
        ("schema".to_owned(), Json::Str(SCHEMA.into())),
        ("seed".to_owned(), Json::Num(seed)),
        ("design".to_owned(), spec_to_json(&case.spec)),
        ("stimulus".to_owned(), stimulus_to_json(&case.stimulus)),
        ("divergence".to_owned(), divergence_to_json(divergence)),
    ])
    .to_string()
}

/// Serialises a bare design + stimulus pair as a service job
/// document (no seed, no divergence).
#[must_use]
pub fn job_to_json(case: &Case) -> String {
    Json::Obj(vec![
        ("schema".to_owned(), Json::Str(SCHEMA.into())),
        ("design".to_owned(), spec_to_json(&case.spec)),
        ("stimulus".to_owned(), stimulus_to_json(&case.stimulus)),
    ])
    .to_string()
}

// ---------------------------------------------------------------------------
// Content addressing
// ---------------------------------------------------------------------------

const FNV_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
const FNV_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

/// A [`fmt::Write`] sink that folds every written byte into a 128-bit
/// FNV-1a hash, so serialised output can be content-addressed without
/// materialising the string.
struct Fnv128Writer {
    hash: u128,
}

impl Fnv128Writer {
    fn new() -> Self {
        Self { hash: FNV_OFFSET }
    }
}

impl fmt::Write for Fnv128Writer {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        for &b in s.as_bytes() {
            self.hash ^= u128::from(b);
            self.hash = self.hash.wrapping_mul(FNV_PRIME);
        }
        Ok(())
    }
}

/// Streams the same bytes `spec_to_json(spec).to_string()` would
/// produce, without building the intermediate tree. [`design_hash`]
/// sits on the service's per-job cache-lookup path, so the canonical
/// serialisation is written straight into the hash sink; the
/// `streamed_hash_matches_the_tree_serialisation` test pins the two
/// forms together.
fn write_spec_canonical<W: fmt::Write>(w: &mut W, spec: &DesignSpec) -> fmt::Result {
    use crate::json::write_escaped;
    w.write_str("{\"label\":")?;
    write_escaped(w, &spec.label())?;
    w.write_str(",\"kind\":")?;
    write_escaped(w, spec.kind())?;
    w.write_str(",\"target\":")?;
    write_escaped(w, spec.target())?;
    write!(
        w,
        ",\"family\":{},\"data_width\":{},\"depth\":{},\"addr_width\":{},\"key_width\":{},\"wide\":{},\"write_side\":{}",
        spec.family, spec.data_width, spec.depth, spec.addr_width, spec.key_width, spec.wide, spec.write_side
    )?;
    if spec.wr_period != 1 || spec.rd_period != 1 {
        write!(
            w,
            ",\"wr_period\":{},\"rd_period\":{}",
            spec.wr_period, spec.rd_period
        )?;
    }
    w.write_str(",\"ops\":[")?;
    for (i, op) in spec.ops.iter().enumerate() {
        if i > 0 {
            w.write_str(",")?;
        }
        write_escaped(w, op.port_name())?;
    }
    w.write_str("]}")
}

/// The content address of a design-space point: 32 lowercase hex
/// digits derived from the canonical [`spec_to_json`] serialisation
/// (the serialised bytes are streamed straight into a 128-bit FNV-1a
/// hash — this sits on the service's per-job lookup path).
///
/// Two specs hash alike exactly when every design axis matches, so
/// the hash is a sound cache key for per-design artefacts (compiled
/// schedules, validated netlists). Stable across processes, runs and
/// releases — see the pinned-literal test in this module.
#[must_use]
pub fn design_hash(spec: &DesignSpec) -> String {
    let mut w = Fnv128Writer::new();
    write_spec_canonical(&mut w, spec).expect("hashing writer never fails");
    format!("{:032x}", w.hash)
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn num_field(obj: &Json, parent: &str, key: &str) -> Result<u64, WireError> {
    obj.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| bad(format!("{parent}.{key}"), "missing or non-numeric"))
}

/// An optional numeric field: absent means `default`, present must be
/// numeric.
fn opt_num_field(obj: &Json, parent: &str, key: &str, default: u64) -> Result<u64, WireError> {
    match obj.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_u64()
            .ok_or_else(|| bad(format!("{parent}.{key}"), "non-numeric")),
    }
}

/// Parses a wire `design` object back into a [`DesignSpec`].
///
/// This is the inverse of [`spec_to_json`]: redundant `label`/`kind`/
/// `target` strings are ignored, the clock-domain periods default to
/// 1 when absent, and the family index is range-checked against
/// [`FAMILIES`]. Exposed so other consumers of the canonical design
/// encoding (the characterisation database in `hdp-synth`) parse it
/// identically to the conformance stack.
///
/// # Errors
///
/// [`WireError::Field`] for a missing, mistyped or out-of-range axis.
pub fn parse_spec(obj: &Json) -> Result<DesignSpec, WireError> {
    let mut ops = OpSet::new();
    for item in obj
        .get("ops")
        .and_then(Json::as_arr)
        .ok_or_else(|| bad("design.ops", "missing or not an array"))?
    {
        let name = item
            .as_str()
            .ok_or_else(|| bad("design.ops", "non-string op name"))?;
        let op = MethodOp::ALL
            .into_iter()
            .find(|op| op.port_name() == name)
            .ok_or_else(|| bad("design.ops", format!("unknown op `{name}`")))?;
        ops = ops.with(op);
    }
    let family = num_field(obj, "design", "family")? as usize;
    if family >= FAMILIES.len() {
        return Err(bad(
            "design.family",
            format!("{family} out of range (< {})", FAMILIES.len()),
        ));
    }
    Ok(DesignSpec {
        family,
        data_width: num_field(obj, "design", "data_width")? as usize,
        depth: num_field(obj, "design", "depth")? as usize,
        addr_width: num_field(obj, "design", "addr_width")? as usize,
        key_width: num_field(obj, "design", "key_width")? as usize,
        wide: num_field(obj, "design", "wide")? as usize,
        write_side: obj
            .get("write_side")
            .and_then(Json::as_bool)
            .ok_or_else(|| bad("design.write_side", "missing or non-boolean"))?,
        ops,
        wr_period: opt_num_field(obj, "design", "wr_period", 1)?,
        rd_period: opt_num_field(obj, "design", "rd_period", 1)?,
    })
}

fn parse_stimulus(obj: &Json) -> Result<Stimulus, WireError> {
    let inputs = obj
        .get("inputs")
        .and_then(Json::as_arr)
        .ok_or_else(|| bad("stimulus.inputs", "missing or not an array"))?
        .iter()
        .map(|item| {
            let name = item
                .get("name")
                .and_then(Json::as_str)
                .ok_or_else(|| bad("stimulus.inputs", "input without a string `name`"))?;
            Ok((
                name.to_owned(),
                num_field(item, "stimulus.inputs", "width")? as usize,
            ))
        })
        .collect::<Result<Vec<_>, WireError>>()?;
    let cycles = obj
        .get("cycles")
        .and_then(Json::as_arr)
        .ok_or_else(|| bad("stimulus.cycles", "missing or not an array"))?
        .iter()
        .map(|row| {
            row.as_arr()
                .ok_or_else(|| bad("stimulus.cycles", "non-array stimulus row"))?
                .iter()
                .map(|v| {
                    v.as_u64()
                        .ok_or_else(|| bad("stimulus.cycles", "non-numeric stimulus value"))
                })
                .collect::<Result<Vec<_>, _>>()
        })
        .collect::<Result<Vec<_>, _>>()?;
    if cycles.iter().any(|row| row.len() != inputs.len()) {
        return Err(bad(
            "stimulus.cycles",
            format!(
                "row length does not match the {} declared inputs",
                inputs.len()
            ),
        ));
    }
    Ok(Stimulus { inputs, cycles })
}

/// Parses a v1 document (reproducer or job) into a runnable [`Case`].
///
/// Extra fields — `seed`, `divergence`, anything a future revision
/// adds — are ignored. Never panics on malformed input.
///
/// # Errors
///
/// The first [`WireError`] encountered, in document order.
pub fn parse_case(text: &str) -> Result<Case, WireError> {
    let doc = Json::parse(text).map_err(|detail| WireError::Syntax { detail })?;
    match doc.get("schema").and_then(Json::as_str) {
        Some(s) if s == SCHEMA => {}
        found => {
            return Err(WireError::Schema {
                found: found.map(str::to_owned),
            })
        }
    }
    Ok(Case {
        spec: parse_spec(doc.get("design").ok_or_else(|| bad("design", "missing"))?)?,
        stimulus: parse_stimulus(
            doc.get("stimulus")
                .ok_or_else(|| bad("stimulus", "missing"))?,
        )?,
    })
}

/// Parses a document and returns the `seed` field, if present.
///
/// # Errors
///
/// [`WireError::Syntax`] if the text is not JSON at all.
pub fn parse_seed(text: &str) -> Result<Option<u64>, WireError> {
    let doc = Json::parse(text).map_err(|detail| WireError::Syntax { detail })?;
    Ok(doc.get("seed").and_then(Json::as_u64))
}

/// Replays a reproducer document: re-runs the oracle stack on its
/// case and returns the observed divergence, if it still reproduces.
///
/// # Errors
///
/// Propagates parse failures; a conforming replay returns `Ok(None)`
/// (the underlying bug was fixed — delete the reproducer).
pub fn replay(text: &str) -> Result<Option<Divergence>, WireError> {
    Ok(parse_case(text)?.check())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdp_metagen::sampler::sample_spec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_case(seed: u64, cycles: usize) -> Case {
        let mut rng = StdRng::seed_from_u64(seed);
        let spec = sample_spec(&mut rng);
        let netlist = spec.instantiate().unwrap();
        let stimulus = Stimulus::sample(&netlist, cycles, &mut rng);
        Case { spec, stimulus }
    }

    #[test]
    fn reproducer_round_trips() {
        let case = sample_case(21, 5);
        let divergence = Divergence {
            cycle: 2,
            port: Some("data".into()),
            details: vec![
                ("full_sweep".into(), "\"00\"".into()),
                ("vhdl_interp".into(), "\"01\"".into()),
            ],
        };
        let text = repro_to_json(21, &case, &divergence);
        let back = parse_case(&text).unwrap();
        assert_eq!(back.spec, case.spec);
        assert_eq!(back.stimulus, case.stimulus);
        assert_eq!(parse_seed(&text).unwrap(), Some(21));
        // And the document carries the human-readable report.
        assert!(text.contains("conformance mismatch at cycle #2"));
    }

    #[test]
    fn job_round_trips_without_seed() {
        let case = sample_case(77, 3);
        let text = job_to_json(&case);
        let back = parse_case(&text).unwrap();
        assert_eq!(back, case);
        assert_eq!(parse_seed(&text).unwrap(), None);
        assert!(!text.contains("divergence"));
    }

    #[test]
    fn replay_of_conforming_case_returns_none() {
        let case = sample_case(33, 4);
        let divergence = Divergence {
            cycle: 0,
            port: None,
            details: vec![],
        };
        let text = repro_to_json(33, &case, &divergence);
        assert_eq!(replay(&text).unwrap(), None);
    }

    #[test]
    fn rejects_foreign_documents_with_schema_errors() {
        assert_eq!(parse_case("{}"), Err(WireError::Schema { found: None }));
        assert_eq!(
            parse_case("{\"schema\":\"something-else\"}"),
            Err(WireError::Schema {
                found: Some("something-else".into())
            })
        );
        assert!(matches!(
            parse_case("not json"),
            Err(WireError::Syntax { .. })
        ));
    }

    #[test]
    fn reports_field_paths() {
        let case = sample_case(5, 2);
        let good = job_to_json(&case);
        // Drop the design object entirely.
        let doc = Json::parse(&good).unwrap();
        let Json::Obj(pairs) = doc else {
            unreachable!()
        };
        let without_design = Json::Obj(
            pairs
                .iter()
                .filter(|(k, _)| k != "design")
                .cloned()
                .collect(),
        )
        .to_string();
        assert_eq!(parse_case(&without_design), Err(bad("design", "missing")));
        // An out-of-range family index is caught before it can panic
        // downstream accessors.
        let with_bad_family = good.replace(
            &format!("\"family\":{}", case.spec.family),
            "\"family\":999",
        );
        match parse_case(&with_bad_family) {
            Err(WireError::Field { path, .. }) => assert_eq!(path, "design.family"),
            other => panic!("expected a field error, got {other:?}"),
        }
    }

    #[test]
    fn rejects_ragged_stimulus_rows() {
        let case = sample_case(9, 2);
        let mut ragged = case.clone();
        ragged.stimulus.cycles[0].push(0);
        let text = job_to_json(&ragged);
        match parse_case(&text) {
            Err(WireError::Field { path, .. }) => assert_eq!(path, "stimulus.cycles"),
            other => panic!("expected a field error, got {other:?}"),
        }
    }

    #[test]
    fn design_hash_is_stable_and_content_addressed() {
        let case = sample_case(21, 1);
        // Same value across calls and across an unrelated clone.
        assert_eq!(design_hash(&case.spec), design_hash(&case.spec.clone()));
        // Any axis change moves the hash.
        let mut other = case.spec.clone();
        other.data_width += 1;
        assert_ne!(design_hash(&case.spec), design_hash(&other));
        // Round-tripping through the wire format preserves it.
        let back = parse_case(&job_to_json(&case)).unwrap();
        assert_eq!(design_hash(&back.spec), design_hash(&case.spec));
    }

    #[test]
    fn design_hash_literal_is_pinned() {
        // The hash is part of the wire contract: if this test breaks,
        // the canonical serialisation changed and every persisted
        // cache key goes stale. Do not update the literal casually.
        let spec = DesignSpec {
            family: 5,
            data_width: 8,
            depth: 4,
            addr_width: 8,
            key_width: 4,
            wide: 16,
            write_side: false,
            ops: OpSet::new().with(MethodOp::Empty).with(MethodOp::Size),
            wr_period: 1,
            rd_period: 1,
        };
        assert_eq!(design_hash(&spec), "e2e88e2d98719295caa553b7c241c387");
    }

    #[test]
    fn async_fifo_design_hash_literal_is_pinned() {
        // The multi-clock axes join the canonical form only when
        // non-trivial; this pins the serialisation of a ratio'd spec.
        let spec = DesignSpec {
            family: 11,
            data_width: 8,
            depth: 4,
            addr_width: 8,
            key_width: 4,
            wide: 0,
            write_side: false,
            ops: OpSet::new(),
            wr_period: 2,
            rd_period: 3,
        };
        let text = spec_to_json(&spec).to_string();
        assert!(text.contains("\"wr_period\":2,\"rd_period\":3"), "{text}");
        assert_eq!(design_hash(&spec), "c801a7866e213b3359ad7e16fae0d236");
    }

    #[test]
    fn default_periods_are_omitted_and_round_trip() {
        let mut spec = sample_case(21, 1).spec;
        spec.wr_period = 1;
        spec.rd_period = 1;
        let case = Case {
            spec,
            stimulus: Stimulus {
                inputs: vec![],
                cycles: vec![],
            },
        };
        let text = job_to_json(&case);
        assert!(!text.contains("wr_period"), "{text}");
        let back = parse_case(&text).unwrap();
        assert_eq!(back.spec.wr_period, 1);
        assert_eq!(back.spec.rd_period, 1);
    }

    #[test]
    fn streamed_hash_matches_the_tree_serialisation() {
        // `design_hash` streams the canonical bytes directly; this
        // pins it to the `spec_to_json` tree it must mirror.
        for seed in 0..64 {
            let spec = sample_case(seed, 1).spec;
            let mut streamed = String::new();
            write_spec_canonical(&mut streamed, &spec).unwrap();
            assert_eq!(streamed, spec_to_json(&spec).to_string(), "seed {seed}");
        }
    }

    /// A tiny deterministic generator for the mutation fuzzer (no
    /// reliance on the `rand` crate's stability guarantees).
    struct Lcg(u64);
    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0 >> 33
        }
    }

    #[test]
    fn fuzz_truncated_documents_never_panic() {
        let case = sample_case(13, 4);
        let divergence = Divergence {
            cycle: 1,
            port: Some("q".into()),
            details: vec![("full_sweep".into(), "\"0\"".into())],
        };
        let text = repro_to_json(13, &case, &divergence);
        for end in 0..text.len() {
            if !text.is_char_boundary(end) {
                continue;
            }
            // Every proper prefix must be a clean error, never a panic.
            assert!(
                parse_case(&text[..end]).is_err(),
                "prefix of length {end} parsed"
            );
        }
        assert!(parse_case(&text).is_ok());
    }

    #[test]
    fn fuzz_mutated_documents_never_panic() {
        let case = sample_case(17, 3);
        let text = job_to_json(&case);
        let bytes = text.as_bytes();
        let mut lcg = Lcg(0x5eed);
        for _ in 0..500 {
            let mut mutated = bytes.to_vec();
            let idx = (lcg.next() as usize) % mutated.len();
            mutated[idx] = (lcg.next() & 0xff) as u8;
            let Ok(s) = String::from_utf8(mutated) else {
                continue;
            };
            // Ok or Err are both fine; panicking or hanging is not.
            let _ = parse_case(&s);
        }
    }

    #[test]
    fn fuzz_byte_deletions_never_panic() {
        let case = sample_case(19, 2);
        let text = job_to_json(&case);
        for i in 0..text.len() {
            let mut mutated = text.as_bytes().to_vec();
            mutated.remove(i);
            if let Ok(s) = String::from_utf8(mutated) {
                let _ = parse_case(&s);
            }
        }
    }
}
