//! A minimal JSON value with writer and parser.
//!
//! The workspace is built offline with no serde available, so the
//! conformance engine hand-rolls the small JSON surface its
//! reproducer files and fuzz summaries need: objects, arrays,
//! strings, integers and booleans. Numbers are kept as `u64` — every
//! quantity the engine serialises (widths, depths, stimulus words,
//! counters) is a non-negative integer well under 2^53.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer (all the engine ever needs).
    Num(u64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, insertion-ordered.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a number.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is one.
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a byte offset and message for malformed input.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }
}

pub(crate) fn write_escaped<W: fmt::Write + ?Sized>(f: &mut W, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => write!(f, "{n}"),
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(pairs) => {
                f.write_str("{")?;
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{}` at byte {pos}", c as char))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        let Some(&b) = bytes.get(*pos) else {
            return Err("unterminated string".into());
        };
        *pos += 1;
        match b {
            b'"' => return Ok(out),
            b'\\' => {
                let Some(&esc) = bytes.get(*pos) else {
                    return Err("unterminated escape".into());
                };
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| "bad \\u escape".to_owned())?;
                        *pos += 4;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("unsupported escape `\\{}`", other as char)),
                }
            }
            b => {
                // Re-join multi-byte UTF-8 sequences.
                let start = *pos - 1;
                let len = match b {
                    0x00..=0x7f => 1,
                    0xc0..=0xdf => 2,
                    0xe0..=0xef => 3,
                    _ => 4,
                };
                let chunk = bytes
                    .get(start..start + len)
                    .and_then(|c| std::str::from_utf8(c).ok())
                    .ok_or("invalid UTF-8 in string")?;
                out.push_str(chunk);
                *pos = start + len;
            }
        }
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut pairs = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                pairs.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(pairs));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
                }
            }
        }
        Some(b't') if bytes[*pos..].starts_with(b"true") => {
            *pos += 4;
            Ok(Json::Bool(true))
        }
        Some(b'f') if bytes[*pos..].starts_with(b"false") => {
            *pos += 5;
            Ok(Json::Bool(false))
        }
        Some(b'n') if bytes[*pos..].starts_with(b"null") => {
            *pos += 4;
            Ok(Json::Null)
        }
        Some(c) if c.is_ascii_digit() => {
            let start = *pos;
            while bytes.get(*pos).is_some_and(u8::is_ascii_digit) {
                *pos += 1;
            }
            let text = std::str::from_utf8(&bytes[start..*pos]).expect("digits are UTF-8");
            text.parse::<u64>()
                .map(Json::Num)
                .map_err(|_| format!("number out of range at byte {start}"))
        }
        Some(&c) => Err(format!("unexpected byte `{}` at {pos}", c as char)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_document() {
        let doc = Json::Obj(vec![
            ("name".into(), Json::Str("queue \"q\"\n".into())),
            ("count".into(), Json::Num(42)),
            ("ok".into(), Json::Bool(true)),
            ("none".into(), Json::Null),
            (
                "cycles".into(),
                Json::Arr(vec![
                    Json::Arr(vec![Json::Num(1), Json::Num(0)]),
                    Json::Arr(vec![]),
                ]),
            ),
        ]);
        let text = doc.to_string();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, doc);
        assert_eq!(back.get("count").and_then(Json::as_u64), Some(42));
        assert_eq!(
            back.get("name").and_then(Json::as_str),
            Some("queue \"q\"\n")
        );
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(Json::parse("{\"a\":").is_err());
        assert!(Json::parse("[1,2,]").is_err());
        assert!(Json::parse("[1] trailing").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn parses_whitespace_and_unicode() {
        let v = Json::parse(" { \"k\" : [ 1 , \"caf\u{e9}\" ] } ").unwrap();
        assert_eq!(
            v.get("k").and_then(Json::as_arr).map(<[Json]>::len),
            Some(2)
        );
        let esc = Json::parse("\"\\u00e9\"").unwrap();
        assert_eq!(esc.as_str(), Some("\u{e9}"));
    }
}
