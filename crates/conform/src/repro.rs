//! Deprecated shims over the [`crate::wire`] module.
//!
//! The reproducer serialisation grew into a general wire format (jobs
//! for the simulation service use the same schema), so its real home
//! is now [`crate::wire`], which documents every field and reports
//! structured [`WireError`](crate::wire::WireError)s. These free
//! functions survive with their original `String`-error signatures so
//! existing callers keep compiling; new code should use `wire`
//! directly.

use crate::oracle::Divergence;
use crate::shrink::Case;
use crate::wire;

/// Serialises a diverging case (plus the divergence it produced and
/// the seed it came from) as a reproducer document.
#[deprecated(since = "0.1.0", note = "use `hdp_conform::wire::repro_to_json`")]
#[must_use]
pub fn to_json(seed: u64, case: &Case, divergence: &Divergence) -> String {
    wire::repro_to_json(seed, case, divergence)
}

/// Parses a reproducer document back into a runnable [`Case`].
///
/// # Errors
///
/// Returns a description of the first malformed field.
#[deprecated(since = "0.1.0", note = "use `hdp_conform::wire::parse_case`")]
pub fn from_json(text: &str) -> Result<Case, String> {
    wire::parse_case(text).map_err(|e| e.to_string())
}

/// Replays a reproducer document: re-runs the oracle stack on its
/// case and returns the observed divergence, if it still reproduces.
///
/// # Errors
///
/// Propagates parse failures; a conforming replay returns `Ok(None)`
/// (the underlying bug was fixed — delete the reproducer).
#[deprecated(since = "0.1.0", note = "use `hdp_conform::wire::replay`")]
pub fn replay(text: &str) -> Result<Option<Divergence>, String> {
    wire::replay(text).map_err(|e| e.to_string())
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;
    use crate::oracle::Stimulus;
    use hdp_metagen::sampler::sample_spec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn shims_delegate_to_the_wire_module() {
        let mut rng = StdRng::seed_from_u64(21);
        let spec = sample_spec(&mut rng);
        let netlist = spec.instantiate().unwrap();
        let stimulus = Stimulus::sample(&netlist, 4, &mut rng);
        let case = Case { spec, stimulus };
        let divergence = Divergence {
            cycle: 0,
            port: None,
            details: vec![],
        };
        let text = to_json(21, &case, &divergence);
        assert_eq!(text, wire::repro_to_json(21, &case, &divergence));
        assert_eq!(from_json(&text).unwrap(), case);
        assert_eq!(replay(&text).unwrap(), None);
        // Errors arrive as plain strings, matching the old contract.
        assert!(from_json("{}").unwrap_err().contains("schema"));
    }
}
