//! Self-contained reproducer files for diverging cases.
//!
//! A reproducer holds everything needed to re-run one case — the
//! design-space point, the exact stimulus, and the divergence that
//! was observed — as a single JSON document. Committed reproducers
//! (under `tests/repros/`) are replayed by the conformance test
//! suite, turning every fuzz finding into a permanent regression
//! test.

use crate::json::Json;
use crate::oracle::{Divergence, Stimulus};
use crate::shrink::Case;
use hdp_metagen::sampler::DesignSpec;
use hdp_metagen::{MethodOp, OpSet};

fn ops_to_json(ops: OpSet) -> Json {
    Json::Arr(
        ops.iter()
            .map(|op| Json::Str(op.port_name().to_owned()))
            .collect(),
    )
}

fn spec_to_json(spec: &DesignSpec) -> Json {
    Json::Obj(vec![
        ("label".to_owned(), Json::Str(spec.label())),
        ("kind".to_owned(), Json::Str(spec.kind().to_owned())),
        ("target".to_owned(), Json::Str(spec.target().to_owned())),
        ("family".to_owned(), Json::Num(spec.family as u64)),
        ("data_width".to_owned(), Json::Num(spec.data_width as u64)),
        ("depth".to_owned(), Json::Num(spec.depth as u64)),
        ("addr_width".to_owned(), Json::Num(spec.addr_width as u64)),
        ("key_width".to_owned(), Json::Num(spec.key_width as u64)),
        ("wide".to_owned(), Json::Num(spec.wide as u64)),
        ("write_side".to_owned(), Json::Bool(spec.write_side)),
        ("ops".to_owned(), ops_to_json(spec.ops)),
    ])
}

fn stimulus_to_json(stim: &Stimulus) -> Json {
    Json::Obj(vec![
        (
            "inputs".to_owned(),
            Json::Arr(
                stim.inputs
                    .iter()
                    .map(|(name, width)| {
                        Json::Obj(vec![
                            ("name".to_owned(), Json::Str(name.clone())),
                            ("width".to_owned(), Json::Num(*width as u64)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "cycles".to_owned(),
            Json::Arr(
                stim.cycles
                    .iter()
                    .map(|row| Json::Arr(row.iter().map(|&v| Json::Num(v)).collect()))
                    .collect(),
            ),
        ),
    ])
}

fn divergence_to_json(d: &Divergence) -> Json {
    Json::Obj(vec![
        ("cycle".to_owned(), Json::Num(d.cycle as u64)),
        (
            "port".to_owned(),
            d.port.clone().map_or(Json::Null, Json::Str),
        ),
        (
            "details".to_owned(),
            Json::Arr(
                d.details
                    .iter()
                    .map(|(oracle, value)| {
                        Json::Obj(vec![
                            ("oracle".to_owned(), Json::Str(oracle.clone())),
                            ("value".to_owned(), Json::Str(value.clone())),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("report".to_owned(), Json::Str(d.to_string())),
    ])
}

/// Serialises a diverging case (plus the divergence it produced and
/// the seed it came from) as a reproducer document.
#[must_use]
pub fn to_json(seed: u64, case: &Case, divergence: &Divergence) -> String {
    Json::Obj(vec![
        (
            "schema".to_owned(),
            Json::Str("hdp-conform-repro-v1".into()),
        ),
        ("seed".to_owned(), Json::Num(seed)),
        ("design".to_owned(), spec_to_json(&case.spec)),
        ("stimulus".to_owned(), stimulus_to_json(&case.stimulus)),
        ("divergence".to_owned(), divergence_to_json(divergence)),
    ])
    .to_string()
}

fn field(obj: &Json, key: &str) -> Result<u64, String> {
    obj.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing numeric field `{key}`"))
}

fn parse_spec(obj: &Json) -> Result<DesignSpec, String> {
    let mut ops = OpSet::new();
    for item in obj
        .get("ops")
        .and_then(Json::as_arr)
        .ok_or("missing `ops` array")?
    {
        let name = item.as_str().ok_or("non-string op name")?;
        let op = MethodOp::ALL
            .into_iter()
            .find(|op| op.port_name() == name)
            .ok_or_else(|| format!("unknown op `{name}`"))?;
        ops = ops.with(op);
    }
    Ok(DesignSpec {
        family: field(obj, "family")? as usize,
        data_width: field(obj, "data_width")? as usize,
        depth: field(obj, "depth")? as usize,
        addr_width: field(obj, "addr_width")? as usize,
        key_width: field(obj, "key_width")? as usize,
        wide: field(obj, "wide")? as usize,
        write_side: obj
            .get("write_side")
            .and_then(Json::as_bool)
            .ok_or("missing `write_side`")?,
        ops,
    })
}

fn parse_stimulus(obj: &Json) -> Result<Stimulus, String> {
    let inputs = obj
        .get("inputs")
        .and_then(Json::as_arr)
        .ok_or("missing `inputs`")?
        .iter()
        .map(|item| {
            let name = item
                .get("name")
                .and_then(Json::as_str)
                .ok_or("input without name")?;
            Ok((name.to_owned(), field(item, "width")? as usize))
        })
        .collect::<Result<Vec<_>, String>>()?;
    let cycles = obj
        .get("cycles")
        .and_then(Json::as_arr)
        .ok_or("missing `cycles`")?
        .iter()
        .map(|row| {
            row.as_arr()
                .ok_or_else(|| "non-array stimulus row".to_owned())?
                .iter()
                .map(|v| v.as_u64().ok_or_else(|| "non-numeric stimulus".to_owned()))
                .collect::<Result<Vec<_>, _>>()
        })
        .collect::<Result<Vec<_>, _>>()?;
    Ok(Stimulus { inputs, cycles })
}

/// Parses a reproducer document back into a runnable [`Case`].
///
/// # Errors
///
/// Returns a description of the first malformed field.
pub fn from_json(text: &str) -> Result<Case, String> {
    let doc = Json::parse(text)?;
    if doc.get("schema").and_then(Json::as_str) != Some("hdp-conform-repro-v1") {
        return Err("not an hdp-conform reproducer (bad `schema`)".into());
    }
    Ok(Case {
        spec: parse_spec(doc.get("design").ok_or("missing `design`")?)?,
        stimulus: parse_stimulus(doc.get("stimulus").ok_or("missing `stimulus`")?)?,
    })
}

/// Replays a reproducer document: re-runs the oracle stack on its
/// case and returns the observed divergence, if it still reproduces.
///
/// # Errors
///
/// Propagates parse failures; a conforming replay returns `Ok(None)`
/// (the underlying bug was fixed — delete the reproducer).
pub fn replay(text: &str) -> Result<Option<Divergence>, String> {
    Ok(from_json(text)?.check())
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdp_metagen::sampler::sample_spec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn reproducer_round_trips() {
        let mut rng = StdRng::seed_from_u64(21);
        let spec = sample_spec(&mut rng);
        let netlist = spec.instantiate().unwrap();
        let stimulus = Stimulus::sample(&netlist, 5, &mut rng);
        let case = Case { spec, stimulus };
        let divergence = Divergence {
            cycle: 2,
            port: Some("data".into()),
            details: vec![
                ("full_sweep".into(), "\"00\"".into()),
                ("vhdl_interp".into(), "\"01\"".into()),
            ],
        };
        let text = to_json(21, &case, &divergence);
        let back = from_json(&text).unwrap();
        assert_eq!(back.spec, case.spec);
        assert_eq!(back.stimulus, case.stimulus);
        // And the document carries the human-readable report.
        assert!(text.contains("conformance mismatch at cycle #2"));
    }

    #[test]
    fn replay_of_conforming_case_returns_none() {
        let mut rng = StdRng::seed_from_u64(33);
        let spec = sample_spec(&mut rng);
        let netlist = spec.instantiate().unwrap();
        let stimulus = Stimulus::sample(&netlist, 4, &mut rng);
        let case = Case { spec, stimulus };
        let divergence = Divergence {
            cycle: 0,
            port: None,
            details: vec![],
        };
        let text = to_json(33, &case, &divergence);
        assert_eq!(replay(&text).unwrap(), None);
    }

    #[test]
    fn rejects_foreign_documents() {
        assert!(from_json("{}").is_err());
        assert!(from_json("{\"schema\":\"something-else\"}").is_err());
    }
}
