//! Differential conformance engine for the hardware-design-pattern
//! stack.
//!
//! This crate closes the loop between the pattern generators
//! (`hdp-metagen`), the simulator (`hdp-sim`) and the VHDL emitter
//! (`hdp-hdl`): it samples random-but-valid designs from the metagen
//! design space, drives each one with random stimulus through seven
//! independent oracles, and demands bit-for-bit agreement every
//! cycle on every output port:
//!
//! 1. `full_sweep` — the simulator re-evaluating every component
//!    per delta cycle (the reference),
//! 2. `event_driven` — sensitivity-based scheduling,
//! 3. `parallel2` — the island-partitioned wave scheduler on two
//!    threads,
//! 4. `compiled` — the levelized rank-schedule walk over a
//!    bit-packed signal arena,
//! 5. `lowered` — the compiled walk executing flat word-level op
//!    streams instead of the netlist interpreter,
//! 6. `levelized` — the non-incremental [`NetlistComponent`] fast
//!    path,
//! 7. `vhdl_interp` — an interpreter executing the *emitted VHDL
//!    text* ([`hdp_hdl::interp::VhdlInterp`]), so the comparison
//!    covers the emitter as well as the netlist semantics.
//!
//! [`check_lanes`] adds a throughput-oriented eighth angle: up to 64
//! random stimuli packed one-per-bit into a single
//! [`hdp_sim::LaneBatch`] run, each lane refereed against its own
//! scalar event-driven simulation. Designs the lane engine cannot
//! pack — tri-state nets, `inout` ports, multi-clock-domain
//! netlists — are reported as out-of-scope, not as failures.
//!
//! Diverging cases are shrunk greedily ([`mod@shrink`]) to minimal
//! reproducers and serialised as self-contained JSON documents in the
//! versioned [`wire`] format that replay as regression tests. The
//! same wire format carries job submissions for the `hdp-service`
//! simulation server.
//!
//! [`NetlistComponent`]: hdp_sim::NetlistComponent
//!
//! # Example
//!
//! ```
//! use hdp_conform::{check, Stimulus};
//! use hdp_metagen::sampler::sample_spec;
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let spec = sample_spec(&mut rng);
//! let netlist = spec.instantiate().unwrap();
//! let stimulus = Stimulus::sample(&netlist, 8, &mut rng);
//! assert!(check(&netlist, &stimulus).is_none(), "oracles diverged");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod oracle;
pub mod repro;
pub mod shrink;
pub mod wire;

pub use json::Json;
pub use oracle::{check, check_lanes, Divergence, Stimulus, ORACLE_LABELS};
pub use shrink::{shrink, Case};
pub use wire::WireError;
