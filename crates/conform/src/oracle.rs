//! The oracle stack and the differential cycle engine.
//!
//! A design conforms when every oracle — the six scheduler/evaluator
//! paths of `hdp-sim` (including the lowered word-level op-stream
//! mode) plus the executable VHDL model of `hdp_hdl::interp` —
//! produces bit-identical output-port traces for the same stimulus. Errors participate in the comparison too:
//! *error parity* (every oracle failing at the same cycle) is
//! conforming, because the oracles agree the stimulus left the legal
//! protocol; an asymmetric error is a divergence like any other.

use hdp_hdl::interp::VhdlInterp;
use hdp_hdl::{LogicVector, Netlist, PortDir};
use hdp_sim::{LaneBatch, NetlistComponent, SchedMode, SignalId, Simulator, LANES};
use rand::rngs::StdRng;
use rand::Rng;

/// Display labels of the oracle stack, in comparison order. The
/// first entry is the reference the others are compared against.
pub const ORACLE_LABELS: [&str; 7] = [
    "full_sweep",
    "event_driven",
    "parallel2",
    "compiled",
    "lowered",
    "levelized",
    "vhdl_interp",
];

/// A deterministic input-port stimulus: one word per input per cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stimulus {
    /// The driven input ports as `(name, width)`, in entity order.
    pub inputs: Vec<(String, usize)>,
    /// `cycles[c][i]` drives input `i` during cycle `c` (masked to
    /// the port width).
    pub cycles: Vec<Vec<u64>>,
}

fn mask(width: usize) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

impl Stimulus {
    /// Samples `n_cycles` of uniform random words for every input
    /// port of `netlist`.
    #[must_use]
    pub fn sample(netlist: &Netlist, n_cycles: usize, rng: &mut StdRng) -> Self {
        let inputs: Vec<(String, usize)> = netlist
            .entity()
            .ports()
            .iter()
            .filter(|p| p.dir() == PortDir::In)
            .map(|p| (p.name().to_owned(), p.width()))
            .collect();
        let cycles = (0..n_cycles)
            .map(|_| {
                inputs
                    .iter()
                    .map(|(_, w)| rng.gen_range(0..=mask(*w)))
                    .collect()
            })
            .collect();
        Stimulus { inputs, cycles }
    }

    /// Rebinds this stimulus to (a possibly shrunk variant of) the
    /// same design: input columns are matched by port name and values
    /// masked to the new widths. Returns `None` if the new netlist
    /// has an input this stimulus does not cover.
    #[must_use]
    pub fn rebind(&self, netlist: &Netlist) -> Option<Self> {
        let mut mapping = Vec::new();
        let mut inputs = Vec::new();
        for port in netlist.entity().ports() {
            if port.dir() != PortDir::In {
                continue;
            }
            let col = self.inputs.iter().position(|(n, _)| n == port.name())?;
            mapping.push((col, port.width()));
            inputs.push((port.name().to_owned(), port.width()));
        }
        let cycles = self
            .cycles
            .iter()
            .map(|row| mapping.iter().map(|&(col, w)| row[col] & mask(w)).collect())
            .collect();
        Some(Stimulus { inputs, cycles })
    }
}

/// A divergence between oracles, reported in the style of
/// `Monitor::expect_values`: the first cycle and port where traces
/// differ, with every oracle's view of it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Divergence {
    /// The first diverging cycle (0-based, counted after reset).
    pub cycle: usize,
    /// The diverging output port, or `None` for error-parity and
    /// construction divergences.
    pub port: Option<String>,
    /// `(oracle label, rendered value or error)` for every oracle.
    pub details: Vec<(String, String)>,
}

impl std::fmt::Display for Divergence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.port {
            Some(port) => write!(
                f,
                "conformance mismatch at cycle #{} on port `{port}`:",
                self.cycle
            )?,
            None => write!(f, "oracle disagreement at cycle #{}:", self.cycle)?,
        }
        for (oracle, value) in &self.details {
            write!(f, " {oracle}={value}")?;
        }
        Ok(())
    }
}

/// One oracle instance being driven through the stimulus. The
/// simulator is boxed to keep the two variants a similar size.
enum Oracle {
    Sim {
        sim: Box<Simulator>,
        inputs: Vec<SignalId>,
        outputs: Vec<(String, SignalId)>,
    },
    Vhdl {
        vm: Box<VhdlInterp>,
        inputs: Vec<(String, usize)>,
        outputs: Vec<String>,
        /// The design's clock rails as `(name, period)`, mirroring the
        /// netlist's domain table.
        clocks: Vec<(String, u64)>,
        /// Base step counter — drives which rails fire on each step,
        /// matching the scheduler's `fires_at` rule (`t % period == 0`).
        cycle: u64,
    },
}

fn build_sim(
    netlist: &Netlist,
    mode: SchedMode,
    incremental: bool,
    stim: &Stimulus,
) -> Result<Oracle, String> {
    let mut sim = Simulator::with_mode(mode);
    let mut bindings: Vec<(String, SignalId)> = Vec::new();
    let mut outputs = Vec::new();
    for port in netlist.entity().ports() {
        let id = sim
            .add_signal(port.name(), port.width())
            .map_err(|e| e.to_string())?;
        bindings.push((port.name().to_owned(), id));
        if port.dir() != PortDir::In {
            outputs.push((port.name().to_owned(), id));
        }
    }
    let inputs = stim
        .inputs
        .iter()
        .map(|(name, _)| {
            bindings
                .iter()
                .find(|(n, _)| n == name)
                .map(|&(_, id)| id)
                .ok_or_else(|| format!("stimulus input `{name}` is not a port"))
        })
        .collect::<Result<Vec<_>, _>>()?;
    let binding_refs: Vec<(&str, SignalId)> =
        bindings.iter().map(|(n, id)| (n.as_str(), *id)).collect();
    let mut comp = NetlistComponent::new("dut", netlist.clone(), sim.bus(), &binding_refs)
        .map_err(|e| e.to_string())?;
    if !incremental {
        comp.set_incremental(false);
    }
    sim.add_component(comp);
    Ok(Oracle::Sim {
        sim: Box::new(sim),
        inputs,
        outputs,
    })
}

fn build_vhdl(netlist: &Netlist, stim: &Stimulus) -> Result<Oracle, String> {
    let vm = VhdlInterp::from_netlist(netlist, "rtl").map_err(|e| e.to_string())?;
    let outputs = netlist
        .entity()
        .ports()
        .iter()
        .filter(|p| p.dir() != PortDir::In)
        .map(|p| p.name().to_owned())
        .collect();
    let clocks = netlist
        .domains()
        .iter()
        .map(|d| (d.name().to_owned(), d.period()))
        .collect();
    Ok(Oracle::Vhdl {
        vm: Box::new(vm),
        inputs: stim.inputs.clone(),
        outputs,
        clocks,
        cycle: 0,
    })
}

impl Oracle {
    fn poke(&mut self, row: &[u64]) -> Result<(), String> {
        match self {
            Oracle::Sim { sim, inputs, .. } => {
                for (&id, &value) in inputs.iter().zip(row) {
                    sim.poke(id, value).map_err(|e| e.to_string())?;
                }
            }
            Oracle::Vhdl { vm, inputs, .. } => {
                for ((name, width), &value) in inputs.iter().zip(row) {
                    let v = LogicVector::from_u64(value & mask(*width), *width)
                        .map_err(|e| e.to_string())?;
                    vm.poke(name, v).map_err(|e| e.to_string())?;
                }
            }
        }
        Ok(())
    }

    fn reset(&mut self) -> Result<(), String> {
        match self {
            Oracle::Sim { sim, .. } => sim.reset().map_err(|e| e.to_string()),
            Oracle::Vhdl { vm, cycle, .. } => {
                vm.reset();
                *cycle = 0;
                vm.settle().map_err(|e| e.to_string())
            }
        }
    }

    fn settle(&mut self) -> Result<(), String> {
        match self {
            Oracle::Sim { sim, .. } => sim.settle().map_err(|e| e.to_string()),
            Oracle::Vhdl { vm, .. } => vm.settle().map_err(|e| e.to_string()),
        }
    }

    fn step(&mut self) -> Result<(), String> {
        match self {
            Oracle::Sim { sim, .. } => sim.step().map_err(|e| e.to_string()),
            Oracle::Vhdl {
                vm, clocks, cycle, ..
            } => {
                // Fire exactly the rails the scheduler would: domain
                // `d` ticks at base step `t` iff `t % period == 0`.
                let firing: Vec<&str> = clocks
                    .iter()
                    .filter(|(_, p)| *cycle % (*p).max(1) == 0)
                    .map(|(n, _)| n.as_str())
                    .collect();
                *cycle += 1;
                vm.step_clocks(&firing).map_err(|e| e.to_string())
            }
        }
    }

    /// Settled values of the non-input ports, in entity order.
    fn outputs(&self) -> Result<Vec<LogicVector>, String> {
        match self {
            Oracle::Sim { sim, outputs, .. } => outputs
                .iter()
                .map(|(_, id)| sim.peek(*id).map_err(|e| e.to_string()))
                .collect(),
            Oracle::Vhdl { vm, outputs, .. } => outputs
                .iter()
                .map(|name| vm.peek(name).map_err(|e| e.to_string()))
                .collect(),
        }
    }
}

/// Renders one per-oracle detail column for a divergence report.
fn detail_row<T: std::fmt::Display>(results: &[Result<T, String>]) -> Vec<(String, String)> {
    ORACLE_LABELS
        .iter()
        .zip(results)
        .map(|(label, r)| {
            let rendered = match r {
                Ok(v) => v.to_string(),
                Err(e) => format!("error: {e}"),
            };
            ((*label).to_owned(), rendered)
        })
        .collect()
}

/// Applies one fallible phase to every oracle, enforcing error
/// parity: all failing is conforming (the design is stopped), a mix
/// is a divergence.
fn phase_all(
    oracles: &mut [Oracle],
    cycle: usize,
    f: impl Fn(&mut Oracle) -> Result<(), String>,
) -> Result<bool, Divergence> {
    let results: Vec<Result<(), String>> = oracles.iter_mut().map(&f).collect();
    let failures = results.iter().filter(|r| r.is_err()).count();
    if failures == 0 {
        Ok(false)
    } else if failures == results.len() {
        Ok(true) // error parity: conforming, stop the design
    } else {
        let shown: Vec<Result<&str, String>> = results
            .iter()
            .map(|r| r.as_ref().map(|()| "ok").map_err(Clone::clone))
            .collect();
        Err(Divergence {
            cycle,
            port: None,
            details: detail_row(&shown),
        })
    }
}

/// Runs `netlist` through the full oracle stack under `stim`.
///
/// Returns `None` when the design conforms: all seven oracles produce
/// bit-identical four-state output traces (or all fail at the same
/// cycle). Returns the first [`Divergence`] otherwise. Oracle
/// *construction* failures (e.g. the VHDL interpreter rejecting the
/// emitted text) are reported as a cycle-0 divergence — an emitted
/// design the executable model cannot parse is itself a conformance
/// bug.
#[must_use]
pub fn check(netlist: &Netlist, stim: &Stimulus) -> Option<Divergence> {
    let built: Vec<Result<Oracle, String>> = vec![
        build_sim(netlist, SchedMode::FullSweep, true, stim),
        build_sim(netlist, SchedMode::EventDriven, true, stim),
        build_sim(netlist, SchedMode::Parallel { threads: 2 }, true, stim),
        build_sim(netlist, SchedMode::Compiled, true, stim),
        build_sim(netlist, SchedMode::Lowered, true, stim),
        build_sim(netlist, SchedMode::FullSweep, false, stim),
        build_vhdl(netlist, stim),
    ];
    if built.iter().any(Result::is_err) {
        let shown: Vec<Result<&str, String>> = built
            .iter()
            .map(|r| r.as_ref().map(|_| "ok").map_err(Clone::clone))
            .collect();
        return Some(Divergence {
            cycle: 0,
            port: None,
            details: detail_row(&shown),
        });
    }
    let mut oracles: Vec<Oracle> = built.into_iter().map(|r| r.expect("checked")).collect();
    let out_names: Vec<String> = netlist
        .entity()
        .ports()
        .iter()
        .filter(|p| p.dir() != PortDir::In)
        .map(|p| p.name().to_owned())
        .collect();
    for (cycle, row) in stim.cycles.iter().enumerate() {
        for oracle in &mut oracles {
            if let Err(e) = oracle.poke(row) {
                return Some(Divergence {
                    cycle,
                    port: None,
                    details: vec![("driver".to_owned(), format!("poke failed: {e}"))],
                });
            }
        }
        let phase: &dyn Fn(&mut Oracle) -> Result<(), String> = if cycle == 0 {
            &Oracle::reset
        } else {
            &Oracle::settle
        };
        match phase_all(&mut oracles, cycle, phase) {
            Ok(true) => return None,
            Ok(false) => {}
            Err(d) => return Some(d),
        }
        // Compare the settled output traces bit-for-bit (four-state).
        let traces: Vec<Result<Vec<LogicVector>, String>> =
            oracles.iter().map(Oracle::outputs).collect();
        let reference = match &traces[0] {
            Ok(t) => t,
            Err(_) => unreachable!("settle succeeded"),
        };
        for (pi, name) in out_names.iter().enumerate() {
            let differs = traces.iter().any(|t| match t {
                Ok(t) => t[pi] != reference[pi],
                Err(_) => true,
            });
            if differs {
                let shown: Vec<Result<LogicVector, String>> = traces
                    .iter()
                    .map(|t| t.as_ref().map(|t| t[pi]).map_err(Clone::clone))
                    .collect();
                return Some(Divergence {
                    cycle,
                    port: Some(name.clone()),
                    details: detail_row(&shown),
                });
            }
        }
        match phase_all(&mut oracles, cycle, Oracle::step) {
            Ok(true) => return None,
            Ok(false) => {}
            Err(d) => return Some(d),
        }
    }
    None
}

/// Differentially checks up to [`LANES`] stimuli at once: one 64-way
/// bit-parallel [`LaneBatch`] run of `netlist`, each lane compared
/// cycle-for-cycle against its own scalar event-driven simulation of
/// the same stimulus. This is the fuzzing fast path — one packed run
/// covers 64 random stimuli — with the scalar scheduler as the
/// per-lane referee.
///
/// A batch-level protocol error is conforming only under error
/// parity: at least one scalar lane must fail at the same cycle
/// (the batch stops at the first offending lane, so lane-exact
/// attribution is in the error text, not the comparison).
///
/// # Errors
///
/// Returns `Err` — not a divergence — when the design is outside the
/// lane engine's scope (tri-state nets, `inout` ports, high-Z
/// constants; the scalar oracle stack still covers such designs), or
/// when the stimuli disagree on input set or cycle count.
pub fn check_lanes(netlist: &Netlist, stims: &[Stimulus]) -> Result<Option<Divergence>, String> {
    if stims.is_empty() || stims.len() > LANES {
        return Err(format!(
            "check_lanes takes 1..={LANES} stimuli, got {}",
            stims.len()
        ));
    }
    let n_cycles = stims[0].cycles.len();
    if stims
        .iter()
        .any(|s| s.cycles.len() != n_cycles || s.inputs != stims[0].inputs)
    {
        return Err("all lane stimuli must share one input set and cycle count".into());
    }
    let mut lanes = LaneBatch::new("lanes", netlist).map_err(|e| e.to_string())?;
    let mut scalars = stims
        .iter()
        .map(|s| build_sim(netlist, SchedMode::EventDriven, true, s))
        .collect::<Result<Vec<_>, _>>()?;
    let out_names: Vec<String> = netlist
        .entity()
        .ports()
        .iter()
        .filter(|p| p.dir() != PortDir::In)
        .map(|p| p.name().to_owned())
        .collect();
    lanes.reset();
    for cycle in 0..n_cycles {
        for (l, stim) in stims.iter().enumerate() {
            let row = &stim.cycles[cycle];
            for (i, (name, _)) in stim.inputs.iter().enumerate() {
                lanes.poke(name, l, row[i]).map_err(|e| e.to_string())?;
            }
            scalars[l].poke(row)?;
        }
        lanes.settle();
        // Scalar settles (power-on reset on the first cycle). The lane
        // engine cannot fail to settle, so a scalar settle failure is
        // always asymmetric.
        for (l, s) in scalars.iter_mut().enumerate() {
            let r = if cycle == 0 { s.reset() } else { s.settle() };
            if let Err(e) = r {
                return Ok(Some(Divergence {
                    cycle,
                    port: None,
                    details: vec![
                        (format!("lane{l}"), "ok".to_owned()),
                        ("event_driven".to_owned(), format!("error: {e}")),
                    ],
                }));
            }
        }
        for (l, s) in scalars.iter().enumerate() {
            let trace = s.outputs()?;
            for (pi, name) in out_names.iter().enumerate() {
                let packed = lanes.peek(name, l).map_err(|e| e.to_string())?;
                if packed != trace[pi] {
                    return Ok(Some(Divergence {
                        cycle,
                        port: Some(name.clone()),
                        details: vec![
                            (format!("lane{l}"), packed.to_string()),
                            ("event_driven".to_owned(), trace[pi].to_string()),
                        ],
                    }));
                }
            }
        }
        // Clock edge: error parity between the packed tick and the
        // scalar lanes.
        let batch_err = lanes.tick().err();
        let scalar_errs: Vec<Option<String>> = scalars.iter_mut().map(|s| s.step().err()).collect();
        let any_scalar = scalar_errs.iter().any(Option::is_some);
        match (batch_err, any_scalar) {
            (None, false) => {}
            (Some(_), true) => return Ok(None), // error parity: conforming stop
            (batch, _) => {
                let mut details = vec![(
                    "lane_batch".to_owned(),
                    batch.map_or_else(|| "ok".to_owned(), |e| format!("error: {e}")),
                )];
                for (l, e) in scalar_errs.iter().enumerate() {
                    if let Some(e) = e {
                        details.push((format!("lane{l}"), format!("error: {e}")));
                    }
                }
                return Ok(Some(Divergence {
                    cycle,
                    port: None,
                    details,
                }));
            }
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdp_metagen::sampler::sample_design;
    use rand::SeedableRng;

    #[test]
    fn sampled_designs_conform_quickly() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10 {
            let design = sample_design(&mut rng).unwrap();
            let stim = Stimulus::sample(&design.netlist, 8, &mut rng);
            assert_eq!(
                check(&design.netlist, &stim),
                None,
                "divergence in {}",
                design.label
            );
        }
    }

    #[test]
    fn sampled_designs_conform_lane_packed() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut batched = 0;
        for _ in 0..12 {
            let design = sample_design(&mut rng).unwrap();
            let stims: Vec<Stimulus> = (0..8)
                .map(|_| Stimulus::sample(&design.netlist, 6, &mut rng))
                .collect();
            match check_lanes(&design.netlist, &stims) {
                Ok(None) => batched += 1,
                Ok(Some(d)) => panic!("lane divergence in {}: {d}", design.label),
                Err(_) => {} // out of the lane engine's scope
            }
        }
        assert!(batched > 0, "no sampled design was lane-packable");
    }

    #[test]
    fn a_mutated_netlist_diverges() {
        use hdp_hdl::prim::Prim;
        use hdp_hdl::{Entity, Netlist};
        // Hand-build a design whose emitted VHDL cannot match the
        // netlist: an Inc cell claims width 4 but the emitted text is
        // rebuilt from the same netlist, so instead mutate by
        // comparing against a *different* stimulus width. Simplest
        // genuine divergence: compare a netlist against stimulus for
        // a truncated input set is rejected, so drive a Buf of an
        // undriven net — every sim oracle sees X, and so does the
        // interpreter, which still conforms. A real divergence needs
        // disagreeing oracles, which the stack (by design) should not
        // produce; we therefore assert the reporting path via the
        // Display impl instead.
        let entity = Entity::builder("t")
            .port("a", hdp_hdl::PortDir::In, 2)
            .unwrap()
            .port("y", hdp_hdl::PortDir::Out, 2)
            .unwrap()
            .build()
            .unwrap();
        let mut nl = Netlist::new(entity);
        let a = nl.add_net("a", 2).unwrap();
        let y = nl.add_net("y", 2).unwrap();
        nl.add_cell("u_buf", Prim::Buf { width: 2 }, vec![a], vec![y])
            .unwrap();
        nl.bind_port("a", a).unwrap();
        nl.bind_port("y", y).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let stim = Stimulus::sample(&nl, 4, &mut rng);
        assert_eq!(check(&nl, &stim), None);
        let d = Divergence {
            cycle: 3,
            port: Some("y".into()),
            details: vec![
                ("full_sweep".into(), "\"01\"".into()),
                ("vhdl_interp".into(), "\"11\"".into()),
            ],
        };
        let msg = d.to_string();
        assert!(msg.contains("cycle #3"), "{msg}");
        assert!(msg.contains("port `y`"), "{msg}");
        assert!(msg.contains("vhdl_interp=\"11\""), "{msg}");
    }

    #[test]
    fn stimulus_rebind_masks_and_matches_by_name() {
        let mut rng = StdRng::seed_from_u64(5);
        let design = {
            // Find a queue_fifo sample to rebind onto a narrower one.
            loop {
                let d = sample_design(&mut rng).unwrap();
                if d.spec.family == 5 && d.spec.data_width > 2 {
                    break d;
                }
            }
        };
        let stim = Stimulus::sample(&design.netlist, 6, &mut rng);
        let mut narrow = design.spec.clone();
        narrow.data_width = 1;
        let nl = narrow.instantiate().unwrap();
        let rebound = stim.rebind(&nl).unwrap();
        assert_eq!(rebound.cycles.len(), stim.cycles.len());
        let wdata_col = rebound
            .inputs
            .iter()
            .position(|(n, _)| n == "wdata")
            .unwrap();
        for row in &rebound.cycles {
            assert!(row[wdata_col] <= 1);
        }
    }
}
