//! Greedy reduction of diverging cases to minimal reproducers.
//!
//! The shrinker never needs to understand *why* a case diverges: it
//! re-runs the full oracle stack after every candidate reduction and
//! keeps the smaller case whenever any divergence (not necessarily
//! the original one) persists. Reductions are attempted to a
//! fixpoint, in this order per round:
//!
//! 1. truncate the stimulus at the first divergence,
//! 2. drop the leading stimulus cycle,
//! 3. reduce `depth` towards 2,
//! 4. reduce `data_width` towards 1 (re-masking the stimulus),
//! 5. reduce `addr_width` / `key_width` towards their floors,
//! 6. reduce the `wr`/`rd` clock periods towards the synchronous 1:1
//!    ratio (multi-domain designs only).

use crate::oracle::{check, Divergence, Stimulus};
use hdp_metagen::sampler::DesignSpec;

/// A design/stimulus pair — the unit the fuzzer checks and the
/// shrinker minimises.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Case {
    /// The design-space point.
    pub spec: DesignSpec,
    /// The input trace driving it.
    pub stimulus: Stimulus,
}

impl Case {
    /// Runs the oracle stack on this case.
    #[must_use]
    pub fn check(&self) -> Option<Divergence> {
        match self.spec.instantiate() {
            Ok(netlist) => check(&netlist, &self.stimulus),
            Err(e) => Some(Divergence {
                cycle: 0,
                port: None,
                details: vec![("generator".to_owned(), format!("error: {e}"))],
            }),
        }
    }
}

/// Builds the candidate with `mutate` applied to the spec, rebinding
/// the stimulus onto the regenerated netlist. `None` if the mutated
/// spec no longer generates or the ports changed shape.
fn mutated(case: &Case, mutate: impl FnOnce(&mut DesignSpec)) -> Option<Case> {
    let mut spec = case.spec.clone();
    mutate(&mut spec);
    let netlist = spec.instantiate().ok()?;
    let stimulus = case.stimulus.rebind(&netlist)?;
    Some(Case { spec, stimulus })
}

/// Greedily shrinks a diverging case; returns the minimal case and
/// its divergence. If `case` does not diverge it is returned with
/// `None` untouched.
#[must_use]
pub fn shrink(case: &Case) -> (Case, Option<Divergence>) {
    let Some(mut divergence) = case.check() else {
        return (case.clone(), None);
    };
    let mut best = case.clone();
    // Cap the effort: each accepted reduction re-runs seven oracles.
    let mut budget = 200usize;
    loop {
        let mut reduced = false;
        // 1. Truncate at the divergence (always sound: the prefix
        // reproduces it by definition).
        if best.stimulus.cycles.len() > divergence.cycle + 1 {
            best.stimulus.cycles.truncate(divergence.cycle + 1);
            reduced = true;
        }
        type Reduction = fn(&mut DesignSpec);
        let spec_reductions: [(bool, Reduction); 6] = [
            (best.spec.depth > 2, |s| s.depth -= 1),
            (best.spec.data_width > 1 && best.spec.wide == 0, |s| {
                s.data_width -= 1;
            }),
            (best.spec.addr_width > 8, |s| s.addr_width -= 1),
            (best.spec.key_width > 8, |s| s.key_width -= 1),
            (best.spec.wr_period > 1, |s| s.wr_period -= 1),
            (best.spec.rd_period > 1, |s| s.rd_period -= 1),
        ];
        // 2. Drop the leading cycle (state evolves differently, but
        // any surviving divergence is as good as the original).
        if best.stimulus.cycles.len() > 1 && budget > 0 {
            budget -= 1;
            let mut candidate = best.clone();
            candidate.stimulus.cycles.remove(0);
            if let Some(d) = candidate.check() {
                best = candidate;
                divergence = d;
                reduced = true;
            }
        }
        // 3..5. Structural reductions.
        for (applicable, mutate) in spec_reductions {
            if !applicable || budget == 0 {
                continue;
            }
            budget -= 1;
            if let Some(candidate) = mutated(&best, mutate) {
                if let Some(d) = candidate.check() {
                    best = candidate;
                    divergence = d;
                    reduced = true;
                }
            }
        }
        if !reduced || budget == 0 {
            return (best, Some(divergence));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdp_metagen::sampler::sample_spec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn conforming_case_is_left_alone() {
        let mut rng = StdRng::seed_from_u64(9);
        let spec = sample_spec(&mut rng);
        let netlist = spec.instantiate().unwrap();
        let stimulus = Stimulus::sample(&netlist, 6, &mut rng);
        let case = Case { spec, stimulus };
        let (shrunk, d) = shrink(&case);
        assert!(d.is_none());
        assert_eq!(shrunk.stimulus.cycles.len(), case.stimulus.cycles.len());
    }

    #[test]
    fn generator_failure_is_reported_as_divergence() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut spec = sample_spec(&mut rng);
        spec.family = 7; // assoc_bram
        spec.key_width = 0; // invalid: below the address width
        let case = Case {
            spec,
            stimulus: Stimulus {
                inputs: vec![],
                cycles: vec![vec![]],
            },
        };
        let d = case.check().expect("invalid spec must not conform");
        assert_eq!(d.cycle, 0);
        assert!(d.details[0].1.contains("error"), "{:?}", d.details);
    }

    /// The one deterministic divergence the repo can always produce:
    /// a spec that fails to generate (reported as a cycle-0
    /// divergence), dressed with a long stimulus for the shrinker to
    /// chew through.
    fn known_divergence(cycles: usize) -> Case {
        let mut rng = StdRng::seed_from_u64(4);
        let mut spec = sample_spec(&mut rng);
        spec.family = 7; // assoc_bram
        spec.key_width = 0; // invalid: below the address width
        Case {
            spec,
            stimulus: Stimulus {
                inputs: vec![],
                cycles: vec![vec![]; cycles],
            },
        }
    }

    #[test]
    fn known_divergence_shrinks_to_one_cycle_within_budget() {
        let case = known_divergence(30);
        let (minimal, d) = shrink(&case);
        let d = d.expect("the shrunk case must still diverge");
        // A cycle-0 divergence truncates the whole 30-cycle tail in
        // one sound step — no recheck spent, far inside the 200
        // budget — and nothing below one cycle is attempted.
        assert_eq!(d.cycle, 0);
        assert_eq!(minimal.stimulus.cycles.len(), 1);
        // The offending spec axes survive untouched: a candidate that
        // no longer even generates can't be rebound, so the shrinker
        // keeps the smallest case that still reproduces.
        assert_eq!(minimal.spec.family, case.spec.family);
        assert_eq!(minimal.spec.key_width, 0);
    }

    #[test]
    fn shrinking_is_idempotent_on_a_minimal_case() {
        let (minimal, _) = shrink(&known_divergence(30));
        let (again, d) = shrink(&minimal);
        assert_eq!(again, minimal);
        assert!(d.is_some(), "minimal case must keep diverging");
    }

    #[test]
    fn shrunk_reproducer_round_trips_through_the_wire_format() {
        let (minimal, d) = shrink(&known_divergence(12));
        let d = d.expect("still diverges");
        let text = crate::wire::repro_to_json(4, &minimal, &d);
        let back = crate::wire::parse_case(&text).expect("reproducer parses");
        assert_eq!(back, minimal);
        // Replay re-runs the oracles from the document alone and sees
        // the same divergence — the committed-fixture contract that
        // tests/repros/ relies on.
        let replayed = crate::wire::replay(&text)
            .expect("parses")
            .expect("still diverges after the round trip");
        assert_eq!(replayed.cycle, d.cycle);
    }
}
