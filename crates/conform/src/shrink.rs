//! Greedy reduction of diverging cases to minimal reproducers.
//!
//! The shrinker never needs to understand *why* a case diverges: it
//! re-runs the full oracle stack after every candidate reduction and
//! keeps the smaller case whenever any divergence (not necessarily
//! the original one) persists. Reductions are attempted to a
//! fixpoint, in this order per round:
//!
//! 1. truncate the stimulus at the first divergence,
//! 2. drop the leading stimulus cycle,
//! 3. reduce `depth` towards 2,
//! 4. reduce `data_width` towards 1 (re-masking the stimulus),
//! 5. reduce `addr_width` / `key_width` towards their floors.

use crate::oracle::{check, Divergence, Stimulus};
use hdp_metagen::sampler::DesignSpec;

/// A design/stimulus pair — the unit the fuzzer checks and the
/// shrinker minimises.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Case {
    /// The design-space point.
    pub spec: DesignSpec,
    /// The input trace driving it.
    pub stimulus: Stimulus,
}

impl Case {
    /// Runs the oracle stack on this case.
    #[must_use]
    pub fn check(&self) -> Option<Divergence> {
        match self.spec.instantiate() {
            Ok(netlist) => check(&netlist, &self.stimulus),
            Err(e) => Some(Divergence {
                cycle: 0,
                port: None,
                details: vec![("generator".to_owned(), format!("error: {e}"))],
            }),
        }
    }
}

/// Builds the candidate with `mutate` applied to the spec, rebinding
/// the stimulus onto the regenerated netlist. `None` if the mutated
/// spec no longer generates or the ports changed shape.
fn mutated(case: &Case, mutate: impl FnOnce(&mut DesignSpec)) -> Option<Case> {
    let mut spec = case.spec.clone();
    mutate(&mut spec);
    let netlist = spec.instantiate().ok()?;
    let stimulus = case.stimulus.rebind(&netlist)?;
    Some(Case { spec, stimulus })
}

/// Greedily shrinks a diverging case; returns the minimal case and
/// its divergence. If `case` does not diverge it is returned with
/// `None` untouched.
#[must_use]
pub fn shrink(case: &Case) -> (Case, Option<Divergence>) {
    let Some(mut divergence) = case.check() else {
        return (case.clone(), None);
    };
    let mut best = case.clone();
    // Cap the effort: each accepted reduction re-runs six oracles.
    let mut budget = 200usize;
    loop {
        let mut reduced = false;
        // 1. Truncate at the divergence (always sound: the prefix
        // reproduces it by definition).
        if best.stimulus.cycles.len() > divergence.cycle + 1 {
            best.stimulus.cycles.truncate(divergence.cycle + 1);
            reduced = true;
        }
        type Reduction = fn(&mut DesignSpec);
        let spec_reductions: [(bool, Reduction); 4] = [
            (best.spec.depth > 2, |s| s.depth -= 1),
            (best.spec.data_width > 1 && best.spec.wide == 0, |s| {
                s.data_width -= 1;
            }),
            (best.spec.addr_width > 8, |s| s.addr_width -= 1),
            (best.spec.key_width > 8, |s| s.key_width -= 1),
        ];
        // 2. Drop the leading cycle (state evolves differently, but
        // any surviving divergence is as good as the original).
        if best.stimulus.cycles.len() > 1 && budget > 0 {
            budget -= 1;
            let mut candidate = best.clone();
            candidate.stimulus.cycles.remove(0);
            if let Some(d) = candidate.check() {
                best = candidate;
                divergence = d;
                reduced = true;
            }
        }
        // 3..5. Structural reductions.
        for (applicable, mutate) in spec_reductions {
            if !applicable || budget == 0 {
                continue;
            }
            budget -= 1;
            if let Some(candidate) = mutated(&best, mutate) {
                if let Some(d) = candidate.check() {
                    best = candidate;
                    divergence = d;
                    reduced = true;
                }
            }
        }
        if !reduced || budget == 0 {
            return (best, Some(divergence));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdp_metagen::sampler::sample_spec;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn conforming_case_is_left_alone() {
        let mut rng = StdRng::seed_from_u64(9);
        let spec = sample_spec(&mut rng);
        let netlist = spec.instantiate().unwrap();
        let stimulus = Stimulus::sample(&netlist, 6, &mut rng);
        let case = Case { spec, stimulus };
        let (shrunk, d) = shrink(&case);
        assert!(d.is_none());
        assert_eq!(shrunk.stimulus.cycles.len(), case.stimulus.cycles.len());
    }

    #[test]
    fn generator_failure_is_reported_as_divergence() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut spec = sample_spec(&mut rng);
        spec.family = 7; // assoc_bram
        spec.key_width = 0; // invalid: below the address width
        let case = Case {
            spec,
            stimulus: Stimulus {
                inputs: vec![],
                cycles: vec![vec![]],
            },
        };
        let d = case.check().expect("invalid spec must not conform");
        assert_eq!(d.cycle, 0);
        assert!(d.details[0].1.contains("error"), "{:?}", d.details);
    }
}
