//! Verilator-style lowering of frozen netlists to flat word-level op
//! streams, plus the 64-way bit-parallel lane engine built on the same
//! translation.
//!
//! A validated [`crate::NetlistComponent`] interprets its netlist: every
//! settle walks `Cell`/`Prim` structures, materialises `Vec<LogicVector>`
//! pin arrays and dispatches through `eval_comb`. This module stages that
//! interpretation out. [`LoweredProgram::try_lower`] translates the
//! netlist once into a `Vec<LoweredOp>` — masked AND/OR/XOR/NOT/MUX/
//! shift/compare/add ops whose operands are word indices into a flat
//! triple-plane scratch (`value`/`unknown`/`highz`, one u64 word per
//! net) — ordered by the same combinational topological order the
//! interpreter uses. [`exec_settle`] then replays the stream with no
//! `Prim` dispatch, no per-pin `LogicVector` vectors and no heap
//! scheduling, reading input ports and driving output ports through the
//! scheduler's bus exactly like the interpreter's `eval_full`, so the
//! result is bit-identical by construction (each op implements the
//! word-parallel form of the corresponding `Prim::eval_comb` X/Z
//! semantics, including `Not`'s whole-word poisoning and the tri-state
//! resolve fold).
//!
//! The second half, [`LaneBatch`], exploits the same translation for
//! throughput: 64 independent stimulus runs are packed one-per-bit into
//! u64 columns (bit `k` of every column belongs to lane `k`), so a
//! single settle of the column program advances 64 simulations at once.
//! Sequential state is kept per lane; arithmetic ripples carries across
//! bit columns; X propagation uses a defined-plane per column. Designs
//! the lane engine cannot pack exactly (tri-state nets, `inout` ports)
//! are rejected at construction and fall back to scalar runs.

use crate::error::SimError;
use crate::netlist_sim::NetlistComponent;
use crate::signal::{BusAccess, SignalId};
use hdp_hdl::prim::{CmpKind, GateOp, Prim};
use hdp_hdl::{LogicVector, Netlist, PortDir};
use std::collections::VecDeque;
use std::sync::Arc;

/// Number of independent simulation lanes a [`LaneBatch`] packs into
/// each u64 bit column.
pub const LANES: usize = 64;

/// The enumeration cap `Prim::eval_comb` applies to undefined truth
/// table inputs; the lowered executors must give up at the same point
/// to stay bit-identical.
const MAX_X_ENUM: usize = 10;

fn width_mask(width: usize) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

/// One flat word-level operation of a lowered settle.
///
/// Operands are net indices into the program's scratch planes. `out`
/// nets with several combinational drivers carry `resolve: true`, which
/// folds the op result into the pre-released net with the four-state
/// resolution rule instead of overwriting it — the word-level form of
/// the interpreter's `slot.resolve(&value)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum LoweredOp {
    /// Constant drive (planes captured from the `Const` primitive).
    Const {
        out: u32,
        v: u64,
        u: u64,
        z: u64,
        resolve: bool,
    },
    /// Plane-for-plane copy (`Buf`; passes `Z` through).
    Buf {
        a: u32,
        out: u32,
        resolve: bool,
    },
    /// Whole-word complement; any undefined input bit poisons the word.
    Not {
        a: u32,
        out: u32,
        resolve: bool,
    },
    /// Bitwise gate with dominance (`0` for AND, `1` for OR).
    Gate {
        op: GateOp,
        a: u32,
        b: u32,
        out: u32,
        resolve: bool,
    },
    ReduceOr {
        a: u32,
        out: u32,
        resolve: bool,
    },
    ReduceAnd {
        a: u32,
        out: u32,
        resolve: bool,
    },
    Add {
        a: u32,
        b: u32,
        out: u32,
        resolve: bool,
    },
    Sub {
        a: u32,
        b: u32,
        out: u32,
        resolve: bool,
    },
    Inc {
        a: u32,
        out: u32,
        resolve: bool,
    },
    Cmp {
        kind: CmpKind,
        a: u32,
        b: u32,
        out: u32,
        resolve: bool,
    },
    /// Way select; out-of-range or undefined select poisons the word.
    Mux {
        sel: u32,
        ins: Vec<u32>,
        out: u32,
        resolve: bool,
    },
    /// Plane shift-and-mask (`Slice`).
    Slice {
        a: u32,
        low: u8,
        out: u32,
        resolve: bool,
    },
    /// MSB-first shift-or over `(net, width)` pairs (`Concat`).
    Concat {
        ins: Vec<(u32, u32)>,
        out: u32,
        resolve: bool,
    },
    /// Ternary truth-table lookup with bounded X enumeration. Input
    /// `(net, width)` pairs are LSB-first in index order (the reverse
    /// of the pin order, matching `Prim::eval_comb`).
    Table {
        ins: Vec<(u32, u32)>,
        table: Vec<u64>,
        out: u32,
        resolve: bool,
    },
    /// Tri-state buffer: enable 1 passes, 0 releases to Z, X poisons.
    TriBuf {
        en: u32,
        a: u32,
        out: u32,
        resolve: bool,
    },
}

/// Sequential cell metadata the executor needs around the op stream:
/// which interpreter cell to present before the ops run and which
/// settled input nets to write back so the interpreter's `tick` (which
/// the lowered path delegates to, keeping protocol-error semantics
/// exact) sees current values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct LoweredSeq {
    /// Cell index in the netlist.
    pub(crate) cell: u32,
    /// Input net indices of the cell (sampled by `tick`).
    pub(crate) in_nets: Vec<u32>,
}

/// A frozen design lowered to a flat word-level op stream.
///
/// Value-independent: the program captures net layout, masks and ops
/// but no simulation state, so it can ride inside a
/// [`crate::CompiledPlan`] and be reused by every job of the same
/// design (the service's content-addressed cache does exactly that).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct LoweredProgram {
    /// One width mask per net (index = `NetId::index()`).
    pub(crate) masks: Vec<u64>,
    /// Nets with more than one combinational driver, pre-released to
    /// all-Z before every op walk.
    pub(crate) shared_z: Vec<u32>,
    /// The op stream, in combinational topological order.
    pub(crate) ops: Vec<LoweredOp>,
    /// `In` ports as `(net, signal)`, in wiring order.
    pub(crate) in_ports: Vec<(u32, SignalId)>,
    /// `Out` ports as `(net, signal)`, in wiring order.
    pub(crate) out_ports: Vec<(u32, SignalId)>,
    /// Sequential cells, in cell-index order.
    pub(crate) seq: Vec<LoweredSeq>,
    /// Cell count of the source netlist, for install-time validation.
    pub(crate) n_cells: u32,
}

/// Per-simulator mutable state of one lowered component: the net
/// planes (persisted across settles like the interpreter's net-value
/// cache) plus the input memo that lets an unchanged wake skip the op
/// walk entirely.
#[derive(Debug, Clone)]
pub(crate) struct LoweredScratch {
    pub(crate) v: Vec<u64>,
    pub(crate) u: Vec<u64>,
    pub(crate) z: Vec<u64>,
    in_cache: Vec<(u64, u64, u64)>,
    in_tmp: Vec<(u64, u64, u64)>,
    /// Forces the next exec to re-run the ops (set after construction,
    /// clock edges and event-driven fallbacks).
    pub(crate) dirty: bool,
}

impl LoweredScratch {
    pub(crate) fn new(prog: &LoweredProgram) -> Self {
        let n = prog.masks.len();
        Self {
            // Nets start all-X, like the interpreter's unknown-filled
            // net cache.
            v: vec![0; n],
            u: prog.masks.clone(),
            z: vec![0; n],
            in_cache: vec![(u64::MAX, u64::MAX, u64::MAX); prog.in_ports.len()],
            in_tmp: Vec::with_capacity(prog.in_ports.len()),
            dirty: true,
        }
    }
}

/// Four-state resolution of `new` into the existing planes, the
/// word-parallel form of `LogicVector::resolve`: Z yields, agreement
/// keeps the value, conflict and X produce X.
#[inline]
fn resolve_planes(
    m: u64,
    (va, ua, za): (u64, u64, u64),
    (vb, ub, zb): (u64, u64, u64),
) -> (u64, u64, u64) {
    let da = m & !(ua | za);
    let db = m & !(ub | zb);
    let agree = da & db & !(va ^ vb);
    let def = (db & za) | (da & zb) | agree;
    let z = za & zb;
    let v = (vb & za) | (va & zb) | (va & agree);
    (v & def, m & !(def | z), z)
}

#[inline]
fn store(
    scratch: &mut LoweredScratch,
    masks: &[u64],
    out: u32,
    planes: (u64, u64, u64),
    resolve: bool,
) {
    let o = out as usize;
    let (v, u, z) = if resolve {
        resolve_planes(masks[o], (scratch.v[o], scratch.u[o], scratch.z[o]), planes)
    } else {
        planes
    };
    scratch.v[o] = v;
    scratch.u[o] = u;
    scratch.z[o] = z;
}

/// Ternary truth-table evaluation on raw planes; mirrors the
/// enumeration in `Prim::eval_comb` bit for bit (same LSB-first index
/// assembly, same `MAX_X_ENUM` give-up).
fn eval_table(
    ins: &[(u32, u32)],
    table: &[u64],
    mask: u64,
    v: &[u64],
    u: &[u64],
    z: &[u64],
) -> (u64, u64, u64) {
    let mut known: u64 = 0;
    let mut x_positions: Vec<u32> = Vec::new();
    let mut bit_pos = 0u32;
    for &(net, width) in ins {
        let n = net as usize;
        let undef = u[n] | z[n];
        for i in 0..width {
            if undef >> i & 1 == 1 {
                x_positions.push(bit_pos);
            } else if v[n] >> i & 1 == 1 {
                known |= 1 << bit_pos;
            }
            bit_pos += 1;
        }
    }
    if x_positions.len() > MAX_X_ENUM {
        return (0, mask, 0);
    }
    let mut ones = mask;
    let mut zeros = mask;
    for combo in 0..(1u64 << x_positions.len()) {
        let mut index = known;
        for (i, &pos) in x_positions.iter().enumerate() {
            if combo >> i & 1 == 1 {
                index |= 1 << pos;
            }
        }
        let word = table[index as usize];
        ones &= word;
        zeros &= !word;
    }
    (ones, mask & !(ones | zeros), 0)
}

/// Executes one op against the scratch planes.
#[inline]
fn exec_op(op: &LoweredOp, prog: &LoweredProgram, s: &mut LoweredScratch) {
    let masks = &prog.masks;
    match op {
        LoweredOp::Const {
            out,
            v,
            u,
            z,
            resolve,
        } => store(s, masks, *out, (*v, *u, *z), *resolve),
        LoweredOp::Buf { a, out, resolve } => {
            let a = *a as usize;
            let planes = (s.v[a], s.u[a], s.z[a]);
            store(s, masks, *out, planes, *resolve);
        }
        LoweredOp::Not { a, out, resolve } => {
            let ai = *a as usize;
            let m = masks[*out as usize];
            let planes = if (s.u[ai] | s.z[ai]) & m != 0 {
                (0, m, 0)
            } else {
                (!s.v[ai] & m, 0, 0)
            };
            store(s, masks, *out, planes, *resolve);
        }
        LoweredOp::Gate {
            op,
            a,
            b,
            out,
            resolve,
        } => {
            let (ai, bi) = (*a as usize, *b as usize);
            let m = masks[*out as usize];
            let da = m & !(s.u[ai] | s.z[ai]);
            let db = m & !(s.u[bi] | s.z[bi]);
            let (va, vb) = (s.v[ai], s.v[bi]);
            let planes = match op {
                GateOp::And => {
                    let one = va & vb;
                    let zero = (da & !va) | (db & !vb);
                    (one, m & !(one | zero & m), 0)
                }
                GateOp::Or => {
                    let one = (va | vb) & m;
                    let zero = da & !va & db & !vb;
                    (one, m & !(one | zero), 0)
                }
                GateOp::Xor => {
                    let dd = da & db;
                    ((va ^ vb) & dd, m & !dd, 0)
                }
            };
            store(s, masks, *out, planes, *resolve);
        }
        LoweredOp::ReduceOr { a, out, resolve } => {
            let ai = *a as usize;
            let am = masks[ai];
            let planes = if s.v[ai] & am != 0 {
                (1, 0, 0)
            } else if (s.u[ai] | s.z[ai]) & am != 0 {
                (0, 1, 0)
            } else {
                (0, 0, 0)
            };
            store(s, masks, *out, planes, *resolve);
        }
        LoweredOp::ReduceAnd { a, out, resolve } => {
            let ai = *a as usize;
            let am = masks[ai];
            let da = am & !(s.u[ai] | s.z[ai]);
            let planes = if da & !s.v[ai] != 0 {
                (0, 0, 0)
            } else if (s.u[ai] | s.z[ai]) & am != 0 {
                (0, 1, 0)
            } else {
                (1, 0, 0)
            };
            store(s, masks, *out, planes, *resolve);
        }
        LoweredOp::Add { a, b, out, resolve } => {
            let (ai, bi) = (*a as usize, *b as usize);
            let m = masks[*out as usize];
            let planes = if (s.u[ai] | s.z[ai] | s.u[bi] | s.z[bi]) & m != 0 {
                (0, m, 0)
            } else {
                (s.v[ai].wrapping_add(s.v[bi]) & m, 0, 0)
            };
            store(s, masks, *out, planes, *resolve);
        }
        LoweredOp::Sub { a, b, out, resolve } => {
            let (ai, bi) = (*a as usize, *b as usize);
            let m = masks[*out as usize];
            let planes = if (s.u[ai] | s.z[ai] | s.u[bi] | s.z[bi]) & m != 0 {
                (0, m, 0)
            } else {
                (s.v[ai].wrapping_sub(s.v[bi]) & m, 0, 0)
            };
            store(s, masks, *out, planes, *resolve);
        }
        LoweredOp::Inc { a, out, resolve } => {
            let ai = *a as usize;
            let m = masks[*out as usize];
            let planes = if (s.u[ai] | s.z[ai]) & m != 0 {
                (0, m, 0)
            } else {
                (s.v[ai].wrapping_add(1) & m, 0, 0)
            };
            store(s, masks, *out, planes, *resolve);
        }
        LoweredOp::Cmp {
            kind,
            a,
            b,
            out,
            resolve,
        } => {
            let (ai, bi) = (*a as usize, *b as usize);
            let am = masks[ai];
            let planes = if (s.u[ai] | s.z[ai] | s.u[bi] | s.z[bi]) & am != 0 {
                (0, 1, 0)
            } else {
                let (va, vb) = (s.v[ai], s.v[bi]);
                let y = match kind {
                    CmpKind::Eq => va == vb,
                    CmpKind::Ne => va != vb,
                    CmpKind::Lt => va < vb,
                    CmpKind::Ge => va >= vb,
                };
                (u64::from(y), 0, 0)
            };
            store(s, masks, *out, planes, *resolve);
        }
        LoweredOp::Mux {
            sel,
            ins,
            out,
            resolve,
        } => {
            let si = *sel as usize;
            let sm = masks[si];
            let m = masks[*out as usize];
            let planes = if (s.u[si] | s.z[si]) & sm != 0 {
                (0, m, 0)
            } else {
                let idx = s.v[si] as usize;
                match ins.get(idx) {
                    Some(&n) => {
                        let n = n as usize;
                        (s.v[n], s.u[n], s.z[n])
                    }
                    None => (0, m, 0),
                }
            };
            store(s, masks, *out, planes, *resolve);
        }
        LoweredOp::Slice {
            a,
            low,
            out,
            resolve,
        } => {
            let ai = *a as usize;
            let m = masks[*out as usize];
            let planes = (s.v[ai] >> low & m, s.u[ai] >> low & m, s.z[ai] >> low & m);
            store(s, masks, *out, planes, *resolve);
        }
        LoweredOp::Concat { ins, out, resolve } => {
            let (mut v, mut u, mut z) = (0u64, 0u64, 0u64);
            for &(n, w) in ins {
                let n = n as usize;
                v = v << w | s.v[n];
                u = u << w | s.u[n];
                z = z << w | s.z[n];
            }
            store(s, masks, *out, (v, u, z), *resolve);
        }
        LoweredOp::Table {
            ins,
            table,
            out,
            resolve,
        } => {
            let m = masks[*out as usize];
            let planes = eval_table(ins, table, m, &s.v, &s.u, &s.z);
            store(s, masks, *out, planes, *resolve);
        }
        LoweredOp::TriBuf {
            en,
            a,
            out,
            resolve,
        } => {
            let (ei, ai) = (*en as usize, *a as usize);
            let m = masks[*out as usize];
            let planes = if (s.u[ei] | s.z[ei]) & 1 != 0 {
                (0, m, 0)
            } else if s.v[ei] & 1 == 1 {
                (s.v[ai], s.u[ai], s.z[ai])
            } else {
                (0, 0, m)
            };
            store(s, masks, *out, planes, *resolve);
        }
    }
}

/// Settles one lowered component against the scheduler bus: the
/// drop-in replacement for `NetlistComponent::eval` on the compiled
/// rank walk. Reads `In` ports, presents sequential outputs, walks the
/// op stream and drives `Out` ports — phase for phase the interpreter's
/// `eval_full`, on flat planes. When neither the inputs nor the
/// sequential state changed since the last walk, the ops are skipped
/// and the (provably unchanged) outputs are just re-driven, which keeps
/// shared-bus resolution waves intact. Returns the number of word ops
/// executed (`0` on a memo hit).
pub(crate) fn exec_settle(
    prog: &LoweredProgram,
    scratch: &mut LoweredScratch,
    comp: &mut NetlistComponent,
    bus: &mut dyn BusAccess,
) -> Result<u64, SimError> {
    // 1. Read input ports and compare against the memo.
    scratch.in_tmp.clear();
    let mut changed = scratch.dirty;
    for (k, &(_, signal)) in prog.in_ports.iter().enumerate() {
        let planes = bus.read(signal)?.raw_masks();
        if scratch.in_cache[k] != planes {
            changed = true;
        }
        scratch.in_tmp.push(planes);
    }
    let mut ops = 0u64;
    if changed {
        for (k, &(net, _)) in prog.in_ports.iter().enumerate() {
            let (v, u, z) = scratch.in_tmp[k];
            scratch.in_cache[k] = (v, u, z);
            let n = net as usize;
            scratch.v[n] = v;
            scratch.u[n] = u;
            scratch.z[n] = z;
        }
        // 2. Present sequential outputs.
        for sq in &prog.seq {
            for (net, value) in comp.lowered_seq_outputs(sq.cell as usize) {
                let (v, u, z) = value.raw_masks();
                scratch.v[net] = v;
                scratch.u[net] = u;
                scratch.z[net] = z;
            }
        }
        // 3. Pre-release shared tri-state nets.
        for &n in &prog.shared_z {
            let n = n as usize;
            scratch.v[n] = 0;
            scratch.u[n] = 0;
            scratch.z[n] = prog.masks[n];
        }
        // 4. The flat op walk — the hot loop.
        for op in &prog.ops {
            exec_op(op, prog, scratch);
        }
        ops = prog.ops.len() as u64;
        // Write the settled values of sequential input nets back into
        // the interpreter so its `tick` (still the authority on clock
        // edges and protocol errors) samples current data, and mark its
        // combinational cache stale for any later interpreted eval.
        for sq in &prog.seq {
            for &net in &sq.in_nets {
                let n = net as usize;
                let width = prog.masks[n].count_ones() as usize;
                let value =
                    LogicVector::from_raw_masks(width, scratch.v[n], scratch.u[n], scratch.z[n])
                        .map_err(SimError::from)?;
                comp.lowered_sync_net(n, value);
            }
        }
        comp.lowered_mark_stale();
        scratch.dirty = false;
    }
    // 5. Drive output ports (every wake, like the interpreter, so
    // shared-signal resolution sees every driver's contribution).
    for &(net, signal) in &prog.out_ports {
        let n = net as usize;
        let width = prog.masks[n].count_ones() as usize;
        let value = LogicVector::from_raw_masks(width, scratch.v[n], scratch.u[n], scratch.z[n])
            .map_err(SimError::from)?;
        bus.drive(signal, value)?;
    }
    Ok(ops)
}

impl LoweredProgram {
    /// Lowers a validated netlist plus its port wiring into an op
    /// stream. Infallible for anything `NetlistComponent` accepts —
    /// the component has already rejected inout ports and
    /// combinational cycles — but returns a reason string for shapes
    /// that cannot be lowered so callers can fall back and report.
    pub(crate) fn try_lower(
        netlist: &Netlist,
        port_wiring: &[(String, PortDir, hdp_hdl::NetId, SignalId)],
    ) -> Result<Self, String> {
        let nets = netlist.nets();
        let masks: Vec<u64> = nets.iter().map(|n| width_mask(n.width())).collect();
        let topo = netlist
            .comb_topo_order()
            .map_err(|e| format!("combinational cycle: {e}"))?;

        // Count combinational drivers per net to find shared
        // (tri-state) nets, which are pre-released and resolve-folded.
        let mut comb_drivers = vec![0u32; nets.len()];
        for cell in netlist.cells() {
            if cell.prim().is_sequential() {
                continue;
            }
            for out in cell.outputs() {
                comb_drivers[out.index()] += 1;
            }
        }
        let shared_z: Vec<u32> = comb_drivers
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c > 1)
            .map(|(n, _)| n as u32)
            .collect();

        let mut ops = Vec::with_capacity(topo.len());
        for &ci in &topo {
            let cell = netlist.cell(ci);
            let ins = cell.inputs();
            let outs = cell.outputs();
            let out = outs[0].index() as u32;
            let resolve = comb_drivers[outs[0].index()] > 1;
            let op = match cell.prim() {
                Prim::Const { value } => {
                    let (v, u, z) = value.raw_masks();
                    LoweredOp::Const {
                        out,
                        v,
                        u,
                        z,
                        resolve,
                    }
                }
                Prim::Buf { .. } => LoweredOp::Buf {
                    a: ins[0].index() as u32,
                    out,
                    resolve,
                },
                Prim::Not { .. } => LoweredOp::Not {
                    a: ins[0].index() as u32,
                    out,
                    resolve,
                },
                Prim::Gate { op, .. } => LoweredOp::Gate {
                    op: *op,
                    a: ins[0].index() as u32,
                    b: ins[1].index() as u32,
                    out,
                    resolve,
                },
                Prim::ReduceOr { .. } => LoweredOp::ReduceOr {
                    a: ins[0].index() as u32,
                    out,
                    resolve,
                },
                Prim::ReduceAnd { .. } => LoweredOp::ReduceAnd {
                    a: ins[0].index() as u32,
                    out,
                    resolve,
                },
                Prim::Add { .. } => LoweredOp::Add {
                    a: ins[0].index() as u32,
                    b: ins[1].index() as u32,
                    out,
                    resolve,
                },
                Prim::Sub { .. } => LoweredOp::Sub {
                    a: ins[0].index() as u32,
                    b: ins[1].index() as u32,
                    out,
                    resolve,
                },
                Prim::Inc { .. } => LoweredOp::Inc {
                    a: ins[0].index() as u32,
                    out,
                    resolve,
                },
                Prim::Cmp { kind, .. } => LoweredOp::Cmp {
                    kind: *kind,
                    a: ins[0].index() as u32,
                    b: ins[1].index() as u32,
                    out,
                    resolve,
                },
                Prim::Mux { .. } => LoweredOp::Mux {
                    sel: ins[0].index() as u32,
                    ins: ins[1..].iter().map(|n| n.index() as u32).collect(),
                    out,
                    resolve,
                },
                Prim::Slice { low, .. } => LoweredOp::Slice {
                    a: ins[0].index() as u32,
                    low: *low as u8,
                    out,
                    resolve,
                },
                Prim::Concat { .. } => LoweredOp::Concat {
                    ins: ins
                        .iter()
                        .map(|n| (n.index() as u32, nets[n.index()].width() as u32))
                        .collect(),
                    out,
                    resolve,
                },
                Prim::TruthTable { table, .. } => LoweredOp::Table {
                    // eval_comb assembles the index LSB-first from the
                    // reversed pin list.
                    ins: ins
                        .iter()
                        .rev()
                        .map(|n| (n.index() as u32, nets[n.index()].width() as u32))
                        .collect(),
                    table: table.clone(),
                    out,
                    resolve,
                },
                Prim::TriBuf { .. } => LoweredOp::TriBuf {
                    en: ins[0].index() as u32,
                    a: ins[1].index() as u32,
                    out,
                    resolve,
                },
                Prim::Reg { .. }
                | Prim::BlockRam { .. }
                | Prim::FifoMacro { .. }
                | Prim::LifoMacro { .. } => continue,
            };
            ops.push(op);
        }

        let mut in_ports = Vec::new();
        let mut out_ports = Vec::new();
        for (_, dir, net, signal) in port_wiring {
            match dir {
                PortDir::In => in_ports.push((net.index() as u32, *signal)),
                PortDir::Out => out_ports.push((net.index() as u32, *signal)),
                PortDir::InOut => {
                    return Err("inout port cannot be lowered".into());
                }
            }
        }

        let seq: Vec<LoweredSeq> = netlist
            .cells()
            .iter()
            .enumerate()
            .filter(|(_, c)| c.prim().is_sequential())
            .map(|(ci, c)| LoweredSeq {
                cell: ci as u32,
                in_nets: c.inputs().iter().map(|n| n.index() as u32).collect(),
            })
            .collect();

        Ok(Self {
            masks,
            shared_z,
            ops,
            in_ports,
            out_ports,
            seq,
            n_cells: netlist.cells().len() as u32,
        })
    }

    /// Whether this program still matches a component (used when a
    /// cached plan is installed into a fresh simulator).
    pub(crate) fn matches(&self, comp: &NetlistComponent) -> bool {
        let netlist = comp.netlist();
        netlist.cells().len() as u32 == self.n_cells && netlist.nets().len() == self.masks.len()
    }
}

// ---------------------------------------------------------------------
// 64-way bit-parallel lane engine
// ---------------------------------------------------------------------

/// One column operation of a [`LaneBatch`] program. Operands are
/// *column* indices: column `c` holds one bit of one net across all 64
/// lanes (`val` plane plus `def` plane; no Z plane — tri-state designs
/// are rejected at construction, and without tri-state sources no Z
/// can arise).
#[derive(Debug, Clone)]
enum ColOp {
    Const {
        out: u32,
        w: u32,
        bits: u64,
        xbits: u64,
    },
    Copy {
        a: u32,
        out: u32,
        w: u32,
    },
    Not {
        a: u32,
        out: u32,
        w: u32,
    },
    Gate {
        op: GateOp,
        a: u32,
        b: u32,
        out: u32,
        w: u32,
    },
    ReduceOr {
        a: u32,
        out: u32,
        w: u32,
    },
    ReduceAnd {
        a: u32,
        out: u32,
        w: u32,
    },
    Add {
        a: u32,
        b: u32,
        out: u32,
        w: u32,
    },
    Sub {
        a: u32,
        b: u32,
        out: u32,
        w: u32,
    },
    Inc {
        a: u32,
        out: u32,
        w: u32,
    },
    Cmp {
        kind: CmpKind,
        a: u32,
        sw: u32,
        b: u32,
        out: u32,
    },
    Mux {
        sel: u32,
        sw: u32,
        ins: Vec<u32>,
        out: u32,
        w: u32,
    },
    /// Per-output-column source list (Concat is pure wiring).
    Wire {
        srcs: Vec<u32>,
        out: u32,
    },
    Table {
        ins: Vec<(u32, u32)>,
        table: Arc<Vec<u64>>,
        out: u32,
        w: u32,
    },
}

/// Pending column writes from sequential presentation: net offset,
/// width, and one `(value, defined)` plane pair per bit column.
type SeqWrites = Vec<(u32, u32, Vec<(u64, u64)>)>;

/// Per-lane sequential state of one cell.
#[derive(Debug, Clone)]
enum LaneSeq {
    Reg {
        d: u32,
        en: Option<u32>,
        out: u32,
        w: u32,
        /// State bit columns (value/defined), lane-packed like nets.
        sv: Vec<u64>,
        sd: Vec<u64>,
        reset_value: u64,
    },
    Bram {
        /// Cell instance name, for protocol errors.
        cell: String,
        we: u32,
        waddr: u32,
        aw: u32,
        wdata: u32,
        raddr: u32,
        out: u32,
        w: u32,
        mem: Vec<Vec<Option<u64>>>,
        rdout: Vec<Option<u64>>,
    },
    Fifo {
        /// Cell instance name, for protocol errors.
        cell: String,
        push: u32,
        pop: u32,
        wdata: u32,
        front: u32,
        empty: u32,
        full: u32,
        w: u32,
        depth: usize,
        data: Vec<VecDeque<u64>>,
    },
    Lifo {
        /// Cell instance name, for protocol errors.
        cell: String,
        push: u32,
        pop: u32,
        wdata: u32,
        top: u32,
        empty: u32,
        full: u32,
        w: u32,
        depth: usize,
        data: Vec<Vec<u64>>,
    },
}

/// A 64-way bit-parallel simulation of one design: 64 independent
/// stimulus lanes packed one-per-bit into u64 columns, advanced by a
/// single lowered settle per delta and a single tick per clock edge.
///
/// The engine covers exactly the designs whose four-state behaviour it
/// can reproduce bit for bit with a value/defined column pair:
/// tri-state primitives, shared (multiply-driven) nets, `inout` ports
/// and high-Z constants are rejected by [`LaneBatch::new`] — such
/// designs keep the scalar path. X propagation (undefined arithmetic
/// poisoning, mux select poisoning, truth-table ternary enumeration)
/// follows `Prim::eval_comb` exactly, per lane.
///
/// Protocol: poke input ports ([`LaneBatch::poke`]), [`LaneBatch::settle`],
/// read settled outputs ([`LaneBatch::peek`]), then [`LaneBatch::tick`]
/// for the clock edge — the same cycle discipline as [`crate::Simulator`].
#[derive(Debug, Clone)]
pub struct LaneBatch {
    name: String,
    /// Column planes: bit `k` of a word belongs to lane `k`.
    val: Vec<u64>,
    def: Vec<u64>,
    /// First column of each net.
    base: Vec<u32>,
    ops: Vec<ColOp>,
    seq: Vec<LaneSeq>,
    in_ports: Vec<(String, usize, usize)>,
    out_ports: Vec<(String, usize, usize)>,
    settles: u64,
    ticks: u64,
}

fn lane_bit(word: u64, lane: usize) -> u64 {
    word >> lane & 1
}

impl LaneBatch {
    /// Compiles a validated netlist into a lane-packed column program.
    ///
    /// # Errors
    ///
    /// [`SimError::Protocol`] when the design cannot be lane-packed
    /// exactly: tri-state primitives, multiply-driven nets, `inout`
    /// ports, high-Z constants, a combinational cycle, or a second
    /// clock domain (lanes advance every lane on one shared edge).
    pub fn new(name: impl Into<String>, netlist: &Netlist) -> Result<Self, SimError> {
        let name = name.into();
        let refuse = |message: String| SimError::Protocol {
            component: name.clone(),
            message,
        };
        if netlist.is_multi_domain() {
            let culprit = netlist
                .cell_domains()
                .iter()
                .position(|&d| d != 0)
                .map_or_else(
                    || format!("domain `{}` is declared", netlist.domains()[1].name()),
                    |ci| {
                        format!(
                            "cell `{}` is clocked by domain `{}`",
                            netlist.cells()[ci].name(),
                            netlist.domains()[netlist.cell_domains()[ci]].name()
                        )
                    },
                );
            return Err(refuse(format!(
                "lane packing refused: {culprit} (lanes share one clock edge; multi-domain \
                 designs need the event-driven scheduler)"
            )));
        }
        let nets = netlist.nets();
        let topo = netlist
            .comb_topo_order()
            .map_err(|e| refuse(format!("lane packing refused: {e}")))?;

        let mut comb_drivers = vec![0u32; nets.len()];
        for cell in netlist.cells() {
            if cell.prim().is_sequential() {
                continue;
            }
            for out in cell.outputs() {
                comb_drivers[out.index()] += 1;
            }
        }
        if let Some((n, _)) = comb_drivers.iter().enumerate().find(|&(_, &c)| c > 1) {
            return Err(refuse(format!(
                "lane packing refused: net `{}` has multiple drivers (tri-state bus)",
                nets[n].name()
            )));
        }

        // Column layout: one (val, def) u64 pair per net bit.
        let mut base = Vec::with_capacity(nets.len());
        let mut cols = 0u32;
        for net in nets {
            base.push(cols);
            cols += net.width() as u32;
        }

        let mut ops = Vec::with_capacity(topo.len());
        for &ci in &topo {
            let cell = netlist.cell(ci);
            let ins = cell.inputs();
            let outs = cell.outputs();
            let nb = |i: usize| base[ins[i].index()];
            let nw = |i: usize| nets[ins[i].index()].width() as u32;
            let out = base[outs[0].index()];
            let w = nets[outs[0].index()].width() as u32;
            let op = match cell.prim() {
                Prim::Const { value } => {
                    let (v, u, z) = value.raw_masks();
                    if z != 0 {
                        return Err(refuse(format!(
                            "lane packing refused: constant `{}` drives high-Z bits",
                            cell.name()
                        )));
                    }
                    ColOp::Const {
                        out,
                        w,
                        bits: v,
                        xbits: u,
                    }
                }
                Prim::Buf { .. } => ColOp::Copy { a: nb(0), out, w },
                Prim::Not { .. } => ColOp::Not { a: nb(0), out, w },
                Prim::Gate { op, .. } => ColOp::Gate {
                    op: *op,
                    a: nb(0),
                    b: nb(1),
                    out,
                    w,
                },
                Prim::ReduceOr { .. } => ColOp::ReduceOr {
                    a: nb(0),
                    out,
                    w: nw(0),
                },
                Prim::ReduceAnd { .. } => ColOp::ReduceAnd {
                    a: nb(0),
                    out,
                    w: nw(0),
                },
                Prim::Add { .. } => ColOp::Add {
                    a: nb(0),
                    b: nb(1),
                    out,
                    w,
                },
                Prim::Sub { .. } => ColOp::Sub {
                    a: nb(0),
                    b: nb(1),
                    out,
                    w,
                },
                Prim::Inc { .. } => ColOp::Inc { a: nb(0), out, w },
                Prim::Cmp { kind, .. } => ColOp::Cmp {
                    kind: *kind,
                    a: nb(0),
                    sw: nw(0),
                    b: nb(1),
                    out,
                },
                Prim::Mux { .. } => ColOp::Mux {
                    sel: nb(0),
                    sw: nw(0),
                    ins: (1..ins.len()).map(nb).collect(),
                    out,
                    w,
                },
                Prim::Slice { low, .. } => ColOp::Copy {
                    a: nb(0) + *low as u32,
                    out,
                    w,
                },
                Prim::Concat { .. } => {
                    // MSB-first pins: the first input occupies the top
                    // columns of the output.
                    let mut srcs = vec![0u32; w as usize];
                    let mut top = w;
                    for (i, _) in ins.iter().enumerate() {
                        let iw = nw(i);
                        top -= iw;
                        for j in 0..iw {
                            srcs[(top + j) as usize] = nb(i) + j;
                        }
                    }
                    ColOp::Wire { srcs, out }
                }
                Prim::TruthTable { table, .. } => ColOp::Table {
                    ins: ins
                        .iter()
                        .rev()
                        .map(|n| (base[n.index()], nets[n.index()].width() as u32))
                        .collect(),
                    table: Arc::new(table.clone()),
                    out,
                    w,
                },
                Prim::TriBuf { .. } => {
                    return Err(refuse(format!(
                        "lane packing refused: tri-state buffer `{}`",
                        cell.name()
                    )));
                }
                Prim::Reg { .. }
                | Prim::BlockRam { .. }
                | Prim::FifoMacro { .. }
                | Prim::LifoMacro { .. } => continue,
            };
            ops.push(op);
        }

        let mut seq = Vec::new();
        for cell in netlist.cells() {
            let ins = cell.inputs();
            let outs = cell.outputs();
            match cell.prim() {
                Prim::Reg {
                    width,
                    has_enable,
                    reset_value,
                } => seq.push(LaneSeq::Reg {
                    d: base[ins[0].index()],
                    en: has_enable.then(|| base[ins[1].index()]),
                    out: base[outs[0].index()],
                    w: *width as u32,
                    sv: vec![0; *width],
                    sd: vec![0; *width],
                    reset_value: *reset_value,
                }),
                Prim::BlockRam {
                    addr_width,
                    data_width,
                } => seq.push(LaneSeq::Bram {
                    cell: cell.name().to_owned(),
                    we: base[ins[0].index()],
                    waddr: base[ins[1].index()],
                    aw: *addr_width as u32,
                    wdata: base[ins[2].index()],
                    raddr: base[ins[3].index()],
                    out: base[outs[0].index()],
                    w: *data_width as u32,
                    mem: vec![vec![None; 1 << addr_width]; LANES],
                    rdout: vec![None; LANES],
                }),
                Prim::FifoMacro { depth, width } => seq.push(LaneSeq::Fifo {
                    cell: cell.name().to_owned(),
                    push: base[ins[0].index()],
                    pop: base[ins[1].index()],
                    wdata: base[ins[2].index()],
                    front: base[outs[0].index()],
                    empty: base[outs[1].index()],
                    full: base[outs[2].index()],
                    w: *width as u32,
                    depth: *depth,
                    data: vec![VecDeque::new(); LANES],
                }),
                Prim::LifoMacro { depth, width } => seq.push(LaneSeq::Lifo {
                    cell: cell.name().to_owned(),
                    push: base[ins[0].index()],
                    pop: base[ins[1].index()],
                    wdata: base[ins[2].index()],
                    top: base[outs[0].index()],
                    empty: base[outs[1].index()],
                    full: base[outs[2].index()],
                    w: *width as u32,
                    depth: *depth,
                    data: vec![Vec::new(); LANES],
                }),
                _ => {}
            }
        }

        let mut in_ports = Vec::new();
        let mut out_ports = Vec::new();
        for binding in netlist.bindings() {
            let dir = netlist
                .entity()
                .port(binding.port())
                .expect("binding validated against entity")
                .dir();
            let net = binding.net().index();
            let entry = (binding.port().to_owned(), net, nets[net].width());
            match dir {
                PortDir::In => in_ports.push(entry),
                PortDir::Out => out_ports.push(entry),
                PortDir::InOut => {
                    return Err(refuse(format!(
                        "lane packing refused: inout port `{}`",
                        binding.port()
                    )));
                }
            }
        }

        Ok(Self {
            name,
            val: vec![0; cols as usize],
            def: vec![0; cols as usize],
            base,
            ops,
            seq,
            in_ports,
            out_ports,
            settles: 0,
            ticks: 0,
        })
    }

    /// The engine's instance name (used in protocol errors).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Input port names, in binding order.
    #[must_use]
    pub fn input_ports(&self) -> Vec<&str> {
        self.in_ports.iter().map(|(n, _, _)| n.as_str()).collect()
    }

    /// Output port names, in binding order.
    #[must_use]
    pub fn output_ports(&self) -> Vec<&str> {
        self.out_ports.iter().map(|(n, _, _)| n.as_str()).collect()
    }

    /// Settles run since construction (one per [`LaneBatch::settle`]).
    #[must_use]
    pub fn settles(&self) -> u64 {
        self.settles
    }

    fn find_in(&self, port: &str) -> Result<(usize, usize), SimError> {
        self.in_ports
            .iter()
            .find(|(n, _, _)| n == port)
            .map(|&(_, net, w)| (net, w))
            .ok_or_else(|| SimError::Protocol {
                component: self.name.clone(),
                message: format!("unknown input port `{port}`"),
            })
    }

    /// Drives a defined value on an input port of one lane. The value
    /// persists until the next poke, like a simulator poke.
    ///
    /// # Errors
    ///
    /// [`SimError::Protocol`] for an unknown port, lane or oversized
    /// value.
    pub fn poke(&mut self, port: &str, lane: usize, value: u64) -> Result<(), SimError> {
        let (net, w) = self.find_in(port)?;
        if lane >= LANES {
            return Err(SimError::Protocol {
                component: self.name.clone(),
                message: format!("lane {lane} out of range"),
            });
        }
        if w < 64 && value >> w != 0 {
            return Err(SimError::Protocol {
                component: self.name.clone(),
                message: format!("value {value:#x} exceeds {w}-bit port `{port}`"),
            });
        }
        let b = self.base[net] as usize;
        let m = 1u64 << lane;
        for i in 0..w {
            if value >> i & 1 == 1 {
                self.val[b + i] |= m;
            } else {
                self.val[b + i] &= !m;
            }
            self.def[b + i] |= m;
        }
        Ok(())
    }

    /// Drives the same defined value on an input port of every lane.
    ///
    /// # Errors
    ///
    /// As [`LaneBatch::poke`].
    pub fn poke_all(&mut self, port: &str, value: u64) -> Result<(), SimError> {
        let (net, w) = self.find_in(port)?;
        if w < 64 && value >> w != 0 {
            return Err(SimError::Protocol {
                component: self.name.clone(),
                message: format!("value {value:#x} exceeds {w}-bit port `{port}`"),
            });
        }
        let b = self.base[net] as usize;
        for i in 0..w {
            self.val[b + i] = if value >> i & 1 == 1 { u64::MAX } else { 0 };
            self.def[b + i] = u64::MAX;
        }
        Ok(())
    }

    /// Reads the settled four-state value of an output (or input) port
    /// in one lane.
    ///
    /// # Errors
    ///
    /// [`SimError::Protocol`] for an unknown port or lane.
    pub fn peek(&self, port: &str, lane: usize) -> Result<LogicVector, SimError> {
        let (net, w) = self
            .out_ports
            .iter()
            .chain(self.in_ports.iter())
            .find(|(n, _, _)| n == port)
            .map(|&(_, net, w)| (net, w))
            .ok_or_else(|| SimError::Protocol {
                component: self.name.clone(),
                message: format!("unknown port `{port}`"),
            })?;
        if lane >= LANES {
            return Err(SimError::Protocol {
                component: self.name.clone(),
                message: format!("lane {lane} out of range"),
            });
        }
        let b = self.base[net] as usize;
        let (mut v, mut u) = (0u64, 0u64);
        for i in 0..w {
            v |= lane_bit(self.val[b + i], lane) << i;
            u |= (1 - lane_bit(self.def[b + i], lane)) << i;
        }
        LogicVector::from_raw_masks(w, v, u, 0).map_err(SimError::from)
    }

    fn gather(&self, col: u32, w: u32, lane: usize) -> (u64, bool) {
        let b = col as usize;
        let (mut v, mut defined) = (0u64, true);
        for i in 0..w as usize {
            v |= lane_bit(self.val[b + i], lane) << i;
            defined &= lane_bit(self.def[b + i], lane) == 1;
        }
        (v, defined)
    }

    /// Restores power-on state in every lane: registers to their reset
    /// values, FIFOs/LIFOs empty, RAM read ports undefined. Poked
    /// inputs are cleared back to undefined.
    pub fn reset(&mut self) {
        for word in &mut self.val {
            *word = 0;
        }
        for word in &mut self.def {
            *word = 0;
        }
        for s in &mut self.seq {
            match s {
                LaneSeq::Reg {
                    sv,
                    sd,
                    reset_value,
                    ..
                } => {
                    for (i, col) in sv.iter_mut().enumerate() {
                        *col = if *reset_value >> i & 1 == 1 {
                            u64::MAX
                        } else {
                            0
                        };
                    }
                    for col in sd.iter_mut() {
                        *col = u64::MAX;
                    }
                }
                LaneSeq::Bram { rdout, .. } => {
                    for o in rdout.iter_mut() {
                        *o = None;
                    }
                }
                LaneSeq::Fifo { data, .. } => {
                    for d in data.iter_mut() {
                        d.clear();
                    }
                }
                LaneSeq::Lifo { data, .. } => {
                    for d in data.iter_mut() {
                        d.clear();
                    }
                }
            }
        }
    }

    fn present_seq(&mut self) {
        // Split borrows: sequential presentation writes whole columns.
        let mut writes: SeqWrites = Vec::new();
        for s in &self.seq {
            match s {
                LaneSeq::Reg { out, w, sv, sd, .. } => {
                    let cols = (0..*w as usize).map(|i| (sv[i], sd[i])).collect();
                    writes.push((*out, *w, cols));
                }
                LaneSeq::Bram { out, w, rdout, .. } => {
                    writes.push((*out, *w, lane_cols(rdout, *w)));
                }
                LaneSeq::Fifo {
                    front,
                    empty,
                    full,
                    w,
                    depth,
                    data,
                    ..
                } => {
                    let fronts: Vec<Option<u64>> =
                        data.iter().map(|d| d.front().copied()).collect();
                    writes.push((*front, *w, lane_cols(&fronts, *w)));
                    let empties: Vec<Option<u64>> =
                        data.iter().map(|d| Some(u64::from(d.is_empty()))).collect();
                    writes.push((*empty, 1, lane_cols(&empties, 1)));
                    let fulls: Vec<Option<u64>> = data
                        .iter()
                        .map(|d| Some(u64::from(d.len() >= *depth)))
                        .collect();
                    writes.push((*full, 1, lane_cols(&fulls, 1)));
                }
                LaneSeq::Lifo {
                    top,
                    empty,
                    full,
                    w,
                    depth,
                    data,
                    ..
                } => {
                    let tops: Vec<Option<u64>> = data.iter().map(|d| d.last().copied()).collect();
                    writes.push((*top, *w, lane_cols(&tops, *w)));
                    let empties: Vec<Option<u64>> =
                        data.iter().map(|d| Some(u64::from(d.is_empty()))).collect();
                    writes.push((*empty, 1, lane_cols(&empties, 1)));
                    let fulls: Vec<Option<u64>> = data
                        .iter()
                        .map(|d| Some(u64::from(d.len() >= *depth)))
                        .collect();
                    writes.push((*full, 1, lane_cols(&fulls, 1)));
                }
            }
        }
        for (out, w, cols) in writes {
            let b = out as usize;
            for (i, (v, d)) in cols.into_iter().enumerate().take(w as usize) {
                self.val[b + i] = v;
                self.def[b + i] = d;
            }
        }
    }

    /// Settles all 64 lanes: presents sequential outputs and runs the
    /// column program once in topological order (a feed-forward netlist
    /// needs exactly one sweep).
    pub fn settle(&mut self) {
        self.settles += 1;
        self.present_seq();
        // The hot loop: every op advances 64 lanes at once.
        let mut ops = std::mem::take(&mut self.ops);
        for op in &ops {
            self.exec_col_op(op);
        }
        std::mem::swap(&mut self.ops, &mut ops);
    }

    #[allow(clippy::too_many_lines)]
    fn exec_col_op(&mut self, op: &ColOp) {
        match op {
            ColOp::Const {
                out,
                w,
                bits,
                xbits,
            } => {
                let b = *out as usize;
                for i in 0..*w as usize {
                    self.val[b + i] = if bits >> i & 1 == 1 { u64::MAX } else { 0 };
                    self.def[b + i] = if xbits >> i & 1 == 1 { 0 } else { u64::MAX };
                }
            }
            ColOp::Copy { a, out, w } => {
                let (a, b) = (*a as usize, *out as usize);
                for i in 0..*w as usize {
                    self.val[b + i] = self.val[a + i];
                    self.def[b + i] = self.def[a + i];
                }
            }
            ColOp::Not { a, out, w } => {
                let (a, b) = (*a as usize, *out as usize);
                let mut pois = 0u64;
                for i in 0..*w as usize {
                    pois |= !self.def[a + i];
                }
                for i in 0..*w as usize {
                    self.def[b + i] = !pois;
                    self.val[b + i] = !self.val[a + i] & !pois;
                }
            }
            ColOp::Gate { op, a, b, out, w } => {
                let (a, bb, o) = (*a as usize, *b as usize, *out as usize);
                for i in 0..*w as usize {
                    let (va, da) = (self.val[a + i], self.def[a + i]);
                    let (vb, db) = (self.val[bb + i], self.def[bb + i]);
                    let (v, d) = match op {
                        GateOp::And => {
                            let one = va & vb;
                            let zero = (da & !va) | (db & !vb);
                            (one, one | zero)
                        }
                        GateOp::Or => {
                            let one = va | vb;
                            let zero = da & !va & db & !vb;
                            (one, one | zero)
                        }
                        GateOp::Xor => {
                            let dd = da & db;
                            ((va ^ vb) & dd, dd)
                        }
                    };
                    self.val[o + i] = v;
                    self.def[o + i] = d;
                }
            }
            ColOp::ReduceOr { a, out, w } => {
                let (a, o) = (*a as usize, *out as usize);
                let (mut one, mut alldef) = (0u64, u64::MAX);
                for i in 0..*w as usize {
                    one |= self.val[a + i];
                    alldef &= self.def[a + i];
                }
                self.val[o] = one;
                self.def[o] = one | alldef;
            }
            ColOp::ReduceAnd { a, out, w } => {
                let (a, o) = (*a as usize, *out as usize);
                let (mut zero, mut alldef) = (0u64, u64::MAX);
                for i in 0..*w as usize {
                    zero |= self.def[a + i] & !self.val[a + i];
                    alldef &= self.def[a + i];
                }
                self.val[o] = alldef & !zero;
                self.def[o] = zero | alldef;
            }
            ColOp::Add { a, b, out, w } => {
                let (a, bb, o) = (*a as usize, *b as usize, *out as usize);
                let mut pois = 0u64;
                for i in 0..*w as usize {
                    pois |= !self.def[a + i] | !self.def[bb + i];
                }
                let mut carry = 0u64;
                for i in 0..*w as usize {
                    let (va, vb) = (self.val[a + i], self.val[bb + i]);
                    self.val[o + i] = (va ^ vb ^ carry) & !pois;
                    self.def[o + i] = !pois;
                    carry = (va & vb) | (carry & (va ^ vb));
                }
            }
            ColOp::Sub { a, b, out, w } => {
                let (a, bb, o) = (*a as usize, *b as usize, *out as usize);
                let mut pois = 0u64;
                for i in 0..*w as usize {
                    pois |= !self.def[a + i] | !self.def[bb + i];
                }
                let mut carry = u64::MAX;
                for i in 0..*w as usize {
                    let (va, nb) = (self.val[a + i], !self.val[bb + i]);
                    self.val[o + i] = (va ^ nb ^ carry) & !pois;
                    self.def[o + i] = !pois;
                    carry = (va & nb) | (carry & (va ^ nb));
                }
            }
            ColOp::Inc { a, out, w } => {
                let (a, o) = (*a as usize, *out as usize);
                let mut pois = 0u64;
                for i in 0..*w as usize {
                    pois |= !self.def[a + i];
                }
                let mut carry = u64::MAX;
                for i in 0..*w as usize {
                    let va = self.val[a + i];
                    self.val[o + i] = (va ^ carry) & !pois;
                    self.def[o + i] = !pois;
                    carry &= va;
                }
            }
            ColOp::Cmp {
                kind,
                a,
                sw,
                b,
                out,
            } => {
                let (a, bb, o) = (*a as usize, *b as usize, *out as usize);
                let mut pois = 0u64;
                for i in 0..*sw as usize {
                    pois |= !self.def[a + i] | !self.def[bb + i];
                }
                let y = match kind {
                    CmpKind::Eq | CmpKind::Ne => {
                        let mut eq = u64::MAX;
                        for i in 0..*sw as usize {
                            eq &= !(self.val[a + i] ^ self.val[bb + i]);
                        }
                        if *kind == CmpKind::Eq {
                            eq
                        } else {
                            !eq
                        }
                    }
                    CmpKind::Lt | CmpKind::Ge => {
                        let (mut lt, mut decided) = (0u64, 0u64);
                        for i in (0..*sw as usize).rev() {
                            let diff = self.val[a + i] ^ self.val[bb + i];
                            lt |= diff & !decided & !self.val[a + i];
                            decided |= diff;
                        }
                        if *kind == CmpKind::Lt {
                            lt
                        } else {
                            !lt
                        }
                    }
                };
                self.val[o] = y & !pois;
                self.def[o] = !pois;
            }
            ColOp::Mux {
                sel,
                sw,
                ins,
                out,
                w,
            } => {
                let (sc, o) = (*sel as usize, *out as usize);
                let mut sd = u64::MAX;
                for i in 0..*sw as usize {
                    sd &= self.def[sc + i];
                }
                for i in 0..*w as usize {
                    self.val[o + i] = 0;
                    self.def[o + i] = 0;
                }
                for (j, &inb) in ins.iter().enumerate() {
                    // Lanes whose (defined) select equals j.
                    let mut eq = sd;
                    for i in 0..*sw as usize {
                        let jb = if j >> i & 1 == 1 { u64::MAX } else { 0 };
                        eq &= !(self.val[sc + i] ^ jb);
                    }
                    if eq == 0 {
                        continue;
                    }
                    let inb = inb as usize;
                    for i in 0..*w as usize {
                        self.val[o + i] |= eq & self.val[inb + i];
                        self.def[o + i] |= eq & self.def[inb + i];
                    }
                }
            }
            ColOp::Wire { srcs, out } => {
                let o = *out as usize;
                for (i, &src) in srcs.iter().enumerate() {
                    self.val[o + i] = self.val[src as usize];
                    self.def[o + i] = self.def[src as usize];
                }
            }
            ColOp::Table { ins, table, out, w } => {
                let o = *out as usize;
                let mask = width_mask(*w as usize);
                let mut out_v = [0u64; 64];
                let mut out_d = [0u64; 64];
                for lane in 0..LANES {
                    let m = 1u64 << lane;
                    let mut known = 0u64;
                    let mut x_positions: Vec<u32> = Vec::new();
                    let mut bit_pos = 0u32;
                    for &(col, width) in ins {
                        let c = col as usize;
                        for i in 0..width as usize {
                            if self.def[c + i] & m == 0 {
                                x_positions.push(bit_pos);
                            } else if self.val[c + i] & m != 0 {
                                known |= 1 << bit_pos;
                            }
                            bit_pos += 1;
                        }
                    }
                    let (ones, zeros) = if x_positions.len() > MAX_X_ENUM {
                        (0, 0)
                    } else {
                        let (mut ones, mut zeros) = (mask, mask);
                        for combo in 0..(1u64 << x_positions.len()) {
                            let mut index = known;
                            for (i, &pos) in x_positions.iter().enumerate() {
                                if combo >> i & 1 == 1 {
                                    index |= 1 << pos;
                                }
                            }
                            let word = table[index as usize];
                            ones &= word;
                            zeros &= !word;
                        }
                        (ones, zeros)
                    };
                    for i in 0..*w as usize {
                        if ones >> i & 1 == 1 {
                            out_v[i] |= m;
                            out_d[i] |= m;
                        } else if zeros >> i & 1 == 1 {
                            out_d[i] |= m;
                        }
                    }
                }
                let w = *w as usize;
                self.val[o..o + w].copy_from_slice(&out_v[..w]);
                self.def[o..o + w].copy_from_slice(&out_d[..w]);
            }
        }
    }

    /// Clock edge across all 64 lanes: samples settled values into
    /// sequential state, matching `NetlistComponent::tick` per lane
    /// (including protocol errors, reported with the offending lane).
    ///
    /// # Errors
    ///
    /// [`SimError::Protocol`] on FIFO/LIFO misuse or undefined RAM
    /// write strobes, exactly like the interpreter.
    pub fn tick(&mut self) -> Result<(), SimError> {
        self.ticks += 1;
        let mut seq = std::mem::take(&mut self.seq);
        let result = self.tick_seq(&mut seq);
        self.seq = seq;
        result
    }

    fn tick_seq(&mut self, seq: &mut [LaneSeq]) -> Result<(), SimError> {
        for s in seq.iter_mut() {
            match s {
                LaneSeq::Reg {
                    d, en, w, sv, sd, ..
                } => {
                    // Load mask per lane: enable defined and 1 (or no
                    // enable pin at all).
                    let le = match en {
                        Some(ec) => {
                            let e = *ec as usize;
                            self.val[e] & self.def[e]
                        }
                        None => u64::MAX,
                    };
                    let dc = *d as usize;
                    for i in 0..*w as usize {
                        sv[i] = (self.val[dc + i] & le) | (sv[i] & !le);
                        sd[i] = (self.def[dc + i] & le) | (sd[i] & !le);
                    }
                }
                LaneSeq::Bram {
                    cell,
                    we,
                    waddr,
                    aw,
                    wdata,
                    raddr,
                    w,
                    mem,
                    rdout,
                    ..
                } => {
                    let wec = *we as usize;
                    let strobe = self.val[wec] & self.def[wec];
                    for lane in 0..LANES {
                        let write = strobe >> lane & 1 == 1;
                        if write {
                            let (a, ad) = self.gather(*waddr, *aw, lane);
                            if !ad {
                                return Err(self.lane_err(lane, cell, "undefined write address"));
                            }
                            let (dv, dd) = self.gather(*wdata, *w, lane);
                            if !dd {
                                return Err(self.lane_err(lane, cell, "undefined write data"));
                            }
                            mem[lane][a as usize] = Some(dv);
                        }
                        let (ra, rd) = self.gather(*raddr, *aw, lane);
                        rdout[lane] = if rd { mem[lane][ra as usize] } else { None };
                    }
                }
                LaneSeq::Fifo {
                    cell,
                    push,
                    pop,
                    wdata,
                    w,
                    depth,
                    data,
                    ..
                } => {
                    let (pc, qc) = (*push as usize, *pop as usize);
                    let pushes = self.val[pc] & self.def[pc];
                    let pops = self.val[qc] & self.def[qc];
                    for (lane, d) in data.iter_mut().enumerate() {
                        let wd = if pushes >> lane & 1 == 1 {
                            let (dv, dd) = self.gather(*wdata, *w, lane);
                            if !dd {
                                return Err(self.lane_err(lane, cell, "undefined fifo write data"));
                            }
                            Some(dv)
                        } else {
                            None
                        };
                        if pops >> lane & 1 == 1 && d.pop_front().is_none() {
                            return Err(self.lane_err(lane, cell, "pop on empty fifo"));
                        }
                        if let Some(v) = wd {
                            if d.len() >= *depth {
                                return Err(self.lane_err(lane, cell, "push on full fifo"));
                            }
                            d.push_back(v);
                        }
                    }
                }
                LaneSeq::Lifo {
                    cell,
                    push,
                    pop,
                    wdata,
                    w,
                    depth,
                    data,
                    ..
                } => {
                    let (pc, qc) = (*push as usize, *pop as usize);
                    let pushes = self.val[pc] & self.def[pc];
                    let pops = self.val[qc] & self.def[qc];
                    for (lane, d) in data.iter_mut().enumerate() {
                        let wd = if pushes >> lane & 1 == 1 {
                            let (dv, dd) = self.gather(*wdata, *w, lane);
                            if !dd {
                                return Err(self.lane_err(lane, cell, "undefined lifo write data"));
                            }
                            Some(dv)
                        } else {
                            None
                        };
                        if pops >> lane & 1 == 1 && d.pop().is_none() {
                            return Err(self.lane_err(lane, cell, "pop on empty lifo"));
                        }
                        if let Some(v) = wd {
                            if d.len() >= *depth {
                                return Err(self.lane_err(lane, cell, "push on full lifo"));
                            }
                            d.push(v);
                        }
                    }
                }
            }
        }
        Ok(())
    }

    fn lane_err(&self, lane: usize, cell: &str, what: &str) -> SimError {
        SimError::Protocol {
            component: self.name.clone(),
            message: format!("{what} `{cell}` (lane {lane})"),
        }
    }
}

/// Transposes per-lane optional words into `(val, def)` bit columns.
fn lane_cols(values: &[Option<u64>], w: u32) -> Vec<(u64, u64)> {
    let mut cols = vec![(0u64, 0u64); w as usize];
    for (lane, v) in values.iter().enumerate() {
        if let Some(v) = v {
            let m = 1u64 << lane;
            for (i, col) in cols.iter_mut().enumerate() {
                if v >> i & 1 == 1 {
                    col.0 |= m;
                }
                col.1 |= m;
            }
        }
    }
    cols
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdp_hdl::{Bit, Entity, Netlist, PortDir};

    /// Builds a one-cell netlist `y = prim(a, b, ...)` with the given
    /// input widths, returning the netlist.
    fn one_cell(prim: Prim) -> Netlist {
        let in_w = prim.input_widths();
        let out_w = prim.output_widths();
        let mut b = Entity::builder("t");
        for (i, w) in in_w.iter().enumerate() {
            b = b.port(&format!("a{i}"), PortDir::In, *w).unwrap();
        }
        for (i, w) in out_w.iter().enumerate() {
            b = b.port(&format!("y{i}"), PortDir::Out, *w).unwrap();
        }
        let entity = b.build().unwrap();
        let mut nl = Netlist::new(entity);
        let ins: Vec<_> = in_w
            .iter()
            .enumerate()
            .map(|(i, w)| nl.add_net(format!("a{i}"), *w).unwrap())
            .collect();
        let outs: Vec<_> = out_w
            .iter()
            .enumerate()
            .map(|(i, w)| nl.add_net(format!("y{i}"), *w).unwrap())
            .collect();
        nl.add_cell("u", prim, ins.clone(), outs.clone()).unwrap();
        for (i, n) in ins.iter().enumerate() {
            nl.bind_port(&format!("a{i}"), *n).unwrap();
        }
        for (i, n) in outs.iter().enumerate() {
            nl.bind_port(&format!("y{i}"), *n).unwrap();
        }
        nl
    }

    /// Every four-state assignment of `width` bits (4^width vectors).
    fn all_vectors(width: usize) -> Vec<LogicVector> {
        let mut out = Vec::new();
        let n = 4usize.pow(width as u32);
        for code in 0..n {
            let mut v = LogicVector::unknown(width).unwrap();
            let mut c = code;
            for i in 0..width {
                let bit = match c % 4 {
                    0 => Bit::Zero,
                    1 => Bit::One,
                    2 => Bit::X,
                    _ => Bit::Z,
                };
                v.set(i, bit).unwrap();
                c /= 4;
            }
            out.push(v);
        }
        out
    }

    /// Golden check: the lowered op for `prim` must reproduce
    /// `eval_comb` on every four-state input combination.
    fn golden(prim: Prim) {
        let nl = one_cell(prim.clone());
        let wiring: Vec<(String, PortDir, hdp_hdl::NetId, SignalId)> = nl
            .bindings()
            .iter()
            .map(|b| {
                (
                    b.port().to_owned(),
                    nl.entity().port(b.port()).unwrap().dir(),
                    b.net(),
                    SignalId(0),
                )
            })
            .collect();
        let prog = LoweredProgram::try_lower(&nl, &wiring).unwrap();
        let in_w = prim.input_widths();
        let mut combos: Vec<Vec<LogicVector>> = vec![Vec::new()];
        for w in &in_w {
            let mut next = Vec::new();
            for c in &combos {
                for v in all_vectors(*w) {
                    let mut c = c.clone();
                    c.push(v);
                    next.push(c);
                }
            }
            combos = next;
        }
        let mut scratch = LoweredScratch::new(&prog);
        for combo in combos {
            // Write inputs straight into the input nets.
            for (k, v) in combo.iter().enumerate() {
                let (net, _) = prog.in_ports[k];
                let (pv, pu, pz) = v.raw_masks();
                scratch.v[net as usize] = pv;
                scratch.u[net as usize] = pu;
                scratch.z[net as usize] = pz;
            }
            for op in &prog.ops {
                exec_op(op, &prog, &mut scratch);
            }
            let expect = prim.eval_comb(&combo).unwrap();
            for (k, e) in expect.iter().enumerate() {
                let (net, _) = prog.out_ports[k];
                let n = net as usize;
                let got = LogicVector::from_raw_masks(
                    e.width(),
                    scratch.v[n],
                    scratch.u[n],
                    scratch.z[n],
                )
                .unwrap();
                assert_eq!(got, *e, "{prim:?} on {combo:?}");
            }
        }
    }

    #[test]
    fn golden_buf_and_not() {
        golden(Prim::Buf { width: 2 });
        golden(Prim::Not { width: 2 });
    }

    #[test]
    fn golden_gates() {
        for op in [GateOp::And, GateOp::Or, GateOp::Xor] {
            golden(Prim::Gate { op, width: 2 });
        }
    }

    #[test]
    fn golden_reductions() {
        golden(Prim::ReduceOr { width: 2 });
        golden(Prim::ReduceAnd { width: 2 });
    }

    #[test]
    fn golden_arithmetic() {
        golden(Prim::Add { width: 2 });
        golden(Prim::Sub { width: 2 });
        golden(Prim::Inc { width: 3 });
    }

    #[test]
    fn golden_compares() {
        for kind in [CmpKind::Eq, CmpKind::Ne, CmpKind::Lt, CmpKind::Ge] {
            golden(Prim::Cmp { kind, width: 2 });
        }
    }

    #[test]
    fn golden_mux_slice_concat() {
        golden(Prim::Mux { width: 2, ways: 2 });
        golden(Prim::Slice {
            in_width: 3,
            low: 1,
            len: 2,
        });
        golden(Prim::Concat { widths: vec![2, 1] });
    }

    #[test]
    fn golden_truth_table() {
        golden(Prim::TruthTable {
            in_widths: vec![2, 1],
            out_width: 2,
            table: vec![0, 3, 1, 2, 2, 1, 3, 0],
        });
    }

    #[test]
    fn golden_tribuf() {
        golden(Prim::TriBuf { width: 2 });
    }

    #[test]
    fn resolve_matches_logicvector_resolve() {
        for a in all_vectors(2) {
            for b in all_vectors(2) {
                let expect = a.resolve(&b).unwrap();
                let (v, u, z) = resolve_planes(0b11, a.raw_masks(), b.raw_masks());
                let got = LogicVector::from_raw_masks(2, v, u, z).unwrap();
                assert_eq!(got, expect, "resolve({a}, {b})");
            }
        }
    }

    /// A 4-bit accumulator netlist: q' = q + in, y = q.
    fn accumulator() -> Netlist {
        let entity = Entity::builder("acc")
            .port("din", PortDir::In, 4)
            .unwrap()
            .port("q", PortDir::Out, 4)
            .unwrap()
            .build()
            .unwrap();
        let mut nl = Netlist::new(entity);
        let din = nl.add_net("din", 4).unwrap();
        let q = nl.add_net("q", 4).unwrap();
        let d = nl.add_net("d", 4).unwrap();
        nl.add_cell("u_add", Prim::Add { width: 4 }, vec![q, din], vec![d])
            .unwrap();
        nl.add_cell(
            "u_reg",
            Prim::Reg {
                width: 4,
                has_enable: false,
                reset_value: 0,
            },
            vec![d],
            vec![q],
        )
        .unwrap();
        nl.bind_port("din", din).unwrap();
        nl.bind_port("q", q).unwrap();
        nl
    }

    #[test]
    fn lane_batch_accumulates_independently_per_lane() {
        let nl = accumulator();
        let mut lanes = LaneBatch::new("pack", &nl).unwrap();
        lanes.reset();
        // Lane k adds k every cycle; after 5 cycles q == 5k mod 16.
        for _ in 0..5 {
            for k in 0..LANES {
                lanes.poke("din", k, (k as u64) & 0xF).unwrap();
            }
            lanes.settle();
            lanes.tick().unwrap();
        }
        lanes.settle();
        for k in 0..LANES {
            let q = lanes.peek("q", k).unwrap().to_u64().unwrap();
            assert_eq!(q, (5 * k as u64) & 0xF, "lane {k}");
        }
    }

    #[test]
    fn lane_batch_matches_unpacked_reference_lanes() {
        // Lane k of the packed run must equal an unpacked run with
        // stimulus k.
        let nl = accumulator();
        let mut lanes = LaneBatch::new("pack", &nl).unwrap();
        lanes.reset();
        let stim = |k: u64, cycle: u64| (k * 3 + cycle * 7) & 0xF;
        let cycles = 8;
        for c in 0..cycles {
            for k in 0..LANES {
                lanes.poke("din", k, stim(k as u64, c)).unwrap();
            }
            lanes.settle();
            lanes.tick().unwrap();
        }
        lanes.settle();
        for k in 0..LANES {
            let mut single = LaneBatch::new("single", &nl).unwrap();
            single.reset();
            for c in 0..cycles {
                single.poke("din", 0, stim(k as u64, c)).unwrap();
                single.settle();
                single.tick().unwrap();
            }
            single.settle();
            assert_eq!(
                lanes.peek("q", k).unwrap(),
                single.peek("q", 0).unwrap(),
                "lane {k} must be independent"
            );
        }
    }

    #[test]
    fn lane_batch_undefined_inputs_poison_per_lane() {
        let nl = accumulator();
        let mut lanes = LaneBatch::new("pack", &nl).unwrap();
        lanes.reset();
        // Only lane 3 gets a defined input; every other lane's adder
        // output is poisoned but the register still holds its reset
        // value until ticked.
        lanes.poke("din", 3, 2).unwrap();
        lanes.settle();
        assert_eq!(lanes.peek("q", 3).unwrap().to_u64(), Some(0));
        lanes.tick().unwrap();
        lanes.settle();
        assert_eq!(lanes.peek("q", 3).unwrap().to_u64(), Some(2));
        assert_eq!(lanes.peek("q", 7).unwrap().to_u64(), None, "lane 7 is X");
    }

    #[test]
    fn lane_batch_refuses_tristate() {
        let nl = one_cell(Prim::TriBuf { width: 2 });
        let err = LaneBatch::new("pack", &nl).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("tri-state"), "{msg}");
        assert!(msg.contains("`u`"), "{msg}");
    }

    #[test]
    fn lane_batch_refuses_high_z_constants() {
        let nl = one_cell(Prim::Const {
            value: LogicVector::high_z(2).unwrap(),
        });
        let err = LaneBatch::new("pack", &nl).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("high-Z"), "{msg}");
        assert!(msg.contains("`u`"), "{msg}");
    }

    #[test]
    fn lane_batch_refuses_multiply_driven_nets() {
        let entity = Entity::builder("sharednet")
            .port("a", PortDir::In, 2)
            .unwrap()
            .port("y", PortDir::Out, 2)
            .unwrap()
            .build()
            .unwrap();
        let mut nl = Netlist::new(entity);
        let a = nl.add_net("a", 2).unwrap();
        let shared = nl.add_net("merged", 2).unwrap();
        nl.add_cell("u_buf_a", Prim::Buf { width: 2 }, vec![a], vec![shared])
            .unwrap();
        nl.add_cell("u_buf_b", Prim::Not { width: 2 }, vec![a], vec![shared])
            .unwrap();
        nl.bind_port("a", a).unwrap();
        nl.bind_port("y", shared).unwrap();
        let err = LaneBatch::new("pack", &nl).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("multiple drivers"), "{msg}");
        assert!(msg.contains("`merged`"), "{msg}");
    }

    #[test]
    fn lane_batch_refuses_inout_ports() {
        let entity = Entity::builder("pad")
            .port("io", PortDir::InOut, 1)
            .unwrap()
            .build()
            .unwrap();
        let mut nl = Netlist::new(entity);
        let io = nl.add_net("io", 1).unwrap();
        nl.bind_port("io", io).unwrap();
        let err = LaneBatch::new("pack", &nl).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("inout"), "{msg}");
        assert!(msg.contains("`io`"), "{msg}");
    }

    #[test]
    fn lane_batch_refuses_multi_domain_netlists() {
        let entity = Entity::builder("cdc")
            .port("q", PortDir::Out, 4)
            .unwrap()
            .build()
            .unwrap();
        let mut nl = Netlist::new(entity);
        let d = nl.add_net("d", 4).unwrap();
        let q = nl.add_net("q", 4).unwrap();
        let wr = nl.add_domain("wr", 2).unwrap();
        nl.add_cell_in_domain(
            "u_wr_reg",
            Prim::Reg {
                width: 4,
                has_enable: false,
                reset_value: 0,
            },
            vec![d],
            vec![q],
            wr,
        )
        .unwrap();
        nl.add_cell("u_inc", Prim::Inc { width: 4 }, vec![q], vec![d])
            .unwrap();
        nl.bind_port("q", q).unwrap();
        let err = LaneBatch::new("pack", &nl).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("u_wr_reg"), "{msg}");
        assert!(msg.contains("`wr`"), "{msg}");
    }

    #[test]
    fn lane_batch_fifo_protocol_error_names_the_lane() {
        let entity = Entity::builder("f")
            .port("push", PortDir::In, 1)
            .unwrap()
            .port("pop", PortDir::In, 1)
            .unwrap()
            .port("din", PortDir::In, 4)
            .unwrap()
            .port("front", PortDir::Out, 4)
            .unwrap()
            .build()
            .unwrap();
        let mut nl = Netlist::new(entity);
        let push = nl.add_net("push", 1).unwrap();
        let pop = nl.add_net("pop", 1).unwrap();
        let din = nl.add_net("din", 4).unwrap();
        let front = nl.add_net("front", 4).unwrap();
        let empty = nl.add_net("empty", 1).unwrap();
        let full = nl.add_net("full", 1).unwrap();
        nl.add_cell(
            "u_fifo",
            Prim::FifoMacro { depth: 2, width: 4 },
            vec![push, pop, din],
            vec![front, empty, full],
        )
        .unwrap();
        nl.bind_port("push", push).unwrap();
        nl.bind_port("pop", pop).unwrap();
        nl.bind_port("din", din).unwrap();
        nl.bind_port("front", front).unwrap();
        let mut lanes = LaneBatch::new("pack", &nl).unwrap();
        lanes.reset();
        lanes.poke_all("push", 0).unwrap();
        lanes.poke_all("pop", 0).unwrap();
        lanes.poke("pop", 5, 1).unwrap();
        lanes.settle();
        let err = lanes.tick().unwrap_err();
        assert!(
            err.to_string().contains("pop on empty fifo") && err.to_string().contains("lane 5"),
            "{err}"
        );
    }

    use crate::sched::{SchedMode, Simulator};
    use crate::telemetry::TelemetryLevel;

    /// A simulator around the accumulator netlist in the given mode.
    fn acc_sim(mode: SchedMode) -> (Simulator, SignalId, SignalId) {
        let mut sim = Simulator::with_mode(mode);
        let din = sim.add_signal("din", 4).unwrap();
        let q = sim.add_signal("q", 4).unwrap();
        let dut = NetlistComponent::new("dut", accumulator(), sim.bus(), &[("din", din), ("q", q)])
            .unwrap();
        sim.add_component(dut);
        sim.reset().unwrap();
        (sim, din, q)
    }

    #[test]
    fn lowered_mode_is_bit_identical_to_event_driven() {
        let (mut ev, ev_din, ev_q) = acc_sim(SchedMode::EventDriven);
        let (mut lo, lo_din, lo_q) = acc_sim(SchedMode::Lowered);
        lo.set_telemetry(TelemetryLevel::Counters);
        for c in 0..20u64 {
            let v = (c * 5 + 3) & 0xF;
            ev.poke(ev_din, v).unwrap();
            lo.poke(lo_din, v).unwrap();
            ev.step().unwrap();
            lo.step().unwrap();
            assert_eq!(ev.peek(ev_q).unwrap(), lo.peek(lo_q).unwrap(), "cycle {c}");
        }
        let stats = lo.stats();
        assert!(stats.lowered_settles > 0, "lowered walk must have run");
        assert!(stats.ops_executed > 0, "word ops must have executed");
        assert_eq!(
            stats.compiled_settles, 0,
            "lowered settles are counted apart from compiled ones"
        );
    }

    #[test]
    fn lowered_memo_skips_ops_on_unchanged_inputs() {
        let (mut sim, din, _q) = acc_sim(SchedMode::Lowered);
        sim.set_telemetry(TelemetryLevel::Counters);
        sim.poke(din, 1).unwrap();
        sim.settle().unwrap();
        sim.poke(din, 2).unwrap();
        sim.settle().unwrap();
        let after_change = sim.stats().ops_executed;
        assert!(after_change > 0);
        sim.settle().unwrap();
        assert_eq!(
            sim.stats().ops_executed,
            after_change,
            "an unchanged settle must not replay the op stream"
        );
    }

    #[test]
    fn lowered_plan_round_trips_through_export_and_install() {
        let (mut cold, cold_din, _cold_q) = acc_sim(SchedMode::Lowered);
        for c in 0..4u64 {
            cold.poke(cold_din, c & 0xF).unwrap();
            cold.step().unwrap();
        }
        let plan = cold.export_plan().expect("a lowered sim exports a plan");
        assert!(
            plan.lowered_components() > 0,
            "the plan must carry the lowered op stream"
        );

        let (mut warm, wdin, wq) = acc_sim(SchedMode::Lowered);
        warm.set_telemetry(TelemetryLevel::Counters);
        warm.install_plan(&plan).unwrap();
        assert_eq!(
            warm.mode(),
            SchedMode::Lowered,
            "warm sims keep lowered mode"
        );

        let (mut reference, rdin, rq) = acc_sim(SchedMode::EventDriven);
        for c in 0..12u64 {
            let v = (c * 7 + 1) & 0xF;
            warm.poke(wdin, v).unwrap();
            reference.poke(rdin, v).unwrap();
            warm.step().unwrap();
            reference.step().unwrap();
            assert_eq!(
                warm.peek(wq).unwrap(),
                reference.peek(rq).unwrap(),
                "cycle {c}"
            );
        }
        assert!(
            warm.stats().lowered_settles > 0,
            "the installed plan must execute lowered, not interpreted"
        );
    }
}
