//! Signals: the wires connecting simulated components.

use crate::SimError;
use hdp_hdl::LogicVector;

/// Identifier of a signal inside one [`crate::Simulator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SignalId(pub(crate) usize);

impl SignalId {
    /// The raw index of the signal.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

/// Driver tag for a value poked from the testbench (vs. a component
/// index).
pub(crate) const DRIVER_POKE: usize = usize::MAX;

/// Signal read/drive access as seen from [`crate::Component::eval`].
///
/// Two implementations exist: the exclusive [`SignalBus`] handed out
/// by the sequential schedulers, and [`SplitBus`], the snapshot/log
/// pair used by [`crate::SchedMode::Parallel`] workers. Component
/// implementations written against this trait run unchanged under
/// every scheduling mode.
pub trait BusAccess {
    /// Reads the current value of a signal.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownSignal`] for a stale id.
    fn read(&self, id: SignalId) -> Result<LogicVector, SimError>;

    /// Reads a signal as a defined integer, treating undefined values
    /// as a protocol error attributed to `component`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Protocol`] if the value contains `X`/`Z`.
    fn read_u64(&self, id: SignalId, component: &str) -> Result<u64, SimError>;

    /// Drives a signal with a new value.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::SignalWidth`] on width mismatch or
    /// [`SimError::UnknownSignal`] for a stale id.
    fn drive(&mut self, id: SignalId, value: LogicVector) -> Result<(), SimError>;

    /// Drives a signal with a defined integer value.
    ///
    /// # Errors
    ///
    /// As [`BusAccess::drive`], plus width overflow from the value.
    fn drive_u64(&mut self, id: SignalId, value: u64) -> Result<(), SimError>;

    /// The width of a signal.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownSignal`] for a stale id.
    fn width(&self, id: SignalId) -> Result<usize, SimError>;

    /// The name of a signal.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownSignal`] for a stale id.
    fn name(&self, id: SignalId) -> Result<&str, SimError>;
}

#[derive(Debug, Clone)]
struct Slot {
    name: String,
    value: LogicVector,
    /// The settled value at the start of the current pass (snapshotted
    /// on the pass's first write). A signal counts as *changed* only if
    /// its pass-final resolved value differs from this — transient
    /// intra-pass states (a tri-state driver writing `Z` before the
    /// active driver resolves over it) are not changes, mirroring
    /// VHDL's one-update-per-delta signal semantics.
    prev_value: LogicVector,
    /// Whether any component wrote the signal during the current
    /// settle iteration (used for multi-driver resolution).
    written_this_pass: bool,
    /// Whether the value currently differs from `prev_value`.
    changed: bool,
    /// Whether this slot was already queued on the dirty list this
    /// pass (avoids duplicates when `changed` toggles).
    queued_dirty: bool,
    /// The driver (component index or [`DRIVER_POKE`]) whose drive
    /// last changed the value — names the culprit in non-convergence
    /// reports.
    last_changer: usize,
    /// Every distinct driver ever seen on this signal. Nearly always
    /// one entry; growing past one flags the signal as shared so the
    /// event scheduler can keep all its drivers co-evaluated.
    drivers: Vec<usize>,
    /// Telemetry: settled-value changes (counted once per pass, at
    /// pass end, so transient intra-pass states never count).
    toggles: u64,
    /// Telemetry: accepted `drive` calls. Parallel-mode drives are
    /// replayed through [`SignalBus::drive`] at ordered commit, so the
    /// count is identical at every thread count.
    drives: u64,
}

/// The set of signal values visible to components.
///
/// Components receive a `&mut SignalBus` in [`crate::Component::eval`]
/// and [`crate::Component::tick`]; they read inputs with
/// [`SignalBus::read`] and drive outputs with [`SignalBus::drive`].
///
/// Driving follows VHDL resolution semantics per settle iteration: the
/// first drive of an iteration replaces the value, later drives of the
/// same iteration resolve against it bit by bit (so several tri-state
/// drivers can legally share a bus by driving `'Z'` when inactive).
#[derive(Debug, Default)]
pub struct SignalBus {
    slots: Vec<Slot>,
    /// Slots written during the current pass (cleared by `begin_pass`,
    /// keeping pass bookkeeping proportional to activity, not to the
    /// total signal count).
    touched: Vec<usize>,
    /// Slots that at some point this pass differed from their
    /// pass-start value — candidates for the event scheduler's wake
    /// set. Filter by each slot's `changed` flag: a later resolve may
    /// have restored the original value.
    dirty: Vec<usize>,
    /// Slots that newly gained a second distinct driver and have not
    /// yet been reported to the scheduler.
    new_shared: Vec<usize>,
    /// Total `(slot, driver)` pairs ever recorded. The parallel
    /// scheduler compares this against the count its island partition
    /// was built from to detect newly discovered drivers cheaply.
    driver_links: usize,
    /// The driver tag recorded for subsequent `drive` calls.
    current_driver: usize,
    /// Whether per-slot telemetry counters (toggles, drives) are
    /// collected. Off by default; the only cost when off is one branch
    /// per `drive`.
    telemetry: bool,
}

impl SignalBus {
    pub(crate) fn add(
        &mut self,
        name: impl Into<String>,
        width: usize,
    ) -> Result<SignalId, SimError> {
        let name = name.into();
        if self.slots.iter().any(|s| s.name == name) {
            return Err(SimError::DuplicateSignal { name });
        }
        let value = LogicVector::unknown(width).map_err(SimError::from)?;
        self.slots.push(Slot {
            name,
            value,
            prev_value: value,
            written_this_pass: false,
            changed: false,
            queued_dirty: false,
            last_changer: DRIVER_POKE,
            drivers: Vec::new(),
            toggles: 0,
            drives: 0,
        });
        Ok(SignalId(self.slots.len() - 1))
    }

    /// The number of signals.
    #[must_use]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True if no signals exist.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// The name of a signal.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownSignal`] for a stale id.
    pub fn name(&self, id: SignalId) -> Result<&str, SimError> {
        self.slots
            .get(id.0)
            .map(|s| s.name.as_str())
            .ok_or(SimError::UnknownSignal { index: id.0 })
    }

    /// The width of a signal.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownSignal`] for a stale id.
    pub fn width(&self, id: SignalId) -> Result<usize, SimError> {
        self.slots
            .get(id.0)
            .map(|s| s.value.width())
            .ok_or(SimError::UnknownSignal { index: id.0 })
    }

    /// Reads the current value of a signal.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownSignal`] for a stale id.
    pub fn read(&self, id: SignalId) -> Result<LogicVector, SimError> {
        self.slots
            .get(id.0)
            .map(|s| s.value)
            .ok_or(SimError::UnknownSignal { index: id.0 })
    }

    /// Reads a signal as a defined integer, treating undefined values
    /// as a protocol error attributed to `component`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Protocol`] if the value contains `X`/`Z`.
    pub fn read_u64(&self, id: SignalId, component: &str) -> Result<u64, SimError> {
        let v = self.read(id)?;
        v.to_u64().ok_or_else(|| SimError::Protocol {
            component: component.to_owned(),
            message: format!("signal `{}` is undefined ({v})", self.slots[id.0].name),
        })
    }

    /// Drives a signal with a new value.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::SignalWidth`] on width mismatch or
    /// [`SimError::UnknownSignal`] for a stale id.
    pub fn drive(&mut self, id: SignalId, value: LogicVector) -> Result<(), SimError> {
        let driver = self.current_driver;
        let telemetry = self.telemetry;
        let slot = self
            .slots
            .get_mut(id.0)
            .ok_or(SimError::UnknownSignal { index: id.0 })?;
        if telemetry {
            slot.drives += 1;
        }
        if slot.value.width() != value.width() {
            return Err(SimError::SignalWidth {
                signal: slot.name.clone(),
                expected: slot.value.width(),
                found: value.width(),
            });
        }
        if !slot.drivers.contains(&driver) {
            slot.drivers.push(driver);
            self.driver_links += 1;
            if slot.drivers.len() == 2 {
                self.new_shared.push(id.0);
            }
        }
        let new = if slot.written_this_pass {
            slot.value.resolve(&value).map_err(SimError::from)?
        } else {
            self.touched.push(id.0);
            slot.prev_value = slot.value;
            value
        };
        if new != slot.value {
            slot.value = new;
            slot.last_changer = driver;
        }
        slot.changed = slot.value != slot.prev_value;
        if slot.changed && !slot.queued_dirty {
            slot.queued_dirty = true;
            self.dirty.push(id.0);
        }
        slot.written_this_pass = true;
        Ok(())
    }

    /// Drives a signal with a defined integer value.
    ///
    /// # Errors
    ///
    /// As [`SignalBus::drive`], plus width overflow from the value.
    pub fn drive_u64(&mut self, id: SignalId, value: u64) -> Result<(), SimError> {
        let width = self.width(id)?;
        let v = LogicVector::from_u64(value, width).map_err(SimError::from)?;
        self.drive(id, v)
    }

    /// Begins a settle iteration: clears per-pass write/change flags.
    pub(crate) fn begin_pass(&mut self) {
        for i in self.touched.drain(..) {
            self.slots[i].written_this_pass = false;
            self.slots[i].changed = false;
            self.slots[i].queued_dirty = false;
        }
        self.dirty.clear();
    }

    /// Whether any signal's settled value changed this pass.
    pub(crate) fn any_changed(&self) -> bool {
        self.dirty.iter().any(|&i| self.slots[i].changed)
    }

    /// Slots (raw indices) whose settled value changed this pass.
    pub(crate) fn dirty_slots(&self) -> Vec<usize> {
        self.dirty
            .iter()
            .copied()
            .filter(|&i| self.slots[i].changed)
            .collect()
    }

    /// Tags subsequent [`SignalBus::drive`] calls with their driver
    /// (component index, or [`DRIVER_POKE`] for testbench pokes).
    pub(crate) fn set_driver(&mut self, driver: usize) {
        self.current_driver = driver;
    }

    /// Drains the list of slots that newly became multi-driver.
    pub(crate) fn take_new_shared(&mut self) -> Vec<usize> {
        std::mem::take(&mut self.new_shared)
    }

    /// Every distinct driver ever seen on a slot.
    pub(crate) fn slot_drivers(&self, slot: usize) -> &[usize] {
        &self.slots[slot].drivers
    }

    /// The driver whose drive last changed a slot's value.
    pub(crate) fn last_changer(&self, slot: usize) -> usize {
        self.slots[slot].last_changer
    }

    /// Whether a slot was written during the current settle iteration.
    pub(crate) fn written_this_pass(&self, slot: usize) -> bool {
        self.slots[slot].written_this_pass
    }

    /// Total `(slot, driver)` pairs ever recorded (monotonic).
    pub(crate) fn driver_link_count(&self) -> usize {
        self.driver_links
    }

    /// Enables or disables per-slot telemetry counters.
    pub(crate) fn set_telemetry(&mut self, on: bool) {
        self.telemetry = on;
    }

    /// Credits one toggle to every slot whose settled value changed in
    /// the pass that just ended. The scheduler calls this once per
    /// delta pass (and once after the tick phase), so a slot's toggle
    /// count is exactly its number of settled-value changes — the
    /// switching-activity proxy — and is bit-identical across
    /// scheduling modes because the dirty set is.
    pub(crate) fn count_pass_toggles(&mut self) {
        for &i in &self.dirty {
            let slot = &mut self.slots[i];
            if slot.changed {
                slot.toggles += 1;
            }
        }
    }

    /// Telemetry snapshot of one slot: `(name, toggles, drives)`.
    pub(crate) fn slot_telemetry(&self, slot: usize) -> (&str, u64, u64) {
        let s = &self.slots[slot];
        (s.name.as_str(), s.toggles, s.drives)
    }

    /// Imports one settled value computed by the compiled scheduler's
    /// arena walk. The compiled settle resolves multi-driver conflicts
    /// inside its own arena and commits only the net per-settle change,
    /// so this bypasses the per-pass resolve path: it snapshots
    /// `prev_value`, installs the new value and raises the same
    /// written/changed/dirty bookkeeping a [`SignalBus::drive`] would,
    /// keeping `dirty_slots` (and thus toggle counting and tick wake
    /// seeding) identical in shape to an event-driven pass.
    pub(crate) fn sync_compiled(&mut self, slot: usize, value: LogicVector, changer: usize) {
        let s = &mut self.slots[slot];
        s.prev_value = s.value;
        s.value = value;
        s.written_this_pass = true;
        s.changed = true;
        s.queued_dirty = true;
        s.last_changer = changer;
        self.touched.push(slot);
        self.dirty.push(slot);
    }

    /// Credits `n` drive events to a slot's telemetry counter. The
    /// compiled scheduler batches its per-settle drive counts through
    /// here because its drives land in the arena, not on the bus.
    pub(crate) fn add_drives(&mut self, slot: usize, n: u64) {
        if self.telemetry {
            self.slots[slot].drives += n;
        }
    }

    /// Records a `(slot, driver)` link observed by the compiled
    /// scheduler outside a bus drive. Bumps the monotonic link count
    /// (invalidating schedules snapshotted against the old count) and
    /// feeds the shared-slot promotion queue exactly as a live
    /// [`SignalBus::drive`] would.
    pub(crate) fn note_driver(&mut self, slot: usize, driver: usize) {
        let s = &mut self.slots[slot];
        if !s.drivers.contains(&driver) {
            s.drivers.push(driver);
            self.driver_links += 1;
            if s.drivers.len() == 2 {
                self.new_shared.push(slot);
            }
        }
    }
}

impl BusAccess for SignalBus {
    fn read(&self, id: SignalId) -> Result<LogicVector, SimError> {
        SignalBus::read(self, id)
    }

    fn read_u64(&self, id: SignalId, component: &str) -> Result<u64, SimError> {
        SignalBus::read_u64(self, id, component)
    }

    fn drive(&mut self, id: SignalId, value: LogicVector) -> Result<(), SimError> {
        SignalBus::drive(self, id, value)
    }

    fn drive_u64(&mut self, id: SignalId, value: u64) -> Result<(), SimError> {
        SignalBus::drive_u64(self, id, value)
    }

    fn width(&self, id: SignalId) -> Result<usize, SimError> {
        SignalBus::width(self, id)
    }

    fn name(&self, id: SignalId) -> Result<&str, SimError> {
        SignalBus::name(self, id)
    }
}

/// Read-only view of the bus used by [`crate::SchedMode::Parallel`]
/// workers: the pass-start snapshot (the real [`SignalBus`], borrowed
/// immutably across all workers) overlaid with the values the owning
/// worker's island committed earlier in the same pass.
///
/// Islands are signal-disjoint, so a worker observing only its own
/// overlay sees exactly what the sequential event-driven scheduler
/// would have shown it at the same point in the pass.
pub struct BusReader<'a> {
    bus: &'a SignalBus,
    /// Current pass serial; overlay entries tagged with it are live.
    wave: u64,
    overlay_wave: &'a [u64],
    overlay_val: &'a [LogicVector],
}

impl<'a> BusReader<'a> {
    pub(crate) fn new(
        bus: &'a SignalBus,
        wave: u64,
        overlay_wave: &'a [u64],
        overlay_val: &'a [LogicVector],
    ) -> Self {
        Self {
            bus,
            wave,
            overlay_wave,
            overlay_val,
        }
    }

    /// Reads the effective value: worker overlay first, snapshot
    /// otherwise.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownSignal`] for a stale id.
    pub fn read(&self, id: SignalId) -> Result<LogicVector, SimError> {
        if self.overlay_wave.get(id.0).is_some_and(|&w| w == self.wave) {
            return Ok(self.overlay_val[id.0]);
        }
        self.bus.read(id)
    }

    /// Integer read with protocol-error attribution, as
    /// [`SignalBus::read_u64`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Protocol`] if the value contains `X`/`Z`.
    pub fn read_u64(&self, id: SignalId, component: &str) -> Result<u64, SimError> {
        let v = self.read(id)?;
        v.to_u64().ok_or_else(|| SimError::Protocol {
            component: component.to_owned(),
            message: format!(
                "signal `{}` is undefined ({v})",
                self.bus.name(id).unwrap_or("?")
            ),
        })
    }

    /// The width of a signal.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownSignal`] for a stale id.
    pub fn width(&self, id: SignalId) -> Result<usize, SimError> {
        self.bus.width(id)
    }

    /// The name of a signal.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownSignal`] for a stale id.
    pub fn name(&self, id: SignalId) -> Result<&str, SimError> {
        self.bus.name(id)
    }

    /// Whether the signal already carries a write this pass (testbench
    /// poke on the snapshot, or an earlier drive in this worker's
    /// islands) — the condition under which a new drive resolves
    /// against the current value instead of replacing it.
    fn written(&self, slot: usize) -> bool {
        self.overlay_wave.get(slot).is_some_and(|&w| w == self.wave)
            || self.bus.written_this_pass(slot)
    }
}

/// Per-worker drive buffer for one component evaluation under
/// [`crate::SchedMode::Parallel`].
///
/// Raw drives are recorded in call order; the scheduler replays them
/// into the real [`SignalBus`] in component registration order, so
/// multi-driver resolution, dirty tracking and driver attribution are
/// bit-identical to the sequential pass. A small resolved overlay
/// mirrors what the bus value would be mid-pass, serving same-eval
/// read-back.
#[derive(Debug, Default)]
pub struct DriveLog {
    /// Drives in call order, exactly as made.
    raw: Vec<(SignalId, LogicVector)>,
    /// Resolved value per driven slot (linear scan: components drive a
    /// handful of signals).
    resolved: Vec<(usize, LogicVector)>,
}

impl DriveLog {
    /// Records a drive, validating against the reader's snapshot.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::SignalWidth`] on width mismatch or
    /// [`SimError::UnknownSignal`] for a stale id.
    pub fn drive(
        &mut self,
        reader: &BusReader<'_>,
        id: SignalId,
        value: LogicVector,
    ) -> Result<(), SimError> {
        let width = reader.width(id)?;
        if width != value.width() {
            return Err(SimError::SignalWidth {
                signal: reader.name(id)?.to_owned(),
                expected: width,
                found: value.width(),
            });
        }
        let prior = self
            .resolved
            .iter()
            .find(|(s, _)| *s == id.0)
            .map(|&(_, v)| v);
        let new = match prior {
            Some(cur) => cur.resolve(&value).map_err(SimError::from)?,
            None if reader.written(id.0) => {
                reader.read(id)?.resolve(&value).map_err(SimError::from)?
            }
            None => value,
        };
        self.raw.push((id, value));
        match self.resolved.iter_mut().find(|(s, _)| *s == id.0) {
            Some((_, v)) => *v = new,
            None => self.resolved.push((id.0, new)),
        }
        Ok(())
    }

    /// Records an integer drive, as [`SignalBus::drive_u64`].
    ///
    /// # Errors
    ///
    /// As [`DriveLog::drive`], plus width overflow from the value.
    pub fn drive_u64(
        &mut self,
        reader: &BusReader<'_>,
        id: SignalId,
        value: u64,
    ) -> Result<(), SimError> {
        let width = reader.width(id)?;
        let v = LogicVector::from_u64(value, width).map_err(SimError::from)?;
        self.drive(reader, id, v)
    }

    /// Reads through the log: own resolved writes first, then the
    /// reader's overlay/snapshot.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::UnknownSignal`] for a stale id.
    pub fn read(&self, reader: &BusReader<'_>, id: SignalId) -> Result<LogicVector, SimError> {
        if let Some(&(_, v)) = self.resolved.iter().find(|(s, _)| *s == id.0) {
            return Ok(v);
        }
        reader.read(id)
    }

    /// The raw drives recorded so far, in call order.
    pub(crate) fn raw(&self) -> &[(SignalId, LogicVector)] {
        &self.raw
    }

    /// The per-slot resolved values of this log.
    pub(crate) fn resolved(&self) -> &[(usize, LogicVector)] {
        &self.resolved
    }

    /// Clears the log for the next component evaluation.
    pub(crate) fn clear(&mut self) {
        self.raw.clear();
        self.resolved.clear();
    }
}

/// [`BusAccess`] adapter pairing a [`BusReader`] with a [`DriveLog`],
/// so the default [`crate::Component::eval_split`] can run any
/// existing `eval` implementation unchanged on a parallel worker.
pub struct SplitBus<'r, 'l> {
    reader: &'r BusReader<'r>,
    log: &'l mut DriveLog,
}

impl<'r, 'l> SplitBus<'r, 'l> {
    /// Pairs a snapshot reader with a drive log.
    pub fn new(reader: &'r BusReader<'r>, log: &'l mut DriveLog) -> Self {
        Self { reader, log }
    }
}

impl BusAccess for SplitBus<'_, '_> {
    fn read(&self, id: SignalId) -> Result<LogicVector, SimError> {
        self.log.read(self.reader, id)
    }

    fn read_u64(&self, id: SignalId, component: &str) -> Result<u64, SimError> {
        let v = self.log.read(self.reader, id)?;
        v.to_u64().ok_or_else(|| SimError::Protocol {
            component: component.to_owned(),
            message: format!(
                "signal `{}` is undefined ({v})",
                self.reader.name(id).unwrap_or("?")
            ),
        })
    }

    fn drive(&mut self, id: SignalId, value: LogicVector) -> Result<(), SimError> {
        self.log.drive(self.reader, id, value)
    }

    fn drive_u64(&mut self, id: SignalId, value: u64) -> Result<(), SimError> {
        self.log.drive_u64(self.reader, id, value)
    }

    fn width(&self, id: SignalId) -> Result<usize, SimError> {
        self.reader.width(id)
    }

    fn name(&self, id: SignalId) -> Result<&str, SimError> {
        self.reader.name(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_read_back() {
        let mut bus = SignalBus::default();
        let a = bus.add("a", 8).unwrap();
        assert_eq!(bus.width(a).unwrap(), 8);
        assert_eq!(bus.name(a).unwrap(), "a");
        assert_eq!(bus.read(a).unwrap().to_u64(), None); // starts X
    }

    #[test]
    fn duplicate_name_rejected() {
        let mut bus = SignalBus::default();
        bus.add("a", 1).unwrap();
        assert!(matches!(
            bus.add("a", 1),
            Err(SimError::DuplicateSignal { .. })
        ));
    }

    #[test]
    fn drive_and_change_tracking() {
        let mut bus = SignalBus::default();
        let a = bus.add("a", 8).unwrap();
        bus.begin_pass();
        assert!(!bus.any_changed());
        bus.drive_u64(a, 7).unwrap();
        assert!(bus.any_changed());
        assert_eq!(bus.dirty_slots(), &[a.index()]);
        assert_eq!(bus.read(a).unwrap().to_u64(), Some(7));
        bus.begin_pass();
        bus.drive_u64(a, 7).unwrap();
        assert!(!bus.any_changed(), "same value is not a change");
        assert!(bus.dirty_slots().is_empty());
    }

    #[test]
    fn width_mismatch_rejected() {
        let mut bus = SignalBus::default();
        let a = bus.add("a", 8).unwrap();
        let v = LogicVector::from_u64(0, 4).unwrap();
        assert!(matches!(bus.drive(a, v), Err(SimError::SignalWidth { .. })));
    }

    #[test]
    fn second_drive_in_pass_resolves() {
        let mut bus = SignalBus::default();
        let a = bus.add("a", 4).unwrap();
        bus.begin_pass();
        bus.drive(a, LogicVector::high_z(4).unwrap()).unwrap();
        bus.drive(a, LogicVector::from_u64(9, 4).unwrap()).unwrap();
        assert_eq!(bus.read(a).unwrap().to_u64(), Some(9));
        // Conflicting strong drivers resolve to X.
        bus.begin_pass();
        bus.drive(a, LogicVector::from_u64(0xF, 4).unwrap())
            .unwrap();
        bus.drive(a, LogicVector::from_u64(0x0, 4).unwrap())
            .unwrap();
        assert_eq!(bus.read(a).unwrap().to_u64(), None);
    }

    #[test]
    fn read_u64_reports_undefined_as_protocol_error() {
        let mut bus = SignalBus::default();
        let a = bus.add("a", 4).unwrap();
        let err = bus.read_u64(a, "dut").unwrap_err();
        assert!(matches!(err, SimError::Protocol { component, .. } if component == "dut"));
    }

    #[test]
    fn distinct_drivers_are_reported_once() {
        let mut bus = SignalBus::default();
        let a = bus.add("a", 4).unwrap();
        bus.begin_pass();
        bus.set_driver(0);
        bus.drive_u64(a, 1).unwrap();
        assert!(bus.take_new_shared().is_empty(), "one driver is not shared");
        bus.set_driver(1);
        bus.drive(a, LogicVector::high_z(4).unwrap()).unwrap();
        assert_eq!(bus.take_new_shared(), vec![a.index()]);
        // Re-driving by known drivers does not re-report.
        bus.begin_pass();
        bus.set_driver(0);
        bus.drive_u64(a, 2).unwrap();
        assert!(bus.take_new_shared().is_empty());
        assert_eq!(bus.slot_drivers(a.index()), &[0, 1]);
        assert_eq!(bus.last_changer(a.index()), 0);
    }
}
