//! Value Change Dump (VCD) waveform export.
//!
//! A debugging extension beyond the paper: attach a [`VcdRecorder`] to
//! the simulator, run, and write an IEEE 1364 VCD file viewable in
//! GTKWave or any waveform viewer.

use crate::{BusAccess, Component, SignalBus, SignalId, SimError};
use hdp_hdl::LogicVector;
use std::fmt::Write as _;

/// Records value changes of selected signals and serialises them as a
/// VCD document.
///
/// # Example
///
/// ```
/// use hdp_sim::{Simulator, vcd::VcdRecorder, probe::Stimulus};
///
/// # fn main() -> Result<(), hdp_sim::SimError> {
/// let mut sim = Simulator::new();
/// let s = sim.add_signal("s", 4)?;
/// sim.add_component(Stimulus::new("stim", s, 4, vec![1, 2, 3]));
/// let rec = sim.add_component(VcdRecorder::new("vcd", vec![s]));
/// sim.reset()?;
/// sim.run(3)?;
/// let text = sim
///     .component::<VcdRecorder>(rec)
///     .expect("recorder present")
///     .render(sim.bus());
/// assert!(text.contains("$var wire 4"));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct VcdRecorder {
    name: String,
    signals: Vec<SignalId>,
    /// (cycle, signal index, value) change events.
    changes: Vec<(u64, usize, LogicVector)>,
    last: Vec<Option<LogicVector>>,
    cycle: u64,
}

impl VcdRecorder {
    /// Creates a recorder watching the given signals.
    #[must_use]
    pub fn new(name: impl Into<String>, signals: Vec<SignalId>) -> Self {
        let n = signals.len();
        Self {
            name: name.into(),
            signals,
            changes: Vec::new(),
            last: vec![None; n],
            cycle: 0,
        }
    }

    /// Number of change events recorded.
    #[must_use]
    pub fn change_count(&self) -> usize {
        self.changes.len()
    }

    /// Renders the recording as VCD text. Needs the bus to recover
    /// signal names and widths.
    #[must_use]
    pub fn render(&self, bus: &SignalBus) -> String {
        let mut out = String::new();
        out.push_str("$date hdp-sim $end\n$version hdp-sim 0.1 $end\n$timescale 1 ns $end\n");
        out.push_str("$scope module top $end\n");
        for (i, &sig) in self.signals.iter().enumerate() {
            let name = bus.name(sig).unwrap_or("unknown");
            let width = bus.width(sig).unwrap_or(1);
            let _ = writeln!(out, "$var wire {width} {} {name} $end", ident(i));
        }
        out.push_str("$upscope $end\n$enddefinitions $end\n");
        let mut t_last = u64::MAX;
        for (cycle, idx, value) in &self.changes {
            if *cycle != t_last {
                let _ = writeln!(out, "#{cycle}");
                t_last = *cycle;
            }
            let width = value.width();
            if width == 1 {
                let _ = writeln!(
                    out,
                    "{}{}",
                    value.bit(0).map(hdp_hdl::Bit::to_char).unwrap_or('x'),
                    ident(*idx)
                );
            } else {
                let bits: String = (0..width)
                    .rev()
                    .map(|b| value.bit(b).map(hdp_hdl::Bit::to_char).unwrap_or('x'))
                    .collect();
                let _ = writeln!(out, "b{bits} {}", ident(*idx));
            }
        }
        out
    }
}

/// A parsed VCD document, for round-trip checks and waveform diffing
/// without an external viewer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VcdDocument {
    /// Declared variables as `(identifier, name, width)`, in
    /// declaration order.
    pub vars: Vec<(String, String, usize)>,
    /// Change events as `(cycle, identifier, value)`, in file order.
    pub changes: Vec<(u64, String, LogicVector)>,
}

impl VcdDocument {
    /// Parses the subset of IEEE 1364 VCD that [`VcdRecorder::render`]
    /// emits: `$var` declarations, `#` timestamps, and scalar/vector
    /// value changes. Other `$` directives are skipped.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first malformed line.
    pub fn parse(text: &str) -> Result<VcdDocument, String> {
        let mut vars: Vec<(String, String, usize)> = Vec::new();
        let mut changes = Vec::new();
        let mut cycle = None::<u64>;
        for (n, raw) in text.lines().enumerate() {
            let line = raw.trim();
            let fail = |m: String| format!("line {}: {m}", n + 1);
            if let Some(rest) = line.strip_prefix("$var ") {
                let f: Vec<&str> = rest.split_whitespace().collect();
                match f.as_slice() {
                    [_kind, width, id, name, "$end"] => {
                        let width = width
                            .parse::<usize>()
                            .map_err(|e| fail(format!("bad width: {e}")))?;
                        vars.push(((*id).to_owned(), (*name).to_owned(), width));
                    }
                    _ => return Err(fail(format!("malformed $var: `{line}`"))),
                }
            } else if line.is_empty() || line.starts_with('$') {
                // $date/$version/$timescale/$scope/$upscope/$enddefinitions
            } else if let Some(ts) = line.strip_prefix('#') {
                cycle = Some(
                    ts.parse::<u64>()
                        .map_err(|e| fail(format!("bad timestamp: {e}")))?,
                );
            } else {
                let at = cycle.ok_or_else(|| fail("value change before timestamp".into()))?;
                let (bits, id) = if let Some(rest) = line.strip_prefix('b') {
                    let (bits, id) = rest
                        .split_once(' ')
                        .ok_or_else(|| fail(format!("malformed vector change: `{line}`")))?;
                    (bits.to_owned(), id)
                } else {
                    let c = line.chars().next().expect("line is non-empty");
                    (c.to_string(), &line[c.len_utf8()..])
                };
                if id.is_empty() {
                    return Err(fail(format!("value change without identifier: `{line}`")));
                }
                let value = LogicVector::parse(&bits)
                    .map_err(|e| fail(format!("bad value `{bits}`: {e}")))?;
                changes.push((at, id.to_owned(), value));
            }
        }
        Ok(VcdDocument { vars, changes })
    }

    /// Reconstructs the waveform of variable `ident` over `cycles`
    /// clock cycles: the value at each cycle, holding the last change,
    /// `None` before the first one.
    #[must_use]
    pub fn waveform(&self, ident: &str, cycles: u64) -> Vec<Option<LogicVector>> {
        let mut out = Vec::new();
        let mut current = None;
        for cycle in 0..cycles {
            for (at, id, value) in &self.changes {
                if *at == cycle && id == ident {
                    current = Some(*value);
                }
            }
            out.push(current);
        }
        out
    }
}

/// Short VCD identifier for signal index `i` (printable ASCII).
fn ident(i: usize) -> String {
    let alphabet: Vec<char> = ('!'..='~').collect();
    let mut i = i;
    let mut s = String::new();
    loop {
        s.push(alphabet[i % alphabet.len()]);
        i /= alphabet.len();
        if i == 0 {
            break;
        }
    }
    s
}

impl Component for VcdRecorder {
    fn name(&self) -> &str {
        &self.name
    }

    fn eval(&mut self, _bus: &mut dyn BusAccess) -> Result<(), SimError> {
        Ok(())
    }

    fn tick(&mut self, bus: &mut SignalBus) -> Result<(), SimError> {
        for (i, &sig) in self.signals.iter().enumerate() {
            let v = bus.read(sig)?;
            if self.last[i] != Some(v) {
                self.changes.push((self.cycle, i, v));
                self.last[i] = Some(v);
            }
        }
        self.cycle += 1;
        Ok(())
    }

    fn reset(&mut self, _bus: &mut SignalBus) -> Result<(), SimError> {
        self.changes.clear();
        self.last.fill(None);
        self.cycle = 0;
        Ok(())
    }

    fn sensitivity(&self) -> crate::Sensitivity {
        // A pure observer: it only samples at the clock edge.
        crate::Sensitivity::Signals(vec![])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::Stimulus;
    use crate::Simulator;

    #[test]
    fn records_only_changes() {
        let mut sim = Simulator::new();
        let s = sim.add_signal("sig", 4).unwrap();
        sim.add_component(Stimulus::new("stim", s, 4, vec![1, 1, 2, 2, 3]));
        let rec = sim.add_component(VcdRecorder::new("vcd", vec![s]));
        sim.reset().unwrap();
        sim.run(5).unwrap();
        let rec = sim.component::<VcdRecorder>(rec).unwrap();
        assert_eq!(rec.change_count(), 3); // 1, 2, 3
    }

    #[test]
    fn render_contains_header_and_values() {
        let mut sim = Simulator::new();
        let s = sim.add_signal("mysig", 4).unwrap();
        let b = sim.add_signal("bit", 1).unwrap();
        sim.add_component(Stimulus::new("stim", s, 4, vec![5]));
        sim.add_component(Stimulus::new("stimb", b, 1, vec![1]));
        let rec = sim.add_component(VcdRecorder::new("vcd", vec![s, b]));
        sim.reset().unwrap();
        sim.run(2).unwrap();
        let text = sim.component::<VcdRecorder>(rec).unwrap().render(sim.bus());
        assert!(text.contains("$var wire 4 ! mysig $end"));
        assert!(text.contains("$var wire 1 \" bit $end"));
        assert!(text.contains("b0101 !"));
        assert!(text.contains("1\""));
        assert!(text.contains("$enddefinitions"));
    }

    #[test]
    fn round_trip_reconstructs_waveforms() {
        let mut sim = Simulator::new();
        let s = sim.add_signal("data", 4).unwrap();
        let b = sim.add_signal("flag", 1).unwrap();
        sim.add_component(Stimulus::new("stim", s, 4, vec![1, 1, 2, 3, 3]));
        sim.add_component(Stimulus::new("stimb", b, 1, vec![0, 1, 1, 0, 0]));
        let rec = sim.add_component(VcdRecorder::new("vcd", vec![s, b]));
        let mon = sim.add_component(crate::probe::Monitor::new("mon", s));
        sim.reset().unwrap();
        sim.run(5).unwrap();
        let text = sim.component::<VcdRecorder>(rec).unwrap().render(sim.bus());
        let doc = VcdDocument::parse(&text).unwrap();
        assert_eq!(
            doc.vars,
            vec![
                ("!".into(), "data".into(), 4),
                ("\"".into(), "flag".into(), 1),
            ]
        );
        // Holding each change until the next one reconstructs exactly
        // the per-cycle trace an independent monitor recorded.
        let wave = doc.waveform("!", 5);
        let trace = sim.component::<crate::probe::Monitor>(mon).unwrap().trace();
        assert_eq!(wave.len(), trace.len());
        for (cycle, (got, want)) in wave.iter().zip(trace).enumerate() {
            assert_eq!(got.as_ref(), Some(want), "cycle {cycle}");
        }
        let flag: Vec<Option<u64>> = doc
            .waveform("\"", 5)
            .into_iter()
            .map(|v| v.and_then(|v| v.to_u64()))
            .collect();
        assert_eq!(flag, vec![Some(0), Some(1), Some(1), Some(0), Some(0)]);
    }

    #[test]
    fn round_trip_preserves_undefined_bits() {
        let mut sim = Simulator::new();
        let driven = sim.add_signal("driven", 2).unwrap();
        let floating = sim.add_signal("floating", 2).unwrap();
        sim.add_component(Stimulus::new("stim", driven, 2, vec![3]));
        let rec = sim.add_component(VcdRecorder::new("vcd", vec![driven, floating]));
        sim.reset().unwrap();
        sim.run(2).unwrap();
        let text = sim.component::<VcdRecorder>(rec).unwrap().render(sim.bus());
        let doc = VcdDocument::parse(&text).unwrap();
        // The undriven signal round-trips as all-X, not as a number.
        assert_eq!(
            doc.waveform("\"", 2)[0],
            Some(LogicVector::unknown(2).unwrap())
        );
        assert_eq!(doc.waveform("!", 2)[1].and_then(|v| v.to_u64()), Some(3));
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        let before_ts = VcdDocument::parse("b01 !").unwrap_err();
        assert!(before_ts.contains("before timestamp"), "{before_ts}");
        assert!(VcdDocument::parse("$var wire x ! s $end").is_err());
        assert!(VcdDocument::parse("#0\nb01").is_err());
        assert!(VcdDocument::parse("#zz").is_err());
        assert!(VcdDocument::parse("#0\n1").is_err());
    }

    #[test]
    fn ident_is_unique_for_many_signals() {
        let ids: Vec<String> = (0..200).map(ident).collect();
        let mut dedup = ids.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), ids.len());
    }
}
