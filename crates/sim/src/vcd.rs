//! Value Change Dump (VCD) waveform export.
//!
//! A debugging extension beyond the paper: attach a [`VcdRecorder`] to
//! the simulator, run, and write an IEEE 1364 VCD file viewable in
//! GTKWave or any waveform viewer.

use crate::{BusAccess, Component, SignalBus, SignalId, SimError};
use hdp_hdl::LogicVector;
use std::fmt::Write as _;

/// Records value changes of selected signals and serialises them as a
/// VCD document.
///
/// # Example
///
/// ```
/// use hdp_sim::{Simulator, vcd::VcdRecorder, probe::Stimulus};
///
/// # fn main() -> Result<(), hdp_sim::SimError> {
/// let mut sim = Simulator::new();
/// let s = sim.add_signal("s", 4)?;
/// sim.add_component(Stimulus::new("stim", s, 4, vec![1, 2, 3]));
/// let rec = sim.add_component(VcdRecorder::new("vcd", vec![s]));
/// sim.reset()?;
/// sim.run(3)?;
/// let text = sim
///     .component::<VcdRecorder>(rec)
///     .expect("recorder present")
///     .render(sim.bus());
/// assert!(text.contains("$var wire 4"));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct VcdRecorder {
    name: String,
    signals: Vec<SignalId>,
    /// (cycle, signal index, value) change events.
    changes: Vec<(u64, usize, LogicVector)>,
    last: Vec<Option<LogicVector>>,
    cycle: u64,
}

impl VcdRecorder {
    /// Creates a recorder watching the given signals.
    #[must_use]
    pub fn new(name: impl Into<String>, signals: Vec<SignalId>) -> Self {
        let n = signals.len();
        Self {
            name: name.into(),
            signals,
            changes: Vec::new(),
            last: vec![None; n],
            cycle: 0,
        }
    }

    /// Number of change events recorded.
    #[must_use]
    pub fn change_count(&self) -> usize {
        self.changes.len()
    }

    /// Renders the recording as VCD text. Needs the bus to recover
    /// signal names and widths.
    #[must_use]
    pub fn render(&self, bus: &SignalBus) -> String {
        let mut out = String::new();
        out.push_str("$date hdp-sim $end\n$version hdp-sim 0.1 $end\n$timescale 1 ns $end\n");
        out.push_str("$scope module top $end\n");
        for (i, &sig) in self.signals.iter().enumerate() {
            let name = bus.name(sig).unwrap_or("unknown");
            let width = bus.width(sig).unwrap_or(1);
            let _ = writeln!(out, "$var wire {width} {} {name} $end", ident(i));
        }
        out.push_str("$upscope $end\n$enddefinitions $end\n");
        let mut t_last = u64::MAX;
        for (cycle, idx, value) in &self.changes {
            if *cycle != t_last {
                let _ = writeln!(out, "#{cycle}");
                t_last = *cycle;
            }
            let width = value.width();
            if width == 1 {
                let _ = writeln!(
                    out,
                    "{}{}",
                    value.bit(0).map(hdp_hdl::Bit::to_char).unwrap_or('x'),
                    ident(*idx)
                );
            } else {
                let bits: String = (0..width)
                    .rev()
                    .map(|b| value.bit(b).map(hdp_hdl::Bit::to_char).unwrap_or('x'))
                    .collect();
                let _ = writeln!(out, "b{bits} {}", ident(*idx));
            }
        }
        out
    }
}

/// Short VCD identifier for signal index `i` (printable ASCII).
fn ident(i: usize) -> String {
    let alphabet: Vec<char> = ('!'..='~').collect();
    let mut i = i;
    let mut s = String::new();
    loop {
        s.push(alphabet[i % alphabet.len()]);
        i /= alphabet.len();
        if i == 0 {
            break;
        }
    }
    s
}

impl Component for VcdRecorder {
    fn name(&self) -> &str {
        &self.name
    }

    fn eval(&mut self, _bus: &mut dyn BusAccess) -> Result<(), SimError> {
        Ok(())
    }

    fn tick(&mut self, bus: &mut SignalBus) -> Result<(), SimError> {
        for (i, &sig) in self.signals.iter().enumerate() {
            let v = bus.read(sig)?;
            if self.last[i] != Some(v) {
                self.changes.push((self.cycle, i, v));
                self.last[i] = Some(v);
            }
        }
        self.cycle += 1;
        Ok(())
    }

    fn reset(&mut self, _bus: &mut SignalBus) -> Result<(), SimError> {
        self.changes.clear();
        self.last.fill(None);
        self.cycle = 0;
        Ok(())
    }

    fn sensitivity(&self) -> crate::Sensitivity {
        // A pure observer: it only samples at the clock edge.
        crate::Sensitivity::Signals(vec![])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::Stimulus;
    use crate::Simulator;

    #[test]
    fn records_only_changes() {
        let mut sim = Simulator::new();
        let s = sim.add_signal("sig", 4).unwrap();
        sim.add_component(Stimulus::new("stim", s, 4, vec![1, 1, 2, 2, 3]));
        let rec = sim.add_component(VcdRecorder::new("vcd", vec![s]));
        sim.reset().unwrap();
        sim.run(5).unwrap();
        let rec = sim.component::<VcdRecorder>(rec).unwrap();
        assert_eq!(rec.change_count(), 3); // 1, 2, 3
    }

    #[test]
    fn render_contains_header_and_values() {
        let mut sim = Simulator::new();
        let s = sim.add_signal("mysig", 4).unwrap();
        let b = sim.add_signal("bit", 1).unwrap();
        sim.add_component(Stimulus::new("stim", s, 4, vec![5]));
        sim.add_component(Stimulus::new("stimb", b, 1, vec![1]));
        let rec = sim.add_component(VcdRecorder::new("vcd", vec![s, b]));
        sim.reset().unwrap();
        sim.run(2).unwrap();
        let text = sim.component::<VcdRecorder>(rec).unwrap().render(sim.bus());
        assert!(text.contains("$var wire 4 ! mysig $end"));
        assert!(text.contains("$var wire 1 \" bit $end"));
        assert!(text.contains("b0101 !"));
        assert!(text.contains("1\""));
        assert!(text.contains("$enddefinitions"));
    }

    #[test]
    fn ident_is_unique_for_many_signals() {
        let ids: Vec<String> = (0..200).map(ident).collect();
        let mut dedup = ids.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), ids.len());
    }
}
