//! Testbench helpers: stimulus drivers and signal monitors.

use crate::{BusAccess, Component, SignalBus, SignalId, SimError};
use hdp_hdl::LogicVector;

/// Drives a signal with a precomputed per-cycle sequence, then holds
/// the last value. A convenient way to express fixed stimulus in tests
/// without hand-stepping the simulator.
#[derive(Debug)]
pub struct Stimulus {
    name: String,
    signal: SignalId,
    values: Vec<u64>,
    width: usize,
    cursor: usize,
}

impl Stimulus {
    /// Creates a stimulus driving `signal` (of `width` bits) with
    /// `values[0]` in the first cycle, `values[1]` in the second, and
    /// so on, holding the final value afterwards.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    #[must_use]
    pub fn new(name: impl Into<String>, signal: SignalId, width: usize, values: Vec<u64>) -> Self {
        assert!(!values.is_empty(), "stimulus needs at least one value");
        Self {
            name: name.into(),
            signal,
            values,
            width,
            cursor: 0,
        }
    }
}

impl Component for Stimulus {
    fn name(&self) -> &str {
        &self.name
    }

    fn eval(&mut self, bus: &mut dyn BusAccess) -> Result<(), SimError> {
        let v = self.values[self.cursor.min(self.values.len() - 1)];
        let value = LogicVector::from_u64(v, self.width).map_err(SimError::from)?;
        bus.drive(self.signal, value)
    }

    fn tick(&mut self, _bus: &mut SignalBus) -> Result<(), SimError> {
        if self.cursor + 1 < self.values.len() {
            self.cursor += 1;
        }
        Ok(())
    }

    fn reset(&mut self, _bus: &mut SignalBus) -> Result<(), SimError> {
        self.cursor = 0;
        Ok(())
    }

    fn sensitivity(&self) -> crate::Sensitivity {
        // eval drives from the cursor alone, which advances on ticks.
        crate::Sensitivity::Signals(vec![])
    }
}

/// Records the settled pre-edge value of a signal every cycle.
#[derive(Debug)]
pub struct Monitor {
    name: String,
    signal: SignalId,
    trace: Vec<LogicVector>,
}

impl Monitor {
    /// Creates a monitor for `signal`.
    #[must_use]
    pub fn new(name: impl Into<String>, signal: SignalId) -> Self {
        Self {
            name: name.into(),
            signal,
            trace: Vec::new(),
        }
    }

    /// Creates a monitor with the trace pre-allocated for a run of
    /// `cycles_hint` clock cycles, so long captures never reallocate
    /// mid-simulation.
    #[must_use]
    pub fn with_capacity(name: impl Into<String>, signal: SignalId, cycles_hint: usize) -> Self {
        Self {
            name: name.into(),
            signal,
            trace: Vec::with_capacity(cycles_hint),
        }
    }

    /// The recorded per-cycle values.
    #[must_use]
    pub fn trace(&self) -> &[LogicVector] {
        &self.trace
    }

    /// The recorded values as integers, skipping undefined cycles.
    #[must_use]
    pub fn defined_values(&self) -> Vec<u64> {
        self.trace.iter().filter_map(LogicVector::to_u64).collect()
    }

    /// Asserts that the defined (non-`X`/`Z`) recorded values are
    /// exactly `expected`, with a diff-style message on mismatch.
    ///
    /// # Panics
    ///
    /// Panics if the defined values differ from `expected`, naming the
    /// monitor, the first diverging cycle position and both sequences.
    pub fn expect_values(&self, expected: &[u64]) {
        let got = self.defined_values();
        if got == expected {
            return;
        }
        let first_diff = got
            .iter()
            .zip(expected.iter())
            .position(|(g, e)| g != e)
            .unwrap_or_else(|| got.len().min(expected.len()));
        panic!(
            "monitor `{}` trace mismatch at defined-value #{first_diff}: \
             expected {expected:?}, got {got:?}",
            self.name
        );
    }
}

impl Component for Monitor {
    fn name(&self) -> &str {
        &self.name
    }

    fn eval(&mut self, _bus: &mut dyn BusAccess) -> Result<(), SimError> {
        Ok(())
    }

    fn tick(&mut self, bus: &mut SignalBus) -> Result<(), SimError> {
        self.trace.push(bus.read(self.signal)?);
        Ok(())
    }

    fn reset(&mut self, _bus: &mut SignalBus) -> Result<(), SimError> {
        self.trace.clear();
        Ok(())
    }

    fn sensitivity(&self) -> crate::Sensitivity {
        // A pure observer: it only samples at the clock edge.
        crate::Sensitivity::Signals(vec![])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Simulator;

    #[test]
    fn stimulus_plays_sequence_and_holds() {
        let mut sim = Simulator::new();
        let s = sim.add_signal("s", 8).unwrap();
        sim.add_component(Stimulus::new("stim", s, 8, vec![3, 1, 4]));
        let mon = sim.add_component(Monitor::with_capacity("mon", s, 5));
        sim.reset().unwrap();
        sim.run(5).unwrap();
        let mon = sim.component::<Monitor>(mon).unwrap();
        mon.expect_values(&[3, 1, 4, 4, 4]);
    }

    #[test]
    #[should_panic(expected = "monitor `mon` trace mismatch at defined-value #1")]
    fn expect_values_names_first_divergence() {
        let mut sim = Simulator::new();
        let s = sim.add_signal("s", 8).unwrap();
        sim.add_component(Stimulus::new("stim", s, 8, vec![3, 1, 4]));
        let mon = sim.add_component(Monitor::new("mon", s));
        sim.reset().unwrap();
        sim.run(3).unwrap();
        sim.component::<Monitor>(mon)
            .unwrap()
            .expect_values(&[3, 9, 4]);
    }

    #[test]
    #[should_panic(expected = "monitor `mon` trace mismatch at defined-value #3")]
    fn expect_values_points_past_the_common_prefix_on_length_mismatch() {
        let mut sim = Simulator::new();
        let s = sim.add_signal("s", 8).unwrap();
        sim.add_component(Stimulus::new("stim", s, 8, vec![3, 1, 4]));
        let mon = sim.add_component(Monitor::new("mon", s));
        sim.reset().unwrap();
        sim.run(3).unwrap();
        // All recorded values match but the expectation is longer: the
        // diagnostic points at the first missing position, not #0.
        sim.component::<Monitor>(mon)
            .unwrap()
            .expect_values(&[3, 1, 4, 1, 5]);
    }

    #[test]
    fn expect_values_skips_undefined_cycles() {
        let mut sim = Simulator::new();
        let driven = sim.add_signal("driven", 8).unwrap();
        let floating = sim.add_signal("floating", 8).unwrap();
        sim.add_component(Stimulus::new("stim", driven, 8, vec![7]));
        let mon = sim.add_component(Monitor::new("mon", floating));
        sim.reset().unwrap();
        sim.run(3).unwrap();
        let mon = sim.component::<Monitor>(mon).unwrap();
        // Three cycles recorded, all X — the trace is kept but no
        // value is "defined", so the expectation list is empty.
        assert_eq!(mon.trace().len(), 3);
        assert!(mon.defined_values().is_empty());
        mon.expect_values(&[]);
    }

    #[test]
    fn monitor_clears_on_reset() {
        let mut sim = Simulator::new();
        let s = sim.add_signal("s", 4).unwrap();
        sim.poke(s, 2).unwrap();
        let mon = sim.add_component(Monitor::new("mon", s));
        sim.reset().unwrap();
        sim.run(2).unwrap();
        sim.reset().unwrap();
        assert!(sim.component::<Monitor>(mon).unwrap().trace().is_empty());
    }
}
