//! The compiled scheduler's data plane: a bit-packed signal arena and
//! the ahead-of-time levelized evaluation schedule that walks it.
//!
//! [`crate::SchedMode::Compiled`] freezes a settled design into a
//! [`CompiledSchedule`]: every signal's value lives in a contiguous
//! [`SignalArena`] of `u64` words (three logic planes, bit-packed, with
//! precomputed word/shift offsets), and components are sorted into
//! static ranks by longest combinational path so one in-order walk
//! reaches the fixpoint a delta-cycle loop would. The schedule is
//! built and owned by the scheduler in `sched.rs`; this module holds
//! the pure data structures plus [`CompiledBus`], the [`BusAccess`]
//! façade components see while evaluating against the arena.

use crate::lower::LoweredProgram;
use crate::signal::{BusAccess, DRIVER_POKE};
use crate::{SignalBus, SignalId, SimError};
use hdp_hdl::LogicVector;
use std::sync::Arc;

/// A reusable snapshot of a validated compiled schedule: everything
/// the compile step derives from a design that is *independent of
/// signal values* — the levelized component order, the per-rank
/// counts, and the `(signal, driver)` links the validation settle
/// discovered.
///
/// Exported from a simulator whose [`crate::SchedMode::Compiled`]
/// schedule is active ([`crate::Simulator::export_plan`]) and
/// installed into a *freshly built* simulator of the same design
/// ([`crate::Simulator::install_plan`]), skipping the levelization
/// step entirely. The plan carries a structural signature (signal
/// names/widths, component names, sensitivities, clocking and
/// declared drives) so installation into a different design is
/// rejected instead of silently mis-scheduling. Settled values are
/// bit-identical with or without plan reuse: the installed schedule
/// is byte-for-byte the one a cold compile would have produced.
///
/// This is the unit a content-addressed plan cache stores —
/// compile a design once, then simulate millions of stimuli against
/// installed copies of the plan (see `hdp-service`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledPlan {
    /// Structural signature of the source design
    /// ([`crate::Simulator::design_signature`]).
    pub(crate) signature: u64,
    /// Signal count at export time.
    pub(crate) n_sigs: usize,
    /// Component count at export time.
    pub(crate) n_comps: usize,
    /// Every `(signal slot, driver component)` link the source bus
    /// had observed, in slot order.
    pub(crate) links: Vec<(u32, u32)>,
    /// Component indices sorted by `(rank, registration order)`.
    pub(crate) order: Vec<u32>,
    /// Component count per levelized rank.
    pub(crate) rank_counts: Vec<u64>,
    /// Per-component lowered op-stream programs (`None` where the
    /// component keeps interpreted evaluation), indexed by component
    /// registration order. Populated when the exporting simulator ran
    /// [`crate::SchedMode::Lowered`]; empty otherwise. Value-free like
    /// the rest of the plan, so the service's content-addressed cache
    /// hands warm jobs a ready-to-run op stream and the lowering
    /// translation happens once per design, not once per job.
    pub(crate) lowered: Vec<Option<Arc<LoweredProgram>>>,
}

impl CompiledPlan {
    /// The structural signature of the design this plan was compiled
    /// from. [`crate::Simulator::install_plan`] refuses a plan whose
    /// signature does not match the target simulator.
    #[must_use]
    pub fn signature(&self) -> u64 {
        self.signature
    }

    /// Component count per levelized rank (index = rank).
    #[must_use]
    pub fn rank_counts(&self) -> &[u64] {
        &self.rank_counts
    }

    /// Number of components the plan schedules.
    #[must_use]
    pub fn components(&self) -> usize {
        self.n_comps
    }

    /// Number of signals the plan's source design declared.
    #[must_use]
    pub fn signals(&self) -> usize {
        self.n_sigs
    }

    /// Number of components the plan carries a lowered op-stream
    /// program for (zero when the plan was exported from a
    /// non-lowered simulator).
    #[must_use]
    pub fn lowered_components(&self) -> usize {
        self.lowered.iter().filter(|p| p.is_some()).count()
    }

    /// Rough resident-memory estimate of this plan in bytes: the
    /// backing vectors' element counts times their element sizes,
    /// including each lowered program's op stream. An estimate for
    /// cache-sizing gauges, not an allocator measurement.
    #[must_use]
    pub fn estimate_bytes(&self) -> u64 {
        let base = std::mem::size_of::<Self>()
            + self.links.len() * std::mem::size_of::<(u32, u32)>()
            + self.order.len() * std::mem::size_of::<u32>()
            + self.rank_counts.len() * std::mem::size_of::<u64>()
            + self.lowered.len() * std::mem::size_of::<Option<Arc<LoweredProgram>>>();
        let lowered: usize = self
            .lowered
            .iter()
            .flatten()
            .map(|p| {
                p.masks.len() * std::mem::size_of::<u64>()
                    + p.shared_z.len() * std::mem::size_of::<u32>()
                    + p.ops.len() * std::mem::size_of::<crate::lower::LoweredOp>()
                    + (p.in_ports.len() + p.out_ports.len())
                        * std::mem::size_of::<(u32, SignalId)>()
            })
            .sum();
        (base + lowered) as u64
    }
}

/// Bit mask selecting the low `width` bits of a word.
fn mask(width: u8) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

/// Placement of one signal inside the arena: the word it lives in and
/// the bit offset of its low bit. Signals never span a word boundary,
/// so every access is a single shift-and-mask on each plane.
#[derive(Debug, Clone, Copy)]
struct ArenaSlot {
    word: u32,
    shift: u8,
    width: u8,
}

/// Flattened storage for every signal value: three parallel `u64`
/// planes (payload, unknown, high-impedance — the same three masks a
/// [`LogicVector`] carries) with signals bump-allocated into words in
/// id order. A 1-bit strobe costs one bit per plane instead of a
/// 24-byte `LogicVector` slot, and a whole design's worth of signals
/// fits in a few cache lines.
#[derive(Debug)]
pub(crate) struct SignalArena {
    value: Vec<u64>,
    unknown: Vec<u64>,
    highz: Vec<u64>,
    slots: Vec<ArenaSlot>,
}

impl SignalArena {
    /// Lays out an arena for every signal currently on the bus and
    /// loads their present values.
    pub(crate) fn build(bus: &SignalBus) -> Self {
        let mut slots = Vec::with_capacity(bus.len());
        let mut word: u32 = 0;
        let mut used: u8 = 0;
        for i in 0..bus.len() {
            let width = bus
                .width(SignalId(i))
                .expect("arena build: slot index in range") as u8;
            if used as usize + width as usize > 64 {
                word += 1;
                used = 0;
            }
            slots.push(ArenaSlot {
                word,
                shift: used,
                width,
            });
            used += width;
        }
        let words = slots.last().map_or(0, |s| s.word as usize + 1);
        let mut arena = Self {
            value: vec![0; words],
            unknown: vec![0; words],
            highz: vec![0; words],
            slots,
        };
        arena.load_from(bus);
        arena
    }

    /// Reloads every slot from the live bus (used after an event-driven
    /// fallback settle left the arena stale).
    pub(crate) fn load_from(&mut self, bus: &SignalBus) {
        for i in 0..self.slots.len() {
            let v = bus
                .read(SignalId(i))
                .expect("arena reload: slot index in range");
            self.set(i, v);
        }
    }

    /// The number of signals placed in the arena.
    pub(crate) fn len(&self) -> usize {
        self.slots.len()
    }

    /// The declared width of a slot, in bits.
    pub(crate) fn width(&self, slot: usize) -> usize {
        self.slots[slot].width as usize
    }

    /// Reads a slot back as a [`LogicVector`].
    pub(crate) fn get(&self, slot: usize) -> LogicVector {
        let s = self.slots[slot];
        let m = mask(s.width);
        let w = s.word as usize;
        LogicVector::from_raw_masks(
            s.width as usize,
            (self.value[w] >> s.shift) & m,
            (self.unknown[w] >> s.shift) & m,
            (self.highz[w] >> s.shift) & m,
        )
        .expect("arena slot width was validated at build")
    }

    /// Writes a slot, returning whether the stored bits changed.
    pub(crate) fn set(&mut self, slot: usize, v: LogicVector) -> bool {
        let s = self.slots[slot];
        let m = mask(s.width);
        let w = s.word as usize;
        let (val, unk, hz) = v.raw_masks();
        let old = (
            (self.value[w] >> s.shift) & m,
            (self.unknown[w] >> s.shift) & m,
            (self.highz[w] >> s.shift) & m,
        );
        if old == (val, unk, hz) {
            return false;
        }
        let clear = !(m << s.shift);
        self.value[w] = (self.value[w] & clear) | (val << s.shift);
        self.unknown[w] = (self.unknown[w] & clear) | (unk << s.shift);
        self.highz[w] = (self.highz[w] & clear) | (hz << s.shift);
        true
    }
}

/// A frozen evaluation plan: the arena plus components sorted into
/// levelized ranks, with the per-settle scratch state the walk needs.
///
/// Per-slot bookkeeping (`written`, `changed_tag`, `woken`) is
/// epoch-tagged rather than cleared, so starting a settle is O(1) in
/// the design size.
#[derive(Debug)]
pub(crate) struct CompiledSchedule {
    /// Bit-packed signal storage.
    pub(crate) arena: SignalArena,
    /// Component indices sorted by `(rank, registration order)`.
    pub(crate) order: Vec<u32>,
    /// How many components sit at each rank (diagnostics/telemetry).
    pub(crate) rank_counts: Vec<u64>,
    /// Whether the arena no longer mirrors the bus (an event-driven
    /// fallback settle ran since the last arena commit) and must be
    /// reloaded before the next compiled walk.
    pub(crate) arena_stale: bool,
    /// Current settle epoch for the tag vectors below.
    epoch: u64,
    /// Per-slot epoch of the last arena write this settle (selects
    /// replace-vs-resolve drive semantics).
    written: Vec<u64>,
    /// Per-slot epoch marking membership of `changed`.
    changed_tag: Vec<u64>,
    /// Slots whose arena value changed this settle, in first-change
    /// order. The walk drains this as a wake queue; the commit replays
    /// it onto the bus.
    pub(crate) changed: Vec<usize>,
    /// Per-slot index of the driver whose write last changed the slot.
    pub(crate) changer: Vec<usize>,
    /// Per-component epoch marking "already queued for evaluation this
    /// settle".
    woken: Vec<u64>,
    /// Telemetry: drive calls per slot this settle (drained at commit).
    drive_counts: Vec<u64>,
    /// Slots with a nonzero `drive_counts` entry this settle.
    drives_touched: Vec<usize>,
    /// `(slot, driver)` pairs observed this settle that the schedule
    /// was not built with. Non-empty means the schedule is stale: the
    /// walk aborts, the links are recorded on the bus and the settle
    /// re-runs event-driven.
    pub(crate) new_links: Vec<(usize, usize)>,
    /// Set as soon as `new_links` gains an entry.
    pub(crate) stale: bool,
}

impl CompiledSchedule {
    pub(crate) fn new(arena: SignalArena, order: Vec<u32>, rank_counts: Vec<u64>) -> Self {
        let n_slots = arena.len();
        let n_comps = order.len();
        Self {
            arena,
            order,
            rank_counts,
            arena_stale: false,
            epoch: 0,
            written: vec![0; n_slots],
            changed_tag: vec![0; n_slots],
            changed: Vec::new(),
            changer: vec![DRIVER_POKE; n_slots],
            woken: vec![0; n_comps],
            drive_counts: vec![0; n_slots],
            drives_touched: Vec::new(),
            new_links: Vec::new(),
            stale: false,
        }
    }

    /// Opens a new settle: bumps the epoch and clears the per-settle
    /// queues. Epoch tags make the per-slot state implicitly fresh.
    pub(crate) fn begin_settle(&mut self) {
        self.epoch += 1;
        self.changed.clear();
        self.new_links.clear();
        self.stale = false;
    }

    /// Queues a component for evaluation this settle (idempotent).
    pub(crate) fn wake(&mut self, comp: usize) {
        self.woken[comp] = self.epoch;
    }

    /// Whether a component has been queued this settle.
    pub(crate) fn is_woken(&self, comp: usize) -> bool {
        self.woken[comp] == self.epoch
    }

    /// Drains the per-settle telemetry drive counts as
    /// `(slot, count)` pairs.
    pub(crate) fn take_drive_counts(&mut self) -> Vec<(usize, u64)> {
        let mut out = Vec::with_capacity(self.drives_touched.len());
        for slot in self.drives_touched.drain(..) {
            out.push((slot, self.drive_counts[slot]));
            self.drive_counts[slot] = 0;
        }
        out
    }
}

/// The [`BusAccess`] view a component gets while the compiled walk
/// evaluates it: reads and drives go to the arena, names come from the
/// live bus, and any drive by a component the schedule did not list as
/// a driver of that slot flags the schedule stale.
pub(crate) struct CompiledBus<'a> {
    pub(crate) sched: &'a mut CompiledSchedule,
    pub(crate) bus: &'a SignalBus,
    /// Component index of the evaluating driver, or [`DRIVER_POKE`].
    pub(crate) driver: usize,
    /// Whether per-slot drive telemetry is collected.
    pub(crate) telemetry: bool,
}

impl CompiledBus<'_> {
    fn slot(&self, id: SignalId) -> Result<usize, SimError> {
        if id.0 < self.sched.arena.len() {
            Ok(id.0)
        } else {
            Err(SimError::UnknownSignal { index: id.0 })
        }
    }
}

impl BusAccess for CompiledBus<'_> {
    fn read(&self, id: SignalId) -> Result<LogicVector, SimError> {
        let slot = self.slot(id)?;
        Ok(self.sched.arena.get(slot))
    }

    fn read_u64(&self, id: SignalId, component: &str) -> Result<u64, SimError> {
        let v = self.read(id)?;
        v.to_u64().ok_or_else(|| SimError::Protocol {
            component: component.to_owned(),
            message: format!(
                "signal `{}` is undefined ({v})",
                self.bus.name(id).unwrap_or("?")
            ),
        })
    }

    fn drive(&mut self, id: SignalId, value: LogicVector) -> Result<(), SimError> {
        let slot = self.slot(id)?;
        let sched = &mut *self.sched;
        let width = sched.arena.width(slot);
        if width != value.width() {
            return Err(SimError::SignalWidth {
                signal: self.bus.name(id).unwrap_or("?").to_owned(),
                expected: width,
                found: value.width(),
            });
        }
        if self.telemetry {
            if sched.drive_counts[slot] == 0 {
                sched.drives_touched.push(slot);
            }
            sched.drive_counts[slot] += 1;
        }
        // A drive the schedule was not built with (a conditional drive
        // firing for the first time) invalidates the levelization: the
        // new writer may sit at a later rank than this slot's readers.
        // Record the link, mark the schedule stale and let the walk
        // abort; the settle re-runs event-driven with full semantics.
        if self.driver != DRIVER_POKE
            && !self.bus.slot_drivers(slot).contains(&self.driver)
            && !sched.new_links.contains(&(slot, self.driver))
        {
            sched.new_links.push((slot, self.driver));
            sched.stale = true;
        }
        let resolved = if sched.written[slot] == sched.epoch {
            sched
                .arena
                .get(slot)
                .resolve(&value)
                .map_err(SimError::from)?
        } else {
            value
        };
        sched.written[slot] = sched.epoch;
        if sched.arena.set(slot, resolved) {
            sched.changer[slot] = self.driver;
            if sched.changed_tag[slot] != sched.epoch {
                sched.changed_tag[slot] = sched.epoch;
                sched.changed.push(slot);
            }
        }
        Ok(())
    }

    fn drive_u64(&mut self, id: SignalId, value: u64) -> Result<(), SimError> {
        let slot = self.slot(id)?;
        let width = self.sched.arena.width(slot);
        let v = LogicVector::from_u64(value, width).map_err(SimError::from)?;
        self.drive(id, v)
    }

    fn width(&self, id: SignalId) -> Result<usize, SimError> {
        let slot = self.slot(id)?;
        Ok(self.sched.arena.width(slot))
    }

    fn name(&self, id: SignalId) -> Result<&str, SimError> {
        self.bus.name(id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Simulator;

    fn arena_rig(widths: &[usize]) -> (Simulator, SignalArena) {
        let mut sim = Simulator::new();
        for (i, &w) in widths.iter().enumerate() {
            sim.add_signal(format!("s{i}"), w).unwrap();
        }
        let arena = SignalArena::build(sim.bus());
        (sim, arena)
    }

    #[test]
    fn arena_packs_without_spanning_words() {
        // 40 + 40 cannot share a word, so the second signal starts a
        // new one; the 8-bit signal still fits beside it (40 + 8 = 48).
        // 48 + 56 overflows again, and the final 1-bit signal rides
        // along in that word (56 + 1 = 57).
        let (_sim, arena) = arena_rig(&[40, 40, 8, 56, 1]);
        assert_eq!(arena.len(), 5);
        assert_eq!(arena.slots[0].word, 0);
        assert_eq!(arena.slots[1].word, 1);
        assert_eq!(arena.slots[2].word, 1);
        assert_eq!(arena.slots[2].shift, 40);
        assert_eq!(arena.slots[3].word, 2);
        assert_eq!(arena.slots[3].shift, 0);
        assert_eq!(arena.slots[4].word, 2);
        assert_eq!(arena.slots[4].shift, 56);
    }

    #[test]
    fn arena_round_trips_all_logic_planes() {
        let (_sim, mut arena) = arena_rig(&[4, 4, 64]);
        let v = LogicVector::parse("10XZ").unwrap();
        assert!(arena.set(1, v));
        assert_eq!(arena.get(1), v);
        // Neighbours are untouched (still all-unknown from the bus).
        assert_eq!(arena.get(0), LogicVector::unknown(4).unwrap());
        let wide = LogicVector::from_u64(u64::MAX, 64).unwrap();
        assert!(arena.set(2, wide));
        assert_eq!(arena.get(2), wide);
        assert_eq!(arena.get(1), v);
    }

    #[test]
    fn arena_set_reports_change() {
        let (_sim, mut arena) = arena_rig(&[8]);
        let v = LogicVector::from_u64(0xA5, 8).unwrap();
        assert!(arena.set(0, v));
        assert!(!arena.set(0, v));
    }

    #[test]
    fn compiled_bus_resolves_second_drive_of_a_settle() {
        let (sim, arena) = arena_rig(&[1]);
        let n = arena.len();
        let mut sched = CompiledSchedule::new(arena, Vec::new(), Vec::new());
        let _ = n;
        sched.begin_settle();
        let id = SignalId(0);
        let z = LogicVector::parse("Z").unwrap();
        let one = LogicVector::from_u64(1, 1).unwrap();
        {
            let mut cb = CompiledBus {
                sched: &mut sched,
                bus: sim.bus(),
                driver: DRIVER_POKE,
                telemetry: false,
            };
            cb.drive(id, z).unwrap();
            // Second drive of the same settle resolves: Z resolves to
            // the driven value instead of replacing it.
            cb.drive(id, one).unwrap();
        }
        assert_eq!(sched.arena.get(0), one);
        // A fresh settle replaces again.
        sched.begin_settle();
        let mut cb = CompiledBus {
            sched: &mut sched,
            bus: sim.bus(),
            driver: DRIVER_POKE,
            telemetry: false,
        };
        cb.drive(id, z).unwrap();
        assert_eq!(cb.sched.arena.get(0), z);
    }
}
