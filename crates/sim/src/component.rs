//! The [`Component`] trait implemented by every simulated hardware model.

use crate::signal::{BusAccess, BusReader, DriveLog, SplitBus};
use crate::{SignalBus, SignalId, SimError};

/// The name of the implicit default clock domain, period 1.
pub const DEFAULT_CLOCK: &str = "clk";

/// A named clock with an integer period in simulator base steps.
///
/// The simulator advances in *base steps* (what [`crate::Simulator::step`]
/// has always counted); a domain with period `p` presents a rising edge
/// at every step `t` with `t % p == 0`, so all domains coincide at step
/// 0 and the interleaving of any set of domains is fully determined by
/// their integer periods — the deterministic stand-in for rational
/// frequency ratios. Components declare their domains via
/// [`Component::clock_domains`]; a design whose every domain has period
/// 1 behaves exactly like the historical single-clock simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClockDomain {
    /// The domain name; [`DEFAULT_CLOCK`] is the implicit default.
    pub name: String,
    /// The period in base steps (>= 1).
    pub period: u64,
}

impl ClockDomain {
    /// Creates a domain.
    #[must_use]
    pub fn new(name: impl Into<String>, period: u64) -> Self {
        Self {
            name: name.into(),
            period,
        }
    }

    /// The implicit default domain: `clk`, period 1.
    #[must_use]
    pub fn default_clock() -> Self {
        Self::new(DEFAULT_CLOCK, 1)
    }

    /// Whether this domain presents a rising edge at base step `t`.
    #[must_use]
    pub fn fires_at(&self, t: u64) -> bool {
        t.is_multiple_of(self.period.max(1))
    }
}

/// What wakes a component's [`Component::eval`] during settling.
///
/// The event-driven scheduler evaluates a component only when a signal
/// it is sensitive to changed in the previous delta pass (plus once
/// after every clock edge for clocked components, and once after
/// reset). [`Sensitivity::Always`] opts out of that filtering and
/// restores full-sweep behaviour for one component — the safe default
/// for implementations that predate the sensitivity API.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Sensitivity {
    /// Evaluate in every settle pass (full-sweep semantics).
    Always,
    /// Evaluate only when one of these signals changes. An empty list
    /// is valid and means `eval` depends on registered state alone:
    /// the component is still evaluated after clock edges and reset,
    /// where that state changes.
    Signals(Vec<SignalId>),
}

/// A clocked hardware component.
///
/// The simulator drives components in two phases per clock cycle:
///
/// 1. **Settle** — [`Component::eval`] is called repeatedly (delta
///    cycles) until no signal changes. `eval` must be a pure function
///    of the current signal values and the component's *registered*
///    state: read inputs, drive outputs, never update state.
/// 2. **Clock edge** — [`Component::tick`] is called exactly once with
///    the settled signal values. `tick` samples inputs and updates
///    internal state; outputs become visible in the next cycle's
///    settle phase.
///
/// This split gives well-defined synchronous semantics: every
/// component observes the same settled pre-edge values, exactly like
/// flip-flops sharing one clock.
///
/// ## Scheduling contract
///
/// Under the event-driven scheduler (the default,
/// [`crate::SchedMode::EventDriven`]) two further declarations matter:
///
/// * [`Component::sensitivity`] names the signals whose changes require
///   re-evaluation. Every signal `eval` *reads* must be listed —
///   listing extra signals merely costs spurious wake-ups, omitting a
///   read signal produces stale outputs. The default is
///   [`Sensitivity::Always`], which is always correct.
/// * [`Component::is_clocked`] splits sequential from combinational
///   components: a component returning `false` promises its `tick` is
///   a no-op and its `eval` output never depends on clock edges, so
///   the scheduler may skip both.
pub trait Component {
    /// The instance name, used in error reports, telemetry
    /// ([`crate::SimStats`] component tables, Chrome trace spans,
    /// non-convergence forensics) and waveform traces.
    ///
    /// Names should be stable for the component's lifetime and unique
    /// within a simulation — telemetry aggregates by instance, so two
    /// components sharing a name become indistinguishable in reports.
    fn name(&self) -> &str;

    /// Combinational settle: drive outputs from inputs and registered
    /// state. Called one or more times per cycle; must be idempotent
    /// for fixed inputs.
    ///
    /// The bus is handed out as [`BusAccess`] so the same
    /// implementation serves both the sequential schedulers (which
    /// pass the exclusive [`SignalBus`]) and the parallel workers
    /// (which pass a snapshot/log [`SplitBus`]).
    ///
    /// # Errors
    ///
    /// Implementations report wiring mistakes and protocol violations
    /// as [`SimError`].
    fn eval(&mut self, bus: &mut dyn BusAccess) -> Result<(), SimError>;

    /// Parallel-mode settle: read from the pass snapshot, append
    /// drives to the worker's log. The scheduler commits logs in
    /// registration order, so the observable effect is identical to
    /// [`Component::eval`] under the sequential event scheduler.
    ///
    /// The default wraps `eval` in a [`SplitBus`]; override only to
    /// exploit the split borrow directly (no component in this repo
    /// needs to).
    ///
    /// # Errors
    ///
    /// As [`Component::eval`].
    fn eval_split(&mut self, reader: &BusReader<'_>, log: &mut DriveLog) -> Result<(), SimError> {
        let mut split = SplitBus::new(reader, log);
        self.eval(&mut split)
    }

    /// Clock edge: sample settled inputs and update registered state.
    ///
    /// # Errors
    ///
    /// Implementations report protocol violations (overflow, underrun,
    /// handshake misuse) as [`SimError`].
    fn tick(&mut self, bus: &mut SignalBus) -> Result<(), SimError>;

    /// The clock domains this component's state belongs to. The
    /// default — the single [`ClockDomain::default_clock`] — keeps
    /// every pre-existing component on the historical implicit clock.
    ///
    /// Domains are merged by name across the whole simulation (see
    /// [`crate::Simulator::clock_domains`]); two components naming the
    /// same domain with different periods is a wiring error. Must be
    /// stable for the component's lifetime; the scheduler caches it.
    fn clock_domains(&self) -> Vec<ClockDomain> {
        vec![ClockDomain::default_clock()]
    }

    /// Clock edge restricted to the domains named in `firing` — the
    /// multi-domain generalisation of [`Component::tick`].
    ///
    /// The default forwards to `tick` when the default clock fires and
    /// does nothing otherwise, which is exactly right for any
    /// component that left [`Component::clock_domains`] at its default.
    /// Multi-domain components must override both: on a step where only
    /// a subset of their domains fire, only state in those domains may
    /// advance. The scheduler calls plain `tick` whenever *all* domains
    /// fire, so single-rate simulations never take this path.
    ///
    /// # Errors
    ///
    /// As [`Component::tick`].
    fn tick_domains(&mut self, bus: &mut SignalBus, firing: &[&str]) -> Result<(), SimError> {
        if firing.contains(&DEFAULT_CLOCK) {
            self.tick(bus)
        } else {
            Ok(())
        }
    }

    /// Synchronous reset: restore power-on state. The default does
    /// nothing, which suits purely combinational components.
    ///
    /// # Errors
    ///
    /// Implementations may report wiring mistakes as [`SimError`].
    fn reset(&mut self, bus: &mut SignalBus) -> Result<(), SimError> {
        let _ = bus;
        Ok(())
    }

    /// The signals whose changes require re-evaluating this component
    /// (see the trait-level scheduling contract). Must be stable for
    /// the lifetime of the component; the scheduler caches it.
    fn sensitivity(&self) -> Sensitivity {
        Sensitivity::Always
    }

    /// Whether this component has clock-edge behaviour. Return `false`
    /// only if [`Component::tick`] is a no-op.
    fn is_clocked(&self) -> bool {
        true
    }

    /// The signals [`Component::eval`] may drive, when statically
    /// known. The compiled scheduler
    /// ([`crate::SchedMode::Compiled`]) unions this declaration with
    /// the drives observed during its validation settle to complete
    /// the write side of its dependency graph before a conditional
    /// drive has ever fired; the other schedulers ignore it.
    ///
    /// The default, `None`, means "discover at runtime" and is always
    /// safe: a drive on a signal the scheduler had not attributed to
    /// this component merely invalidates the compiled schedule for
    /// one settle. Declaring a superset of the real drive set is also
    /// safe (it only adds dependency edges); omitting a driven signal
    /// from a `Some` list is not an error but forfeits the guarantee
    /// the declaration exists to provide. Like
    /// [`Component::sensitivity`], the list must be stable for the
    /// component's lifetime.
    fn drives(&self) -> Option<Vec<SignalId>> {
        None
    }
}

impl<T: Component + ?Sized> Component for Box<T> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn eval(&mut self, bus: &mut dyn BusAccess) -> Result<(), SimError> {
        (**self).eval(bus)
    }

    fn eval_split(&mut self, reader: &BusReader<'_>, log: &mut DriveLog) -> Result<(), SimError> {
        (**self).eval_split(reader, log)
    }

    fn tick(&mut self, bus: &mut SignalBus) -> Result<(), SimError> {
        (**self).tick(bus)
    }

    fn clock_domains(&self) -> Vec<ClockDomain> {
        (**self).clock_domains()
    }

    fn tick_domains(&mut self, bus: &mut SignalBus, firing: &[&str]) -> Result<(), SimError> {
        (**self).tick_domains(bus, firing)
    }

    fn reset(&mut self, bus: &mut SignalBus) -> Result<(), SimError> {
        (**self).reset(bus)
    }

    fn sensitivity(&self) -> Sensitivity {
        (**self).sensitivity()
    }

    fn is_clocked(&self) -> bool {
        (**self).is_clocked()
    }

    fn drives(&self) -> Option<Vec<SignalId>> {
        (**self).drives()
    }
}
