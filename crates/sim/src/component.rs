//! The [`Component`] trait implemented by every simulated hardware model.

use crate::{SignalBus, SimError};

/// A clocked hardware component.
///
/// The simulator drives components in two phases per clock cycle:
///
/// 1. **Settle** — [`Component::eval`] is called repeatedly (delta
///    cycles) until no signal changes. `eval` must be a pure function
///    of the current signal values and the component's *registered*
///    state: read inputs, drive outputs, never update state.
/// 2. **Clock edge** — [`Component::tick`] is called exactly once with
///    the settled signal values. `tick` samples inputs and updates
///    internal state; outputs become visible in the next cycle's
///    settle phase.
///
/// This split gives well-defined synchronous semantics: every
/// component observes the same settled pre-edge values, exactly like
/// flip-flops sharing one clock.
pub trait Component {
    /// The instance name, used in error reports and traces.
    fn name(&self) -> &str;

    /// Combinational settle: drive outputs from inputs and registered
    /// state. Called one or more times per cycle; must be idempotent
    /// for fixed inputs.
    ///
    /// # Errors
    ///
    /// Implementations report wiring mistakes and protocol violations
    /// as [`SimError`].
    fn eval(&mut self, bus: &mut SignalBus) -> Result<(), SimError>;

    /// Clock edge: sample settled inputs and update registered state.
    ///
    /// # Errors
    ///
    /// Implementations report protocol violations (overflow, underrun,
    /// handshake misuse) as [`SimError`].
    fn tick(&mut self, bus: &mut SignalBus) -> Result<(), SimError>;

    /// Synchronous reset: restore power-on state. The default does
    /// nothing, which suits purely combinational components.
    ///
    /// # Errors
    ///
    /// Implementations may report wiring mistakes as [`SimError`].
    fn reset(&mut self, bus: &mut SignalBus) -> Result<(), SimError> {
        let _ = bus;
        Ok(())
    }
}

impl<T: Component + ?Sized> Component for Box<T> {
    fn name(&self) -> &str {
        (**self).name()
    }

    fn eval(&mut self, bus: &mut SignalBus) -> Result<(), SimError> {
        (**self).eval(bus)
    }

    fn tick(&mut self, bus: &mut SignalBus) -> Result<(), SimError> {
        (**self).tick(bus)
    }

    fn reset(&mut self, bus: &mut SignalBus) -> Result<(), SimError> {
        (**self).reset(bus)
    }
}
