//! Video stream source and sink (SAA7113 decoder / VGA coder models).

use crate::{BusAccess, Component, SignalBus, SignalId, SimError};
use hdp_hdl::LogicVector;

/// A pixel-stream source standing in for the SAA7113 video decoder of
/// the paper's Figure 1 pipeline.
///
/// Emits the pixels of a frame in row-major order, one pixel every
/// `1 + gap` cycles (`gap` models horizontal blanking). Ports: `valid`
/// and `data` out. There is **no backpressure** — like the real
/// decoder, pixels arrive whether or not the design is ready, which is
/// exactly why the paper's model interposes an input buffer container.
#[derive(Debug)]
pub struct VideoIn {
    name: String,
    data_width: usize,
    frame: Vec<u64>,
    gap: u32,
    repeat: bool,
    valid: SignalId,
    data: SignalId,
    index: usize,
    countdown: u32,
    frames_sent: u64,
    exhausted: bool,
}

impl VideoIn {
    /// Creates a source that streams `frame` (row-major pixels of
    /// `data_width` bits), pausing `gap` cycles between pixels.
    /// With `repeat`, the frame restarts indefinitely.
    ///
    /// # Panics
    ///
    /// Panics if `frame` is empty.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        frame: Vec<u64>,
        data_width: usize,
        gap: u32,
        repeat: bool,
        valid: SignalId,
        data: SignalId,
    ) -> Self {
        assert!(!frame.is_empty(), "frame must contain pixels");
        Self {
            name: name.into(),
            data_width,
            frame,
            gap,
            repeat,
            valid,
            data,
            index: 0,
            countdown: 0,
            frames_sent: 0,
            exhausted: false,
        }
    }

    /// Number of complete frames streamed since reset.
    #[must_use]
    pub fn frames_sent(&self) -> u64 {
        self.frames_sent
    }

    /// True once a non-repeating source has streamed its frame.
    #[must_use]
    pub fn is_exhausted(&self) -> bool {
        self.exhausted
    }

    fn emitting(&self) -> bool {
        !self.exhausted && self.countdown == 0
    }
}

impl Component for VideoIn {
    fn name(&self) -> &str {
        &self.name
    }

    fn eval(&mut self, bus: &mut dyn BusAccess) -> Result<(), SimError> {
        if self.emitting() {
            bus.drive_u64(self.valid, 1)?;
            bus.drive_u64(self.data, self.frame[self.index])?;
        } else {
            bus.drive_u64(self.valid, 0)?;
            bus.drive(
                self.data,
                LogicVector::unknown(self.data_width).map_err(SimError::from)?,
            )?;
        }
        Ok(())
    }

    fn tick(&mut self, _bus: &mut SignalBus) -> Result<(), SimError> {
        if self.exhausted {
            return Ok(());
        }
        if self.countdown > 0 {
            self.countdown -= 1;
            return Ok(());
        }
        // The pixel currently presented has been consumed this edge.
        self.index += 1;
        self.countdown = self.gap;
        if self.index >= self.frame.len() {
            self.frames_sent += 1;
            self.index = 0;
            if !self.repeat {
                self.exhausted = true;
            }
        }
        Ok(())
    }

    fn reset(&mut self, _bus: &mut SignalBus) -> Result<(), SimError> {
        self.index = 0;
        self.countdown = 0;
        self.frames_sent = 0;
        self.exhausted = false;
        Ok(())
    }

    fn sensitivity(&self) -> crate::Sensitivity {
        // A free-running source: eval drives purely from stream state.
        crate::Sensitivity::Signals(vec![])
    }

    fn drives(&self) -> Option<Vec<SignalId>> {
        Some(vec![self.valid, self.data])
    }
}

/// A pixel-stream sink standing in for the VGA coder of Figure 1.
///
/// Ports: `valid` and `data` in. Samples a pixel whenever `valid` is
/// high on a clock edge and assembles frames of `frame_len` pixels.
/// With a `max_gap`, the sink also enforces the real-time discipline a
/// VGA DAC imposes: once a frame has started, more than `max_gap`
/// cycles without a pixel is an underrun ([`SimError::Protocol`]).
#[derive(Debug)]
pub struct VideoOut {
    name: String,
    frame_len: usize,
    max_gap: Option<u64>,
    valid: SignalId,
    data: SignalId,
    current: Vec<u64>,
    frames: Vec<Vec<u64>>,
    idle_cycles: u64,
}

impl VideoOut {
    /// Creates a sink collecting frames of `frame_len` pixels; with
    /// `max_gap`, gaps longer than that many cycles mid-frame are
    /// underruns.
    ///
    /// # Panics
    ///
    /// Panics if `frame_len` is zero.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        frame_len: usize,
        max_gap: Option<u64>,
        valid: SignalId,
        data: SignalId,
    ) -> Self {
        assert!(frame_len > 0, "frame length must be positive");
        Self {
            name: name.into(),
            frame_len,
            max_gap,
            valid,
            data,
            current: Vec::new(),
            frames: Vec::new(),
            idle_cycles: 0,
        }
    }

    /// The completed frames received since reset.
    #[must_use]
    pub fn frames(&self) -> &[Vec<u64>] {
        &self.frames
    }

    /// Pixels of the frame currently being assembled.
    #[must_use]
    pub fn partial(&self) -> &[u64] {
        &self.current
    }
}

impl Component for VideoOut {
    fn name(&self) -> &str {
        &self.name
    }

    fn eval(&mut self, _bus: &mut dyn BusAccess) -> Result<(), SimError> {
        Ok(())
    }

    fn tick(&mut self, bus: &mut SignalBus) -> Result<(), SimError> {
        let valid = bus.read(self.valid)?.to_u64() == Some(1);
        if valid {
            self.idle_cycles = 0;
            let v = bus.read_u64(self.data, &self.name)?;
            self.current.push(v);
            if self.current.len() == self.frame_len {
                self.frames.push(std::mem::take(&mut self.current));
            }
        } else if !self.current.is_empty() {
            self.idle_cycles += 1;
            if let Some(max) = self.max_gap {
                if self.idle_cycles > max {
                    return Err(SimError::Protocol {
                        component: self.name.clone(),
                        message: format!(
                            "underrun: {} idle cycles mid-frame (limit {max})",
                            self.idle_cycles
                        ),
                    });
                }
            }
        }
        Ok(())
    }

    fn reset(&mut self, _bus: &mut SignalBus) -> Result<(), SimError> {
        self.current.clear();
        self.frames.clear();
        self.idle_cycles = 0;
        Ok(())
    }

    fn sensitivity(&self) -> crate::Sensitivity {
        // A pure sink: eval drives nothing at all.
        crate::Sensitivity::Signals(vec![])
    }

    fn drives(&self) -> Option<Vec<SignalId>> {
        Some(Vec::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Simulator;

    #[test]
    fn source_streams_frame_in_order() {
        let mut sim = Simulator::new();
        let valid = sim.add_signal("valid", 1).unwrap();
        let data = sim.add_signal("data", 8).unwrap();
        let frame = vec![1u64, 2, 3, 4];
        let src = sim.add_component(VideoIn::new("src", frame.clone(), 8, 0, false, valid, data));
        let sink = sim.add_component(VideoOut::new("sink", 4, None, valid, data));
        sim.reset().unwrap();
        sim.run(6).unwrap();
        let src_ref = sim.component::<VideoIn>(src).unwrap();
        assert_eq!(src_ref.frames_sent(), 1);
        assert!(src_ref.is_exhausted());
        let sink_ref = sim.component::<VideoOut>(sink).unwrap();
        assert_eq!(sink_ref.frames(), std::slice::from_ref(&frame));
        sim.settle().unwrap();
        assert_eq!(sim.peek(valid).unwrap().to_u64(), Some(0));
    }

    #[test]
    fn gap_inserts_blanking() {
        let mut sim = Simulator::new();
        let valid = sim.add_signal("valid", 1).unwrap();
        let data = sim.add_signal("data", 8).unwrap();
        sim.add_component(VideoIn::new("src", vec![7, 8], 8, 2, false, valid, data));
        sim.reset().unwrap();
        let mut pattern = Vec::new();
        for _ in 0..6 {
            pattern.push(sim.peek(valid).unwrap().to_u64().unwrap());
            sim.step().unwrap();
        }
        assert_eq!(pattern, vec![1, 0, 0, 1, 0, 0]);
    }

    #[test]
    fn repeat_wraps_around() {
        let mut sim = Simulator::new();
        let valid = sim.add_signal("valid", 1).unwrap();
        let data = sim.add_signal("data", 8).unwrap();
        sim.add_component(VideoIn::new("src", vec![5, 6], 8, 0, true, valid, data));
        sim.reset().unwrap();
        let mut seen = Vec::new();
        for _ in 0..5 {
            seen.push(sim.peek(data).unwrap().to_u64().unwrap());
            sim.step().unwrap();
        }
        assert_eq!(seen, vec![5, 6, 5, 6, 5]);
    }

    #[test]
    fn sink_collects_frames_and_detects_underrun() {
        let mut sim = Simulator::new();
        let valid = sim.add_signal("valid", 1).unwrap();
        let data = sim.add_signal("data", 8).unwrap();
        sim.add_component(VideoOut::new("sink", 2, Some(1), valid, data));
        sim.poke(valid, 1).unwrap();
        sim.poke(data, 9).unwrap();
        sim.reset().unwrap();
        sim.step().unwrap(); // pixel 1
        sim.poke(valid, 0).unwrap();
        sim.step().unwrap(); // one idle cycle, within limit
        let err = sim.step().unwrap_err(); // second idle cycle: underrun
        assert!(matches!(err, SimError::Protocol { .. }));
    }

    #[test]
    fn sink_frame_boundaries() {
        let mut sim = Simulator::new();
        let valid = sim.add_signal("valid", 1).unwrap();
        let data = sim.add_signal("data", 8).unwrap();
        sim.add_component(VideoIn::new(
            "src",
            vec![1, 2, 3, 4, 5, 6],
            8,
            0,
            false,
            valid,
            data,
        ));
        let sink = sim.add_component(VideoOut::new("sink", 3, None, valid, data));
        sim.reset().unwrap();
        sim.run(8).unwrap();
        let sink_ref = sim.component::<VideoOut>(sink).unwrap();
        assert_eq!(sink_ref.frames(), &[vec![1, 2, 3], vec![4, 5, 6]]);
        assert!(sink_ref.partial().is_empty());
    }

    #[test]
    fn component_downcast_to_wrong_type_is_none() {
        let mut sim = Simulator::new();
        let valid = sim.add_signal("valid", 1).unwrap();
        let data = sim.add_signal("data", 8).unwrap();
        let id = sim.add_component(VideoOut::new("sink", 3, None, valid, data));
        assert!(sim.component::<VideoIn>(id).is_none());
        assert!(sim.component::<VideoOut>(id).is_some());
    }
}
