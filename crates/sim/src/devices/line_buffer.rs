//! The 3-line video buffer of the blur example.

use crate::{BusAccess, Component, SignalBus, SignalId, SimError};
use hdp_hdl::LogicVector;
use std::collections::VecDeque;

/// A 3-line pixel buffer that "provides 3 pixels in a column for each
/// access" (§4) — the special FIFO the paper maps the blur example's
/// `rbuffer` container onto, so that "ideally a new filtered pixel can
/// be generated at each clock cycle".
///
/// Write side: `push`/`wdata`, a row-major pixel stream of lines of
/// `line_width` pixels. Read side: when `avail` is high, `top`, `mid`
/// and `bot` present the three vertically adjacent pixels of the
/// current column; `pop` advances to the next column.
///
/// A column at absolute index *c* (row `c / line_width`, x
/// `c % line_width`) is available once the pixel two lines below it
/// has arrived. The device retains a window of `2 * line_width + 1`
/// pixels; pushing beyond the window without popping overflows.
#[derive(Debug)]
pub struct LineBuffer3 {
    name: String,
    line_width: usize,
    data_width: usize,
    push: SignalId,
    wdata: SignalId,
    pop: SignalId,
    avail: SignalId,
    top: SignalId,
    mid: SignalId,
    bot: SignalId,
    full: SignalId,
    window: VecDeque<u64>,
    pushed: u64,
    popped: u64,
}

impl LineBuffer3 {
    /// Creates a 3-line buffer for lines of `line_width` pixels of
    /// `data_width` bits.
    ///
    /// # Panics
    ///
    /// Panics if `line_width` is zero.
    #[allow(clippy::too_many_arguments)]
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        line_width: usize,
        data_width: usize,
        push: SignalId,
        wdata: SignalId,
        pop: SignalId,
        avail: SignalId,
        top: SignalId,
        mid: SignalId,
        bot: SignalId,
        full: SignalId,
    ) -> Self {
        assert!(line_width > 0, "line width must be positive");
        Self {
            name: name.into(),
            line_width,
            data_width,
            push,
            wdata,
            pop,
            avail,
            top,
            mid,
            bot,
            full,
            window: VecDeque::new(),
            pushed: 0,
            popped: 0,
        }
    }

    fn capacity(&self) -> usize {
        2 * self.line_width + 1
    }

    fn column_ready(&self) -> bool {
        self.pushed > self.popped + 2 * self.line_width as u64
    }

    fn column(&self) -> Option<(u64, u64, u64)> {
        if !self.column_ready() {
            return None;
        }
        let w = self.line_width;
        Some((self.window[0], self.window[w], self.window[2 * w]))
    }
}

impl Component for LineBuffer3 {
    fn name(&self) -> &str {
        &self.name
    }

    fn eval(&mut self, bus: &mut dyn BusAccess) -> Result<(), SimError> {
        bus.drive_u64(self.avail, u64::from(self.column_ready()))?;
        bus.drive_u64(self.full, u64::from(self.window.len() >= self.capacity()))?;
        match self.column() {
            Some((t, m, b)) => {
                bus.drive_u64(self.top, t)?;
                bus.drive_u64(self.mid, m)?;
                bus.drive_u64(self.bot, b)?;
            }
            None => {
                let x = LogicVector::unknown(self.data_width).map_err(SimError::from)?;
                bus.drive(self.top, x)?;
                bus.drive(self.mid, x)?;
                bus.drive(self.bot, x)?;
            }
        }
        Ok(())
    }

    fn tick(&mut self, bus: &mut SignalBus) -> Result<(), SimError> {
        let push = bus.read(self.push)?.to_u64() == Some(1);
        let pop = bus.read(self.pop)?.to_u64() == Some(1);
        if pop {
            if !self.column_ready() {
                return Err(SimError::Protocol {
                    component: self.name.clone(),
                    message: "pop with no column available".into(),
                });
            }
            self.window.pop_front();
            self.popped += 1;
        }
        if push {
            if self.window.len() >= self.capacity() {
                return Err(SimError::Protocol {
                    component: self.name.clone(),
                    message: "push on full line buffer".into(),
                });
            }
            let v = bus.read_u64(self.wdata, &self.name)?;
            self.window.push_back(v);
            self.pushed += 1;
        }
        Ok(())
    }

    fn reset(&mut self, _bus: &mut SignalBus) -> Result<(), SimError> {
        self.window.clear();
        self.pushed = 0;
        self.popped = 0;
        Ok(())
    }

    fn sensitivity(&self) -> crate::Sensitivity {
        // eval drives purely from window state; push/pop/wdata are
        // sampled at the clock edge.
        crate::Sensitivity::Signals(vec![])
    }

    fn drives(&self) -> Option<Vec<SignalId>> {
        Some(vec![self.avail, self.top, self.mid, self.bot, self.full])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Simulator;

    struct Rig {
        sim: Simulator,
        push: SignalId,
        wdata: SignalId,
        pop: SignalId,
        avail: SignalId,
        top: SignalId,
        mid: SignalId,
        bot: SignalId,
    }

    fn rig(line_width: usize) -> Rig {
        let mut sim = Simulator::new();
        let push = sim.add_signal("push", 1).unwrap();
        let wdata = sim.add_signal("wdata", 8).unwrap();
        let pop = sim.add_signal("pop", 1).unwrap();
        let avail = sim.add_signal("avail", 1).unwrap();
        let top = sim.add_signal("top", 8).unwrap();
        let mid = sim.add_signal("mid", 8).unwrap();
        let bot = sim.add_signal("bot", 8).unwrap();
        let full = sim.add_signal("full", 1).unwrap();
        sim.add_component(LineBuffer3::new(
            "dut", line_width, 8, push, wdata, pop, avail, top, mid, bot, full,
        ));
        sim.poke(push, 0).unwrap();
        sim.poke(pop, 0).unwrap();
        sim.poke(wdata, 0).unwrap();
        sim.reset().unwrap();
        Rig {
            sim,
            push,
            wdata,
            pop,
            avail,
            top,
            mid,
            bot,
        }
    }

    fn push(r: &mut Rig, v: u64) {
        r.sim.poke(r.push, 1).unwrap();
        r.sim.poke(r.wdata, v).unwrap();
        r.sim.step().unwrap();
        r.sim.poke(r.push, 0).unwrap();
    }

    /// Pixel value for (row, x) in the tests: 10*row + x.
    fn px(row: u64, x: u64) -> u64 {
        10 * row + x
    }

    #[test]
    fn column_becomes_available_after_two_lines_plus_one() {
        let w = 4;
        let mut r = rig(w);
        // The window holds 2w+1 pixels; the first column is ready
        // exactly when pixel (row 2, x 0) — the (2w+1)-th — arrives.
        for i in 0..(2 * w as u64 + 1) {
            assert_eq!(
                r.sim.peek(r.avail).unwrap().to_u64(),
                Some(0),
                "not available before pixel {i}"
            );
            push(&mut r, px(i / w as u64, i % w as u64));
        }
        r.sim.settle().unwrap();
        assert_eq!(r.sim.peek(r.avail).unwrap().to_u64(), Some(1));
        assert_eq!(r.sim.peek(r.top).unwrap().to_u64(), Some(px(0, 0)));
        assert_eq!(r.sim.peek(r.mid).unwrap().to_u64(), Some(px(1, 0)));
        assert_eq!(r.sim.peek(r.bot).unwrap().to_u64(), Some(px(2, 0)));
    }

    #[test]
    fn pop_slides_the_column() {
        let w = 3;
        let mut r = rig(w);
        for i in 0..(2 * w as u64 + 1) {
            push(&mut r, px(i / w as u64, i % w as u64));
        }
        // Column 0 ready; pop it, then push the next pixel (row2 x1).
        r.sim.poke(r.pop, 1).unwrap();
        r.sim.step().unwrap();
        r.sim.poke(r.pop, 0).unwrap();
        push(&mut r, px(2, 1));
        r.sim.settle().unwrap();
        assert_eq!(r.sim.peek(r.avail).unwrap().to_u64(), Some(1));
        assert_eq!(r.sim.peek(r.top).unwrap().to_u64(), Some(px(0, 1)));
        assert_eq!(r.sim.peek(r.mid).unwrap().to_u64(), Some(px(1, 1)));
        assert_eq!(r.sim.peek(r.bot).unwrap().to_u64(), Some(px(2, 1)));
    }

    #[test]
    fn pop_without_column_is_error() {
        let mut r = rig(4);
        r.sim.poke(r.pop, 1).unwrap();
        assert!(matches!(
            r.sim.step().unwrap_err(),
            SimError::Protocol { .. }
        ));
    }

    #[test]
    fn overflow_is_error() {
        let w = 2;
        let mut r = rig(w);
        for i in 0..(2 * w + 1) as u64 {
            push(&mut r, i);
        }
        r.sim.poke(r.push, 1).unwrap();
        r.sim.poke(r.wdata, 99).unwrap();
        assert!(matches!(
            r.sim.step().unwrap_err(),
            SimError::Protocol { .. }
        ));
    }

    #[test]
    fn window_wraps_into_the_next_row_after_a_full_line_of_pops() {
        let w = 3;
        let mut r = rig(w);
        for i in 0..(2 * w as u64 + 1) {
            push(&mut r, px(i / w as u64, i % w as u64));
        }
        // Pop an entire line of columns, pushing one new pixel for
        // each, so the head of the window crosses the row-0/row-1
        // boundary.
        for v in [px(2, 1), px(2, 2), px(3, 0)] {
            r.sim.poke(r.pop, 1).unwrap();
            r.sim.step().unwrap();
            r.sim.poke(r.pop, 0).unwrap();
            push(&mut r, v);
        }
        r.sim.settle().unwrap();
        assert_eq!(r.sim.peek(r.avail).unwrap().to_u64(), Some(1));
        // The column presented is now one row down: (1,0)/(2,0)/(3,0).
        assert_eq!(r.sim.peek(r.top).unwrap().to_u64(), Some(px(1, 0)));
        assert_eq!(r.sim.peek(r.mid).unwrap().to_u64(), Some(px(2, 0)));
        assert_eq!(r.sim.peek(r.bot).unwrap().to_u64(), Some(px(3, 0)));
    }

    #[test]
    fn simultaneous_push_pop_streams() {
        let w = 2;
        let mut r = rig(w);
        for i in 0..(2 * w + 1) as u64 {
            push(&mut r, i);
        }
        // Steady state: push and pop together each cycle.
        r.sim.settle().unwrap();
        assert_eq!(r.sim.peek(r.avail).unwrap().to_u64(), Some(1));
        r.sim.poke(r.push, 1).unwrap();
        r.sim.poke(r.pop, 1).unwrap();
        r.sim.poke(r.wdata, 5).unwrap();
        r.sim.step().unwrap();
        r.sim.poke(r.push, 0).unwrap();
        r.sim.poke(r.pop, 0).unwrap();
        r.sim.settle().unwrap();
        assert_eq!(r.sim.peek(r.avail).unwrap().to_u64(), Some(1));
        assert_eq!(r.sim.peek(r.top).unwrap().to_u64(), Some(1));
    }
}
