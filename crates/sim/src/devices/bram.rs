//! Synchronous-read block RAM (Block SelectRAM model).

use crate::{BusAccess, Component, SignalBus, SignalId, SimError};
use hdp_hdl::LogicVector;

/// A dual-port synchronous block RAM: one write port, one read port,
/// read data registered (valid one cycle after the address), modelling
/// the Spartan-IIE Block SelectRAM that backs the paper's on-chip
/// containers.
///
/// Ports: `we`, `waddr`, `wdata`, `raddr` in; `rdata` out.
/// Write-before-read on an address collision, matching the
/// `WRITE_FIRST` mode of the silicon.
#[derive(Debug)]
pub struct Bram {
    name: String,
    addr_width: usize,
    data_width: usize,
    we: SignalId,
    waddr: SignalId,
    wdata: SignalId,
    raddr: SignalId,
    rdata: SignalId,
    mem: Vec<Option<u64>>,
    out: Option<u64>,
}

impl Bram {
    /// Creates a block RAM of `2^addr_width` words of `data_width` bits.
    #[allow(clippy::too_many_arguments)]
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        addr_width: usize,
        data_width: usize,
        we: SignalId,
        waddr: SignalId,
        wdata: SignalId,
        raddr: SignalId,
        rdata: SignalId,
    ) -> Self {
        Self {
            name: name.into(),
            addr_width,
            data_width,
            we,
            waddr,
            wdata,
            raddr,
            rdata,
            mem: vec![None; 1 << addr_width],
            out: None,
        }
    }

    /// Direct backdoor read, for testbench checking.
    #[must_use]
    pub fn word(&self, addr: usize) -> Option<u64> {
        self.mem.get(addr).copied().flatten()
    }

    /// Direct backdoor write, for testbench preloading.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Protocol`] if `addr` is out of range.
    pub fn preload(&mut self, addr: usize, value: u64) -> Result<(), SimError> {
        let len = self.mem.len();
        match self.mem.get_mut(addr) {
            Some(slot) => {
                *slot = Some(value);
                Ok(())
            }
            None => Err(SimError::Protocol {
                component: self.name.clone(),
                message: format!("preload address {addr} out of range (depth {len})"),
            }),
        }
    }

    /// The address width in bits.
    #[must_use]
    pub fn addr_width(&self) -> usize {
        self.addr_width
    }
}

impl Component for Bram {
    fn name(&self) -> &str {
        &self.name
    }

    fn eval(&mut self, bus: &mut dyn BusAccess) -> Result<(), SimError> {
        match self.out {
            Some(v) => bus.drive_u64(self.rdata, v)?,
            None => bus.drive(
                self.rdata,
                LogicVector::unknown(self.data_width).map_err(SimError::from)?,
            )?,
        }
        Ok(())
    }

    fn tick(&mut self, bus: &mut SignalBus) -> Result<(), SimError> {
        let we = bus.read(self.we)?.to_u64() == Some(1);
        if we {
            let addr = bus.read_u64(self.waddr, &self.name)? as usize;
            let data = bus.read_u64(self.wdata, &self.name)?;
            self.mem[addr] = Some(data);
        }
        // Registered read; write-first on collision because the write
        // above already landed.
        if let Some(addr) = bus.read(self.raddr)?.to_u64() {
            self.out = self.mem[addr as usize];
        } else {
            self.out = None;
        }
        Ok(())
    }

    fn reset(&mut self, _bus: &mut SignalBus) -> Result<(), SimError> {
        self.out = None;
        // Contents survive reset, as in real block RAM.
        Ok(())
    }

    fn sensitivity(&self) -> crate::Sensitivity {
        // eval drives the registered read output only; the address and
        // write ports are sampled at the clock edge.
        crate::Sensitivity::Signals(vec![])
    }

    fn drives(&self) -> Option<Vec<SignalId>> {
        Some(vec![self.rdata])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Simulator;

    struct Rig {
        sim: Simulator,
        we: SignalId,
        waddr: SignalId,
        wdata: SignalId,
        raddr: SignalId,
        rdata: SignalId,
    }

    fn rig() -> Rig {
        let mut sim = Simulator::new();
        let we = sim.add_signal("we", 1).unwrap();
        let waddr = sim.add_signal("waddr", 4).unwrap();
        let wdata = sim.add_signal("wdata", 8).unwrap();
        let raddr = sim.add_signal("raddr", 4).unwrap();
        let rdata = sim.add_signal("rdata", 8).unwrap();
        sim.add_component(Bram::new("dut", 4, 8, we, waddr, wdata, raddr, rdata));
        sim.poke(we, 0).unwrap();
        sim.poke(waddr, 0).unwrap();
        sim.poke(wdata, 0).unwrap();
        sim.poke(raddr, 0).unwrap();
        sim.reset().unwrap();
        Rig {
            sim,
            we,
            waddr,
            wdata,
            raddr,
            rdata,
        }
    }

    #[test]
    fn write_then_read_is_one_cycle_late() {
        let mut r = rig();
        r.sim.poke(r.we, 1).unwrap();
        r.sim.poke(r.waddr, 3).unwrap();
        r.sim.poke(r.wdata, 0x5A).unwrap();
        r.sim.step().unwrap();
        r.sim.poke(r.we, 0).unwrap();
        r.sim.poke(r.raddr, 3).unwrap();
        // Read data valid only after the next edge.
        r.sim.step().unwrap();
        assert_eq!(r.sim.peek(r.rdata).unwrap().to_u64(), Some(0x5A));
    }

    #[test]
    fn collision_is_write_first() {
        let mut r = rig();
        r.sim.poke(r.we, 1).unwrap();
        r.sim.poke(r.waddr, 7).unwrap();
        r.sim.poke(r.wdata, 0x11).unwrap();
        r.sim.poke(r.raddr, 7).unwrap();
        r.sim.step().unwrap();
        assert_eq!(r.sim.peek(r.rdata).unwrap().to_u64(), Some(0x11));
    }

    #[test]
    fn uninitialised_read_is_undefined() {
        let mut r = rig();
        r.sim.poke(r.raddr, 9).unwrap();
        r.sim.step().unwrap();
        assert_eq!(r.sim.peek(r.rdata).unwrap().to_u64(), None);
    }

    #[test]
    fn preload_and_word_backdoor() {
        let mut sim = Simulator::new();
        let we = sim.add_signal("we", 1).unwrap();
        let waddr = sim.add_signal("waddr", 4).unwrap();
        let wdata = sim.add_signal("wdata", 8).unwrap();
        let raddr = sim.add_signal("raddr", 4).unwrap();
        let rdata = sim.add_signal("rdata", 8).unwrap();
        let mut bram = Bram::new("dut", 4, 8, we, waddr, wdata, raddr, rdata);
        bram.preload(5, 99).unwrap();
        assert_eq!(bram.word(5), Some(99));
        assert_eq!(bram.word(6), None);
        assert!(bram.preload(16, 0).is_err());
        drop(sim);
    }
}
