//! First-word-fall-through FIFO core.

use crate::{BusAccess, Component, SignalBus, SignalId, SimError};
use std::collections::VecDeque;

/// A synchronous FIFO core with first-word fall-through, the on-chip
/// queue device of the paper ("queues ... can be implemented over FIFO
/// cores", §3.4).
///
/// Ports: `push`, `pop`, `wdata` in; `rdata`, `empty`, `full` out.
/// `rdata` shows the head element whenever the FIFO is non-empty;
/// `push` and `pop` are sampled on the clock edge and may be asserted
/// in the same cycle (simultaneous enqueue/dequeue).
///
/// Pushing when full or popping when empty is a [`SimError::Protocol`]
/// violation — the generated containers are expected to guard with
/// `empty`/`full`, exactly as the paper's FSMs sequence "the buffer
/// signals".
#[derive(Debug)]
pub struct FifoCore {
    name: String,
    depth: usize,
    width: usize,
    push: SignalId,
    pop: SignalId,
    wdata: SignalId,
    rdata: SignalId,
    empty: SignalId,
    full: SignalId,
    data: VecDeque<u64>,
}

impl FifoCore {
    /// Creates a FIFO core of `depth` elements of `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero (a zero-capacity core is a wiring bug,
    /// not a runtime condition).
    #[allow(clippy::too_many_arguments)]
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        depth: usize,
        width: usize,
        push: SignalId,
        pop: SignalId,
        wdata: SignalId,
        rdata: SignalId,
        empty: SignalId,
        full: SignalId,
    ) -> Self {
        assert!(depth > 0, "FIFO depth must be positive");
        Self {
            name: name.into(),
            depth,
            width,
            push,
            pop,
            wdata,
            rdata,
            empty,
            full,
            data: VecDeque::new(),
        }
    }

    /// Number of elements currently stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the FIFO holds no elements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The configured capacity.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.depth
    }

    fn strobe(&self, bus: &SignalBus, id: SignalId) -> Result<bool, SimError> {
        // Treat undefined control during reset ramp-up as deasserted.
        Ok(bus.read(id)?.to_u64() == Some(1))
    }
}

impl Component for FifoCore {
    fn name(&self) -> &str {
        &self.name
    }

    fn eval(&mut self, bus: &mut dyn BusAccess) -> Result<(), SimError> {
        bus.drive_u64(self.empty, u64::from(self.data.is_empty()))?;
        bus.drive_u64(self.full, u64::from(self.data.len() >= self.depth))?;
        match self.data.front() {
            Some(&head) => bus.drive_u64(self.rdata, head)?,
            None => bus.drive(
                self.rdata,
                hdp_hdl::LogicVector::unknown(self.width).map_err(SimError::from)?,
            )?,
        }
        Ok(())
    }

    fn tick(&mut self, bus: &mut SignalBus) -> Result<(), SimError> {
        let push = self.strobe(bus, self.push)?;
        let pop = self.strobe(bus, self.pop)?;
        if pop && self.data.pop_front().is_none() {
            return Err(SimError::Protocol {
                component: self.name.clone(),
                message: "pop on empty fifo".into(),
            });
        }
        if push {
            if self.data.len() >= self.depth {
                return Err(SimError::Protocol {
                    component: self.name.clone(),
                    message: "push on full fifo".into(),
                });
            }
            let v = bus.read_u64(self.wdata, &self.name)?;
            self.data.push_back(v);
        }
        Ok(())
    }

    fn reset(&mut self, _bus: &mut SignalBus) -> Result<(), SimError> {
        self.data.clear();
        Ok(())
    }

    fn sensitivity(&self) -> crate::Sensitivity {
        // eval drives purely from queue state; push/pop/wdata are only
        // sampled at the clock edge.
        crate::Sensitivity::Signals(vec![])
    }

    fn drives(&self) -> Option<Vec<SignalId>> {
        Some(vec![self.rdata, self.empty, self.full])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Simulator;

    struct Rig {
        sim: Simulator,
        push: SignalId,
        pop: SignalId,
        wdata: SignalId,
        rdata: SignalId,
        empty: SignalId,
        full: SignalId,
    }

    fn rig(depth: usize) -> Rig {
        let mut sim = Simulator::new();
        let push = sim.add_signal("push", 1).unwrap();
        let pop = sim.add_signal("pop", 1).unwrap();
        let wdata = sim.add_signal("wdata", 8).unwrap();
        let rdata = sim.add_signal("rdata", 8).unwrap();
        let empty = sim.add_signal("empty", 1).unwrap();
        let full = sim.add_signal("full", 1).unwrap();
        sim.add_component(FifoCore::new(
            "dut", depth, 8, push, pop, wdata, rdata, empty, full,
        ));
        sim.poke(push, 0).unwrap();
        sim.poke(pop, 0).unwrap();
        sim.poke(wdata, 0).unwrap();
        sim.reset().unwrap();
        Rig {
            sim,
            push,
            pop,
            wdata,
            rdata,
            empty,
            full,
        }
    }

    #[test]
    fn starts_empty() {
        let r = rig(4);
        assert_eq!(r.sim.peek(r.empty).unwrap().to_u64(), Some(1));
        assert_eq!(r.sim.peek(r.full).unwrap().to_u64(), Some(0));
    }

    #[test]
    fn fifo_order_is_preserved() {
        let mut r = rig(4);
        for v in [10u64, 20, 30] {
            r.sim.poke(r.push, 1).unwrap();
            r.sim.poke(r.wdata, v).unwrap();
            r.sim.step().unwrap();
        }
        r.sim.poke(r.push, 0).unwrap();
        r.sim.settle().unwrap();
        let mut seen = Vec::new();
        for _ in 0..3 {
            seen.push(r.sim.peek(r.rdata).unwrap().to_u64().unwrap());
            r.sim.poke(r.pop, 1).unwrap();
            r.sim.step().unwrap();
            r.sim.poke(r.pop, 0).unwrap();
        }
        assert_eq!(seen, vec![10, 20, 30]);
        assert_eq!(r.sim.peek(r.empty).unwrap().to_u64(), Some(1));
    }

    #[test]
    fn full_flag_rises_at_capacity() {
        let mut r = rig(2);
        r.sim.poke(r.push, 1).unwrap();
        r.sim.poke(r.wdata, 1).unwrap();
        r.sim.step().unwrap();
        assert_eq!(r.sim.peek(r.full).unwrap().to_u64(), Some(0));
        r.sim.step().unwrap();
        assert_eq!(r.sim.peek(r.full).unwrap().to_u64(), Some(1));
    }

    #[test]
    fn push_on_full_is_protocol_error() {
        let mut r = rig(1);
        r.sim.poke(r.push, 1).unwrap();
        r.sim.poke(r.wdata, 9).unwrap();
        r.sim.step().unwrap();
        let err = r.sim.step().unwrap_err();
        assert!(matches!(err, SimError::Protocol { .. }));
    }

    #[test]
    fn pop_on_empty_is_protocol_error() {
        let mut r = rig(2);
        r.sim.poke(r.pop, 1).unwrap();
        let err = r.sim.step().unwrap_err();
        assert!(matches!(err, SimError::Protocol { .. }));
    }

    #[test]
    fn simultaneous_push_pop_keeps_level() {
        let mut r = rig(2);
        r.sim.poke(r.push, 1).unwrap();
        r.sim.poke(r.wdata, 5).unwrap();
        r.sim.step().unwrap();
        // Now 1 element; push+pop together.
        r.sim.poke(r.pop, 1).unwrap();
        r.sim.poke(r.wdata, 6).unwrap();
        r.sim.step().unwrap();
        r.sim.poke(r.push, 0).unwrap();
        r.sim.poke(r.pop, 0).unwrap();
        r.sim.settle().unwrap();
        assert_eq!(r.sim.peek(r.rdata).unwrap().to_u64(), Some(6));
        assert_eq!(r.sim.peek(r.empty).unwrap().to_u64(), Some(0));
        assert_eq!(r.sim.peek(r.full).unwrap().to_u64(), Some(0));
    }

    #[test]
    fn simultaneous_push_pop_at_full_keeps_it_full() {
        let mut r = rig(2);
        r.sim.poke(r.push, 1).unwrap();
        for v in [1u64, 2] {
            r.sim.poke(r.wdata, v).unwrap();
            r.sim.step().unwrap();
        }
        r.sim.settle().unwrap();
        assert_eq!(r.sim.peek(r.full).unwrap().to_u64(), Some(1));
        // Push+pop on a full FIFO: the pop frees its slot within the
        // same edge, so the push is legal and the level stays at
        // capacity with the queue advanced by one.
        r.sim.poke(r.pop, 1).unwrap();
        r.sim.poke(r.wdata, 3).unwrap();
        r.sim.step().unwrap();
        r.sim.poke(r.push, 0).unwrap();
        r.sim.poke(r.pop, 0).unwrap();
        r.sim.settle().unwrap();
        assert_eq!(r.sim.peek(r.full).unwrap().to_u64(), Some(1));
        assert_eq!(r.sim.peek(r.empty).unwrap().to_u64(), Some(0));
        assert_eq!(r.sim.peek(r.rdata).unwrap().to_u64(), Some(2));
    }

    #[test]
    fn simultaneous_push_pop_on_empty_is_error() {
        let mut r = rig(2);
        r.sim.poke(r.push, 1).unwrap();
        r.sim.poke(r.pop, 1).unwrap();
        r.sim.poke(r.wdata, 9).unwrap();
        // The pop is serviced before the push, and there is nothing to
        // pop — the push cannot lend it an element through the edge.
        assert!(matches!(
            r.sim.step().unwrap_err(),
            SimError::Protocol { .. }
        ));
    }

    #[test]
    fn reset_clears_contents() {
        let mut r = rig(4);
        r.sim.poke(r.push, 1).unwrap();
        r.sim.poke(r.wdata, 7).unwrap();
        r.sim.step().unwrap();
        r.sim.poke(r.push, 0).unwrap();
        r.sim.reset().unwrap();
        assert_eq!(r.sim.peek(r.empty).unwrap().to_u64(), Some(1));
    }
}
