//! External static RAM behind a req/ack memory controller.

use crate::{BusAccess, Component, SignalBus, SignalId, SimError};
use hdp_hdl::LogicVector;

/// The handshake state of the controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Idle,
    Busy { remaining: u32 },
    Ack,
}

/// External asynchronous SRAM behind a four-phase `req`/`ack`
/// controller, the device of the paper's Figure 5 (`p_addr`,
/// `p_data`, `req`, `ack`).
///
/// A transaction: the master drives `addr` (and `we`/`wdata` for a
/// write) and raises `req`; after `latency` cycles the controller
/// raises `ack`, with `rdata` valid for reads; the master drops `req`
/// and the controller drops `ack`. The paper notes SRAM-mapped
/// containers are "much smaller, but performance will depend on memory
/// access times" (§4) — `latency` is that access time in clock cycles.
///
/// Changing `addr`, `we` or `wdata` while a transaction is in flight is
/// a [`SimError::Protocol`] violation.
#[derive(Debug)]
pub struct Sram {
    name: String,
    data_width: usize,
    latency: u32,
    req: SignalId,
    we: SignalId,
    addr: SignalId,
    wdata: SignalId,
    ack: SignalId,
    rdata: SignalId,
    mem: Vec<Option<u64>>,
    phase: Phase,
    captured: Option<(u64, bool, u64)>, // addr, we, wdata
    out: Option<u64>,
    transactions: u64,
}

impl Sram {
    /// Creates an SRAM of `2^addr_width` words of `data_width` bits
    /// with the given access latency in cycles (minimum 1).
    #[allow(clippy::too_many_arguments)]
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        addr_width: usize,
        data_width: usize,
        latency: u32,
        req: SignalId,
        we: SignalId,
        addr: SignalId,
        wdata: SignalId,
        ack: SignalId,
        rdata: SignalId,
    ) -> Self {
        Self {
            name: name.into(),
            data_width,
            latency: latency.max(1),
            req,
            we,
            addr,
            wdata,
            ack,
            rdata,
            mem: vec![None; 1 << addr_width],
            phase: Phase::Idle,
            captured: None,
            out: None,
            transactions: 0,
        }
    }

    /// Direct backdoor read, for testbench checking.
    #[must_use]
    pub fn word(&self, addr: usize) -> Option<u64> {
        self.mem.get(addr).copied().flatten()
    }

    /// Direct backdoor write, for testbench preloading.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Protocol`] if `addr` is out of range.
    pub fn preload(&mut self, addr: usize, value: u64) -> Result<(), SimError> {
        let len = self.mem.len();
        match self.mem.get_mut(addr) {
            Some(slot) => {
                *slot = Some(value);
                Ok(())
            }
            None => Err(SimError::Protocol {
                component: self.name.clone(),
                message: format!("preload address {addr} out of range (depth {len})"),
            }),
        }
    }

    /// Number of completed transactions since reset, for performance
    /// accounting in the experiments.
    #[must_use]
    pub fn transactions(&self) -> u64 {
        self.transactions
    }

    /// The configured access latency in cycles.
    #[must_use]
    pub fn latency(&self) -> u32 {
        self.latency
    }
}

impl Component for Sram {
    fn name(&self) -> &str {
        &self.name
    }

    fn eval(&mut self, bus: &mut dyn BusAccess) -> Result<(), SimError> {
        bus.drive_u64(self.ack, u64::from(self.phase == Phase::Ack))?;
        match (self.phase, self.out) {
            (Phase::Ack, Some(v)) => bus.drive_u64(self.rdata, v)?,
            _ => bus.drive(
                self.rdata,
                LogicVector::unknown(self.data_width).map_err(SimError::from)?,
            )?,
        }
        Ok(())
    }

    fn tick(&mut self, bus: &mut SignalBus) -> Result<(), SimError> {
        let req = bus.read(self.req)?.to_u64() == Some(1);
        match self.phase {
            Phase::Idle => {
                if req {
                    let addr = bus.read_u64(self.addr, &self.name)?;
                    let we = bus.read(self.we)?.to_u64() == Some(1);
                    let wdata = if we {
                        bus.read_u64(self.wdata, &self.name)?
                    } else {
                        0
                    };
                    if addr as usize >= self.mem.len() {
                        return Err(SimError::Protocol {
                            component: self.name.clone(),
                            message: format!("address {addr} out of range"),
                        });
                    }
                    self.captured = Some((addr, we, wdata));
                    self.phase = if self.latency <= 1 {
                        self.complete()?;
                        Phase::Ack
                    } else {
                        Phase::Busy {
                            remaining: self.latency - 1,
                        }
                    };
                }
            }
            Phase::Busy { remaining } => {
                if !req {
                    return Err(SimError::Protocol {
                        component: self.name.clone(),
                        message: "req dropped mid-transaction".into(),
                    });
                }
                let (addr, we, wdata) = self.captured.expect("busy implies capture");
                let now_addr = bus.read_u64(self.addr, &self.name)?;
                let now_we = bus.read(self.we)?.to_u64() == Some(1);
                if now_addr != addr || now_we != we {
                    return Err(SimError::Protocol {
                        component: self.name.clone(),
                        message: "address/control changed mid-transaction".into(),
                    });
                }
                if we {
                    let now_wdata = bus.read_u64(self.wdata, &self.name)?;
                    if now_wdata != wdata {
                        return Err(SimError::Protocol {
                            component: self.name.clone(),
                            message: "write data changed mid-transaction".into(),
                        });
                    }
                }
                if remaining <= 1 {
                    self.complete()?;
                    self.phase = Phase::Ack;
                } else {
                    self.phase = Phase::Busy {
                        remaining: remaining - 1,
                    };
                }
            }
            Phase::Ack => {
                if !req {
                    self.phase = Phase::Idle;
                    self.out = None;
                    self.captured = None;
                }
            }
        }
        Ok(())
    }

    fn reset(&mut self, _bus: &mut SignalBus) -> Result<(), SimError> {
        self.phase = Phase::Idle;
        self.captured = None;
        self.out = None;
        self.transactions = 0;
        // Contents survive reset, as in a real part.
        Ok(())
    }

    fn sensitivity(&self) -> crate::Sensitivity {
        // eval drives ack/rdata purely from the handshake phase; req
        // and the address/data pins are sampled at the clock edge.
        crate::Sensitivity::Signals(vec![])
    }

    fn drives(&self) -> Option<Vec<SignalId>> {
        Some(vec![self.ack, self.rdata])
    }
}

impl Sram {
    fn complete(&mut self) -> Result<(), SimError> {
        let (addr, we, wdata) = self.captured.expect("complete implies capture");
        if we {
            self.mem[addr as usize] = Some(wdata);
            self.out = Some(wdata);
        } else {
            self.out = self.mem[addr as usize];
            if self.out.is_none() {
                // Reading uninitialised external memory returns garbage
                // on silicon; surface it as a defined-but-arbitrary 0
                // pattern is *too kind* — keep it undefined so bugs show.
                self.out = None;
            }
        }
        self.transactions += 1;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Simulator;

    struct Rig {
        sim: Simulator,
        req: SignalId,
        we: SignalId,
        addr: SignalId,
        wdata: SignalId,
        ack: SignalId,
        rdata: SignalId,
    }

    fn rig(latency: u32) -> Rig {
        let mut sim = Simulator::new();
        let req = sim.add_signal("req", 1).unwrap();
        let we = sim.add_signal("we", 1).unwrap();
        let addr = sim.add_signal("addr", 16).unwrap();
        let wdata = sim.add_signal("wdata", 8).unwrap();
        let ack = sim.add_signal("ack", 1).unwrap();
        let rdata = sim.add_signal("rdata", 8).unwrap();
        sim.add_component(Sram::new(
            "dut", 16, 8, latency, req, we, addr, wdata, ack, rdata,
        ));
        for (s, v) in [(req, 0), (we, 0), (addr, 0), (wdata, 0)] {
            sim.poke(s, v).unwrap();
        }
        sim.reset().unwrap();
        Rig {
            sim,
            req,
            we,
            addr,
            wdata,
            ack,
            rdata,
        }
    }

    fn wait_ack(r: &mut Rig, max: u64) -> u64 {
        let mut cycles = 0;
        for _ in 0..max {
            r.sim.step().unwrap();
            cycles += 1;
            if r.sim.peek(r.ack).unwrap().to_u64() == Some(1) {
                return cycles;
            }
        }
        panic!("no ack after {max} cycles");
    }

    fn write(r: &mut Rig, addr: u64, value: u64) {
        r.sim.poke(r.req, 1).unwrap();
        r.sim.poke(r.we, 1).unwrap();
        r.sim.poke(r.addr, addr).unwrap();
        r.sim.poke(r.wdata, value).unwrap();
        wait_ack(r, 20);
        r.sim.poke(r.req, 0).unwrap();
        r.sim.poke(r.we, 0).unwrap();
        r.sim.step().unwrap();
    }

    #[test]
    fn write_then_read_round_trip() {
        let mut r = rig(2);
        write(&mut r, 100, 0xAB);
        r.sim.poke(r.req, 1).unwrap();
        r.sim.poke(r.addr, 100).unwrap();
        wait_ack(&mut r, 20);
        assert_eq!(r.sim.peek(r.rdata).unwrap().to_u64(), Some(0xAB));
        r.sim.poke(r.req, 0).unwrap();
        r.sim.step().unwrap();
        assert_eq!(r.sim.peek(r.ack).unwrap().to_u64(), Some(0));
    }

    #[test]
    fn latency_is_respected() {
        for latency in [1u32, 3, 7] {
            let mut r = rig(latency);
            write(&mut r, 5, 1);
            r.sim.poke(r.req, 1).unwrap();
            r.sim.poke(r.addr, 5).unwrap();
            let cycles = wait_ack(&mut r, 20);
            assert_eq!(cycles, u64::from(latency), "latency {latency}");
            r.sim.poke(r.req, 0).unwrap();
            r.sim.step().unwrap();
        }
    }

    #[test]
    fn wait_states_hold_ack_low_and_rdata_undefined() {
        let mut r = rig(3);
        write(&mut r, 9, 0x5A);
        r.sim.poke(r.req, 1).unwrap();
        r.sim.poke(r.addr, 9).unwrap();
        // Latency 3: the capture cycle plus one wait state before ack.
        for wait in 0..2 {
            r.sim.step().unwrap();
            assert_eq!(
                r.sim.peek(r.ack).unwrap().to_u64(),
                Some(0),
                "wait state {wait}"
            );
            assert_eq!(
                r.sim.peek(r.rdata).unwrap().to_u64(),
                None,
                "wait state {wait}"
            );
        }
        r.sim.step().unwrap();
        assert_eq!(r.sim.peek(r.ack).unwrap().to_u64(), Some(1));
        assert_eq!(r.sim.peek(r.rdata).unwrap().to_u64(), Some(0x5A));
        // Dropping req releases the handshake and rdata goes back to
        // undefined.
        r.sim.poke(r.req, 0).unwrap();
        r.sim.step().unwrap();
        assert_eq!(r.sim.peek(r.ack).unwrap().to_u64(), Some(0));
        assert_eq!(r.sim.peek(r.rdata).unwrap().to_u64(), None);
    }

    #[test]
    fn back_to_back_transactions_each_pay_full_latency() {
        let mut r = rig(2);
        write(&mut r, 1, 11);
        write(&mut r, 2, 22);
        for (a, v) in [(1u64, 11u64), (2, 22)] {
            r.sim.poke(r.req, 1).unwrap();
            r.sim.poke(r.addr, a).unwrap();
            assert_eq!(wait_ack(&mut r, 20), 2, "addr {a}");
            assert_eq!(r.sim.peek(r.rdata).unwrap().to_u64(), Some(v));
            r.sim.poke(r.req, 0).unwrap();
            r.sim.step().unwrap();
        }
    }

    #[test]
    fn changing_write_data_mid_transaction_is_error() {
        let mut r = rig(3);
        r.sim.poke(r.req, 1).unwrap();
        r.sim.poke(r.we, 1).unwrap();
        r.sim.poke(r.addr, 4).unwrap();
        r.sim.poke(r.wdata, 1).unwrap();
        r.sim.step().unwrap(); // transaction captured
        r.sim.poke(r.wdata, 2).unwrap();
        assert!(matches!(
            r.sim.step().unwrap_err(),
            SimError::Protocol { .. }
        ));
    }

    #[test]
    fn dropping_req_mid_transaction_is_error() {
        let mut r = rig(4);
        r.sim.poke(r.req, 1).unwrap();
        r.sim.poke(r.addr, 0).unwrap();
        r.sim.step().unwrap(); // transaction starts
        r.sim.poke(r.req, 0).unwrap();
        assert!(matches!(
            r.sim.step().unwrap_err(),
            SimError::Protocol { .. }
        ));
    }

    #[test]
    fn changing_addr_mid_transaction_is_error() {
        let mut r = rig(4);
        r.sim.poke(r.req, 1).unwrap();
        r.sim.poke(r.addr, 0).unwrap();
        r.sim.step().unwrap();
        r.sim.poke(r.addr, 1).unwrap();
        assert!(matches!(
            r.sim.step().unwrap_err(),
            SimError::Protocol { .. }
        ));
    }

    #[test]
    fn uninitialised_read_is_undefined() {
        let mut r = rig(1);
        r.sim.poke(r.req, 1).unwrap();
        r.sim.poke(r.addr, 77).unwrap();
        wait_ack(&mut r, 20);
        assert_eq!(r.sim.peek(r.rdata).unwrap().to_u64(), None);
    }

    #[test]
    fn transaction_counter_counts() {
        let mut sim = Simulator::new();
        let req = sim.add_signal("req", 1).unwrap();
        let we = sim.add_signal("we", 1).unwrap();
        let addr = sim.add_signal("addr", 8).unwrap();
        let wdata = sim.add_signal("wdata", 8).unwrap();
        let ack = sim.add_signal("ack", 1).unwrap();
        let rdata = sim.add_signal("rdata", 8).unwrap();
        let sram = Sram::new("dut", 8, 8, 1, req, we, addr, wdata, ack, rdata);
        assert_eq!(sram.transactions(), 0);
        assert_eq!(sram.latency(), 1);
        drop(sim);
    }

    #[test]
    fn out_of_range_address_is_error() {
        let mut sim = Simulator::new();
        let req = sim.add_signal("req", 1).unwrap();
        let we = sim.add_signal("we", 1).unwrap();
        let addr = sim.add_signal("addr", 16).unwrap();
        let wdata = sim.add_signal("wdata", 8).unwrap();
        let ack = sim.add_signal("ack", 1).unwrap();
        let rdata = sim.add_signal("rdata", 8).unwrap();
        // Memory only 2^8 deep but address bus 16 bits wide.
        sim.add_component(Sram::new("dut", 8, 8, 1, req, we, addr, wdata, ack, rdata));
        for (s, v) in [(req, 1), (we, 0), (addr, 300), (wdata, 0)] {
            sim.poke(s, v).unwrap();
        }
        assert!(matches!(sim.step().unwrap_err(), SimError::Protocol { .. }));
    }
}
