//! Device models: the simulated XSB-300E board.
//!
//! The paper maps containers onto "physical devices" (§3.4): on-chip
//! FIFO and LIFO cores, block RAM and external static RAM, and feeds
//! them from a SAA7113 video decoder towards a VGA coder. Each model
//! here reproduces the handshake and timing behaviour the generated
//! components must cope with:
//!
//! * [`FifoCore`] / [`LifoCore`] — first-word-fall-through queue and
//!   stack cores with `push`/`pop`/`empty`/`full`.
//! * [`Bram`] — synchronous-read dual-port block RAM (1-cycle read).
//! * [`Sram`] — external asynchronous SRAM behind a `req`/`ack`
//!   controller with configurable access latency (Figure 5's
//!   implementation interface).
//! * [`LineBuffer3`] — the special 3-line buffer of the blur example
//!   (§4) that "provides 3 pixels in a column for each access".
//! * [`VideoIn`] — pixel-stream source standing in for the SAA7113
//!   decoder, with configurable inter-pixel gaps (blanking).
//! * [`VideoOut`] — pixel-stream sink standing in for the VGA coder,
//!   collecting frames and checking stream discipline.
//!
//! Every device takes an instance name at construction; that name is
//! the key telemetry reports under (see [`crate::Simulator::stats`]),
//! so give each instance a distinct, stable name (`u_fifo0`,
//! `u_line_buf`, ...) rather than reusing a type-like label.

mod bram;
mod fifo;
mod lifo;
mod line_buffer;
mod sram;
mod video;

pub use bram::Bram;
pub use fifo::FifoCore;
pub use lifo::LifoCore;
pub use line_buffer::LineBuffer3;
pub use sram::Sram;
pub use video::{VideoIn, VideoOut};
