//! LIFO (stack) core.

use crate::{BusAccess, Component, SignalBus, SignalId, SimError};

/// A synchronous LIFO core, the on-chip stack device of the paper
/// ("queues and read/write buffers can also \[be\] mapped over LIFOs",
/// §3.4).
///
/// Ports: `push`, `pop`, `wdata` in; `rdata`, `empty`, `full` out.
/// `rdata` shows the top of the stack whenever it is non-empty.
/// Simultaneous `push` and `pop` replace the top element.
#[derive(Debug)]
pub struct LifoCore {
    name: String,
    depth: usize,
    width: usize,
    push: SignalId,
    pop: SignalId,
    wdata: SignalId,
    rdata: SignalId,
    empty: SignalId,
    full: SignalId,
    data: Vec<u64>,
}

impl LifoCore {
    /// Creates a LIFO core of `depth` elements of `width` bits.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    #[allow(clippy::too_many_arguments)]
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        depth: usize,
        width: usize,
        push: SignalId,
        pop: SignalId,
        wdata: SignalId,
        rdata: SignalId,
        empty: SignalId,
        full: SignalId,
    ) -> Self {
        assert!(depth > 0, "LIFO depth must be positive");
        Self {
            name: name.into(),
            depth,
            width,
            push,
            pop,
            wdata,
            rdata,
            empty,
            full,
            data: Vec::new(),
        }
    }

    /// Number of elements currently stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the stack holds no elements.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Component for LifoCore {
    fn name(&self) -> &str {
        &self.name
    }

    fn eval(&mut self, bus: &mut dyn BusAccess) -> Result<(), SimError> {
        bus.drive_u64(self.empty, u64::from(self.data.is_empty()))?;
        bus.drive_u64(self.full, u64::from(self.data.len() >= self.depth))?;
        match self.data.last() {
            Some(&top) => bus.drive_u64(self.rdata, top)?,
            None => bus.drive(
                self.rdata,
                hdp_hdl::LogicVector::unknown(self.width).map_err(SimError::from)?,
            )?,
        }
        Ok(())
    }

    fn tick(&mut self, bus: &mut SignalBus) -> Result<(), SimError> {
        let push = bus.read(self.push)?.to_u64() == Some(1);
        let pop = bus.read(self.pop)?.to_u64() == Some(1);
        if pop && self.data.pop().is_none() {
            return Err(SimError::Protocol {
                component: self.name.clone(),
                message: "pop on empty lifo".into(),
            });
        }
        if push {
            if self.data.len() >= self.depth {
                return Err(SimError::Protocol {
                    component: self.name.clone(),
                    message: "push on full lifo".into(),
                });
            }
            let v = bus.read_u64(self.wdata, &self.name)?;
            self.data.push(v);
        }
        Ok(())
    }

    fn reset(&mut self, _bus: &mut SignalBus) -> Result<(), SimError> {
        self.data.clear();
        Ok(())
    }

    fn sensitivity(&self) -> crate::Sensitivity {
        // eval drives purely from stack state; inputs are only sampled
        // at the clock edge.
        crate::Sensitivity::Signals(vec![])
    }

    fn drives(&self) -> Option<Vec<SignalId>> {
        Some(vec![self.rdata, self.empty, self.full])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Simulator;

    struct Rig {
        sim: Simulator,
        push: SignalId,
        pop: SignalId,
        wdata: SignalId,
        rdata: SignalId,
        empty: SignalId,
    }

    fn rig(depth: usize) -> Rig {
        let mut sim = Simulator::new();
        let push = sim.add_signal("push", 1).unwrap();
        let pop = sim.add_signal("pop", 1).unwrap();
        let wdata = sim.add_signal("wdata", 8).unwrap();
        let rdata = sim.add_signal("rdata", 8).unwrap();
        let empty = sim.add_signal("empty", 1).unwrap();
        let full = sim.add_signal("full", 1).unwrap();
        sim.add_component(LifoCore::new(
            "dut", depth, 8, push, pop, wdata, rdata, empty, full,
        ));
        sim.poke(push, 0).unwrap();
        sim.poke(pop, 0).unwrap();
        sim.poke(wdata, 0).unwrap();
        sim.reset().unwrap();
        Rig {
            sim,
            push,
            pop,
            wdata,
            rdata,
            empty,
        }
    }

    #[test]
    fn lifo_order_is_reversed() {
        let mut r = rig(4);
        for v in [1u64, 2, 3] {
            r.sim.poke(r.push, 1).unwrap();
            r.sim.poke(r.wdata, v).unwrap();
            r.sim.step().unwrap();
        }
        r.sim.poke(r.push, 0).unwrap();
        let mut seen = Vec::new();
        for _ in 0..3 {
            r.sim.settle().unwrap();
            seen.push(r.sim.peek(r.rdata).unwrap().to_u64().unwrap());
            r.sim.poke(r.pop, 1).unwrap();
            r.sim.step().unwrap();
            r.sim.poke(r.pop, 0).unwrap();
        }
        assert_eq!(seen, vec![3, 2, 1]);
        assert_eq!(r.sim.peek(r.empty).unwrap().to_u64(), Some(1));
    }

    #[test]
    fn pop_on_empty_is_protocol_error() {
        let mut r = rig(2);
        r.sim.poke(r.pop, 1).unwrap();
        assert!(matches!(
            r.sim.step().unwrap_err(),
            SimError::Protocol { .. }
        ));
    }

    #[test]
    fn push_pop_replaces_top() {
        let mut r = rig(4);
        r.sim.poke(r.push, 1).unwrap();
        r.sim.poke(r.wdata, 5).unwrap();
        r.sim.step().unwrap();
        r.sim.poke(r.pop, 1).unwrap();
        r.sim.poke(r.wdata, 9).unwrap();
        r.sim.step().unwrap();
        r.sim.poke(r.push, 0).unwrap();
        r.sim.poke(r.pop, 0).unwrap();
        r.sim.settle().unwrap();
        assert_eq!(r.sim.peek(r.rdata).unwrap().to_u64(), Some(9));
    }
}
